"""Generate the CI parallel-smoke workload.

Writes a chain-shape view catalog (``views.dl``) and a 50-line NDJSON
request file (``requests.ndjson``) that all plan against that one
catalog, so a ``repro batch --workers 2`` smoke run exercises the
process pool *and* the warm per-worker context pools (49 of the 50
requests should be pool hits inside each worker).

Usage::

    python benchmarks/make_parallel_workload.py OUTDIR \
        [--num-views 120] [--requests 50] [--seed 23]
"""

import argparse
import json
import pathlib
import sys

from repro.workload import WorkloadConfig, workload_series

CHAIN_RELATIONS = 40


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("outdir", type=pathlib.Path)
    parser.add_argument("--num-views", type=int, default=120)
    parser.add_argument("--requests", type=int, default=50)
    parser.add_argument("--seed", type=int, default=23)
    args = parser.parse_args(argv)

    template = WorkloadConfig(
        shape="chain",
        num_relations=CHAIN_RELATIONS,
        num_views=args.num_views,
        nondistinguished=0,
        seed=args.seed,
    )
    workloads = list(workload_series(template, args.requests))

    args.outdir.mkdir(parents=True, exist_ok=True)
    views_path = args.outdir / "views.dl"
    # One shared catalog: every request fingerprints to the same warm
    # context.  workload_series varies the query, not the views.
    views_path.write_text(
        "\n".join(str(view.definition) for view in workloads[0].views) + "\n"
    )
    requests_path = args.outdir / "requests.ndjson"
    requests_path.write_text(
        "\n".join(
            json.dumps(
                {"id": f"q{i:03d}", "query": str(workload.query),
                 "timeout": 30.0}
            )
            for i, workload in enumerate(workloads)
        )
        + "\n"
    )
    print(f"wrote {views_path} ({args.num_views} views)")
    print(f"wrote {requests_path} ({args.requests} requests)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
