"""Durability costs: journal-append overhead and recovery time.

Two numbers bound the price of crash consistency:

* **Append overhead** — the hot-path cost of journaling a catalog
  mutation before acknowledging it.  Measured fsync-free and (when the
  host has a tmpfs) against memory-backed storage, because fsync
  latency and writeback stalls are properties of the device, not the
  implementation — the gate prices the frame/checksum/write work the
  journal adds; the device's fsync cost is recorded separately as
  unasserted ``extra_info``.  CI gate: the durable registry's
  register/update loop must stay within ``MAX_APPEND_OVERHEAD``x of
  the in-memory registry's.
* **Recovery time** — a cold boot over the state directory of an
  800-view catalog (snapshot load, root verification), recorded in
  ``BENCH_corecover.json`` as ``recovery_ms_800_views`` alongside the
  journal-tail replay variant.
"""

import gc
import os
import shutil
import tempfile
import time
from pathlib import Path

from conftest import star_workload

from repro.serve.catalogs import CatalogRegistry

NUM_VIEWS = 800
#: CI gate: journaling (sans fsync) must cost <= 10% on the mutation path.
MAX_APPEND_OVERHEAD = 1.10
#: Mutations per timing round — registers dominate, as in tenant onboarding.
ROUND_OPS = 40


def _view_texts():
    return [str(view.definition) for view in star_workload(NUM_VIEWS).views]


def _mutation_round(registry, texts):
    """The register/update hot path both registries run.

    Eight-view catalogs per tenant, as the recovery test below and the
    serve suite use.  Removals are deliberately absent: an in-memory
    remove is a dict pop, so a remove-heavy mix measures the journal
    against ~zero work — the gate is about the paths tenants actually
    exercise per request, where parsing and content hashing dominate.
    (Repeated rounds re-register the same names, which is the
    wholesale-replace path — same cost shape as a fresh register.)
    """
    for index in range(ROUND_OPS):
        registry.register(f"t{index}", texts[8 * index : 8 * index + 8])
    for index in range(0, ROUND_OPS, 8):
        registry.update(
            f"t{index}", add=[texts[8 * ROUND_OPS + index]]
        )


def _best_of(callable_, repeats=5):
    best = float("inf")
    for _ in range(repeats):
        started = time.perf_counter()
        callable_()
        best = min(best, time.perf_counter() - started)
    return best


def _interleaved_best_of(first, second, repeats=10):
    """Best-of over *interleaved* rounds of two workloads.

    Timing all of one workload's repeats before the other's bakes CPU
    frequency and cache drift into the ratio, and always running the
    same side first within a pair biases against the second — so pairs
    alternate order (and a warmup pair runs untimed), and each side's
    minimum is taken across all pairs.  The ratio then prices the
    journal, not the thermal state of the CI box.
    """
    first()
    second()
    firsts, seconds = [], []
    gc.collect()
    gc.disable()  # a collection pause inside one round skews the ratio
    try:
        for index in range(repeats):
            order = (first, firsts), (second, seconds)
            if index % 2:
                order = order[::-1]
            for callable_, sink in order:
                started = time.perf_counter()
                callable_()
                sink.append(time.perf_counter() - started)
    finally:
        gc.enable()
    return min(firsts), min(seconds)


def _gate_state_dir(tmp_path):
    """Memory-backed state dir for the gated ratio, when available.

    On a shared CI disk, dirty-page writeback throttling can inflate
    buffered journal writes for seconds at a stretch — device noise
    the gate must not price.  A tmpfs takes the device out of the
    measurement; without one, the tmp dir is the honest fallback.
    """
    shm = Path("/dev/shm")
    if shm.is_dir() and os.access(shm, os.W_OK):
        return Path(tempfile.mkdtemp(prefix="bench-journal-", dir=shm))
    return tmp_path / "state"


def test_journal_append_overhead(benchmark, tmp_path):
    texts = _view_texts()
    state_dir = _gate_state_dir(tmp_path)
    memory = CatalogRegistry()
    durable = CatalogRegistry(
        state_dir=state_dir,
        journal_fsync=False,
        snapshot_every=1_000_000,  # isolate append cost from compaction
    )

    # A whole measurement can land inside a burst of host contention
    # that inflates every round; a genuine regression inflates every
    # *attempt*.  Re-measure (fresh interleaved best-of) up to twice
    # before failing, and report the cleanest attempt.
    overhead = float("inf")
    memory_seconds = durable_seconds = 0.0
    for _attempt in range(3):
        mem_s, dur_s = _interleaved_best_of(
            lambda: _mutation_round(memory, texts),
            lambda: _mutation_round(durable, texts),
        )
        ratio = dur_s / mem_s if mem_s > 0 else 1.0
        if ratio < overhead:
            overhead = ratio
            memory_seconds, durable_seconds = mem_s, dur_s
        if overhead <= MAX_APPEND_OVERHEAD:
            break

    # The asserted number comes from the matched best-of pair above;
    # benchmark() just records the durable path's distribution.
    benchmark(lambda: _mutation_round(durable, texts))

    # The device's fsync price, reported but never asserted: CI boxes
    # and laptops disagree by orders of magnitude.
    synced = CatalogRegistry(
        state_dir=tmp_path / "synced", snapshot_every=1_000_000
    )
    synced_seconds = _best_of(
        lambda: _mutation_round(synced, texts), repeats=2
    )
    synced.close()
    durable.close()
    if not state_dir.is_relative_to(tmp_path):
        shutil.rmtree(state_dir, ignore_errors=True)

    benchmark.extra_info["in_memory_ms"] = memory_seconds * 1000.0
    benchmark.extra_info["journaled_ms"] = durable_seconds * 1000.0
    benchmark.extra_info["append_overhead_ratio"] = overhead
    benchmark.extra_info["fsync_journaled_ms"] = synced_seconds * 1000.0
    assert overhead <= MAX_APPEND_OVERHEAD, (
        f"journal append costs {overhead:.3f}x the in-memory mutation "
        f"path (gate: {MAX_APPEND_OVERHEAD}x)"
    )


def test_recovery_time_800_views(benchmark, tmp_path):
    texts = _view_texts()
    state = tmp_path / "state"
    seeded = CatalogRegistry(state_dir=state, journal_fsync=False)
    seeded.register("t-big", texts)
    assert seeded.checkpoint() is not None
    seeded.close()

    # A journal-tail variant of the same state dir: the snapshot holds
    # the big catalog, the tail replays a handful of updates.
    tailed = tmp_path / "tailed"
    shutil.copytree(state, tailed)
    extra = CatalogRegistry(state_dir=tailed, journal_fsync=False)
    for index in range(8):
        extra.update("t-big", add=[f"w{index}(X, Y) :- extra{index}(X, Y)"])
    extra.close()

    def recover():
        registry = CatalogRegistry(state_dir=state)
        try:
            assert registry.recovered_catalogs == 1
            assert registry.quarantined_names() == ()
        finally:
            registry.close()

    benchmark(recover)

    def recover_tailed():
        registry = CatalogRegistry(state_dir=tailed)
        try:
            assert registry.replayed_ops == 8
        finally:
            registry.close()

    snapshot_seconds = _best_of(recover, repeats=3)
    tail_seconds = _best_of(recover_tailed, repeats=3)
    benchmark.extra_info["recovery_ms_800_views"] = (
        snapshot_seconds * 1000.0
    )
    benchmark.extra_info["recovery_with_tail_ms"] = tail_seconds * 1000.0
    benchmark.extra_info["views"] = NUM_VIEWS
