"""Catalog scaling: the predicate index keeps planning sublinear in |V|.

The workload a production catalog actually faces: the catalog keeps
growing (N ∈ {50, 200, 800} chain views over an 80-relation schema) but
any one query still touches only 4 relations — 5% of the predicates.
Without the index, view grouping and T(Q, V) enumerate all N views;
with it they enumerate only the predicate-relevant slice, so the
homomorphism-search count is driven by the *relevant* views, not the
catalog size.

Recorded per point in ``BENCH_corecover.json``: wall time,
``touched_views`` / ``touched_views_ratio``, and ``hom_searches``.  Two
assertions gate CI:

* at every N the planner enumerates at most 20% of the catalog
  (``touched_views_ratio <= 0.2`` — the query touches ≤10% of the
  predicates, so anything near 1.0 means the index stopped pruning);
* homomorphism searches grow **sublinearly**: scaling views 16x
  (50 → 800) must scale searches by strictly less than half of 16x.
"""

from repro.core import core_cover
from repro.planner import PlannerContext
from repro.workload import WorkloadConfig, generate_workload

import pytest

from conftest import attach_corecover_stats

#: The view-count axis; the query always touches 4 of 80 relations (5%).
CATALOG_SIZES = (50, 200, 800)
NUM_RELATIONS = 80
QUERY_SUBGOALS = 4
SEED = 31

#: Fraction of the catalog the planner may enumerate (acceptance bound).
MAX_TOUCHED_RATIO = 0.2

#: hom_searches(800)/hom_searches(50) must stay under half of linear.
SUBLINEAR_FACTOR = 0.5

#: N -> hom_searches, filled by the parametrized bench, asserted at the end.
_HOM_SEARCHES: dict[int, int] = {}


def _workload(num_views):
    return generate_workload(
        WorkloadConfig(
            shape="chain",
            num_relations=NUM_RELATIONS,
            query_subgoals=QUERY_SUBGOALS,
            num_views=num_views,
            view_locality=0.1,
            seed=SEED,
        )
    )


@pytest.mark.parametrize("num_views", CATALOG_SIZES)
def test_catalog_scaling(benchmark, num_views):
    workload = _workload(num_views)
    benchmark.group = "catalog-scaling"

    result = benchmark(
        lambda: core_cover(
            workload.query, workload.views, context=PlannerContext()
        )
    )
    stats = result.stats
    attach_corecover_stats(benchmark, result)
    benchmark.extra_info["num_views"] = num_views
    benchmark.extra_info["predicate_touch_fraction"] = (
        QUERY_SUBGOALS / NUM_RELATIONS
    )
    _HOM_SEARCHES[num_views] = stats.hom_searches

    assert result.has_rewriting
    assert stats.total_views == num_views
    # The acceptance bound: a query touching <=10% of the predicates
    # must enumerate at most 20% of the catalog.
    assert stats.touched_views_ratio <= MAX_TOUCHED_RATIO, (
        f"index stopped pruning: enumerated {stats.touched_views} of "
        f"{num_views} views ({stats.touched_views_ratio:.0%})"
    )


def test_hom_searches_grow_sublinearly():
    """CI gate: 16x more views must cost well under 16x the searches."""
    assert set(_HOM_SEARCHES) == set(CATALOG_SIZES), (
        "run the parametrized catalog-scaling bench first"
    )
    smallest, largest = min(CATALOG_SIZES), max(CATALOG_SIZES)
    view_scaling = largest / smallest
    search_scaling = _HOM_SEARCHES[largest] / max(1, _HOM_SEARCHES[smallest])
    assert search_scaling < SUBLINEAR_FACTOR * view_scaling, (
        f"hom searches scaled {search_scaling:.1f}x across a "
        f"{view_scaling:.0f}x view sweep ({_HOM_SEARCHES}); the "
        "predicate index should keep this sublinear"
    )
