"""Random-shape queries (the third Section 7 shape family).

The paper: "We studied different shapes of queries, such as chain
queries, star queries, and randomly generated queries [23]."  Figures are
only shown for stars and chains; this benchmark covers the random family
with the same protocol (time to generate all GMRs, class counts in
``extra_info``).  Cycle queries — also a [23] shape — get one target too.
"""

import pytest

from repro.core import core_cover
from repro.workload import WorkloadConfig, generate_workload

from conftest import attach_corecover_stats

RANDOM_VIEWS = (50, 150, 400)


@pytest.mark.parametrize("num_views", RANDOM_VIEWS)
def test_random_shape_time(benchmark, num_views):
    workload = generate_workload(
        WorkloadConfig(
            shape="random",
            num_relations=10,
            query_subgoals=6,
            num_views=num_views,
            seed=31,
        )
    )
    result = benchmark(core_cover, workload.query, workload.views)
    assert result.has_rewriting
    attach_corecover_stats(benchmark, result)


@pytest.mark.parametrize("num_views", (60, 200))
def test_cycle_shape_time(benchmark, num_views):
    workload = generate_workload(
        WorkloadConfig(
            shape="cycle",
            num_relations=20,
            query_subgoals=6,
            num_views=num_views,
            seed=33,
        )
    )
    result = benchmark(core_cover, workload.query, workload.views)
    assert result.has_rewriting
    attach_corecover_stats(benchmark, result)
