"""Overhead of the cooperative-cancellation checkpoints.

The anytime layer threads ``BudgetMeter.checkpoint()`` calls through the
homomorphism search, view-tuple enumeration, and set-cover branching.
This benchmark times the unbudgeted Figure 6 star run and compares it
against the same run under a fully unlimited :class:`ResourceBudget`
(every checkpoint live, nothing ever trips).  The ratio lands in
``BENCH_corecover.json`` as ``extra_info["budget_overhead_ratio"]``; the
target from the robustness issue is <= 5% overhead, asserted here with
slack for CI timer noise.
"""

import time

import pytest

from repro import ResourceBudget, plan

from conftest import attach_corecover_stats, star_workload

NUM_VIEWS = 250


def _best_of(callable_, repeats=3):
    best = float("inf")
    for _ in range(repeats):
        started = time.perf_counter()
        callable_()
        best = min(best, time.perf_counter() - started)
    return best


def test_budget_checkpoint_overhead(benchmark):
    workload = star_workload(NUM_VIEWS, nondistinguished=0)
    unlimited = ResourceBudget(deadline_seconds=float("inf"))

    result = benchmark(plan, workload.query, workload.views)
    assert result.has_rewriting

    # Best-of-N manual timings on both variants: pytest-benchmark owns
    # the unbudgeted series above, this just derives the ratio.
    plain = _best_of(lambda: plan(workload.query, workload.views))
    metered = _best_of(
        lambda: plan(workload.query, workload.views, budget=unlimited)
    )
    ratio = metered / plain if plain > 0 else 1.0
    benchmark.extra_info["budget_overhead_ratio"] = ratio
    benchmark.extra_info["unbudgeted_seconds"] = plain
    benchmark.extra_info["budgeted_seconds"] = metered
    attach_corecover_stats(benchmark, result.details)
    # Target is 1.05; allow generous slack for noisy shared CI runners.
    assert ratio <= 1.5, (
        f"budget checkpoints cost {ratio - 1:.0%} on the star workload"
    )
