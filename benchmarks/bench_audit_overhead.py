"""Full vs. delta catalog audit on a production-sized catalog.

The incremental contract in one number: on an 800-view chain catalog
(80 relations, 10% locality — the ``bench_catalog_scaling`` workload),
replacing a single view and re-auditing with the persistent
:class:`CatalogAuditor` must re-analyze only the changed view plus its
predicate-index neighbors, and run at least ``MIN_SPEEDUP``x faster
than a from-scratch audit of the same catalog.  Recorded in
``BENCH_corecover.json``: ``audit_full_ms``, ``audit_delta_ms``, and
``audit_delta_speedup``.
"""

import time

from repro.analysis import CatalogAuditor, audit_catalog
from repro.workload import WorkloadConfig, generate_workload

NUM_VIEWS = 800
NUM_RELATIONS = 80
SEED = 31

#: CI gate: a one-view delta must beat the from-scratch audit by this.
MIN_SPEEDUP = 5.0


def _catalog():
    return generate_workload(
        WorkloadConfig(
            shape="chain",
            num_relations=NUM_RELATIONS,
            query_subgoals=4,
            num_views=NUM_VIEWS,
            view_locality=0.1,
            seed=SEED,
        )
    ).views


def _variants(catalog):
    """The original v0 text and a same-predicate textual variant."""
    original = str(list(catalog)[0].definition)
    body = original.split(":-", 1)[1].strip()
    first_atom = body.split("),", 1)[0] + ")"
    return original, f"{original}, {first_atom}"


def _best_of(callable_, repeats=3):
    best = float("inf")
    for _ in range(repeats):
        started = time.perf_counter()
        callable_()
        best = min(best, time.perf_counter() - started)
    return best


def test_audit_delta_speedup(benchmark):
    catalog = _catalog()
    variants = _variants(catalog)
    auditor = CatalogAuditor()
    auditor.audit(catalog)  # warm: every unit cached
    flip = [0]

    def delta_round():
        flip[0] ^= 1
        catalog.replace_view(variants[flip[0]])
        return auditor.audit(catalog)

    report = benchmark(delta_round)

    # The delta re-analyzes exactly the changed view and the views the
    # predicate index says could see it — never the whole catalog.
    neighbors = catalog.index_neighbors("v0")
    assert report.views_total == NUM_VIEWS
    assert report.views_analyzed == 1 + len(neighbors)
    assert report.views_reused == NUM_VIEWS - 1 - len(neighbors)

    full_seconds = _best_of(lambda: audit_catalog(catalog))
    delta_seconds = _best_of(delta_round)
    speedup = full_seconds / delta_seconds if delta_seconds > 0 else 1.0
    benchmark.extra_info["audit_full_ms"] = full_seconds * 1000.0
    benchmark.extra_info["audit_delta_ms"] = delta_seconds * 1000.0
    benchmark.extra_info["audit_delta_speedup"] = speedup
    benchmark.extra_info["num_views"] = NUM_VIEWS
    benchmark.extra_info["views_reanalyzed"] = 1 + len(neighbors)
    assert speedup >= MIN_SPEEDUP, (
        f"one-view delta audit only {speedup:.1f}x faster than scratch "
        f"({full_seconds * 1000:.0f}ms vs {delta_seconds * 1000:.0f}ms) "
        f"on {NUM_VIEWS} views"
    )
