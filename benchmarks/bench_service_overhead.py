"""Overhead of the resilient-executor supervision layer.

The service tier wraps every ``plan()`` call in deadline accounting, a
circuit-breaker check, and (on fallback) re-certification.  On the happy
path — primary backend healthy, first attempt succeeds — all of that
must be noise: the issue budget is <= 10% over a bare ``plan()`` call,
asserted here as ``service_overhead_ratio``.

The second series, ``failover_latency_ms``, prices the unhappy path: a
dead primary backend plus the certification toll on the fallback's
answer.  Both numbers land in ``BENCH_corecover.json``.
"""

import time

import pytest

from repro import plan
from repro.planner.registry import (
    _BACKENDS,
    RewriterBackend,
    register_backend,
)
from repro.service import (
    PlanRequest,
    ResilientExecutor,
    RetryPolicy,
    ServicePolicy,
)

from conftest import attach_corecover_stats, star_workload

NUM_VIEWS = 250


def _best_of(callable_, repeats=3):
    best = float("inf")
    for _ in range(repeats):
        started = time.perf_counter()
        callable_()
        best = min(best, time.perf_counter() - started)
    return best


def _always_down(query, catalog, *, context, **options):
    raise RuntimeError("benchmark backend: permanently down")


@pytest.fixture()
def down_backend():
    backend = RewriterBackend(
        name="bench-down",
        description="benchmark-only backend that always raises",
        run=_always_down,
    )
    register_backend(backend, replace=True)
    yield backend
    _BACKENDS.pop("bench-down", None)


def test_service_happy_path_overhead(benchmark):
    workload = star_workload(NUM_VIEWS, nondistinguished=0)
    executor = ResilientExecutor(ServicePolicy(chain=("corecover",)))
    request = PlanRequest(workload.query, workload.views)

    outcome = benchmark(executor.execute, request)
    assert outcome.ok
    assert outcome.attempts == 1
    assert outcome.rewritings

    bare = _best_of(lambda: plan(workload.query, workload.views))
    supervised = _best_of(lambda: executor.execute(request))
    ratio = supervised / bare if bare > 0 else 1.0
    benchmark.extra_info["service_overhead_ratio"] = ratio
    benchmark.extra_info["bare_seconds"] = bare
    benchmark.extra_info["supervised_seconds"] = supervised
    result = plan(workload.query, workload.views)
    attach_corecover_stats(benchmark, result.details)
    assert ratio <= 1.10, (
        f"service supervision costs {ratio - 1:.0%} on the happy path "
        "(budget: 10%)"
    )


def test_service_failover_latency(benchmark, down_backend):
    workload = star_workload(NUM_VIEWS, nondistinguished=0)
    policy = ServicePolicy(
        chain=("bench-down", "corecover"),
        retry=RetryPolicy(max_attempts=1, base_delay=0.0),
    )
    request = PlanRequest(workload.query, workload.views)

    def fail_over():
        # A fresh executor per call keeps the dead backend's breaker
        # closed, so every round pays the full failover path: the dead
        # attempt, the chain walk, and fallback re-certification.
        outcome = ResilientExecutor(
            policy, sleep=lambda _delay: None
        ).execute(request)
        assert outcome.ok
        assert outcome.backend_used == "corecover"
        assert outcome.attempts == 2
        return outcome

    benchmark(fail_over)

    bare = _best_of(lambda: plan(workload.query, workload.views))
    failover = _best_of(fail_over)
    benchmark.extra_info["failover_latency_ms"] = (failover - bare) * 1000
    benchmark.extra_info["failover_seconds"] = failover
    benchmark.extra_info["bare_seconds"] = bare
