"""Acyclic fast path: join-tree-guided search vs blind backtracking.

Two claims, at the two layers the PR touches:

1. **Engine layer (CI-gated).**  On the Figure 8 chain *shape* — a chain
   of subgoals over one shared edge predicate, matched into a target
   whose spine grows misleading dead-end branches — homomorphism search
   is the whole cost, and the Yannakakis-style semijoin filtering wins
   big: ``acyclic_speedup`` (wall) and ``hom_nodes_ratio`` (search
   nodes) land well above the 1.5x / 2x CI floors while producing the
   identical homomorphism enumeration.

2. **Plan layer (identity-asserted).**  The stock Figure 8/9 chain
   workloads run through ``plan()`` on both paths and must produce
   bit-identical rewritings.  No wall gate here on purpose: CoreCover's
   pipeline is deliberately *not* hom-search-bound (that is the paper's
   contribution — the cover search, not the containment test, carries
   the cost), so the fast path's end-to-end effect on these workloads is
   neutral; the recorded stats document exactly that.
"""

import time

import pytest

from repro.containment.homomorphism import (
    acyclic_scope,
    find_homomorphisms,
    observe_searches,
)
from repro.containment.join_guided import AcyclicRouter
from repro.datalog import Atom, Constant, Variable
from repro.planner import PlannerContext, plan

from conftest import chain_workload

#: Figure 8 chain shape: source chain length / target spine / tooth length.
CHAIN_LENGTH = 12
SPINE_LENGTH = 16
TOOTH_LENGTH = 8


def _chain_source(length):
    variables = [Variable(f"V{i}") for i in range(length + 1)]
    return [
        Atom("e", (variables[i], variables[i + 1])) for i in range(length)
    ]


def _comb_target(spine, tooth):
    """A spine path with a dead-end tooth at every spine node.

    Each tooth shares its prefix with the spine, so a blind chain walk
    commits ``tooth`` steps deep before failing; the semijoin passes
    delete every tooth edge up front.
    """
    atoms = []
    for i in range(spine):
        atoms.append(Atom("e", (Constant(f"s{i}"), Constant(f"s{i + 1}"))))
    for i in range(spine):
        previous = f"s{i}"
        for j in range(tooth):
            branch = f"t{i}_{j}"
            atoms.append(Atom("e", (Constant(previous), Constant(branch))))
            previous = branch
    return atoms


class _NodeCounter:
    def __init__(self):
        self.nodes = 0

    def record_search(self):
        pass

    def record_nodes(self, nodes):
        self.nodes += nodes


def _run_general(source, target):
    counter = _NodeCounter()
    with observe_searches(counter):
        started = time.perf_counter()
        homs = list(find_homomorphisms(source, target))
        elapsed = time.perf_counter() - started
    return elapsed, counter.nodes, homs


def _run_guided(source, target):
    counter = _NodeCounter()
    with observe_searches(counter), acyclic_scope(AcyclicRouter()):
        started = time.perf_counter()
        homs = list(find_homomorphisms(source, target))
        elapsed = time.perf_counter() - started
    return elapsed, counter.nodes, homs


def test_acyclic_engine_speedup(benchmark):
    """The CI-gated series: speedup and node ratio on the chain shape."""
    source = _chain_source(CHAIN_LENGTH)
    target = _comb_target(SPINE_LENGTH, TOOTH_LENGTH)

    # Warm interners/caches, then best-of-5 for the recorded ratio (the
    # benchmark fixture times the guided engine for the timing row).
    _run_general(source, target)
    _run_guided(source, target)
    general_s, general_nodes, general_homs = min(
        (_run_general(source, target) for _ in range(5)), key=lambda r: r[0]
    )
    guided_s, guided_nodes, guided_homs = min(
        (_run_guided(source, target) for _ in range(5)), key=lambda r: r[0]
    )
    assert guided_homs == general_homs  # bit-identical enumeration
    assert guided_homs, "the comb target must admit homomorphisms"

    def timed():
        with acyclic_scope(AcyclicRouter()):
            return list(find_homomorphisms(source, target))

    benchmark(timed)
    benchmark.extra_info["acyclic_speedup"] = round(general_s / guided_s, 2)
    benchmark.extra_info["hom_nodes_ratio"] = round(
        general_nodes / guided_nodes, 2
    )
    benchmark.extra_info["hom_nodes_general"] = general_nodes
    benchmark.extra_info["hom_nodes_guided"] = guided_nodes
    benchmark.extra_info["general_ms"] = round(general_s * 1000, 3)
    benchmark.extra_info["guided_ms"] = round(guided_s * 1000, 3)
    benchmark.extra_info["homomorphisms"] = len(guided_homs)
    # Mirror the CI floors locally so a regression fails fast.
    assert general_nodes / guided_nodes >= 2.0
    assert general_s / guided_s >= 1.5


@pytest.mark.parametrize("num_views", (100, 250))
@pytest.mark.parametrize("nondistinguished", (0, 1))
def test_fig8_fig9_chain_plans_bit_identical(
    benchmark, num_views, nondistinguished
):
    """Stock Figure 8/9 chain workloads through both plan() paths."""
    workload = chain_workload(num_views, nondistinguished=nondistinguished)

    def fast_path():
        return plan(
            workload.query, workload.views, context=PlannerContext()
        )

    fast = benchmark(fast_path)
    started = time.perf_counter()
    general = plan(
        workload.query,
        workload.views,
        context=PlannerContext(),
        acyclic_fast_path=False,
    )
    general_s = time.perf_counter() - started
    assert fast.rewritings == general.rewritings  # the whole point
    stats = fast.details.stats
    benchmark.extra_info["bit_identical"] = True
    benchmark.extra_info["acyclic_fast_path"] = stats.acyclic_fast_path
    benchmark.extra_info["join_tree_depth"] = stats.join_tree_depth
    benchmark.extra_info["fast_path_searches"] = fast.stats.fast_path_searches
    benchmark.extra_info["hom_nodes_fast"] = fast.stats.hom_nodes
    benchmark.extra_info["hom_nodes_general"] = general.stats.hom_nodes
    benchmark.extra_info["general_path_ms"] = round(general_s * 1000, 3)
    benchmark.extra_info["rewritings"] = len(fast.rewritings)
