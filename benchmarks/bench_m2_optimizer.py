"""Cost model M2: the subset dynamic program vs. brute-force ordering.

Section 5 prices plans by intermediate-relation sizes; since ``IR_i``
depends only on the *set* of joined subgoals, the optimizer's DP explores
``2^n`` subsets instead of ``n!`` orders.  This benchmark quantifies that
and also times the filtering-subgoal pass on the car-loc-part example.
"""

import random
from itertools import permutations

import pytest

from repro.core import core_cover_star
from repro.cost import (
    PhysicalPlan,
    StatisticsCatalog,
    cost_m2,
    execute_plan,
    improve_with_filters,
    optimal_plan_m2,
    optimal_plan_m2_estimated,
)
from repro.datalog import parse_query
from repro.engine import materialize_views
from repro.experiments.paper_examples import car_loc_part, car_loc_part_database
from repro.workload import uniform_database


@pytest.fixture(scope="module")
def chain_instance():
    rng = random.Random(11)
    rewriting = parse_query(
        "q(A, F) :- v1(A, B), v2(B, C), v3(C, D), v4(D, E), v5(E, F)"
    )
    database = uniform_database(
        {f"v{i}": 2 for i in range(1, 6)}, 80, 12, rng
    )
    return rewriting, database


def brute_force(rewriting, database):
    best = None
    for order in permutations(range(len(rewriting.body))):
        execution = execute_plan(
            PhysicalPlan.from_rewriting(rewriting, order), database
        )
        cost = cost_m2(execution)
        if best is None or cost < best:
            best = cost
    return best


class TestOrderSearch:
    def test_dynamic_program(self, benchmark, chain_instance):
        rewriting, database = chain_instance
        optimized = benchmark(optimal_plan_m2, rewriting, database)
        benchmark.extra_info["m2_cost"] = optimized.cost

    def test_brute_force(self, benchmark, chain_instance):
        rewriting, database = chain_instance
        cost = benchmark.pedantic(
            brute_force, args=chain_instance, rounds=1, iterations=1
        )
        benchmark.extra_info["m2_cost"] = cost

    def test_dp_matches_brute_force(self, chain_instance):
        rewriting, database = chain_instance
        assert optimal_plan_m2(rewriting, database).cost == brute_force(
            rewriting, database
        )

    def test_estimated_dp(self, benchmark, chain_instance):
        rewriting, database = chain_instance
        catalog = StatisticsCatalog.from_database(database)
        optimized = benchmark(optimal_plan_m2_estimated, rewriting, catalog)
        benchmark.extra_info["estimated_cost"] = optimized.cost


class TestFilteringSubgoals:
    def test_improve_with_filters(self, benchmark):
        clp = car_loc_part()
        vdb = materialize_views(clp.views, car_loc_part_database())
        result = core_cover_star(clp.query, clp.views)
        p2 = next(r for r in result.rewritings if len(r.body) == 2)
        improved = benchmark(
            improve_with_filters, p2, result.filter_candidates, vdb
        )
        baseline = optimal_plan_m2(p2, vdb)
        benchmark.extra_info["baseline_cost"] = baseline.cost
        benchmark.extra_info["improved_cost"] = improved.cost
        assert improved.cost <= baseline.cost
