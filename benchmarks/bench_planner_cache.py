"""Planner-cache ablation: CoreCover with memoization on vs. off.

Both variants run the Figure 6 star workload through the same
``PlannerContext`` API; the only difference is ``caching``.  The
``extra_info`` deltas (homomorphism searches, tuple-core searches, cache
hit rate) quantify how much of the pipeline's work the memoization layer
absorbs on catalogs with structurally repeated view definitions.
"""

import pytest

from repro.core import core_cover_impl
from repro.planner import PlannerContext

from conftest import attach_corecover_stats, star_workload

CACHE_VIEW_COUNTS = (250, 500)


@pytest.mark.parametrize("num_views", CACHE_VIEW_COUNTS)
def test_corecover_caching_enabled(benchmark, num_views):
    workload = star_workload(num_views)

    def run():
        return core_cover_impl(
            workload.query, workload.views, context=PlannerContext(caching=True)
        )

    result = benchmark(run)
    assert result.has_rewriting
    assert result.stats.cache_hits > 0
    attach_corecover_stats(benchmark, result)


@pytest.mark.parametrize("num_views", CACHE_VIEW_COUNTS)
def test_corecover_caching_disabled(benchmark, num_views):
    workload = star_workload(num_views)

    def run():
        return core_cover_impl(
            workload.query,
            workload.views,
            context=PlannerContext(caching=False),
        )

    result = benchmark(run)
    assert result.has_rewriting
    assert result.stats.cache_hits == 0
    attach_corecover_stats(benchmark, result)
