"""Inverse-rules baseline: certain answers vs. rewriting execution.

Compares two ways of answering a query from a view instance under the
closed world: (a) pick a CoreCover rewriting and execute it; (b) run the
inverse-rules algorithm (Skolemize, evaluate, filter).  Both return the
same answers when an equivalent rewriting exists; the benchmark records
where the time goes (the Skolemization phase itself is cheap — the
evaluation over the reconstructed base dominates).
"""

import random

import pytest

from repro.baselines import certain_answers, derive_base_facts, invert_views
from repro.core import core_cover
from repro.engine import evaluate, materialize_views
from repro.workload import (
    WorkloadConfig,
    generate_workload,
    schema_of,
    uniform_database,
)


@pytest.fixture(scope="module")
def setup():
    workload = generate_workload(
        WorkloadConfig(
            shape="star",
            num_relations=10,
            query_subgoals=5,
            num_views=30,
            seed=21,
        )
    )
    schema = schema_of(workload.query, *workload.views.definitions())
    base = uniform_database(schema, 200, 15, random.Random(21))
    view_db = materialize_views(workload.views, base)
    rewriting = core_cover(workload.query, workload.views).rewritings[0]
    expected = evaluate(workload.query, base)
    return workload, view_db, rewriting, expected


def test_answer_via_rewriting(benchmark, setup):
    workload, view_db, rewriting, expected = setup
    answer = benchmark(evaluate, rewriting, view_db)
    assert answer == expected


def test_answer_via_inverse_rules(benchmark, setup):
    workload, view_db, _rewriting, expected = setup
    answer = benchmark(
        certain_answers, workload.query, workload.views, view_db
    )
    assert answer == expected


def test_skolemization_phase(benchmark, setup):
    workload, view_db, _rewriting, _expected = setup
    rules = invert_views(workload.views)
    base = benchmark(derive_base_facts, rules, view_db)
    assert base.total_tuples() > 0
