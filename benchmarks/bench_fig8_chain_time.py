"""Figure 8: CoreCover time to generate all GMRs for chain queries.

(a) all variables distinguished (paper: < 2 s at 1000 views);
(b) one nondistinguished variable (paper: < 1.4 s at 1000 views).
"""

import pytest

from repro.core import core_cover

from conftest import VIEW_COUNTS, attach_corecover_stats, chain_workload


@pytest.mark.parametrize("num_views", VIEW_COUNTS)
def test_fig8a_chain_all_distinguished(benchmark, num_views):
    workload = chain_workload(num_views, nondistinguished=0)
    result = benchmark(core_cover, workload.query, workload.views)
    assert result.has_rewriting
    attach_corecover_stats(benchmark, result)


@pytest.mark.parametrize("num_views", VIEW_COUNTS)
def test_fig8b_chain_one_nondistinguished(benchmark, num_views):
    workload = chain_workload(num_views, nondistinguished=1)
    result = benchmark(core_cover, workload.query, workload.views)
    assert result.has_rewriting
    attach_corecover_stats(benchmark, result)
