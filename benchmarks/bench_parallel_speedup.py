"""Parallel planning speedup and the phase-level cost breakdown.

Times the same batch of chain-workload plan tasks through
:func:`repro.parallel.plan_map` at 4, 2, and 1 workers — **in that
order**, so the forked pools never inherit a parent process whose warm
context pool was populated by the serial run — and reports
``parallel_speedup_x2`` / ``parallel_speedup_x4`` plus the merged
``phase_fraction_*`` breakdown of where planning time actually goes.

The 2x-at-4-workers floor is only asserted on machines with at least 4
CPUs; on smaller containers the numbers are still recorded in
``BENCH_corecover.json`` (fork + pickle overhead usually makes them < 1
there, which is exactly what docs/performance.md tells users to expect).
"""

import os
import time

from repro.parallel import PlanTask, plan_map
from repro.profiling import PhaseProfile
from repro.workload import WorkloadConfig, workload_series

from conftest import CHAIN_RELATIONS

NUM_VIEWS = 500
NUM_TASKS = 10


def _tasks():
    template = WorkloadConfig(
        shape="chain",
        num_relations=CHAIN_RELATIONS,
        num_views=NUM_VIEWS,
        nondistinguished=0,
        seed=23,
    )
    return [
        PlanTask(query=workload.query, views=workload.views, caching=True)
        for workload in workload_series(template, NUM_TASKS)
    ]


def _wall(tasks, workers):
    started = time.perf_counter()
    results = plan_map(tasks, workers=workers)
    elapsed = time.perf_counter() - started
    assert len(results) == len(tasks)
    return elapsed, results


def test_parallel_speedup(benchmark):
    tasks = _tasks()

    # Parallel walls first: the pools fork from a parent that has not
    # planned yet, so their context pools start cold like the serial run.
    wall_x4, results = _wall(tasks, 4)
    wall_x2, _ = _wall(tasks, 2)
    wall_serial, serial_results = _wall(tasks, 1)

    speedup_x2 = wall_serial / wall_x2 if wall_x2 > 0 else 0.0
    speedup_x4 = wall_serial / wall_x4 if wall_x4 > 0 else 0.0
    benchmark.extra_info["num_tasks"] = NUM_TASKS
    benchmark.extra_info["num_views"] = NUM_VIEWS
    benchmark.extra_info["cpu_count"] = os.cpu_count()
    benchmark.extra_info["serial_wall_seconds"] = wall_serial
    benchmark.extra_info["x2_wall_seconds"] = wall_x2
    benchmark.extra_info["x4_wall_seconds"] = wall_x4
    benchmark.extra_info["parallel_speedup_x2"] = speedup_x2
    benchmark.extra_info["parallel_speedup_x4"] = speedup_x4

    # Where the time goes: merge every task's phase profile into one
    # breakdown (the CoreCoverStats already carry canonical phases).
    merged = PhaseProfile(serial_results[0].stats.phase_seconds)
    for result in serial_results[1:]:
        merged = merged.merged(PhaseProfile(result.stats.phase_seconds))
    for name, fraction in merged.fractions().items():
        benchmark.extra_info[f"phase_fraction_{name}"] = fraction

    # Register a timing series for the JSON dump: one serial task.
    single = tasks[:1]
    benchmark(lambda: plan_map(single, workers=1))

    if (os.cpu_count() or 1) >= 4:
        assert speedup_x4 >= 2.0, (
            f"4-worker pool only {speedup_x4:.2f}x over serial "
            f"({wall_serial:.2f}s -> {wall_x4:.2f}s) on "
            f"{os.cpu_count()} CPUs"
        )
