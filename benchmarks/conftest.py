"""Shared fixtures for the benchmark suite.

Each ``bench_fig*`` module regenerates one figure of the paper's Section 7
(the benchmark's timing is the figure's y-axis where the figure plots
time; class counts and costs are attached as ``extra_info`` so the
benchmark report doubles as the figure's data series).

Workloads are generated once per parameterization — the benchmarks time
only the algorithm under study, never the generator.
"""

import pytest

from repro.workload import WorkloadConfig, generate_workload

#: Abbreviated view-count axis (the paper sweeps 100..1000; EXPERIMENTS.md
#: records a full-axis run via ``python -m repro.experiments.figures``).
VIEW_COUNTS = (100, 250, 500, 1000)

STAR_RELATIONS = 13
CHAIN_RELATIONS = 40


def star_workload(num_views, nondistinguished=0, seed=17):
    return generate_workload(
        WorkloadConfig(
            shape="star",
            num_relations=STAR_RELATIONS,
            num_views=num_views,
            nondistinguished=nondistinguished,
            seed=seed,
        )
    )


def chain_workload(num_views, nondistinguished=0, seed=23):
    return generate_workload(
        WorkloadConfig(
            shape="chain",
            num_relations=CHAIN_RELATIONS,
            num_views=num_views,
            nondistinguished=nondistinguished,
            seed=seed,
        )
    )


def attach_corecover_stats(benchmark, result):
    """Record the Figure 7/9 series on the benchmark report."""
    stats = result.stats
    benchmark.extra_info["view_classes"] = stats.view_classes
    benchmark.extra_info["total_view_tuples"] = stats.total_view_tuples
    benchmark.extra_info["view_tuple_classes"] = stats.view_tuple_classes
    benchmark.extra_info["maximal_tuple_classes"] = stats.maximal_tuple_classes
    benchmark.extra_info["gmr_count"] = len(result.rewritings)
    benchmark.extra_info["gmr_size"] = result.minimum_subgoals()
