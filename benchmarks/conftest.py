"""Shared fixtures for the benchmark suite.

Each ``bench_fig*`` module regenerates one figure of the paper's Section 7
(the benchmark's timing is the figure's y-axis where the figure plots
time; class counts and costs are attached as ``extra_info`` so the
benchmark report doubles as the figure's data series).

Workloads are generated once per parameterization — the benchmarks time
only the algorithm under study, never the generator.

At the end of the session every benchmark's timings and ``extra_info``
(including planner cache hit rates) are dumped to a machine-readable
``BENCH_corecover.json`` at the repository root, so CI can archive the
figure series without parsing pytest-benchmark's own storage format.
"""

import json

import pytest

from repro.workload import WorkloadConfig, generate_workload

#: Abbreviated view-count axis (the paper sweeps 100..1000; EXPERIMENTS.md
#: records a full-axis run via ``python -m repro.experiments.figures``).
VIEW_COUNTS = (100, 250, 500, 1000)

STAR_RELATIONS = 13
CHAIN_RELATIONS = 40


def star_workload(num_views, nondistinguished=0, seed=17):
    return generate_workload(
        WorkloadConfig(
            shape="star",
            num_relations=STAR_RELATIONS,
            num_views=num_views,
            nondistinguished=nondistinguished,
            seed=seed,
        )
    )


def chain_workload(num_views, nondistinguished=0, seed=23):
    return generate_workload(
        WorkloadConfig(
            shape="chain",
            num_relations=CHAIN_RELATIONS,
            num_views=num_views,
            nondistinguished=nondistinguished,
            seed=seed,
        )
    )


#: Benchmark fixtures that attached stats this session.  pytest-benchmark
#: drops fixtures from its own session list under ``--benchmark-disable``;
#: tracking them here keeps the JSON dump working in smoke runs too.
_INSTRUMENTED = []


@pytest.fixture
def benchmark(benchmark):
    """Override pytest-benchmark's fixture to register every benchmark.

    Previously only benchmarks that routed through
    :func:`attach_corecover_stats` survived ``--benchmark-disable`` into
    the JSON dump; wrapping the fixture itself means *all* entries (the
    service/budget/lint overhead suites, the parallel-speedup bench)
    accumulate into ``BENCH_corecover.json`` regardless of mode.
    """
    if benchmark not in _INSTRUMENTED:
        _INSTRUMENTED.append(benchmark)
    return benchmark


def attach_corecover_stats(benchmark, result):
    """Record the Figure 7/9 series on the benchmark report."""
    if benchmark not in _INSTRUMENTED:
        _INSTRUMENTED.append(benchmark)
    stats = result.stats
    benchmark.extra_info["view_classes"] = stats.view_classes
    benchmark.extra_info["total_view_tuples"] = stats.total_view_tuples
    benchmark.extra_info["view_tuple_classes"] = stats.view_tuple_classes
    benchmark.extra_info["maximal_tuple_classes"] = stats.maximal_tuple_classes
    benchmark.extra_info["gmr_count"] = len(result.rewritings)
    benchmark.extra_info["gmr_size"] = result.minimum_subgoals()
    benchmark.extra_info["touched_views"] = stats.touched_views
    benchmark.extra_info["touched_views_ratio"] = stats.touched_views_ratio
    benchmark.extra_info["caching_enabled"] = stats.caching_enabled
    benchmark.extra_info["hom_searches"] = stats.hom_searches
    benchmark.extra_info["core_searches"] = stats.core_searches
    benchmark.extra_info["cache_hits"] = stats.cache_hits
    benchmark.extra_info["cache_misses"] = stats.cache_misses
    benchmark.extra_info["cache_hit_rate"] = stats.cache_hit_rate


def _benchmark_rows(session):
    """One JSON-ready row per benchmark that ran this session."""
    bench_session = getattr(session.config, "_benchmarksession", None)
    benches = list(bench_session.benchmarks) if bench_session else []
    # With benchmarking enabled the session list already holds one entry
    # per test; the instrumented fixtures only fill the gap that
    # --benchmark-disable leaves.  Dedup by name, not identity — the
    # fixture and its session record are distinct objects.
    names = {bench.name for bench in benches}
    benches.extend(b for b in _INSTRUMENTED if b.name not in names)
    rows = []
    for bench in benches:
        row = {
            "name": bench.name,
            "group": bench.group,
            "params": bench.params,
            "extra_info": dict(bench.extra_info),
        }
        stats = getattr(bench, "stats", None)
        if stats is not None:  # absent under --benchmark-disable
            # Session records nest the numbers one level deeper
            # (metadata.stats.stats) than the fixture objects do.
            timings = getattr(stats, "stats", stats)
            row["timing_seconds"] = {
                "min": timings.min,
                "mean": timings.mean,
                "max": timings.max,
                "stddev": timings.stddev,
                "rounds": getattr(timings, "rounds", None),
            }
        rows.append(row)
    return rows


def pytest_sessionfinish(session, exitstatus):
    """Dump per-figure timings and extra_info to BENCH_corecover.json."""
    rows = _benchmark_rows(session)
    if not rows:
        return
    payload = {
        "suite": "corecover",
        "view_counts": list(VIEW_COUNTS),
        "benchmarks": rows,
    }
    target = session.config.rootpath / "BENCH_corecover.json"
    target.write_text(json.dumps(payload, indent=2, default=str) + "\n")
