"""Example 6.1 / Section 6: the attribute-dropping heuristic under M3.

Reproduces the paper's cost comparison on the exact Figure 5 instance
(supplementary-relation plans: P1 costs 10, P2 costs 13; the renaming
heuristic recovers cost 10 for P2) and scales the same phenomenon to a
larger random instance.
"""

import random

import pytest

from repro.cost import (
    cost_m3,
    execute_plan,
    heuristic_plan,
    optimal_plan_m3,
    supplementary_plan,
)
from repro.datalog import parse_query
from repro.engine import Database, materialize_views
from repro.experiments.paper_examples import example_61
from repro.views import ViewCatalog


@pytest.fixture(scope="module")
def ex61():
    return example_61()


@pytest.fixture(scope="module")
def vdb61(ex61):
    return materialize_views(ex61.views, ex61.base)


class TestPaperInstance:
    def test_supplementary_p1(self, benchmark, ex61, vdb61):
        execution = benchmark(
            lambda: execute_plan(supplementary_plan(ex61.p1, [0, 1]), vdb61)
        )
        assert cost_m3(execution) == 10
        benchmark.extra_info["m3_cost"] = cost_m3(execution)

    def test_supplementary_p2(self, benchmark, ex61, vdb61):
        execution = benchmark(
            lambda: execute_plan(supplementary_plan(ex61.p2, [0, 1]), vdb61)
        )
        assert cost_m3(execution) == 13
        benchmark.extra_info["m3_cost"] = cost_m3(execution)

    def test_heuristic_p2(self, benchmark, ex61, vdb61):
        execution = benchmark(
            lambda: execute_plan(
                heuristic_plan(ex61.p2, ex61.query, ex61.views, [0, 1]), vdb61
            )
        )
        assert cost_m3(execution) == 10
        benchmark.extra_info["m3_cost"] = cost_m3(execution)


class TestScaledInstance:
    """The Example 6.1 schema grown to hundreds of tuples."""

    @pytest.fixture(scope="class")
    def scaled(self):
        rng = random.Random(5)
        base = Database()
        base.add_fact("r", (1, 1))
        for node in range(2, 200):
            if node % 2 == 0:
                base.add_fact("s", (node, node))
            base.add_fact("t", (rng.randrange(1, 200), node))
        query = parse_query("q(A) :- r(A, A), t(A, B), s(B, B)")
        views = ViewCatalog(
            [
                "v1(A, B) :- r(A, A), s(B, B)",
                "v2(A, B) :- t(A, B), s(B, B)",
            ]
        )
        p2 = parse_query("q(A) :- v1(A, B), v2(A, B)")
        return query, views, p2, materialize_views(views, base)

    def test_supplementary_optimal(self, benchmark, scaled):
        query, views, p2, vdb = scaled
        optimized = benchmark(
            optimal_plan_m3, p2, query, views, vdb, "supplementary"
        )
        benchmark.extra_info["m3_cost"] = optimized.cost

    def test_heuristic_optimal(self, benchmark, scaled):
        query, views, p2, vdb = scaled
        optimized = benchmark(
            optimal_plan_m3, p2, query, views, vdb, "heuristic"
        )
        benchmark.extra_info["m3_cost"] = optimized.cost

    def test_heuristic_no_worse(self, scaled):
        query, views, p2, vdb = scaled
        smart = optimal_plan_m3(p2, query, views, vdb, "heuristic")
        plain = optimal_plan_m3(p2, query, views, vdb, "supplementary")
        assert smart.cost <= plain.cost
