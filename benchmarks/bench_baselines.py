"""Baseline comparison: CoreCover vs. naive search vs. MiniCon vs. Bucket.

Backs the Section 4.3 discussion (and Example 4.2): CoreCover reaches the
GMR directly through tuple-cores, the naive Theorem 3.1 search enumerates
view-tuple combinations, MiniCon partitions with minimal MCDs, and the
bucket algorithm wades through a Cartesian product.
"""

import pytest

from repro.baselines import bucket_algorithm, minicon
from repro.core import core_cover, naive_gmr_search
from repro.experiments.paper_examples import car_loc_part, example_42

from conftest import star_workload


@pytest.fixture(scope="module")
def clp():
    return car_loc_part()


@pytest.fixture(scope="module")
def ex42():
    return example_42(4)


class TestCarLocPart:
    def test_corecover(self, benchmark, clp):
        result = benchmark(core_cover, clp.query, clp.views)
        benchmark.extra_info["min_subgoals"] = result.minimum_subgoals()

    def test_naive_search(self, benchmark, clp):
        rewritings = benchmark(naive_gmr_search, clp.query, clp.views)
        benchmark.extra_info["min_subgoals"] = min(
            len(r.body) for r in rewritings
        )

    def test_minicon(self, benchmark, clp):
        result = benchmark(minicon, clp.query, clp.views)
        benchmark.extra_info["min_subgoals"] = min(
            len(r.body) for r in result.contained_rewritings
        )

    def test_bucket(self, benchmark, clp):
        result = benchmark(bucket_algorithm, clp.query, clp.views)
        benchmark.extra_info["combinations"] = result.combinations_tried
        benchmark.extra_info["min_subgoals"] = min(
            len(r.body) for r in result.equivalent_rewritings
        )


class TestExample42:
    def test_corecover(self, benchmark, ex42):
        result = benchmark(core_cover, ex42.query, ex42.views)
        assert result.minimum_subgoals() == 1

    def test_minicon(self, benchmark, ex42):
        result = benchmark(minicon, ex42.query, ex42.views, False, 50)
        # MiniCon's combinations include redundant multi-literal rewritings.
        benchmark.extra_info["rewritings"] = len(result.contained_rewritings)


class TestScaling:
    @pytest.mark.parametrize("num_views", (50, 150))
    def test_corecover_scales(self, benchmark, num_views):
        workload = star_workload(num_views)
        result = benchmark(core_cover, workload.query, workload.views)
        assert result.has_rewriting

    def test_bucket_on_small_workload(self, benchmark):
        workload = star_workload(30)
        result = benchmark.pedantic(
            bucket_algorithm,
            args=(workload.query, workload.views),
            kwargs={"max_combinations": 20_000},
            rounds=1,
            iterations=1,
        )
        benchmark.extra_info["combinations"] = result.combinations_tried
