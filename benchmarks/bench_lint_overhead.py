"""Overhead of preflight static analysis on top of planning.

``plan(..., preflight=True)`` runs the full rule set (including the
semantic rules that minimize the query and build its canonical
database) before the backend.  Because preflight shares the planner's
``PlannerContext``, that work warms the containment caches the backend
then hits, so the marginal cost should be small.  This benchmark times
plain planning against preflighted planning on the Figure 6 star
workload and the car-loc-part example; the ratio lands in
``BENCH_corecover.json`` as ``extra_info["lint_overhead_ratio"]``.
"""

import time

import pytest

from repro import plan
from repro.experiments import paper_examples

from conftest import attach_corecover_stats, star_workload

NUM_VIEWS = 100


def _best_of(callable_, repeats=3):
    best = float("inf")
    for _ in range(repeats):
        started = time.perf_counter()
        callable_()
        best = min(best, time.perf_counter() - started)
    return best


def test_lint_preflight_overhead(benchmark):
    workload = star_workload(NUM_VIEWS, nondistinguished=0)

    result = benchmark(
        plan, workload.query, workload.views, preflight=True
    )
    assert result.has_rewriting
    assert result.analysis is not None and result.analysis.ok

    plain = _best_of(lambda: plan(workload.query, workload.views))
    checked = _best_of(
        lambda: plan(workload.query, workload.views, preflight=True)
    )
    ratio = checked / plain if plain > 0 else 1.0
    benchmark.extra_info["lint_overhead_ratio"] = ratio
    benchmark.extra_info["plain_seconds"] = plain
    benchmark.extra_info["preflight_seconds"] = checked
    attach_corecover_stats(benchmark, result.details)
    # Preflight re-runs containment work the backend would do anyway
    # (and warms its caches); allow generous slack for CI timer noise.
    assert ratio <= 3.0, (
        f"preflight costs {ratio - 1:.0%} on the star workload"
    )


def test_lint_overhead_car_loc_part(benchmark):
    example = paper_examples.car_loc_part()

    result = benchmark(plan, example.query, example.views, preflight=True)
    assert result.has_rewriting
    # The catalog's duplicate view v5 is reported but does not block.
    assert any(d.code == "R101" for d in result.diagnostics)

    plain = _best_of(lambda: plan(example.query, example.views))
    checked = _best_of(
        lambda: plan(example.query, example.views, preflight=True)
    )
    benchmark.extra_info["lint_overhead_ratio"] = (
        checked / plain if plain > 0 else 1.0
    )
    attach_corecover_stats(benchmark, result.details)
