"""Ablation: the Section 5.2 equivalence-class grouping.

The paper attributes CoreCover's scalability to processing only one
representative per view class and per view-tuple class.  This benchmark
runs CoreCover with grouping on and off on the same workloads; the
grouped variant should scale much better in the number of views.
"""

import pytest

from repro.core import core_cover

from conftest import attach_corecover_stats, star_workload

ABLATION_VIEWS = (100, 300)


@pytest.mark.parametrize("num_views", ABLATION_VIEWS)
def test_grouped(benchmark, num_views):
    workload = star_workload(num_views)
    result = benchmark(
        core_cover, workload.query, workload.views,
    )
    attach_corecover_stats(benchmark, result)


@pytest.mark.parametrize("num_views", ABLATION_VIEWS)
def test_ungrouped(benchmark, num_views):
    workload = star_workload(num_views)
    result = benchmark(
        core_cover,
        workload.query,
        workload.views,
        False,  # group_views
        False,  # group_tuples
    )
    benchmark.extra_info["gmr_count"] = len(result.rewritings)


def test_grouping_preserves_minimum(benchmark):
    """Correctness guard for the ablation: same GMR size either way."""
    workload = star_workload(150)

    def both():
        grouped = core_cover(workload.query, workload.views)
        ungrouped = core_cover(
            workload.query, workload.views, False, False
        )
        return grouped, ungrouped

    grouped, ungrouped = benchmark.pedantic(both, rounds=1, iterations=1)
    assert grouped.minimum_subgoals() == ungrouped.minimum_subgoals()
