"""Figure 7: equivalence-class counts for star queries.

(a) views collapse into equivalence classes that grow with a decreasing
slope; (b) view tuples grow while their coverage classes stay bounded.
The timed operation is the grouping machinery itself (the cost the paper
says "paid off later"); the class counts land in ``extra_info``.
"""

import pytest

from repro.containment import minimize
from repro.core import (
    group_cores_by_coverage,
    group_equivalent_views,
    tuple_cores,
    view_representatives,
    view_tuples,
)

from conftest import VIEW_COUNTS, star_workload


@pytest.mark.parametrize("num_views", VIEW_COUNTS)
def test_fig7a_view_equivalence_classes(benchmark, num_views):
    workload = star_workload(num_views)
    views = list(workload.views)
    classes = benchmark(group_equivalent_views, views)
    benchmark.extra_info["num_views"] = num_views
    benchmark.extra_info["view_classes"] = len(classes)
    assert 0 < len(classes) <= num_views


@pytest.mark.parametrize("num_views", VIEW_COUNTS)
def test_fig7b_view_tuple_classes(benchmark, num_views):
    workload = star_workload(num_views)
    minimized = minimize(workload.query)
    representatives = view_representatives(list(workload.views))

    def compute():
        tuples = view_tuples(minimized, representatives)
        cores = tuple_cores(minimized, tuples)
        return tuples, group_cores_by_coverage(cores)

    tuples, groups = benchmark(compute)
    maximal = sum(
        1
        for covered in groups
        if covered and not any(covered < other for other in groups)
    )
    benchmark.extra_info["total_view_tuples"] = len(tuples)
    benchmark.extra_info["view_tuple_classes"] = len(groups)
    benchmark.extra_info["maximal_tuple_classes"] = maximal
    # Figure 7(b)'s claim: tuples grow with views, classes stay bounded by
    # the coverage-subset space (independent of the number of views).
    assert len(groups) <= 2 ** len(minimized.body)
