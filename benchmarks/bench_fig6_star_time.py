"""Figure 6: CoreCover time to generate all GMRs for star queries.

(a) all variables distinguished; (b) one nondistinguished variable.
The paper reports times bounded by ~1 second on 2001 hardware, roughly
flat in the number of views; the benchmark's per-view-count timings are
the reproduced series.
"""

import pytest

from repro.core import core_cover

from conftest import VIEW_COUNTS, attach_corecover_stats, star_workload


@pytest.mark.parametrize("num_views", VIEW_COUNTS)
def test_fig6a_star_all_distinguished(benchmark, num_views):
    workload = star_workload(num_views, nondistinguished=0)
    result = benchmark(core_cover, workload.query, workload.views)
    assert result.has_rewriting
    attach_corecover_stats(benchmark, result)


@pytest.mark.parametrize("num_views", VIEW_COUNTS)
def test_fig6b_star_one_nondistinguished(benchmark, num_views):
    workload = star_workload(num_views, nondistinguished=1)
    result = benchmark(core_cover, workload.query, workload.views)
    assert result.has_rewriting
    attach_corecover_stats(benchmark, result)
