"""CI smoke driver for the planning daemon.

Boots ``repro serve run`` as a real subprocess with chaos injected
(worker kills mid-batch, admission stalls), fires 100 concurrent
requests at it, and holds the daemon to the robustness contract:

* every request receives a terminal structured response — served,
  degraded, failed with a worker-crash error, or shed with a retry
  hint; none may be silently dropped;
* SIGTERM then drains cleanly: exit code 0 and a final ``drained``
  event on stdout;
* the plan cache survives the drain — a follow-up daemon on the same
  cache directory must answer the workload with a warm hit.

A second phase smokes the durability contract: a daemon with a
``--state-dir`` is SIGKILLed mid-commit (``kill:journal_append``
chaos), and a clean restart must recover exactly the acknowledged
prefix of catalog operations — content roots equal to an uncrashed
in-memory oracle's — then serve a plan from the recovered catalog.

Run from the repository root::

    PYTHONPATH=src python benchmarks/serve_smoke.py

Exits 0 on success, 1 with a diagnostic summary on any violation.
"""

import json
import os
import signal
import subprocess
import sys
import tempfile
import threading
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.serve.client import ServeClient  # noqa: E402

QUERY = "q(X, Z) :- car(X, Y), loc(Y, Z)"
VIEWS = [
    "v1(X, Z) :- car(X, Y), loc(Y, Z)",
    "v2(X, Y) :- car(X, Y)",
    "v3(Y, Z) :- loc(Y, Z)",
]

TOTAL_REQUESTS = 100
CLIENTS = 10
TERMINAL_STATUSES = {"ok", "degraded", "failed", "error"}

CHAOS = [
    # Each worker incarnation SIGKILLs itself on its 10th dispatch:
    # several crashes land mid-batch and must surface as per-request
    # WorkerCrashError responses, never as lost requests.
    "kill:worker_dispatch:after=10:times=1",
    # The admission path stalls briefly a few times: intake slows but
    # no frame may be dropped.
    "stall:serve_admission:seconds=0.05:times=5",
]


def _fail(message, **details):
    print(json.dumps({"smoke": "FAIL", "error": message, **details}))
    return 1


def _boot_daemon(views_path, cache_dir, *, chaos=(), state_dir=None):
    argv = [
        sys.executable, "-m", "repro", "serve", "run",
        "--host", "127.0.0.1", "--port", "0",
        "--workers", "2",
    ]
    if views_path is not None:
        argv += ["--views", str(views_path)]
    if cache_dir is not None:
        argv += ["--cache", str(cache_dir)]
    if state_dir is not None:
        argv += ["--state-dir", str(state_dir)]
    for spec in chaos:
        argv += ["--chaos", spec]
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO_ROOT / "src")
    proc = subprocess.Popen(
        argv, env=env, cwd=REPO_ROOT,
        stdout=subprocess.PIPE, stderr=subprocess.PIPE, text=True,
    )
    ready_line = proc.stdout.readline()
    if not ready_line:
        proc.kill()
        raise RuntimeError(
            "daemon never became ready: " + proc.stderr.read()
        )
    ready = json.loads(ready_line)
    assert ready["event"] == "ready", ready
    return proc, ready["host"], ready["port"]


def _drained_event(stdout_text):
    for line in stdout_text.splitlines():
        line = line.strip()
        if not line:
            continue
        try:
            payload = json.loads(line)
        except ValueError:
            continue
        if payload.get("event") == "drained":
            return payload
    return None


def _client_worker(host, port, ids, responses, errors):
    try:
        client = ServeClient(host, port, timeout=120.0)
        try:
            batch = client.request_many(
                {"id": request_id, "query": QUERY} for request_id in ids
            )
            responses.extend(batch)
        finally:
            client.close()
    except Exception as exc:  # noqa: BLE001 - recorded, asserted below
        errors.append(f"{type(exc).__name__}: {exc}")


def run_smoke():
    tmp = Path(tempfile.mkdtemp(prefix="serve-smoke-"))
    views_path = tmp / "views.dl"
    views_path.write_text("\n".join(VIEWS) + "\n")
    cache_dir = tmp / "cache"

    proc, host, port = _boot_daemon(views_path, cache_dir, chaos=CHAOS)
    responses: list = []
    errors: list = []
    try:
        threads = []
        per_client = TOTAL_REQUESTS // CLIENTS
        for c in range(CLIENTS):
            ids = [f"c{c}-r{i}" for i in range(per_client)]
            thread = threading.Thread(
                target=_client_worker,
                args=(host, port, ids, responses, errors),
            )
            thread.start()
            threads.append(thread)
        for thread in threads:
            thread.join(timeout=180.0)
        if any(thread.is_alive() for thread in threads):
            return _fail("client threads hung — requests were dropped")
        if errors:
            return _fail("client connections failed", errors=errors)

        if len(responses) != TOTAL_REQUESTS:
            return _fail(
                "requests were silently dropped",
                expected=TOTAL_REQUESTS, received=len(responses),
            )
        statuses: dict = {}
        error_names: dict = {}
        for response in responses:
            status = response.get("status")
            statuses[status] = statuses.get(status, 0) + 1
            if status not in TERMINAL_STATUSES:
                return _fail(
                    "non-terminal response", response=response
                )
            if status in ("failed", "error"):
                name = (response.get("error") or {}).get("error", "?")
                error_names[name] = error_names.get(name, 0) + 1
        # Chaos produces crashes and sheds; anything else in the error
        # mix means requests are failing for the wrong reason.
        unexpected = set(error_names) - {
            "WorkerCrashError", "OverloadError", "ShuttingDownError"
        }
        if unexpected:
            return _fail(
                "unexpected error classes", errors=error_names
            )
        if statuses.get("ok", 0) + statuses.get("degraded", 0) == 0:
            return _fail("no request was actually served", statuses=statuses)

        # Clean drain on SIGTERM.
        proc.send_signal(signal.SIGTERM)
        try:
            stdout_rest, stderr_rest = proc.communicate(timeout=60.0)
        except subprocess.TimeoutExpired:
            proc.kill()
            return _fail("daemon did not drain within 60s of SIGTERM")
        if proc.returncode != 0:
            return _fail(
                "drain exited non-zero",
                returncode=proc.returncode, stderr=stderr_rest[-2000:],
            )
        drained = _drained_event(stdout_rest)
        if drained is None:
            return _fail("no drained event on stdout", stdout=stdout_rest)
        if not (drained.get("cache_entries") or 0) >= 1:
            return _fail("drain flushed no cache entries", drained=drained)
    finally:
        if proc.poll() is None:
            proc.kill()

    # The cache must be intact: a fresh daemon on the same directory
    # serves the workload warm.
    proc2, host2, port2 = _boot_daemon(views_path, cache_dir)
    try:
        client = ServeClient(host2, port2, timeout=60.0)
        try:
            warm = client.plan(QUERY, id="warm")
        finally:
            client.close()
        if warm.get("status") != "ok" or warm.get("cache") != "hit":
            return _fail("follow-up run was not warm", response=warm)
        proc2.send_signal(signal.SIGTERM)
        proc2.communicate(timeout=60.0)
        if proc2.returncode != 0:
            return _fail("warm daemon drain exited non-zero",
                         returncode=proc2.returncode)
    finally:
        if proc2.poll() is None:
            proc2.kill()

    print(json.dumps({
        "smoke": "PASS",
        "requests": TOTAL_REQUESTS,
        "statuses": statuses,
        "errors": error_names,
        "drain": drained,
        "warm_cache": warm["cache"],
    }))
    return 0


#: The durable-catalog mutation script the crash phase and its
#: in-memory oracle both run, in order.
CATALOG_OPS = [
    ("register", {"name": "t1", "views": VIEWS}),
    ("update", {"name": "t1", "add": ["w4(X, Y) :- car(X, Y)"]}),
    ("update", {"name": "t1", "add": ["w5(Y, Z) :- loc(Y, Z)"]}),
]


def _oracle_roots(count):
    """Catalog content roots after the first *count* operations."""
    from repro.serve.catalogs import CatalogRegistry

    oracle = CatalogRegistry()
    for action, kwargs in CATALOG_OPS[:count]:
        getattr(oracle, action)(**kwargs)
    return {
        name: oracle.get(name).content_root() for name in oracle.names()
    }


def run_crash_recovery_smoke():
    """SIGKILL mid-commit, then recover exactly the acked prefix."""
    tmp = Path(tempfile.mkdtemp(prefix="serve-crash-smoke-"))
    state_dir = tmp / "state"

    # kill:journal_append:after=3 SIGKILLs the daemon before the third
    # record's bytes reach the journal: op 3 must never be acked.
    proc, host, port = _boot_daemon(
        None, None, state_dir=state_dir,
        chaos=["kill:journal_append:after=3"],
    )
    acked = 0
    try:
        client = ServeClient(host, port, timeout=30.0)
        try:
            for index, (action, kwargs) in enumerate(CATALOG_OPS):
                try:
                    response = client.request(
                        {"id": f"op-{index}", "type": "catalog",
                         "action": action, **kwargs}
                    )
                except (ConnectionError, OSError):
                    break
                if response.get("status") != "ok":
                    break
                acked += 1
        finally:
            client.close()
        proc.wait(timeout=30.0)
    finally:
        if proc.poll() is None:
            proc.kill()
    if proc.returncode != -signal.SIGKILL:
        return _fail(
            "chaos daemon did not die by SIGKILL",
            returncode=proc.returncode,
        )
    if acked != 2:
        return _fail(
            "expected exactly 2 acknowledged catalog ops before the "
            "kill", acked=acked,
        )

    # A clean restart recovers the acked prefix — no more, no less.
    proc2, host2, port2 = _boot_daemon(None, None, state_dir=state_dir)
    try:
        client = ServeClient(host2, port2, timeout=30.0)
        try:
            stats = client.stats()
            health = client.healthz()
            probe = client.request(
                {"id": "probe", "query": QUERY, "catalog": "t1"}
            )
        finally:
            client.close()
        proc2.send_signal(signal.SIGTERM)
        try:
            _stdout_rest, stderr_rest = proc2.communicate(timeout=60.0)
        except subprocess.TimeoutExpired:
            proc2.kill()
            return _fail("recovered daemon did not drain after SIGTERM")
        if proc2.returncode != 0:
            return _fail(
                "recovered daemon drain exited non-zero",
                returncode=proc2.returncode, stderr=stderr_rest[-2000:],
            )
    finally:
        if proc2.poll() is None:
            proc2.kill()

    recovered = {
        name: entry.get("content_root")
        for name, entry in (stats.get("catalogs") or {}).items()
    }
    expected = _oracle_roots(acked)
    if recovered != expected:
        return _fail(
            "recovered catalogs do not match the acked-prefix oracle",
            recovered=recovered, expected=expected,
        )
    durability = stats.get("durability") or {}
    if durability.get("recovered_catalogs") != 1:
        return _fail(
            "daemon did not report the recovered catalog",
            durability=durability,
        )
    if health.get("quarantined_catalogs"):
        return _fail("recovery quarantined a catalog", healthz=health)
    if probe.get("status") != "ok":
        return _fail(
            "plan against the recovered catalog failed", response=probe
        )
    print(json.dumps({
        "smoke": "PASS",
        "phase": "crash-recovery",
        "acked_before_kill": acked,
        "recovered": recovered,
    }))
    return 0


if __name__ == "__main__":
    started = time.monotonic()
    code = run_smoke() or run_crash_recovery_smoke()
    print(
        f"serve_smoke: {'PASS' if code == 0 else 'FAIL'} "
        f"in {time.monotonic() - started:.1f}s",
        file=sys.stderr,
    )
    sys.exit(code)
