"""Figure 9: equivalence-class counts for chain queries.

(a) view equivalence classes grow with a decreasing slope;
(b) representative view tuples stay near-constant (< 10 maximal coverage
classes) while the raw view-tuple count grows.
"""

import pytest

from repro.containment import minimize
from repro.core import (
    group_cores_by_coverage,
    group_equivalent_views,
    tuple_cores,
    view_representatives,
    view_tuples,
)

from conftest import VIEW_COUNTS, chain_workload


@pytest.mark.parametrize("num_views", VIEW_COUNTS)
def test_fig9a_view_equivalence_classes(benchmark, num_views):
    workload = chain_workload(num_views)
    views = list(workload.views)
    classes = benchmark(group_equivalent_views, views)
    benchmark.extra_info["num_views"] = num_views
    benchmark.extra_info["view_classes"] = len(classes)
    assert 0 < len(classes) <= num_views


@pytest.mark.parametrize("num_views", VIEW_COUNTS)
def test_fig9b_view_tuple_classes(benchmark, num_views):
    workload = chain_workload(num_views)
    minimized = minimize(workload.query)
    representatives = view_representatives(list(workload.views))

    def compute():
        tuples = view_tuples(minimized, representatives)
        cores = tuple_cores(minimized, tuples)
        return tuples, group_cores_by_coverage(cores)

    tuples, groups = benchmark(compute)
    maximal = sum(
        1
        for covered in groups
        if covered and not any(covered < other for other in groups)
    )
    benchmark.extra_info["total_view_tuples"] = len(tuples)
    benchmark.extra_info["view_tuple_classes"] = len(groups)
    benchmark.extra_info["maximal_tuple_classes"] = maximal
    # The paper's "< 10 representative view tuples" claim for chains.
    assert maximal < 10
