"""Steady-state serve latency vs per-request cold ``repro batch``.

The daemon's whole reason to exist: a resident process with warm
planner-context pools answers a request for the price of a socket
round-trip plus planning, while the one-shot CLI pays interpreter
startup, imports, and catalog parsing *per request*.  This benchmark
prices both sides — warm p50/p99 over a live daemon, cold wall time of
a single-request ``repro batch`` subprocess — and asserts the headline
``serve_warm_speedup`` (cold / warm p50) is at least 2x.  All numbers
land in ``BENCH_corecover.json``.

The second test is the backpressure sanity check: a 2x-overload burst
against a small admission queue must shed *some* requests (bounded
queues working) but never all of them (admission not seized up), and
every request — served or shed — gets a terminal response.
"""

import json
import os
import statistics
import subprocess
import sys
import time
from pathlib import Path

from repro import ViewCatalog
from repro.parallel import SupervisorPolicy
from repro.parallel.worker import WorkerConfig
from repro.serve import AdmissionPolicy, ServeConfig
from repro.serve.testing import running_daemon
from repro.service import ServicePolicy
from repro.testing.faults import StallFault, inject

REPO_ROOT = Path(__file__).resolve().parent.parent

QUERY = "q(X, Z) :- car(X, Y), loc(Y, Z)"
VIEWS = [
    "v1(X, Z) :- car(X, Y), loc(Y, Z)",
    "v2(X, Y) :- car(X, Y)",
    "v3(Y, Z) :- loc(Y, Z)",
]

WARM_SAMPLES = 40


def _serve_config(**overrides):
    overrides.setdefault(
        "worker",
        WorkerConfig(policy=ServicePolicy(chain=("corecover",)), pool_size=4),
    )
    overrides.setdefault("supervisor", SupervisorPolicy(workers=2))
    return ServeConfig(**overrides)


def _percentile(samples, fraction):
    ordered = sorted(samples)
    index = min(len(ordered) - 1, round(fraction * (len(ordered) - 1)))
    return ordered[index]


def _cold_batch_seconds(tmp_path, repeats=3):
    """Wall seconds of one single-request ``repro batch`` subprocess."""
    views_path = tmp_path / "views.dl"
    views_path.write_text("\n".join(VIEWS) + "\n")
    requests_path = tmp_path / "one.ndjson"
    requests_path.write_text(json.dumps({"id": "cold", "query": QUERY}) + "\n")
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO_ROOT / "src")
    argv = [
        sys.executable, "-m", "repro", "batch", str(requests_path),
        "--views", str(views_path), "--chain", "corecover",
    ]
    best = float("inf")
    for _ in range(repeats):
        started = time.perf_counter()
        proc = subprocess.run(
            argv, env=env, cwd=REPO_ROOT, capture_output=True, text=True
        )
        elapsed = time.perf_counter() - started
        assert proc.returncode == 0, proc.stderr
        best = min(best, elapsed)
    return best


def test_serve_warm_latency_vs_cold_batch(benchmark, tmp_path):
    catalog = ViewCatalog(VIEWS)
    with running_daemon(_serve_config(), catalog=catalog) as handle:
        with handle.client(timeout=60.0) as client:
            for i in range(5):  # warm the context pools
                assert client.plan(QUERY, id=f"warm-{i}")["status"] == "ok"
            samples = []
            for i in range(WARM_SAMPLES):
                started = time.perf_counter()
                response = client.plan(QUERY, id=f"s-{i}")
                samples.append(time.perf_counter() - started)
                assert response["status"] == "ok"
            benchmark(lambda: client.plan(QUERY))

    warm_p50 = statistics.median(samples)
    warm_p99 = _percentile(samples, 0.99)
    cold = _cold_batch_seconds(tmp_path)
    speedup = cold / warm_p50 if warm_p50 > 0 else float("inf")

    benchmark.extra_info["serve_warm_p50_ms"] = round(warm_p50 * 1000, 3)
    benchmark.extra_info["serve_warm_p99_ms"] = round(warm_p99 * 1000, 3)
    benchmark.extra_info["batch_cold_ms"] = round(cold * 1000, 3)
    benchmark.extra_info["serve_warm_speedup"] = round(speedup, 2)
    benchmark.extra_info["warm_samples"] = WARM_SAMPLES

    assert speedup >= 2.0, (
        f"a warm daemon request (p50 {warm_p50 * 1000:.1f}ms) must beat a "
        f"cold per-request batch ({cold * 1000:.1f}ms) by >= 2x, "
        f"got {speedup:.2f}x"
    )


def test_shed_rate_under_2x_overload(benchmark, tmp_path):
    """Burst 2x the intake capacity; some requests shed, none vanish."""
    catalog = ViewCatalog(VIEWS)
    depth = 8
    config = _serve_config(
        admission=AdmissionPolicy(max_queue_depth=depth),
        supervisor=SupervisorPolicy(workers=1, heartbeat_grace=60.0),
    )
    # ~50ms of injected service time per request turns a burst into a
    # real backlog; capacity ~= queue depth + in-flight, so 2x that
    # must overflow the bounded queue.
    burst = 2 * (depth + 2)

    def _overload_round():
        with inject(StallFault("worker_dispatch", seconds=0.05, times=None)):
            with running_daemon(config, catalog=catalog) as handle:
                with handle.client(timeout=120.0) as client:
                    responses = client.request_many(
                        {"id": f"b-{i}", "query": QUERY} for i in range(burst)
                    )
        return responses

    responses = benchmark.pedantic(_overload_round, rounds=1, iterations=1)
    assert len(responses) == burst, "every burst request must be answered"
    shed = [
        r
        for r in responses
        if r.get("status") == "error"
        and r["error"]["error"] == "OverloadError"
    ]
    served = [r for r in responses if r.get("status") in ("ok", "degraded")]
    assert len(shed) + len(served) == burst, (
        "burst responses must be either served or shed with a "
        "structured OverloadError"
    )
    shed_rate = len(shed) / burst
    benchmark.extra_info["overload_burst"] = burst
    benchmark.extra_info["overload_queue_depth"] = depth
    benchmark.extra_info["overload_shed_rate"] = round(shed_rate, 3)
    assert 0 < shed_rate < 1, (
        f"2x overload should shed some but not all requests; "
        f"shed {len(shed)}/{burst}"
    )
    for response in shed:
        assert response["error"]["retry_after"] > 0
        assert response["error"]["exit_code"] == 78
