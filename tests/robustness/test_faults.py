"""Chaos tests: deterministic fault injection against the planner.

Each test drives :func:`repro.planner.plan` with a fault active at one
of the named injection points and asserts the anytime invariants hold:
the call returns within the deadline plus a bounded epsilon, never
leaks an unexpected exception in non-strict budgeted mode, and any
certified best-so-far rewriting verifies as genuinely equivalent.
"""

import time

import pytest

from repro import (
    ResourceBudget,
    ViewCatalog,
    is_equivalent_rewriting,
    parse_query,
    plan,
)
from repro.planner import PlanStatus
from repro.testing.faults import (
    INJECTION_POINTS,
    CancelFault,
    Fault,
    RaiseFault,
    StallFault,
    inject,
)

EPSILON = 0.25


@pytest.fixture()
def workload():
    query = parse_query("q(X, Y) :- a(X, Z), a(Z, Z), b(Z, Y)")
    views = ViewCatalog(
        [
            "v1(A, B) :- a(A, B), a(B, B)",
            "v2(C, D) :- a(C, E), b(C, D)",
            "v3(A) :- a(A, A)",
        ]
    )
    return query, views


#: The injection points a bare (unsupervised) plan() call fires; the
#: service-level points are exercised in tests/robustness/test_service_*.
PLANNER_POINTS = ("hom_search", "cache_lookup", "enumeration")


class TestObservability:
    def test_all_planner_injection_points_are_exercised(self, workload):
        """An empty plan only observes — and must see every point fire."""
        query, views = workload
        with inject() as active:
            plan(query, views, backend="corecover")
        assert active.exercised_points() == PLANNER_POINTS
        assert set(PLANNER_POINTS) <= set(INJECTION_POINTS)

    def test_firing_counts_replay_deterministically(self, workload):
        query, views = workload
        with inject() as first:
            plan(query, views, backend="corecover")
        with inject() as second:
            plan(query, views, backend="corecover")
        assert first.observed == second.observed

    def test_unknown_point_rejected(self):
        with pytest.raises(ValueError):
            Fault(point="not-a-point")

    def test_nesting_rejected(self):
        with inject():
            with pytest.raises(RuntimeError):
                with inject():
                    pass  # pragma: no cover


class TestStall:
    def test_stalled_hom_search_still_meets_deadline(self, workload):
        """A search that stalls must not stop the deadline from firing.

        The stall happens *inside* one hom search, so the return bound is
        deadline + one stall duration + epsilon (checkpoints cannot
        interrupt a stalled foreign call, only bound what follows it).
        """
        query, views = workload
        stall = 0.05
        deadline = 0.05
        started = time.monotonic()
        with inject(StallFault("hom_search", seconds=stall, times=None)):
            result = plan(
                query,
                views,
                backend="corecover",
                budget=ResourceBudget(deadline_seconds=deadline),
            )
        elapsed = time.monotonic() - started
        assert elapsed <= deadline + stall + EPSILON
        assert result.outcome.status is PlanStatus.BUDGET_EXHAUSTED
        assert result.outcome.exhausted_resource == "deadline"


class TestRaise:
    def test_cache_crash_degrades_to_failed_under_budget(self, workload):
        query, views = workload
        with inject(RaiseFault("cache_lookup", after=3)):
            result = plan(
                query,
                views,
                backend="corecover",
                budget=ResourceBudget(deadline_seconds=30.0),
            )
        outcome = result.outcome
        assert outcome.status is PlanStatus.FAILED
        assert isinstance(outcome.error, RuntimeError)
        assert result.rewritings == ()

    def test_cache_crash_raises_without_budget(self, workload):
        """Unbudgeted planning keeps fail-fast semantics."""
        query, views = workload
        with inject(RaiseFault("cache_lookup", after=3)):
            with pytest.raises(RuntimeError):
                plan(query, views, backend="corecover")

    def test_cache_crash_raises_in_strict_mode(self, workload):
        query, views = workload
        with inject(RaiseFault("cache_lookup", after=3)):
            with pytest.raises(RuntimeError):
                plan(
                    query,
                    views,
                    backend="corecover",
                    budget=ResourceBudget(deadline_seconds=30.0, strict=True),
                )


class TestCancel:
    # The corecover run on this workload fires "enumeration" 7 times,
    # so these cancel at the start, middle, and last step.
    @pytest.mark.parametrize("after", [1, 4, 7])
    def test_mid_enumeration_cancel_returns_anytime_outcome(
        self, workload, after
    ):
        """Cancellation at an arbitrary enumeration step must degrade
        to ``BUDGET_EXHAUSTED`` with only-genuine certified results."""
        query, views = workload
        with inject(CancelFault("enumeration", after=after)) as active:
            result = plan(query, views, backend="corecover")
        assert active.triggered, "the cancel fault never fired"
        outcome = result.outcome
        assert outcome.status is PlanStatus.BUDGET_EXHAUSTED
        assert outcome.exhausted_resource == "fault-injection"
        for rewriting in outcome.certified_rewritings:
            assert is_equivalent_rewriting(rewriting, query, views)

    def test_cancel_before_any_work_yields_no_rewritings(self, workload):
        query, views = workload
        with inject(CancelFault("enumeration", after=1)):
            result = plan(query, views, backend="corecover")
        assert result.outcome.status is PlanStatus.BUDGET_EXHAUSTED
        assert result.outcome.rewritings == ()
