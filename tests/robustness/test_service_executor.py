"""ResilientExecutor retry/backoff semantics, fully deterministic.

Every test injects the clock, sleeper, and jitter source, so the retry
schedule is asserted exactly — no real sleeping, no timing flakes.
"""

import pytest

from repro import (
    CircuitOpenError,
    ParseError,
    ResourceBudget,
    RetryExhaustedError,
    ViewCatalog,
    parse_query,
)
from repro.errors import BudgetExceededError, UnsupportedQueryError
from repro.planner.registry import (
    _BACKENDS,
    RewriterBackend,
    register_backend,
)
from repro.service import (
    BreakerPolicy,
    PlanCache,
    PlanRequest,
    ResilientExecutor,
    RetryPolicy,
    ServicePolicy,
)
from repro.testing.faults import RaiseFault, inject


@pytest.fixture()
def workload():
    query = parse_query("q(X, Y) :- a(X, Z), a(Z, Z), b(Z, Y)")
    views = ViewCatalog(
        [
            "v1(A, B) :- a(A, B), a(B, B)",
            "v2(C, D) :- a(C, E), b(C, D)",
            "v3(A) :- a(A, A)",
        ]
    )
    return query, views


def make_executor(fake_clock, *, chain=("corecover",), rng=1.0, **retry_kw):
    """A corecover-only executor with recorded (never real) sleeps."""
    sleeps: list[float] = []
    policy = ServicePolicy(
        chain=chain,
        retry=RetryPolicy(
            max_attempts=retry_kw.pop("max_attempts", 3),
            base_delay=retry_kw.pop("base_delay", 0.05),
            max_delay=retry_kw.pop("max_delay", 2.0),
        ),
    )
    executor = ResilientExecutor(
        policy,
        clock=fake_clock,
        sleep=sleeps.append,
        rng=lambda: rng,
    )
    return executor, sleeps


class TestHappyPath:
    def test_first_attempt_serves(self, workload, fake_clock):
        executor, sleeps = make_executor(fake_clock)
        outcome = executor.execute(PlanRequest(*workload, id="r1"))
        assert outcome.ok
        assert outcome.status == "ok"
        assert outcome.request_id == "r1"
        assert outcome.attempts == 1
        assert outcome.backend_used == "corecover"
        assert outcome.cache == "off"
        assert outcome.plan_status == "complete"
        assert not outcome.degraded
        assert outcome.failures == ()
        assert sleeps == []
        assert outcome.breakers == {"corecover": "closed"}
        texts = {str(r) for r in outcome.rewritings}
        assert "q(X, Y) :- v1(X, Z), v2(Z, Y)" in texts

    def test_raise_for_status_is_a_no_op_on_ok(self, workload, fake_clock):
        executor, _ = make_executor(fake_clock)
        executor.execute(PlanRequest(*workload)).raise_for_status()


class TestRetry:
    def test_transient_failures_retry_then_succeed(self, workload, fake_clock):
        executor, sleeps = make_executor(fake_clock)
        with inject(RaiseFault("service_retry", times=2)):
            outcome = executor.execute(PlanRequest(*workload))
        assert outcome.ok
        assert outcome.attempts == 3
        # Full jitter with rng=1.0 yields the full exponential delay.
        assert sleeps == pytest.approx([0.05, 0.1])

    def test_jitter_scales_the_delay(self, workload, fake_clock):
        executor, sleeps = make_executor(fake_clock, rng=0.5)
        with inject(RaiseFault("service_retry", times=2)):
            executor.execute(PlanRequest(*workload))
        assert sleeps == pytest.approx([0.025, 0.05])

    def test_exhaustion_fails_without_a_trailing_sleep(
        self, workload, fake_clock
    ):
        executor, sleeps = make_executor(fake_clock)
        with inject(RaiseFault("service_retry", times=None)):
            outcome = executor.execute(PlanRequest(*workload, id="r2"))
        assert outcome.status == "failed"
        assert outcome.attempts == 3
        assert isinstance(outcome.error, RetryExhaustedError)
        assert outcome.error.exit_code == 74
        # No backoff after the final attempt — it would be wasted time.
        assert len(sleeps) == 2
        [failure] = outcome.failures
        assert failure.backend == "corecover"
        assert failure.error == "RetryExhaustedError"
        assert failure.attempts == 3
        with pytest.raises(RetryExhaustedError):
            outcome.raise_for_status()

    def test_schedule_replays_identically(self, workload, fake_clock):
        runs = []
        for _ in range(2):
            executor, sleeps = make_executor(fake_clock)
            with inject(RaiseFault("service_retry", times=2)):
                executor.execute(PlanRequest(*workload))
            runs.append(tuple(sleeps))
        assert runs[0] == runs[1]


class TestErrorClassification:
    def test_input_errors_propagate_unretried(self, workload, fake_clock):
        """A bad request is the caller's bug — never retried or absorbed."""
        executor, sleeps = make_executor(fake_clock)
        fault = RaiseFault(
            "service_retry",
            make_exception=lambda: ParseError("malformed request"),
        )
        with inject(fault):
            with pytest.raises(ParseError):
                executor.execute(PlanRequest(*workload))
        assert sleeps == []

    def test_unsupported_query_is_permanent_per_backend(self, fake_clock):
        query = parse_query("q(X) :- a(X, Y), X < Y")
        views = ViewCatalog(["v1(A, B) :- a(A, B)"])
        executor, sleeps = make_executor(fake_clock)
        outcome = executor.execute(PlanRequest(query, views))
        assert outcome.status == "failed"
        [failure] = outcome.failures
        assert failure.error == "UnsupportedQueryError"
        assert failure.attempts == 1  # permanent: no retries burned
        assert sleeps == []

    def test_spent_deadline_aborts_before_any_attempt(
        self, workload, fake_clock
    ):
        executor, _ = make_executor(fake_clock)
        request = PlanRequest(
            *workload, budget=ResourceBudget(deadline_seconds=0.0)
        )
        outcome = executor.execute(request)
        assert outcome.status == "failed"
        assert outcome.attempts == 0
        [failure] = outcome.failures
        assert failure.error == "DeadlineExhausted"

    def test_backoff_never_sleeps_past_the_deadline(
        self, workload, fake_clock
    ):
        executor, sleeps = make_executor(
            fake_clock, base_delay=10.0, max_delay=10.0, max_attempts=2
        )
        request = PlanRequest(
            *workload, budget=ResourceBudget(deadline_seconds=1.0)
        )
        with inject(RaiseFault("service_retry", times=None)):
            outcome = executor.execute(request)
        assert outcome.status == "failed"
        assert all(delay <= 1.0 for delay in sleeps)


class TestBreakerIntegration:
    def test_open_breaker_short_circuits_to_circuit_open(
        self, workload, fake_clock
    ):
        policy = ServicePolicy(
            chain=("corecover",),
            retry=RetryPolicy(max_attempts=2, base_delay=0.01),
            breaker=BreakerPolicy(
                window=2,
                failure_threshold=1.0,
                min_calls=2,
                cooldown_seconds=9999.0,
            ),
        )
        executor = ResilientExecutor(
            policy, clock=fake_clock, sleep=lambda _d: None, rng=lambda: 1.0
        )
        with inject(RaiseFault("service_retry", times=None)):
            first = executor.execute(PlanRequest(*workload, id="a"))
            second = executor.execute(PlanRequest(*workload, id="b"))
        assert first.status == "failed"
        assert isinstance(first.error, RetryExhaustedError)
        assert executor.breaker_states() == {"corecover": "open"}
        # The second request never runs the backend at all.
        assert second.status == "failed"
        assert second.attempts == 0
        assert isinstance(second.error, CircuitOpenError)
        assert second.error.exit_code == 75
        [failure] = second.failures
        assert failure.skipped
        assert failure.error == "CircuitOpenError"

    def test_half_open_trial_recovers_the_backend(self, workload, fake_clock):
        policy = ServicePolicy(
            chain=("corecover",),
            retry=RetryPolicy(max_attempts=1, base_delay=0.01),
            breaker=BreakerPolicy(
                window=2,
                failure_threshold=1.0,
                min_calls=2,
                cooldown_seconds=5.0,
            ),
        )
        executor = ResilientExecutor(
            policy, clock=fake_clock, sleep=lambda _d: None, rng=lambda: 1.0
        )
        with inject(RaiseFault("service_retry", times=None)):
            executor.execute(PlanRequest(*workload))
            executor.execute(PlanRequest(*workload))
        assert executor.breaker_states() == {"corecover": "open"}
        fake_clock.advance(5.0)  # cooldown elapses; fault is gone
        outcome = executor.execute(PlanRequest(*workload))
        assert outcome.ok
        assert executor.breaker_states() == {"corecover": "closed"}

    def test_unresolved_trial_cannot_permanently_disable_the_backend(
        self, workload, fake_clock
    ):
        """Regression: a HALF_OPEN trial admitted by ``allow()`` that
        exits without a recordable outcome (here: the request deadline
        was already spent) used to leave the trial slot reserved
        forever, refusing every later request with a zero-second
        'cooldown'.  It must instead re-open with a fresh cooldown and
        stay recoverable."""
        policy = ServicePolicy(
            chain=("corecover",),
            retry=RetryPolicy(max_attempts=1, base_delay=0.01),
            breaker=BreakerPolicy(
                window=2,
                failure_threshold=1.0,
                min_calls=2,
                cooldown_seconds=5.0,
            ),
        )
        executor = ResilientExecutor(
            policy, clock=fake_clock, sleep=lambda _d: None, rng=lambda: 1.0
        )
        with inject(RaiseFault("service_retry", times=None)):
            executor.execute(PlanRequest(*workload))
            executor.execute(PlanRequest(*workload))
        assert executor.breaker_states() == {"corecover": "open"}
        fake_clock.advance(5.0)
        # The cooldown has elapsed, so this request is admitted as the
        # HALF_OPEN trial — but its own deadline is already spent, so
        # the backend never runs and no outcome can be recorded.
        dead = executor.execute(
            PlanRequest(*workload, budget=ResourceBudget(deadline_seconds=0.0))
        )
        assert dead.status == "failed"
        [failure] = dead.failures
        assert failure.error == "DeadlineExhausted"
        # The trial was cancelled, not leaked: OPEN with a real cooldown.
        assert executor.breaker_states() == {"corecover": "open"}
        assert executor.breaker("corecover").retry_after() == pytest.approx(5.0)
        # And the backend is still recoverable once the fault is gone.
        fake_clock.advance(5.0)
        outcome = executor.execute(PlanRequest(*workload))
        assert outcome.ok
        assert executor.breaker_states() == {"corecover": "closed"}

    def test_unsupported_queries_leave_the_breaker_untouched(
        self, workload, fake_clock
    ):
        """An out-of-scope query is a property of the request, not of
        backend health: no stream of them may open the breaker."""
        unsupported = parse_query("q(X) :- a(X, Y), X < Y")
        views = ViewCatalog(["v1(A, B) :- a(A, B)"])
        executor, _ = make_executor(fake_clock)
        for _ in range(10):
            outcome = executor.execute(PlanRequest(unsupported, views))
            assert outcome.status == "failed"
        assert executor.breaker_states() == {"corecover": "closed"}
        assert executor.breaker("corecover").failure_rate == 0.0
        # Supported queries still flow through the healthy backend.
        assert executor.execute(PlanRequest(*workload)).ok


class TestOutcomeSerialization:
    def test_failed_outcome_json_carries_the_structured_error(
        self, workload, fake_clock
    ):
        executor, _ = make_executor(fake_clock)
        with inject(RaiseFault("service_retry", times=None)):
            outcome = executor.execute(PlanRequest(*workload, id="j1"))
        payload = outcome.to_json()
        assert payload["id"] == "j1"
        assert payload["status"] == "failed"
        assert payload["backend_used"] is None
        assert payload["error"]["error"] == "RetryExhaustedError"
        assert payload["error"]["exit_code"] == 74
        assert payload["breakers"]["corecover"] in {"closed", "open"}
        assert payload["failures"][0]["backend"] == "corecover"

    def test_ok_outcome_json_shape(self, workload, fake_clock):
        executor, _ = make_executor(fake_clock)
        payload = executor.execute(PlanRequest(*workload, id="j2")).to_json()
        assert payload["status"] == "ok"
        assert payload["attempts"] == 1
        assert payload["cache"] == "off"
        assert payload["rewritings"] == ["q(X, Y) :- v1(X, Z), v2(Z, Y)"]
        assert "error" not in payload
        assert "failures" not in payload


def _exhausting_run(query, catalog, *, context, **options):
    """A backend that records one certified best-so-far rewriting and
    then dies on budget exhaustion — a deterministic anytime partial."""
    context.record_rewriting(
        parse_query("q(X, Y) :- v1(X, Z), v2(Z, Y)"), certified=True
    )
    raise BudgetExceededError("forced exhaustion", resource="hom_searches")


@pytest.fixture()
def exhausting_backend():
    backend = RewriterBackend(
        name="exhausting",
        description="test backend that always exhausts mid-search",
        run=_exhausting_run,
    )
    register_backend(backend, replace=True)
    yield backend
    _BACKENDS.pop("exhausting", None)


class TestCachePolicy:
    def make_cached_executor(self, fake_clock, cache, *, chain):
        policy = ServicePolicy(
            chain=chain,
            retry=RetryPolicy(max_attempts=1, base_delay=0.01),
        )
        return ResilientExecutor(
            policy,
            cache=cache,
            clock=fake_clock,
            sleep=lambda _d: None,
            rng=lambda: 1.0,
        )

    def test_budget_exhausted_partials_are_served_but_never_cached(
        self, workload, fake_clock, tmp_path, exhausting_backend
    ):
        """A best-so-far partial reflects *this* request's budget;
        caching it would silently starve a later, generously-budgeted
        request of the rewritings it could have had."""
        cache = PlanCache(tmp_path / "plans")
        executor = self.make_cached_executor(
            fake_clock, cache, chain=("exhausting",)
        )
        first = executor.execute(PlanRequest(*workload, id="p1"))
        assert first.ok
        assert first.plan_status == "budget_exhausted"
        assert first.cache == "miss"
        assert [str(r) for r in first.rewritings] == [
            "q(X, Y) :- v1(X, Z), v2(Z, Y)"
        ]
        assert cache.writes == 0
        # The next identical request plans live again — no false "hit"
        # masquerading as a complete answer.
        second = executor.execute(PlanRequest(*workload, id="p2"))
        assert second.cache == "miss"
        assert second.plan_status == "budget_exhausted"
        assert second.attempts == 1

    def test_cache_hits_carry_the_entry_plan_status(
        self, workload, fake_clock, tmp_path
    ):
        cache = PlanCache(tmp_path / "plans")
        executor = self.make_cached_executor(
            fake_clock, cache, chain=("corecover",)
        )
        primed = executor.execute(PlanRequest(*workload, id="w1"))
        assert primed.cache == "miss" and primed.plan_status == "complete"
        hit = executor.execute(PlanRequest(*workload, id="w2"))
        assert hit.cache == "hit"
        assert hit.attempts == 0
        assert hit.plan_status == "complete"

    def test_created_at_uses_the_cache_clock(
        self, workload, fake_clock, tmp_path
    ):
        """Regression: entries used to be stamped with raw
        ``time.time()``, so a cache running on an injected clock
        computed ``clock() - created_at`` across mismatched timebases
        and TTL expiry never fired."""
        cache = PlanCache(tmp_path / "plans", ttl_seconds=10.0, clock=fake_clock)
        executor = self.make_cached_executor(
            fake_clock, cache, chain=("corecover",)
        )
        request = PlanRequest(*workload, id="t1")
        executor.execute(request)
        key = request.cache_key(executor.chain)
        assert cache.read(key) is not None  # fresh within the TTL
        fake_clock.advance(11.0)
        assert cache.read(key) is None  # past the TTL: stale
        assert cache.read(key, allow_stale=True) is not None
