"""Every registered injection point is exercised by at least one test.

The fault registry (:func:`repro.testing.faults.describe_injection_points`)
is the contract between the production code (which fires points) and the
chaos suite (which injects at them).  A point that exists in the registry
but is never exercised is dead chaos surface: faults registered there
would silently never trigger.  This module pins the registry to a table
of *exercisers* — one minimal scenario per point, each asserted to
actually fire its point — so adding a new injection point without
chaos coverage fails CI by construction.
"""

import pytest

from repro import (
    PlanCache,
    PlanRequest,
    ResilientExecutor,
    ViewCatalog,
    parse_query,
    plan,
)
from repro.parallel import (
    ParallelPlanningEngine,
    ParallelPolicy,
    SupervisedWorkerPool,
)
from repro.serve.admission import AdmissionController
from repro.service import ServicePolicy
from repro.testing.faults import (
    describe_injection_points,
    inject,
    injection_points,
)

QUERY = "q(X, Y) :- a(X, Z), a(Z, Z), b(Z, Y)"
VIEWS = [
    "v1(A, B) :- a(A, B), a(B, B)",
    "v2(C, D) :- a(C, E), b(C, D)",
]


def _workload():
    return parse_query(QUERY), ViewCatalog(VIEWS)


def _exercise_planner():
    query, views = _workload()
    plan(query, views, backend="corecover")


def _exercise_service_retry():
    query, views = _workload()
    executor = ResilientExecutor(ServicePolicy(chain=("corecover",)))
    executor.execute(PlanRequest(query=query, views=views, id="r0"))


def _exercise_cache_read(tmp_path):
    cache = PlanCache(str(tmp_path / "cache"))
    cache.read("deadbeef")


def _exercise_cache_write(tmp_path):
    from repro.service.cache import CachedPlan

    cache = PlanCache(str(tmp_path / "cache"))
    cache.write(
        "deadbeef",
        CachedPlan(
            backend="corecover",
            rewritings=(),
            plan_status="complete",
            created_at=0.0,
        ),
    )


def _exercise_worker_dispatch():
    query, views = _workload()
    engine = ParallelPlanningEngine(
        ServicePolicy(chain=("corecover",)),
        parallel=ParallelPolicy(workers=1),  # serial path fires in-process
    )
    list(engine.run([PlanRequest(query=query, views=views, id="r0")]))


def _exercise_catalog_delta():
    _, views = _workload()
    views.add_view("v9(A) :- a(A, A)")


def _exercise_serve_admission():
    AdmissionController().admit()


def _exercise_serve_drain():
    # An unstarted pool's shutdown still walks the drain protocol's
    # first phase (stop admitting) — the cheapest way to fire the point.
    SupervisedWorkerPool().shutdown()


def _exercise_worker_heartbeat():
    # A sweep over zero slots still fires the supervision point.
    SupervisedWorkerPool().heartbeat_sweep()


def _exercise_journal_append(tmp_path):
    # One durable mutation commits one journal record: append + fsync.
    from repro.serve.catalogs import CatalogRegistry

    registry = CatalogRegistry(state_dir=tmp_path / "state")
    registry.register("t1", VIEWS)
    registry.close()


def _exercise_snapshot_write(tmp_path):
    from repro.serve.catalogs import CatalogRegistry

    registry = CatalogRegistry(state_dir=tmp_path / "state")
    registry.register("t1", VIEWS)
    registry.checkpoint()
    registry.close()


#: point -> exerciser.  Keys are asserted equal to the live registry, so
#: a new injection point cannot land without a chaos exerciser.
EXERCISERS = {
    "hom_search": lambda tmp_path: _exercise_planner(),
    "cache_lookup": lambda tmp_path: _exercise_planner(),
    "enumeration": lambda tmp_path: _exercise_planner(),
    "service_retry": lambda tmp_path: _exercise_service_retry(),
    "cache_read": _exercise_cache_read,
    "cache_write": _exercise_cache_write,
    "worker_dispatch": lambda tmp_path: _exercise_worker_dispatch(),
    "catalog_delta": lambda tmp_path: _exercise_catalog_delta(),
    "serve_admission": lambda tmp_path: _exercise_serve_admission(),
    "serve_drain": lambda tmp_path: _exercise_serve_drain(),
    "worker_heartbeat": lambda tmp_path: _exercise_worker_heartbeat(),
    "journal_append": _exercise_journal_append,
    "journal_fsync": _exercise_journal_append,
    "snapshot_write": _exercise_snapshot_write,
}


def test_every_registered_point_has_an_exerciser():
    assert set(EXERCISERS) == set(injection_points())


def test_registry_descriptions_are_complete():
    described = dict(describe_injection_points())
    assert set(described) == set(injection_points())
    assert all(description for description in described.values())


@pytest.mark.parametrize("point", sorted(EXERCISERS))
def test_exerciser_actually_fires_its_point(point, tmp_path):
    with inject() as active:
        EXERCISERS[point](tmp_path)
    assert active.observed[point] >= 1, (
        f"exerciser for {point!r} never fired it; the registry has "
        "dead chaos surface"
    )
