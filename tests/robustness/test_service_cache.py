"""Plan-cache integrity: checksums, torn writes, TTL, strict mode.

The contract under test: a corrupted entry (bit flip, truncation,
hand-edit, unreadable file) is a *miss*, never a wrong plan and never a
crash — except under ``strict=True``, where it is a loud
:class:`CacheCorruptionError`.
"""

import json

import pytest

from repro import CacheCorruptionError
from repro.service import CachedPlan, PlanCache, request_key
from repro.testing.faults import RaiseFault, inject

PLAN = CachedPlan(
    backend="corecover",
    rewritings=("q(X, Y) :- v1(X, Z), v2(Z, Y)",),
    plan_status="complete",
    created_at=100.0,
)


@pytest.fixture()
def cache(tmp_path):
    return PlanCache(tmp_path / "plans")


KEY = request_key("q(X) :- a(X)", ["v1(A) :- a(A)"], {"chain": ["corecover"]})


class TestRequestKey:
    def test_view_order_is_canonicalized(self):
        views = ["v1(A) :- a(A)", "v2(B) :- b(B)"]
        assert request_key("q(X) :- a(X)", views) == request_key(
            "q(X) :- a(X)", list(reversed(views))
        )

    def test_any_input_change_misses(self):
        base = request_key("q(X) :- a(X)", ["v1(A) :- a(A)"], {"o": 1})
        assert base != request_key("q(X) :- b(X)", ["v1(A) :- a(A)"], {"o": 1})
        assert base != request_key("q(X) :- a(X)", ["v1(A) :- b(A)"], {"o": 1})
        assert base != request_key("q(X) :- a(X)", ["v1(A) :- a(A)"], {"o": 2})


class TestPerViewInvalidation:
    """``PlanRequest.cache_key`` hashes only the query-relevant views."""

    def _request(self, views):
        from repro import ViewCatalog, parse_query
        from repro.service import PlanRequest

        return PlanRequest(
            query=parse_query("q(X, Y) :- a(X, Z), b(Z, Y)"),
            views=ViewCatalog(views),
        )

    def test_irrelevant_view_delta_keeps_the_key(self):
        from repro.views import as_view

        base = self._request(["v1(A, B) :- a(A, B)", "v2(A, B) :- b(A, B)"])
        key = base.cache_key(("corecover",))
        grown = self._request(["v1(A, B) :- a(A, B)", "v2(A, B) :- b(A, B)"])
        grown.views.add_view(as_view("v3(A, B) :- c(A, B)"))  # no a/b atoms
        assert grown.cache_key(("corecover",)) == key

    def test_relevant_view_delta_changes_the_key(self):
        base = self._request(["v1(A, B) :- a(A, B)", "v2(A, B) :- b(A, B)"])
        key = base.cache_key(("corecover",))
        changed = self._request(
            ["v1(A, B) :- a(A, B), a(B, B)", "v2(A, B) :- b(A, B)"]
        )
        assert changed.cache_key(("corecover",)) != key

    def test_old_whole_catalog_keys_read_as_misses(self, cache):
        """A v1-era key (version 1, whole catalog hashed) addresses no
        v2 entry: the version is hashed into the key, so the scheme
        change is a clean miss, never corruption."""
        import hashlib

        v1_material = json.dumps(
            {
                "version": 1,
                "query": "q(X) :- a(X)",
                "views": ["v1(A) :- a(A)", "v9(C) :- c(C)"],
                "config": {},
            },
            sort_keys=True,
            separators=(",", ":"),
        ).encode()
        v1_key = hashlib.sha256(v1_material).hexdigest()
        assert v1_key != request_key("q(X) :- a(X)", ["v1(A) :- a(A)"])
        assert cache.read(v1_key) is None
        assert cache.corruptions == 0


class TestRoundTrip:
    def test_write_then_read(self, cache):
        cache.write(KEY, PLAN)
        assert cache.read(KEY) == PLAN
        assert (cache.hits, cache.misses, cache.writes) == (1, 0, 1)

    def test_absent_key_is_a_plain_miss(self, cache):
        assert cache.read(KEY) is None
        assert cache.misses == 1
        assert cache.corruptions == 0

    def test_no_temp_files_survive_a_write(self, cache):
        cache.write(KEY, PLAN)
        leftovers = [p for p in cache.root.iterdir() if ".tmp" in p.name]
        assert leftovers == []


class TestCorruption:
    def _entry_path(self, cache):
        return cache.root / f"{KEY}.json"

    def test_bit_flip_is_detected_as_a_miss(self, cache):
        cache.write(KEY, PLAN)
        path = self._entry_path(cache)
        raw = bytearray(path.read_bytes())
        # Flip one bit inside the payload (past the checksum field).
        flip_at = raw.rindex(b"corecover")
        raw[flip_at] ^= 0x01
        path.write_bytes(bytes(raw))
        assert cache.read(KEY) is None
        assert cache.corruptions == 1

    def test_truncation_is_detected_as_a_miss(self, cache):
        cache.write(KEY, PLAN)
        path = self._entry_path(cache)
        raw = path.read_bytes()
        path.write_bytes(raw[: len(raw) // 2])
        assert cache.read(KEY) is None
        assert cache.corruptions == 1

    def test_valid_json_wrong_checksum_is_a_miss(self, cache):
        """A hand-edited payload with a stale checksum must not serve."""
        cache.write(KEY, PLAN)
        path = self._entry_path(cache)
        document = json.loads(path.read_text())
        document["payload"]["rewritings"] = ["q(X) :- evil(X)"]
        path.write_text(json.dumps(document))
        assert cache.read(KEY) is None
        assert cache.corruptions == 1

    def test_missing_payload_fields_are_a_miss(self, cache):
        path = self._entry_path(cache)
        path.write_text(json.dumps({"checksum": "0" * 64, "payload": {}}))
        assert cache.read(KEY) is None
        assert cache.corruptions == 1

    def test_strict_mode_raises_instead(self, tmp_path):
        cache = PlanCache(tmp_path / "plans", strict=True)
        cache.write(KEY, PLAN)
        path = cache.root / f"{KEY}.json"
        path.write_text("{not json")
        with pytest.raises(CacheCorruptionError) as excinfo:
            cache.read(KEY)
        assert excinfo.value.exit_code == 76

    def test_root_collision_with_a_file_raises(self, tmp_path):
        rogue = tmp_path / "plans"
        rogue.write_text("i am not a directory")
        with pytest.raises(CacheCorruptionError):
            PlanCache(rogue)


class TestStaleness:
    def test_fresh_within_ttl(self, tmp_path):
        cache = PlanCache(
            tmp_path / "plans", ttl_seconds=60.0, clock=lambda: 130.0
        )
        cache.write(KEY, PLAN)  # created_at=100.0 -> age 30s
        assert cache.read(KEY) == PLAN

    def test_past_ttl_is_a_miss_on_the_normal_path(self, tmp_path):
        cache = PlanCache(
            tmp_path / "plans", ttl_seconds=60.0, clock=lambda: 200.0
        )
        cache.write(KEY, PLAN)  # age 100s > 60s
        assert cache.read(KEY) is None
        assert cache.misses == 1
        assert cache.corruptions == 0

    def test_allow_stale_serves_and_counts(self, tmp_path):
        cache = PlanCache(
            tmp_path / "plans", ttl_seconds=60.0, clock=lambda: 200.0
        )
        cache.write(KEY, PLAN)
        assert cache.read(KEY, allow_stale=True) == PLAN
        assert cache.stale_hits == 1

    def test_no_ttl_means_never_stale(self, cache):
        cache.write(KEY, PLAN)
        assert not cache.is_stale(PLAN)


class TestFaultedIO:
    def test_read_crash_degrades_to_a_miss(self, cache):
        cache.write(KEY, PLAN)
        with inject(RaiseFault("cache_read")):
            assert cache.read(KEY) is None
        assert cache.corruptions == 1
        assert cache.read(KEY) == PLAN  # the entry itself is intact

    def test_write_crash_is_swallowed_and_leaves_no_debris(self, cache):
        with inject(RaiseFault("cache_write")):
            cache.write(KEY, PLAN)
        assert cache.writes == 0
        assert list(cache.root.iterdir()) == []

    def test_write_crash_raises_in_strict_mode(self, tmp_path):
        cache = PlanCache(tmp_path / "plans", strict=True)
        with inject(RaiseFault("cache_write")):
            with pytest.raises(CacheCorruptionError):
                cache.write(KEY, PLAN)
