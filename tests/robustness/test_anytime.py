"""Anytime-planning invariants under resource budgets.

The acceptance bar from the robustness issue: on a budget-exceeding
workload every backend returns ``BUDGET_EXHAUSTED`` within
``deadline + 0.25s``, never raises through ``plan()`` in non-strict mode,
and any rewriting it marks *certified* verifies as a genuinely equivalent
rewriting.
"""

import time

import pytest

from repro import (
    ResourceBudget,
    ViewCatalog,
    is_equivalent_rewriting,
    parse_query,
    plan,
)
from repro.errors import BudgetExceededError
from repro.planner import PlannerContext, PlanStatus
from repro.workload import WorkloadConfig, generate_workload

#: Every registered backend that can produce rewritings, plus the
#: inverse-rules backend (which must also respect budgets).
BACKENDS = (
    "corecover",
    "corecover-star",
    "naive",
    "bucket",
    "minicon",
    "inverse-rules",
)

EPSILON = 0.25


@pytest.fixture(scope="module")
def small_workload():
    query = parse_query("q(X, Y) :- a(X, Z), a(Z, Z), b(Z, Y)")
    views = ViewCatalog(
        [
            "v1(A, B) :- a(A, B), a(B, B)",
            "v2(C, D) :- a(C, E), b(C, D)",
            "v3(A) :- a(A, A)",
        ]
    )
    return query, views


@pytest.fixture(scope="module")
def star_workload():
    """A Figure 6 star workload heavy enough that tiny budgets trip."""
    return generate_workload(
        WorkloadConfig(shape="star", num_views=60, nondistinguished=0, seed=3)
    )


class TestDeadline:
    @pytest.mark.parametrize("backend", BACKENDS)
    def test_zero_deadline_returns_within_epsilon(
        self, small_workload, backend
    ):
        query, views = small_workload
        deadline = 0.0
        started = time.monotonic()
        result = plan(
            query,
            views,
            backend=backend,
            budget=ResourceBudget(deadline_seconds=deadline),
        )
        elapsed = time.monotonic() - started
        assert elapsed <= deadline + EPSILON
        outcome = result.outcome
        assert outcome is not None
        # inverse-rules does ~zero work on this input and may complete
        # before the first checkpoint; everything else must exhaust.
        if backend != "inverse-rules":
            assert outcome.status is PlanStatus.BUDGET_EXHAUSTED
            assert outcome.exhausted_resource == "deadline"

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_star_workload_deadline(self, star_workload, backend):
        deadline = 0.01
        started = time.monotonic()
        result = plan(
            star_workload.query,
            star_workload.views,
            backend=backend,
            budget=ResourceBudget(deadline_seconds=deadline),
        )
        elapsed = time.monotonic() - started
        assert elapsed <= deadline + EPSILON
        assert result.outcome is not None

    def test_certified_partials_are_equivalent(self, star_workload):
        """Any certified best-so-far rewriting is a real rewriting.

        Count limits are paired with a deadline: a count budget only
        bounds the *counted* resource, so enumeration loops that sit
        between charges (set-cover branching, MiniCon partitioning) are
        bounded by the deadline dimension instead.
        """
        checked = 0
        for backend in ("corecover", "corecover-star", "bucket", "minicon"):
            for budget in (
                ResourceBudget(max_hom_searches=50, deadline_seconds=1.0),
                ResourceBudget(max_hom_searches=200, deadline_seconds=1.0),
                ResourceBudget(max_rewritings=1, deadline_seconds=1.0),
            ):
                result = plan(
                    star_workload.query,
                    star_workload.views,
                    backend=backend,
                    budget=budget,
                )
                outcome = result.outcome
                if outcome.status is not PlanStatus.BUDGET_EXHAUSTED:
                    continue
                for rewriting in outcome.certified_rewritings:
                    assert is_equivalent_rewriting(
                        rewriting, star_workload.query, star_workload.views
                    )
                    checked += 1
        # The budgets above are tuned so at least one backend records a
        # certified partial before tripping; a zero count means the test
        # went stale, not that the invariant holds.
        assert checked > 0


class TestStrictMode:
    def test_strict_budget_raises(self, small_workload):
        query, views = small_workload
        with pytest.raises(BudgetExceededError):
            plan(
                query,
                views,
                backend="corecover",
                budget=ResourceBudget(deadline_seconds=0.0, strict=True),
            )

    def test_strict_flag_on_plan(self, small_workload):
        query, views = small_workload
        with pytest.raises(BudgetExceededError):
            plan(
                query,
                views,
                backend="corecover",
                budget=ResourceBudget(deadline_seconds=0.0),
                strict_budget=True,
            )


class TestBudgetedContext:
    def test_context_budget_applies_without_plan_budget(self, small_workload):
        query, views = small_workload
        ctx = PlannerContext(
            budget=ResourceBudget(max_hom_searches=1)
        )
        result = plan(query, views, backend="corecover", context=ctx)
        assert result.outcome.status is PlanStatus.BUDGET_EXHAUSTED

    def test_per_call_budget_leaves_context_unbudgeted(self, small_workload):
        query, views = small_workload
        ctx = PlannerContext()
        result = plan(
            query,
            views,
            backend="corecover",
            context=ctx,
            budget=ResourceBudget(deadline_seconds=0.0),
        )
        assert result.outcome.status is PlanStatus.BUDGET_EXHAUSTED
        assert ctx.meter is None  # restored after the call
        # The same context planning again without a budget completes.
        again = plan(query, views, backend="corecover", context=ctx)
        assert again.outcome.status is PlanStatus.COMPLETE
        assert again.has_rewriting


class TestMaxRewritings:
    def test_cap_is_respected(self, star_workload):
        result = plan(
            star_workload.query,
            star_workload.views,
            backend="corecover-star",
            budget=ResourceBudget(max_rewritings=1, deadline_seconds=1.0),
        )
        outcome = result.outcome
        if (
            outcome.status is PlanStatus.BUDGET_EXHAUSTED
            and outcome.exhausted_resource == "rewritings"
        ):
            assert len(outcome.rewritings) <= 1
