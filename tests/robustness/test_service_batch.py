"""The ``repro batch`` and ``repro faults`` CLI surface.

Batch contract: NDJSON in, one JSON outcome per line out (same order),
summary on stderr, and a process exit code that reflects the batch's
final failure mode through the error taxonomy.
"""

import json

import pytest

from repro import ParseError, ResourceBudget, UnknownViewError, ViewCatalog
from repro.cli import main
from repro.errors import UnsafeQueryError
from repro.service import parse_request_line, parse_requests
from repro.testing.faults import INJECTION_POINTS, RaiseFault, inject

QUERY = "q(X, Y) :- a(X, Z), a(Z, Z), b(Z, Y)"
VIEWS_TEXT = """
v1(A, B) :- a(A, B), a(B, B)
v2(C, D) :- a(C, E), b(C, D)
v3(A) :- a(A, A)
"""


@pytest.fixture()
def views_file(tmp_path):
    path = tmp_path / "views.dl"
    path.write_text(VIEWS_TEXT)
    return str(path)


def write_requests(tmp_path, lines):
    path = tmp_path / "requests.ndjson"
    path.write_text("\n".join(lines) + "\n")
    return str(path)


def outcome_lines(capsys):
    captured = capsys.readouterr()
    return [json.loads(line) for line in captured.out.splitlines()], captured


class TestRequestParsing:
    @pytest.fixture()
    def catalog(self):
        return ViewCatalog(
            line.strip() for line in VIEWS_TEXT.strip().splitlines()
        )

    def test_minimal_line(self, catalog):
        request = parse_request_line(
            json.dumps({"query": QUERY}), catalog, number=7
        )
        assert request.id == "7"  # defaults to the line number
        assert request.budget is None
        assert len(request.views) == len(catalog)

    def test_views_subset_and_timeout(self, catalog):
        request = parse_request_line(
            json.dumps(
                {"id": "r1", "query": QUERY, "views": ["v1"], "timeout": 0.5}
            ),
            catalog,
            number=1,
        )
        assert request.id == "r1"
        assert [view.name for view in request.views] == ["v1"]
        assert request.budget.deadline_seconds == 0.5

    def test_timeout_overrides_the_default_budget(self, catalog):
        request = parse_request_line(
            json.dumps({"query": QUERY, "timeout": 0.25}),
            catalog,
            number=1,
            default_budget=ResourceBudget(
                deadline_seconds=9.0, max_hom_searches=100
            ),
        )
        assert request.budget.deadline_seconds == 0.25
        assert request.budget.max_hom_searches == 100  # preserved

    def test_non_numeric_timeout_is_a_typed_intake_error(self, catalog):
        """A bad timeout must surface as ParseError (exit 65), not as a
        bare TypeError/ValueError escaping the taxonomy."""
        with pytest.raises(ParseError) as excinfo:
            parse_request_line(
                json.dumps({"query": QUERY, "timeout": "fast"}),
                catalog,
                number=4,
            )
        assert "request line 4" in str(excinfo.value)
        assert '"timeout" must be a number' in str(excinfo.value)
        with pytest.raises(ParseError):
            parse_request_line(
                json.dumps({"query": QUERY, "timeout": [1]}),
                catalog,
                number=5,
            )

    def test_unknown_view_name_fails_fast(self, catalog):
        with pytest.raises(UnknownViewError):
            parse_request_line(
                json.dumps({"query": QUERY, "views": ["nope"]}),
                catalog,
                number=1,
            )

    def test_unsafe_query_rejected_at_intake(self, catalog):
        with pytest.raises(UnsafeQueryError) as excinfo:
            parse_request_line(
                json.dumps({"query": "q(X) :- a(Y)"}), catalog, number=3
            )
        assert "request line 3" in str(excinfo.value)

    def test_invalid_json_names_the_line(self, catalog):
        with pytest.raises(ParseError) as excinfo:
            parse_request_line("{not json", catalog, number=2)
        assert "request line 2" in str(excinfo.value)

    def test_blank_lines_are_skipped_but_still_numbered(self, catalog):
        requests = list(
            parse_requests(
                ["", json.dumps({"query": QUERY}), "   "], catalog
            )
        )
        assert [request.id for request in requests] == ["2"]


class TestBatchCommand:
    def test_ndjson_out_matches_requests_in_order(
        self, tmp_path, views_file, capsys
    ):
        requests = write_requests(
            tmp_path,
            [
                json.dumps({"id": "first", "query": QUERY}),
                json.dumps({"id": "second", "query": QUERY}),
            ],
        )
        code = main(["batch", requests, "--views", views_file])
        outcomes, captured = outcome_lines(capsys)
        assert code == 0
        assert [o["id"] for o in outcomes] == ["first", "second"]
        assert all(o["status"] == "ok" for o in outcomes)
        assert all(o["backend_used"] == "corecover" for o in outcomes)
        assert outcomes[0]["rewritings"] == [
            "q(X, Y) :- v1(X, Z), v2(Z, Y)"
        ]
        assert "batch: 2 ok, 0 degraded, 0 failed" in captured.err

    def test_profile_surfaces_context_pool_counters(
        self, tmp_path, views_file, capsys
    ):
        """``--profile`` on the engine path emits one stderr JSON line
        with the warm-pool economics: exact hits, delta-upgraded hits,
        and cold misses."""
        requests = write_requests(
            tmp_path,
            [
                json.dumps({"id": "first", "query": QUERY}),
                json.dumps({"id": "second", "query": QUERY}),
            ],
        )
        code = main(
            ["batch", requests, "--views", views_file,
             "--workers", "2", "--profile"]
        )
        outcomes, captured = outcome_lines(capsys)
        assert code == 0
        pool_lines = [
            json.loads(line)
            for line in captured.err.splitlines()
            if line.startswith("{")
        ]
        assert len(pool_lines) == 1
        counters = pool_lines[0]["context_pool"]
        assert set(counters) == {"hits", "delta_hits", "misses"}
        assert (
            counters["hits"] + counters["delta_hits"] + counters["misses"]
            == len(outcomes)
        )

    def test_text_format(self, tmp_path, views_file, capsys):
        requests = write_requests(
            tmp_path, [json.dumps({"id": "t1", "query": QUERY})]
        )
        code = main(
            ["batch", requests, "--views", views_file, "--format", "text"]
        )
        captured = capsys.readouterr()
        assert code == 0
        assert "t1: ok backend=corecover attempts=1" in captured.out
        assert "v1(X, Z), v2(Z, Y)" in captured.out

    def test_stdin_requests(self, views_file, capsys, monkeypatch):
        import io

        monkeypatch.setattr(
            "sys.stdin", io.StringIO(json.dumps({"query": QUERY}) + "\n")
        )
        code = main(["batch", "-", "--views", views_file])
        outcomes, _ = outcome_lines(capsys)
        assert code == 0
        assert outcomes[0]["status"] == "ok"

    def test_cache_hits_on_the_second_run(self, tmp_path, views_file, capsys):
        requests = write_requests(
            tmp_path, [json.dumps({"id": "c1", "query": QUERY})]
        )
        cache_dir = str(tmp_path / "plans")
        argv = [
            "batch", requests, "--views", views_file, "--cache", cache_dir
        ]
        assert main(argv) == 0
        first, _ = outcome_lines(capsys)
        assert first[0]["cache"] == "miss"
        assert main(argv) == 0
        second, _ = outcome_lines(capsys)
        assert second[0]["cache"] == "hit"
        assert second[0]["attempts"] == 0
        # Hits carry the cached entry's own plan status — only complete
        # results are ever cached.
        assert second[0]["plan_status"] == "complete"

    def test_all_backends_faulted_exits_74(self, tmp_path, views_file, capsys):
        requests = write_requests(
            tmp_path, [json.dumps({"id": "f1", "query": QUERY})]
        )
        with inject(RaiseFault("hom_search", times=None)):
            code = main(
                [
                    "batch", requests, "--views", views_file,
                    "--chain", "corecover", "--max-attempts", "1",
                ]
            )
        outcomes, captured = outcome_lines(capsys)
        assert code == 74
        assert outcomes[0]["status"] == "failed"
        assert outcomes[0]["error"]["error"] == "RetryExhaustedError"
        # The structured one-liner also lands on stderr via main().
        assert '"exit_code": 74' in captured.err

    def test_breaker_open_mid_batch_exits_75(
        self, tmp_path, views_file, capsys
    ):
        """Request 1 trips the breaker; request 2 finds it open.  The
        exit code reflects the *final* failure mode: back off."""
        requests = write_requests(
            tmp_path,
            [
                json.dumps({"id": "b1", "query": QUERY}),
                json.dumps({"id": "b2", "query": QUERY}),
            ],
        )
        with inject(RaiseFault("hom_search", times=None)):
            code = main(
                [
                    "batch", requests, "--views", views_file,
                    "--chain", "corecover", "--max-attempts", "1",
                    "--breaker-window", "1", "--breaker-threshold", "1.0",
                    "--breaker-cooldown", "9999",
                ]
            )
        outcomes, _ = outcome_lines(capsys)
        assert code == 75
        assert outcomes[0]["error"]["error"] == "RetryExhaustedError"
        assert outcomes[1]["error"]["error"] == "CircuitOpenError"
        assert outcomes[1]["attempts"] == 0
        assert outcomes[1]["breakers"]["corecover"] == "open"

    def test_stale_cache_degraded_serving_exits_zero(
        self, tmp_path, views_file, capsys
    ):
        """Acceptance: all backends down + past-TTL cache entry ->
        ``degraded: true`` outcome, successful exit."""
        requests = write_requests(
            tmp_path, [json.dumps({"id": "d1", "query": QUERY})]
        )
        cache_dir = str(tmp_path / "plans")
        argv = [
            "batch", requests, "--views", views_file,
            "--cache", cache_dir, "--cache-ttl", "0",
            "--chain", "corecover", "--max-attempts", "1",
        ]
        assert main(argv) == 0  # warm the cache
        capsys.readouterr()
        with inject(RaiseFault("hom_search", times=None)):
            code = main(argv)
        outcomes, captured = outcome_lines(capsys)
        assert code == 0
        assert outcomes[0]["status"] == "degraded"
        assert outcomes[0]["degraded"] is True
        assert outcomes[0]["cache"] == "stale"
        assert outcomes[0]["rewritings"]
        assert "batch: 0 ok, 1 degraded, 0 failed" in captured.err

    def test_intake_error_aborts_with_taxonomy_exit(
        self, tmp_path, views_file, capsys
    ):
        requests = write_requests(tmp_path, ['{"query": "q(X :- a(X)"}'])
        code = main(["batch", requests, "--views", views_file])
        captured = capsys.readouterr()
        assert code == 65
        error = json.loads(captured.err.splitlines()[-1])
        assert error["error"] == "ParseError"
        assert "request line 1" in error["message"]


class TestFaultsCommand:
    def test_list_text(self, capsys):
        assert main(["faults", "list"]) == 0
        out = capsys.readouterr().out
        for point in INJECTION_POINTS:
            assert point in out

    def test_list_json_matches_the_registry(self, capsys):
        assert main(["faults", "list", "--format", "json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        points = [
            entry["point"] for entry in payload["injection_points"]
        ]
        assert tuple(points) == INJECTION_POINTS
        assert all(
            entry["description"] for entry in payload["injection_points"]
        )
