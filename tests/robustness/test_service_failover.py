"""Certified failover, quarantine, and degraded stale serving.

These are the acceptance chaos tests for the service layer: corecover
is broken with injected faults and the executor must fall down the
chain, serving only rewritings that re-certify as genuinely equivalent
(Definition 2.3), quarantining any backend caught lying.
"""

import pytest

from repro import (
    ResourceBudget,
    RetryExhaustedError,
    ViewCatalog,
    is_equivalent_rewriting,
    parse_query,
)
from repro.planner.registry import (
    _BACKENDS,
    RewriterBackend,
    register_backend,
)
from repro.service import (
    ChainConfigError,
    PlanCache,
    PlanRequest,
    ResilientExecutor,
    RetryPolicy,
    ServicePolicy,
    is_quarantined,
    quarantined_backends,
    resolve_chain,
)
from repro.testing.faults import INJECTION_POINTS, RaiseFault, inject


@pytest.fixture()
def workload():
    query = parse_query("q(X, Y) :- a(X, Z), a(Z, Z), b(Z, Y)")
    views = ViewCatalog(
        [
            "v1(A, B) :- a(A, B), a(B, B)",
            "v2(C, D) :- a(C, E), b(C, D)",
            "v3(A) :- a(A, A)",
        ]
    )
    return query, views


def make_executor(fake_clock, *, chain, max_attempts=3, cache=None):
    policy = ServicePolicy(
        chain=chain,
        retry=RetryPolicy(max_attempts=max_attempts, base_delay=0.01),
    )
    return ResilientExecutor(
        policy,
        cache=cache,
        clock=fake_clock,
        sleep=lambda _d: None,
        rng=lambda: 1.0,
    )


class TestFailover:
    def test_broken_corecover_fails_over_to_certified_bucket(
        self, workload, fake_clock
    ):
        """The headline acceptance scenario: every corecover attempt dies
        on an injected ``hom_search`` fault; bucket serves instead, and
        everything served re-verifies as a genuine equivalent rewriting.
        """
        query, views = workload
        executor = make_executor(
            fake_clock, chain=("corecover", "bucket", "naive")
        )
        # Each corecover attempt starts a hom search immediately, so
        # exactly max_attempts triggers exhaust on corecover and leave
        # the fallback backends untouched.
        with inject(RaiseFault("hom_search", times=3)):
            outcome = executor.execute(PlanRequest(query, views, id="acc-1"))
        assert outcome.ok
        assert outcome.attempts > 1
        assert outcome.backend_used != "corecover"
        assert outcome.backend_used == "bucket"
        assert outcome.rewritings
        for rewriting in outcome.rewritings:
            assert is_equivalent_rewriting(rewriting, query, views)
        assert outcome.breakers["corecover"] == "open"
        assert outcome.breakers["bucket"] == "closed"
        [failure] = outcome.failures
        assert failure.backend == "corecover"
        assert failure.attempts == 3

    def test_all_backends_down_without_cache_fails(self, workload, fake_clock):
        executor = make_executor(
            fake_clock, chain=("corecover", "bucket", "naive"), max_attempts=1
        )
        with inject(RaiseFault("hom_search", times=None)):
            outcome = executor.execute(PlanRequest(*workload))
        assert outcome.status == "failed"
        assert isinstance(outcome.error, RetryExhaustedError)
        assert outcome.backend_used is None
        assert {f.backend for f in outcome.failures} == {
            "corecover",
            "bucket",
            "naive",
        }

    def test_failover_respects_the_request_deadline(
        self, workload, fake_clock
    ):
        """Once the request budget's deadline is spent, later chain links
        are not even tried."""
        executor = make_executor(
            fake_clock, chain=("corecover", "bucket"), max_attempts=1
        )
        request = PlanRequest(
            *workload, budget=ResourceBudget(deadline_seconds=0.0)
        )
        outcome = executor.execute(request)
        assert outcome.status == "failed"
        # The deadline abort stops the walk: bucket is never consulted.
        assert [f.backend for f in outcome.failures] == ["corecover"]


def _liar_run(query, catalog, *, context, **options):
    """A backend that claims a non-equivalent query is a rewriting."""
    return (parse_query("q(X, Y) :- v1(X, Y)"),), None


@pytest.fixture()
def liar_backend():
    backend = RewriterBackend(
        name="liar",
        description="test backend emitting uncertifiable rewritings",
        run=_liar_run,
    )
    register_backend(backend, replace=True)
    yield backend
    _BACKENDS.pop("liar", None)


class TestQuarantine:
    def test_uncertifiable_fallback_is_quarantined(
        self, workload, fake_clock, liar_backend
    ):
        executor = make_executor(
            fake_clock, chain=("corecover", "liar", "bucket"), max_attempts=1
        )
        with inject(RaiseFault("hom_search", times=1)):
            outcome = executor.execute(PlanRequest(*workload, id="q-1"))
        # The liar's answer failed certification; bucket served instead.
        assert outcome.ok
        assert outcome.backend_used == "bucket"
        assert is_quarantined("liar")
        assert "liar" in quarantined_backends()
        liar_failures = [f for f in outcome.failures if f.backend == "liar"]
        assert liar_failures[0].error == "UncertifiableRewriting"

        # A later request skips the quarantined backend outright.
        with inject(RaiseFault("hom_search", times=1)):
            second = executor.execute(PlanRequest(*workload, id="q-2"))
        assert second.ok
        assert second.backend_used == "bucket"
        skipped = [f for f in second.failures if f.backend == "liar"]
        assert skipped[0].error == "Quarantined"
        assert skipped[0].skipped

    def test_primary_backend_is_never_certified_away(
        self, workload, fake_clock, liar_backend
    ):
        """Certification gates *fallbacks* only: the chain head is the
        trusted configuration, so a liar at index 0 still serves (its
        output is the operator's explicit choice)."""
        executor = make_executor(fake_clock, chain=("liar",), max_attempts=1)
        outcome = executor.execute(PlanRequest(*workload))
        assert outcome.ok
        assert outcome.backend_used == "liar"
        assert not is_quarantined("liar")


class TestDegradedServing:
    def test_stale_cache_serves_when_every_backend_is_down(
        self, workload, fake_clock, tmp_path
    ):
        """Acceptance: all backends faulted -> the stale (past-TTL) cache
        entry is served with ``degraded: true`` instead of failing."""
        cache = PlanCache(tmp_path / "plans", ttl_seconds=0.0)
        executor = make_executor(
            fake_clock,
            chain=("corecover", "bucket", "naive"),
            max_attempts=1,
            cache=cache,
        )
        primed = executor.execute(PlanRequest(*workload, id="warm"))
        assert primed.ok and primed.cache == "miss"

        with inject(RaiseFault("hom_search", times=None)):
            outcome = executor.execute(PlanRequest(*workload, id="cold"))
        assert outcome.status == "degraded"
        assert outcome.degraded
        assert outcome.cache == "stale"
        assert outcome.backend_used == "corecover"  # the entry remembers
        assert outcome.plan_status == "complete"  # the entry's own status
        assert [str(r) for r in outcome.rewritings] == [
            "q(X, Y) :- v1(X, Z), v2(Z, Y)"
        ]
        # The failures that forced degraded mode stay observable.
        assert {f.backend for f in outcome.failures} == {
            "corecover",
            "bucket",
            "naive",
        }

    def test_all_injection_points_fire_in_a_supervised_run(
        self, workload, fake_clock, tmp_path
    ):
        """A cache-backed supervised run plus an engine dispatch, a
        catalog delta, the serve-tier lifecycle (admission, drain,
        heartbeat sweep), and a durable catalog commit + checkpoint
        exercises the full registry of injection points — planner-,
        service-, catalog-, parallel-, daemon-, and durability-level
        alike."""
        from repro.parallel import ParallelPlanningEngine, ParallelPolicy
        from repro.parallel import SupervisedWorkerPool
        from repro.serve.admission import AdmissionController
        from repro.serve.catalogs import CatalogRegistry
        from repro.views import as_view

        query, views = workload
        cache = PlanCache(tmp_path / "plans")
        executor = make_executor(
            fake_clock, chain=("corecover",), cache=cache
        )
        engine = ParallelPlanningEngine(
            ServicePolicy(chain=("corecover",)),
            parallel=ParallelPolicy(workers=1),
        )
        with inject() as active:
            executor.execute(PlanRequest(query, views))
            list(engine.run([PlanRequest(query, views)]))
            views.add_view(as_view("v_extra(X) :- a(X, X)"))
            AdmissionController().admit()
            pool = SupervisedWorkerPool()  # unstarted: lifecycle only
            pool.heartbeat_sweep()
            pool.shutdown()
            registry = CatalogRegistry(state_dir=tmp_path / "state")
            registry.register("t1", ["v1(A, B) :- a(A, B)"])
            registry.checkpoint()
            registry.close()
        assert active.exercised_points() == INJECTION_POINTS


class TestChainValidation:
    def test_unknown_backend_rejected(self):
        from repro.planner.registry import UnknownBackendError

        with pytest.raises(UnknownBackendError):
            resolve_chain(("corecover", "nope"))

    def test_non_rewriting_backend_rejected(self):
        """inverse-rules emits a maximally-contained program, not
        equivalent rewritings — it cannot sit in a certified chain."""
        with pytest.raises(ChainConfigError):
            resolve_chain(("corecover", "inverse-rules"))

    def test_duplicate_backend_rejected(self):
        with pytest.raises(ChainConfigError):
            resolve_chain(("corecover", "corecover"))

    def test_empty_chain_rejected(self):
        with pytest.raises(ChainConfigError):
            resolve_chain(())
