"""Chaos tests for the parallel engine's worker isolation.

The contract under test: a worker that misbehaves — raises unexpectedly
or dies outright (SIGKILL) — fails **only the request it was serving**.
Every other request in the batch completes normally and outcomes still
arrive in input order.
"""

import pytest

from repro import ViewCatalog, parse_query
from repro.errors import WorkerCrashError
from repro.parallel import (
    ParallelPlanningEngine,
    ParallelPolicy,
    crash_outcome,
)
from repro.planner.limits import ResourceBudget
from repro.service import PlanRequest, ServicePolicy
from repro.testing.faults import INJECTION_POINTS, ExitFault, RaiseFault

QUERY = "q(X, Y) :- a(X, Z), a(Z, Z), b(Z, Y)"


@pytest.fixture()
def catalog():
    return ViewCatalog(
        [
            "v1(A, B) :- a(A, B), a(B, B)",
            "v2(C, D) :- a(C, E), b(C, D)",
        ]
    )


def _requests(catalog, count, *, deadline=None):
    budget = (
        None
        if deadline is None
        else ResourceBudget(deadline_seconds=deadline)
    )
    query = parse_query(QUERY)
    return [
        PlanRequest(query=query, views=catalog, id=f"r{i}", budget=budget)
        for i in range(count)
    ]


def test_worker_dispatch_is_a_registered_injection_point():
    assert "worker_dispatch" in INJECTION_POINTS


def test_poisoned_task_fails_alone_in_process_pool(catalog):
    """A worker-side unexpected exception on task 1 (workers=2)
    degrades that request to a failed outcome; r0 and r2 are fine."""
    engine = ParallelPlanningEngine(
        ServicePolicy(chain=("corecover",)),
        parallel=ParallelPolicy(workers=2),
    )
    chaos = {1: (RaiseFault("worker_dispatch"),)}
    outcomes = list(engine.run(_requests(catalog, 3), chaos=chaos))
    assert [o.request_id for o in outcomes] == ["r0", "r1", "r2"]
    assert outcomes[0].ok and outcomes[2].ok
    poisoned = outcomes[1]
    assert poisoned.status == "failed"
    assert isinstance(poisoned.error, WorkerCrashError)
    assert poisoned.failures[0].backend == "worker"
    assert "r1" in str(poisoned.error)


def test_killed_worker_fails_only_its_own_request(catalog):
    """SIGKILL mid-dispatch: the parent times the silence out at
    deadline + grace and only the poisoned request fails."""
    engine = ParallelPlanningEngine(
        ServicePolicy(chain=("corecover",)),
        parallel=ParallelPolicy(workers=2, task_grace_seconds=1.0),
    )
    chaos = {1: (ExitFault("worker_dispatch"),)}
    outcomes = list(
        engine.run(_requests(catalog, 3, deadline=0.25), chaos=chaos)
    )
    assert [o.request_id for o in outcomes] == ["r0", "r1", "r2"]
    assert outcomes[0].ok and outcomes[2].ok
    killed = outcomes[1]
    assert killed.status == "failed"
    assert isinstance(killed.error, WorkerCrashError)
    assert killed.failures[0].backend == "worker"
    assert "did not respond" in killed.failures[0].message


def test_serial_path_reports_crash_identically(catalog):
    """The workers=1 fallback wraps the same unexpected exception in
    the same WorkerCrashError outcome shape as the pool path."""
    engine = ParallelPlanningEngine(
        ServicePolicy(chain=("corecover",)),
        parallel=ParallelPolicy(workers=1),
    )
    chaos = {0: (RaiseFault("worker_dispatch"),)}
    outcomes = list(engine.run(_requests(catalog, 2), chaos=chaos))
    assert engine.fell_back_to_serial
    assert outcomes[0].status == "failed"
    assert isinstance(outcomes[0].error, WorkerCrashError)
    assert outcomes[1].ok


def test_task_attached_chaos_does_not_leak_to_parent(catalog):
    """Chaos faults ride the task; the parent process's fault plan
    stays untouched (nothing active after the run)."""
    from repro.testing import faults

    engine = ParallelPlanningEngine(
        ServicePolicy(chain=("corecover",)),
        parallel=ParallelPolicy(workers=2),
    )
    chaos = {0: (RaiseFault("worker_dispatch"),)}
    list(engine.run(_requests(catalog, 2), chaos=chaos))
    assert faults._ACTIVE is None


def test_crash_outcome_shape(catalog):
    request = _requests(catalog, 1)[0]
    error = WorkerCrashError("worker gone", request_id="r0")
    outcome = crash_outcome(request, error)
    assert outcome.status == "failed"
    assert outcome.request_id == "r0"
    assert outcome.cache == "off"
    assert outcome.error is error
    payload = outcome.to_json()
    assert payload["status"] == "failed"
    assert payload["failures"][0]["backend"] == "worker"
