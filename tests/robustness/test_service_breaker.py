"""Circuit-breaker state machine, driven by an injected clock."""

import pytest

from repro.service import BreakerPolicy, BreakerState, CircuitBreaker

POLICY = BreakerPolicy(
    window=4, failure_threshold=0.5, min_calls=2, cooldown_seconds=10.0
)


class TestClosed:
    def test_starts_closed_and_allows(self, fake_clock):
        breaker = CircuitBreaker(POLICY, clock=fake_clock)
        assert breaker.state is BreakerState.CLOSED
        assert breaker.allow()
        assert breaker.failure_rate == 0.0

    def test_single_failure_below_volume_floor_stays_closed(self, fake_clock):
        breaker = CircuitBreaker(POLICY, clock=fake_clock)
        breaker.record_failure()
        assert breaker.state is BreakerState.CLOSED

    def test_successes_dilute_the_failure_rate(self, fake_clock):
        breaker = CircuitBreaker(POLICY, clock=fake_clock)
        for _ in range(3):
            breaker.record_success()
        breaker.record_failure()  # rate 1/4 < 0.5
        assert breaker.state is BreakerState.CLOSED

    def test_opens_at_threshold_rate(self, fake_clock):
        breaker = CircuitBreaker(POLICY, clock=fake_clock)
        breaker.record_failure()
        breaker.record_failure()  # rate 2/2 >= 0.5, volume floor met
        assert breaker.state is BreakerState.OPEN
        assert not breaker.allow()

    def test_window_slides_old_outcomes_out(self, fake_clock):
        breaker = CircuitBreaker(POLICY, clock=fake_clock)
        breaker.record_failure()
        for _ in range(4):  # pushes the failure out of the 4-wide window
            breaker.record_success()
        assert breaker.failure_rate == 0.0

    def test_min_calls_floor_is_capped_by_window(self, fake_clock):
        """A 1-wide window must still be able to trip the breaker."""
        tiny = BreakerPolicy(
            window=1, failure_threshold=1.0, min_calls=2,
            cooldown_seconds=10.0,
        )
        breaker = CircuitBreaker(tiny, clock=fake_clock)
        breaker.record_failure()
        assert breaker.state is BreakerState.OPEN


class TestOpenAndHalfOpen:
    @pytest.fixture()
    def open_breaker(self, fake_clock):
        breaker = CircuitBreaker(POLICY, clock=fake_clock)
        breaker.record_failure()
        breaker.record_failure()
        assert breaker.state is BreakerState.OPEN
        return breaker

    def test_open_refuses_until_cooldown(self, open_breaker, fake_clock):
        assert not open_breaker.allow()
        assert open_breaker.retry_after() == pytest.approx(10.0)
        fake_clock.advance(9.9)
        assert not open_breaker.allow()

    def test_cooldown_admits_exactly_one_trial(self, open_breaker, fake_clock):
        fake_clock.advance(10.0)
        assert open_breaker.allow()  # the HALF_OPEN trial
        assert open_breaker.state is BreakerState.HALF_OPEN
        assert not open_breaker.allow()  # no second concurrent trial

    def test_trial_success_closes_and_resets(self, open_breaker, fake_clock):
        fake_clock.advance(10.0)
        assert open_breaker.allow()
        open_breaker.record_success()
        assert open_breaker.state is BreakerState.CLOSED
        assert open_breaker.failure_rate == 0.0  # window reset

    def test_trial_failure_reopens_and_reanchors(self, open_breaker, fake_clock):
        fake_clock.advance(10.0)
        assert open_breaker.allow()
        open_breaker.record_failure()
        assert open_breaker.state is BreakerState.OPEN
        # The cooldown restarts from the re-trip, not the original trip.
        assert open_breaker.retry_after() == pytest.approx(10.0)

    def test_cancelled_trial_reopens_instead_of_leaking_the_slot(
        self, open_breaker, fake_clock
    ):
        """An admitted trial that ends without an outcome (deadline or
        budget died first) must not reserve the slot forever — that
        would refuse every future call with a zero-second cooldown."""
        fake_clock.advance(10.0)
        assert open_breaker.allow()
        assert open_breaker.state is BreakerState.HALF_OPEN
        fake_clock.advance(1.0)
        open_breaker.cancel_trial()
        # Back to OPEN with a fresh, observable cooldown...
        assert open_breaker.state is BreakerState.OPEN
        assert open_breaker.retry_after() == pytest.approx(10.0)
        # ...after which a clean trial can still recover the backend.
        fake_clock.advance(10.0)
        assert open_breaker.allow()
        open_breaker.record_success()
        assert open_breaker.state is BreakerState.CLOSED

    def test_cancel_trial_is_a_no_op_outside_an_inflight_trial(
        self, open_breaker, fake_clock
    ):
        closed = CircuitBreaker(POLICY, clock=fake_clock)
        closed.cancel_trial()
        assert closed.state is BreakerState.CLOSED
        assert closed.allow()
        # OPEN mid-cooldown is untouched too.
        fake_clock.advance(4.0)
        open_breaker.cancel_trial()
        assert open_breaker.state is BreakerState.OPEN
        assert open_breaker.retry_after() == pytest.approx(6.0)


class TestPolicyValidation:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"window": 0},
            {"failure_threshold": 0.0},
            {"failure_threshold": 1.5},
            {"min_calls": 0},
            {"cooldown_seconds": -1.0},
        ],
    )
    def test_bad_policy_rejected(self, kwargs):
        with pytest.raises(ValueError):
            BreakerPolicy(**kwargs)
