"""Shared fixtures for the robustness suite."""

import pytest

from repro.service import reset_quarantine


@pytest.fixture(autouse=True)
def _isolate_quarantine():
    """The quarantine registry is process-global; keep tests independent."""
    reset_quarantine()
    yield
    reset_quarantine()


class FakeClock:
    """A manually-advanced monotonic clock for deterministic timing."""

    def __init__(self, now: float = 0.0) -> None:
        self.now = now

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


@pytest.fixture()
def fake_clock():
    return FakeClock()
