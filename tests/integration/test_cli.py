"""Tests for the command-line interface."""

import json

import pytest

from repro.cli import main


@pytest.fixture()
def clp_files(tmp_path):
    views = tmp_path / "views.dl"
    views.write_text(
        """
        # car-loc-part views
        v1(M, D, C) :- car(M, D), loc(D, C)
        v2(S, M, C) :- part(S, M, C)
        v3(S) :- car(M, a), loc(a, C), part(S, M, C)
        v4(M, D, C, S) :- car(M, D), loc(D, C), part(S, M, C)
        v5(M, D, C) :- car(M, D), loc(D, C)
        """
    )
    data = tmp_path / "db.json"
    data.write_text(
        json.dumps(
            {
                "car": [["m1", "a"], ["m2", "a"], ["m1", "d1"]],
                "loc": [["a", "c1"], ["a", "c2"], ["d1", "c1"]],
                "part": [["s1", "m1", "c1"], ["s2", "m2", "c2"]],
            }
        )
    )
    query = "q1(S, C) :- car(M, a), loc(a, C), part(S, M, C)"
    return query, str(views), str(data)


class TestRewrite:
    def test_corecover(self, clp_files, capsys):
        query, views, _data = clp_files
        assert main(["rewrite", query, "--views", views]) == 0
        out = capsys.readouterr().out
        assert "v4(M, a, C, S)" in out

    def test_corecover_star_verbose(self, clp_files, capsys):
        query, views, _data = clp_files
        code = main(
            ["rewrite", query, "--views", views,
             "--algorithm", "corecover-star", "--verbose"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "filter candidates" in out
        assert "v3(S)" in out

    def test_baseline_algorithms(self, clp_files, capsys):
        query, views, _data = clp_files
        for algorithm in ("naive", "minicon", "bucket"):
            assert main(
                ["rewrite", query, "--views", views, "--algorithm", algorithm]
            ) == 0

    def test_no_rewriting_exit_code(self, tmp_path, capsys):
        views = tmp_path / "views.dl"
        views.write_text("v(A) :- e(A, A)\n")
        code = main(["rewrite", "q(X, Y) :- e(X, Y)", "--views", str(views)])
        assert code == 1
        assert "no equivalent rewriting" in capsys.readouterr().out

    def test_query_from_file(self, clp_files, tmp_path, capsys):
        query, views, _data = clp_files
        query_file = tmp_path / "q.dl"
        query_file.write_text(query + "\n")
        assert main(["rewrite", f"@{query_file}", "--views", views]) == 0


class TestOptimize:
    def test_m1(self, clp_files, capsys):
        query, views, data = clp_files
        assert main(
            ["optimize", query, "--views", views, "--data", data,
             "--model", "m1"]
        ) == 0
        assert "M1-optimal" in capsys.readouterr().out

    def test_m2_with_filters(self, clp_files, capsys):
        query, views, data = clp_files
        code = main(
            ["optimize", query, "--views", views, "--data", data,
             "--model", "m2", "--filters"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "M2-optimal" in out
        assert "matches" in out

    def test_m3(self, clp_files, capsys):
        query, views, data = clp_files
        code = main(
            ["optimize", query, "--views", views, "--data", data,
             "--model", "m3", "--annotator", "heuristic"]
        )
        assert code == 0
        assert "M3-optimal" in capsys.readouterr().out


class TestFigures:
    def test_delegates_to_experiments(self, capsys):
        assert main(["figures", "fig9b", "--queries", "1"]) == 0
        assert "fig9b" in capsys.readouterr().out
