"""End-to-end tests for ``repro lint`` and ``rewrite --preflight``."""

import json

import pytest

from repro.cli import main
from repro.errors import AnalysisError

CLEAN = "q(X, Y) :- e(X, Z), e(Z, Y)"
UNSAFE = "q(X, Y) :- e(X, Z)"


@pytest.fixture()
def views_file(tmp_path):
    path = tmp_path / "views.dl"
    path.write_text(
        "v1(A, B) :- e(A, C), e(C, B)\n"
        "v2(A, B) :- e(A, B)\n"
    )
    return str(path)


class TestExitCodes:
    def test_clean_query_exits_zero(self, views_file, capsys):
        assert main(["lint", CLEAN, "--views", views_file]) == 0
        # The acyclic-routing note (R105) is informational; the query is
        # otherwise clean and still exits zero.
        out = capsys.readouterr().out
        assert "R105" in out
        assert "0 error(s), 0 warning(s)" in out

    def test_clean_query_without_routing_note(self, views_file, capsys):
        code = main(
            ["lint", CLEAN, "--views", views_file, "--ignore", "R105"]
        )
        assert code == 0
        assert "clean" in capsys.readouterr().out

    def test_error_diagnostic_exits_73(self, capsys):
        code = main(["lint", UNSAFE])
        assert code == AnalysisError.exit_code == 73
        out = capsys.readouterr().out
        assert "R001" in out

    def test_fail_on_warning(self, capsys):
        # Cartesian body: a warning, not an error.
        assert main(["lint", "q(X, Y) :- e(X, X), f(Y, Y)"]) == 0
        code = main(
            ["lint", "q(X, Y) :- e(X, X), f(Y, Y)", "--fail-on", "warning"]
        )
        assert code == 73
        assert "R003" in capsys.readouterr().out

    def test_fail_on_never_reports_but_exits_zero(self, capsys):
        assert main(["lint", UNSAFE, "--fail-on", "never"]) == 0
        assert "R001" in capsys.readouterr().out


class TestSelections:
    def test_ignore_suppresses_the_code(self, capsys):
        assert main(["lint", UNSAFE, "--ignore", "R001"]) == 0
        assert "R001" not in capsys.readouterr().out

    def test_select_restricts_to_listed_codes(self, capsys):
        code = main(["lint", UNSAFE, "--select", "R003,R005"])
        assert code == 0
        assert "R001" not in capsys.readouterr().out

    def test_repeatable_flags(self, capsys):
        code = main(
            ["lint", UNSAFE, "--ignore", "R001", "--ignore", "R003"]
        )
        assert code == 0


class TestFormats:
    def test_json_output_is_sarif_shaped(self, views_file, capsys):
        main(["lint", UNSAFE, "--views", views_file, "--format", "json"])
        payload = json.loads(capsys.readouterr().out)
        assert payload["version"] == "2.1.0"
        results = payload["runs"][0]["results"]
        assert any(r["ruleId"] == "R001" for r in results)
        region = results[0]["locations"][0]["physicalLocation"]["region"]
        assert region["startLine"] >= 1

    def test_text_output_carries_positions(self, capsys):
        main(["lint", UNSAFE])
        out = capsys.readouterr().out
        assert "line 1, column 1" in out  # position of the offending head


class TestInputs:
    def test_query_from_file(self, tmp_path, capsys):
        query_file = tmp_path / "query.dl"
        query_file.write_text(CLEAN + "\n")
        assert main(["lint", f"@{query_file}"]) == 0

    def test_schema_arity_check(self, tmp_path, capsys):
        schema = tmp_path / "schema.json"
        schema.write_text(json.dumps({"e": 3}))
        code = main(["lint", CLEAN, "--schema", str(schema)])
        assert code == 73
        assert "R002" in capsys.readouterr().out

    def test_config_conflict_r104(self, views_file, capsys):
        code = main(
            ["lint", CLEAN, "--views", views_file, "--cost-model", "m2"]
        )
        assert code == 73
        assert "R104" in capsys.readouterr().out

    def test_config_with_data_resolves_conflict(self, views_file):
        assert main(
            ["lint", CLEAN, "--views", views_file,
             "--cost-model", "m2", "--with-data"]
        ) == 0


class TestRewritePreflight:
    def test_rejection_exits_73_with_diagnostics(self, views_file, capsys):
        code = main(["rewrite", UNSAFE, "--views", views_file, "--preflight"])
        assert code == 73
        captured = capsys.readouterr()
        assert "preflight rejected" in captured.out
        assert "R001" in captured.out

    def test_advisories_print_but_planning_proceeds(self, tmp_path, capsys):
        views = tmp_path / "views.dl"
        views.write_text(
            "v1(A, B) :- e(A, C), e(C, B)\n"
            "v3(A, B) :- e(A, M), e(M, B)\n"  # duplicate of v1
        )
        code = main(["rewrite", CLEAN, "--views", str(views), "--preflight"])
        assert code == 0
        captured = capsys.readouterr()
        assert "R101" in captured.err
        assert "v1" in captured.out  # rewriting was still produced

    def test_without_preflight_unsafe_query_is_not_rejected(self, views_file):
        # Pre-existing behaviour: the planner itself accepts unsafe
        # queries (several analyses construct them deliberately); only
        # --preflight turns R001 into a rejection.
        assert main(["rewrite", UNSAFE, "--views", views_file]) == 0
