"""Determinism regressions: fixed seeds must reproduce fixed counts.

Timings vary across machines; the structural series (view classes, view
tuples, coverage classes, GMR counts) are pure functions of the seeds.
Pinning them guards the workload generator and the CoreCover pipeline
against silent behavioural drift — if any of these change, EXPERIMENTS.md
needs re-measuring.
"""

import pytest

from repro.core import core_cover
from repro.workload import WorkloadConfig, generate_workload


class TestPinnedCounts:
    def test_star_workload_seed7(self):
        workload = generate_workload(
            WorkloadConfig(
                shape="star", num_relations=13, num_views=200, seed=7
            )
        )
        result = core_cover(workload.query, workload.views)
        stats = result.stats
        # view_classes counts classes among the 181 predicate-relevant
        # views (the catalog index prunes 19 of 200 before grouping);
        # with prune_views=False it is 119, and the extra 8 classes are
        # all empty-tuple views — the rewritings are identical either way
        # (see test_pruning_preserves_rewritings).
        assert stats.touched_views == 181
        assert stats.view_classes == 111
        assert stats.total_view_tuples == 74
        assert stats.view_tuple_classes == 62
        assert result.minimum_subgoals() == 3

    def test_pruning_preserves_rewritings(self):
        workload = generate_workload(
            WorkloadConfig(
                shape="star", num_relations=13, num_views=200, seed=7
            )
        )
        pruned = core_cover(workload.query, workload.views)
        full = core_cover(workload.query, workload.views, prune_views=False)
        assert full.stats.touched_views == full.stats.total_views == 200
        assert {str(r) for r in pruned.rewritings} == {
            str(r) for r in full.rewritings
        }

    def test_chain_workload_seed7(self):
        workload = generate_workload(
            WorkloadConfig(
                shape="chain", num_relations=40, num_views=200, seed=7
            )
        )
        result = core_cover(workload.query, workload.views)
        stats = result.stats
        assert stats.view_tuple_classes == stats.total_view_tuples
        assert stats.maximal_tuple_classes <= 6
        assert result.has_rewriting

    def test_same_seed_same_rewritings(self):
        config = WorkloadConfig(
            shape="cycle", num_relations=20, query_subgoals=6,
            num_views=80, seed=12,
        )
        first = generate_workload(config)
        second = generate_workload(config)
        r1 = {str(r) for r in core_cover(first.query, first.views).rewritings}
        r2 = {str(r) for r in core_cover(second.query, second.views).rewritings}
        assert r1 == r2
