"""CLI budget flags and taxonomy exit codes."""

import json

import pytest

from repro.cli import main


@pytest.fixture()
def clp(tmp_path):
    views = tmp_path / "views.dl"
    views.write_text(
        """
        v1(M, D, C) :- car(M, D), loc(D, C)
        v2(S, M, C) :- part(S, M, C)
        v4(M, D, C, S) :- car(M, D), loc(D, C), part(S, M, C)
        """
    )
    query = "q1(S, C) :- car(M, a), loc(a, C), part(S, M, C)"
    data = tmp_path / "db.json"
    data.write_text(
        json.dumps(
            {
                "car": [["m1", "a"]],
                "loc": [["a", "c1"]],
                "part": [["s1", "m1", "c1"]],
            }
        )
    )
    return query, str(views), str(data)


class TestBudgetFlags:
    def test_zero_timeout_degrades_gracefully(self, clp, capsys):
        query, views, _data = clp
        code = main(["rewrite", query, "--views", views, "--timeout", "0.0"])
        captured = capsys.readouterr()
        assert code == 1
        assert "budget exhausted" in captured.out
        assert "deadline" in captured.out

    def test_generous_timeout_is_a_no_op(self, clp, capsys):
        query, views, _data = clp
        assert main(
            ["rewrite", query, "--views", views, "--timeout", "30"]
        ) == 0
        assert "v4(M, a, C, S)" in capsys.readouterr().out

    def test_max_hom_searches_trips(self, clp, capsys):
        query, views, _data = clp
        code = main(
            ["rewrite", query, "--views", views, "--max-hom-searches", "0"]
        )
        assert code == 1
        assert "budget exhausted" in capsys.readouterr().out

    def test_strict_budget_exits_69_with_structured_stderr(self, clp, capsys):
        query, views, _data = clp
        code = main(
            ["rewrite", query, "--views", views,
             "--timeout", "0.0", "--strict-budget"]
        )
        captured = capsys.readouterr()
        assert code == 69
        payload = json.loads(captured.err.strip().splitlines()[-1])
        assert payload["error"] == "BudgetExceededError"
        assert payload["exit_code"] == 69

    def test_optimize_accepts_budget_flags(self, clp, capsys):
        query, views, data = clp
        code = main(
            ["optimize", query, "--views", views, "--data", data,
             "--timeout", "0.0"]
        )
        assert code == 1
        assert "budget exhausted" in capsys.readouterr().out


class TestTaxonomyExitCodes:
    def test_syntax_error_exits_65(self, clp, capsys):
        _query, views, _data = clp
        code = main(["rewrite", "q(X :- e(X)", "--views", views])
        captured = capsys.readouterr()
        assert code == 65
        payload = json.loads(captured.err.strip().splitlines()[-1])
        assert payload["error"] == "ParseError"
        assert "column" in payload["message"]

    def test_unknown_backend_exits_70(self, clp, capsys):
        query, views, _data = clp
        code = main(
            ["rewrite", query, "--views", views, "--algorithm", "nope"]
        )
        captured = capsys.readouterr()
        assert code == 70
        payload = json.loads(captured.err.strip().splitlines()[-1])
        assert payload["error"] == "UnknownBackendError"

    def test_duplicate_view_exits_71(self, clp, capsys, tmp_path):
        query, _views, _data = clp
        dupes = tmp_path / "dupes.dl"
        dupes.write_text("v1(X) :- e(X)\nv1(Y) :- f(Y)\n")
        code = main(["rewrite", query, "--views", str(dupes)])
        captured = capsys.readouterr()
        assert code == 71
        payload = json.loads(captured.err.strip().splitlines()[-1])
        assert payload["error"] == "DuplicateViewError"
