"""Tests for the experiment harness and figure drivers."""

import pytest

from repro.experiments import (
    FIGURES,
    SweepConfig,
    format_points,
    run_figure,
    run_sweep,
    sweep_config_for,
)


class TestFigureRegistry:
    def test_all_eight_figures_registered(self):
        assert sorted(FIGURES) == [
            "fig6a", "fig6b", "fig7a", "fig7b",
            "fig8a", "fig8b", "fig9a", "fig9b",
        ]

    def test_unknown_figure_rejected(self):
        with pytest.raises(ValueError):
            sweep_config_for("fig10z")

    def test_config_shapes(self):
        assert sweep_config_for("fig6a").shape == "star"
        assert sweep_config_for("fig8a").shape == "chain"
        assert sweep_config_for("fig6b").nondistinguished == 1


class TestSweeps:
    @pytest.fixture(scope="class")
    def points(self):
        config = SweepConfig(
            shape="star",
            num_relations=13,
            nondistinguished=0,
            view_counts=(20, 60),
            queries_per_point=3,
            seed=2,
        )
        return run_sweep(config)

    def test_one_point_per_view_count(self, points):
        assert [p.num_views for p in points] == [20, 60]

    def test_measurements_populated(self, points):
        for point in points:
            assert point.mean_time_ms > 0
            assert point.max_time_ms >= point.mean_time_ms
            assert point.mean_gmr_count >= 1
            assert point.mean_gmr_size >= 1

    def test_view_classes_grow_with_views(self, points):
        assert points[1].mean_view_classes > points[0].mean_view_classes

    def test_format_points_renders_rows(self, points):
        text = format_points(points)
        assert "views" in text
        assert str(points[0].num_views) in text

    def test_run_figure_smoke(self):
        points = run_figure("fig9b", view_counts=(15,), queries_per_point=2)
        assert len(points) == 1
        # Chain representative classes stay small (the paper's Fig 9(b)).
        assert points[0].mean_maximal_tuple_classes < 10
