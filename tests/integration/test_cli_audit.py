"""Exit-code matrix for ``repro audit`` under both output formats.

The audit subcommand mirrors lint's contract: happy path exits 0 with
a text summary or SARIF on stdout, a failed gate raises
``AnalysisError`` through the taxonomy handler (exit 73, structured
one-line JSON on stderr), and baseline files gate CI on *new* findings
only.  Malformed baselines are data errors (exit 65).
"""

import json

import pytest

from repro.cli import main

CLEAN = "v1(X, Y) :- a(X, Y)\nv2(Y, Z) :- b(Y, Z)\n"
# C103 is an ERROR: the comparison is false on every database.
UNSAT = "v1(X, Y) :- a(X, Y)\nbad(X) :- a(X, Y), 2 > 3\n"
# C104 is a WARNING: v2 duplicates v1 up to renaming.
TWINS = "v1(X, Y) :- a(X, Y)\nv2(P, Q) :- a(P, Q)\n"


def views_file(tmp_path, text, name="views.dl"):
    path = tmp_path / name
    path.write_text(text)
    return str(path)


def last_stderr_json(captured):
    lines = [line for line in captured.err.splitlines() if line.strip()]
    return json.loads(lines[-1])


class TestExitCodes:
    @pytest.mark.parametrize("fmt", ["text", "json"])
    def test_clean_catalog_exits_zero(self, fmt, tmp_path, capsys):
        path = views_file(tmp_path, CLEAN)
        assert main(["audit", path, "--format", fmt]) == 0
        out = capsys.readouterr().out
        if fmt == "text":
            assert "audited 2 view(s)" in out
        else:
            assert json.loads(out)["runs"]

    @pytest.mark.parametrize("fmt", ["text", "json"])
    def test_error_finding_exits_73(self, fmt, tmp_path, capsys):
        path = views_file(tmp_path, UNSAT)
        code = main(["audit", path, "--format", fmt])
        captured = capsys.readouterr()
        assert code == 73
        payload = last_stderr_json(captured)
        assert payload["error"] == "AnalysisError"
        assert payload["exit_code"] == 73
        assert {d["code"] for d in payload["diagnostics"]} == {"C103"}
        # The report itself still lands on stdout before the gate fires.
        if fmt == "json":
            sarif = json.loads(captured.out)
            driver = sarif["runs"][0]["tool"]["driver"]
            assert driver["name"] == "repro-audit"

    def test_fail_on_never_reports_but_passes(self, tmp_path, capsys):
        path = views_file(tmp_path, UNSAT)
        assert main(["audit", path, "--fail-on", "never"]) == 0
        assert "C103" in capsys.readouterr().out

    def test_fail_on_warning_catches_duplicates(self, tmp_path, capsys):
        path = views_file(tmp_path, TWINS)
        assert main(["audit", path]) == 0  # default gate is error-only
        capsys.readouterr()
        assert main(["audit", path, "--fail-on", "warning"]) == 73
        payload = last_stderr_json(capsys.readouterr())
        assert {d["code"] for d in payload["diagnostics"]} == {"C104"}

    def test_fail_on_info_catches_schema_gaps(self, tmp_path, capsys):
        path = views_file(tmp_path, CLEAN)
        schema = tmp_path / "schema.json"
        schema.write_text(json.dumps({"a": 2, "b": 2, "ghost": 3}))
        code = main(
            ["audit", path, "--schema", str(schema), "--fail-on", "info"]
        )
        assert code == 73
        payload = last_stderr_json(capsys.readouterr())
        assert any(d["code"] == "C105" for d in payload["diagnostics"])

    def test_select_and_ignore_narrow_the_gate(self, tmp_path, capsys):
        path = views_file(tmp_path, UNSAT)
        assert main(["audit", path, "--ignore", "C103"]) == 0
        capsys.readouterr()
        assert main(["audit", path, "--select", "C104"]) == 0
        capsys.readouterr()
        assert main(["audit", path, "--select", "C103,C104"]) == 73

    def test_sarif_points_at_the_views_file(self, tmp_path, capsys):
        path = views_file(tmp_path, TWINS)
        assert main(["audit", path, "--format", "json"]) == 0
        sarif = json.loads(capsys.readouterr().out)
        uris = {
            loc["physicalLocation"]["artifactLocation"]["uri"]
            for run in sarif["runs"]
            for result in run["results"]
            for loc in result.get("locations", [])
        }
        assert uris == {path}


class TestBaselines:
    def test_pin_then_suppress_then_catch_new(self, tmp_path, capsys):
        path = views_file(tmp_path, UNSAT)
        baseline = str(tmp_path / "baseline.json")
        code = main(
            ["audit", path, "--baseline", baseline, "--update-baseline"]
        )
        captured = capsys.readouterr()
        assert code == 0
        assert "pinned 1 finding(s)" in captured.out
        # The pinned finding no longer fails the gate...
        assert main(["audit", path, "--baseline", baseline]) == 0
        capsys.readouterr()
        # ...but a *new* error does, and the summary says what was
        # suppressed so the gate's arithmetic is auditable.
        grown = views_file(
            tmp_path, UNSAT + "worse(X) :- a(X, Y), 3 > 4\n", "grown.dl"
        )
        assert main(["audit", grown, "--baseline", baseline]) == 73
        payload = last_stderr_json(capsys.readouterr())
        assert "1 baseline-suppressed" in payload["message"]
        assert len(payload["diagnostics"]) == 1
        assert payload["diagnostics"][0]["subject"] == "view:worse"

    def test_baseline_survives_view_reordering(self, tmp_path, capsys):
        path = views_file(tmp_path, UNSAT)
        baseline = str(tmp_path / "baseline.json")
        main(["audit", path, "--baseline", baseline, "--update-baseline"])
        capsys.readouterr()
        reordered = views_file(
            tmp_path,
            "bad(X) :- a(X, Y), 2 > 3\nv1(X, Y) :- a(X, Y)\n",
            "reordered.dl",
        )
        assert main(["audit", reordered, "--baseline", baseline]) == 0

    def test_update_baseline_requires_baseline_path(self, tmp_path, capsys):
        path = views_file(tmp_path, CLEAN)
        assert main(["audit", path, "--update-baseline"]) == 65
        payload = last_stderr_json(capsys.readouterr())
        assert payload["error"] == "ParseError"

    def test_malformed_baseline_is_a_data_error(self, tmp_path, capsys):
        path = views_file(tmp_path, CLEAN)
        baseline = tmp_path / "baseline.json"
        baseline.write_text("{not json")
        assert main(["audit", path, "--baseline", str(baseline)]) == 65
        capsys.readouterr()
        assert main(["audit", path, "--baseline",
                     str(tmp_path / "missing.json")]) == 65
        payload = last_stderr_json(capsys.readouterr())
        assert payload["exit_code"] == 65

    def test_update_baseline_on_clean_catalog_pins_nothing(
        self, tmp_path, capsys
    ):
        path = views_file(tmp_path, CLEAN)
        baseline = tmp_path / "baseline.json"
        code = main(
            ["audit", path, "--baseline", str(baseline), "--update-baseline"]
        )
        assert code == 0
        assert json.loads(baseline.read_text())["fingerprints"] == {}
