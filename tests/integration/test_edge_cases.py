"""Edge cases pushed through the full pipeline.

Boolean (zero-ary) queries, constant-only atoms, empty view relations,
duplicate body atoms, views identical to the query, permuted view heads —
each exercised end to end: CoreCover, equivalence, execution.
"""

import pytest

from repro.core import core_cover, core_cover_star
from repro.cost import optimal_plan_m2
from repro.datalog import parse_query
from repro.engine import Database, evaluate, materialize_views
from repro.views import ViewCatalog, is_equivalent_rewriting


class TestBooleanQueries:
    def test_boolean_query_rewritten(self):
        q = parse_query("q() :- e(X, Y), f(Y, X)")
        views = ViewCatalog(["v(X, Y) :- e(X, Y), f(Y, X)"])
        result = core_cover(q, views)
        assert result.has_rewriting
        assert [str(r) for r in result.rewritings] == ["q() :- v(X, Y)"]

    def test_boolean_answers_execute(self):
        q = parse_query("q() :- e(X, Y), f(Y, X)")
        views = ViewCatalog(["v(X, Y) :- e(X, Y), f(Y, X)"])
        base = Database.from_dict({"e": [(1, 2)], "f": [(2, 1)]})
        vdb = materialize_views(views, base)
        rewriting = core_cover(q, views).rewritings[0]
        assert evaluate(rewriting, vdb) == evaluate(q, base) == {()}

    def test_boolean_false_on_empty_data(self):
        q = parse_query("q() :- e(X, Y)")
        views = ViewCatalog(["v(X, Y) :- e(X, Y)"])
        base = Database()
        base.ensure_relation("e", 2)
        vdb = materialize_views(views, base)
        rewriting = core_cover(q, views).rewritings[0]
        assert evaluate(rewriting, vdb) == frozenset()

    def test_boolean_query_folds_before_covering(self):
        # Minimization folds the two atoms; one view suffices.
        q = parse_query("q() :- e(X, Y), e(Z, W)")
        views = ViewCatalog(["v(A, B) :- e(A, B)"])
        result = core_cover(q, views)
        assert result.minimum_subgoals() == 1


class TestConstantHeavyQueries:
    def test_fully_ground_subgoal(self):
        q = parse_query("q(X) :- e(X, a), g(a, b)")
        views = ViewCatalog(
            ["v1(X) :- e(X, a)", "v2() :- g(a, b)"]
        )
        result = core_cover(q, views)
        assert result.has_rewriting
        rewriting = result.rewritings[0]
        base = Database.from_dict({"e": [(1, "a"), (2, "c")], "g": [("a", "b")]})
        vdb = materialize_views(views, base)
        assert evaluate(rewriting, vdb) == evaluate(q, base) == {(1,)}

    def test_constant_in_head(self):
        q = parse_query("q(X, tag) :- e(X, X)")
        views = ViewCatalog(["v(A) :- e(A, A)"])
        result = core_cover(q, views)
        assert result.has_rewriting
        base = Database.from_dict({"e": [(1, 1), (1, 2)]})
        vdb = materialize_views(views, base)
        assert evaluate(result.rewritings[0], vdb) == {(1, "tag")}

    def test_view_pinning_wrong_constant_useless(self):
        q = parse_query("q(X) :- e(X, a)")
        views = ViewCatalog(["v(X) :- e(X, b)"])
        assert not core_cover(q, views).has_rewriting


class TestDegenerateShapes:
    def test_duplicate_body_atoms_minimized_away(self):
        q = parse_query("q(X) :- e(X, X), e(X, X)")
        views = ViewCatalog(["v(A) :- e(A, A)"])
        result = core_cover(q, views)
        assert len(result.minimized_query.body) == 1
        assert result.minimum_subgoals() == 1

    def test_view_identical_to_query(self):
        q = parse_query("q(X, Y) :- e(X, Z), f(Z, Y)")
        views = ViewCatalog(["mirror(X, Y) :- e(X, Z), f(Z, Y)"])
        result = core_cover(q, views)
        assert [str(r) for r in result.rewritings] == [
            "q(X, Y) :- mirror(X, Y)"
        ]

    def test_view_with_permuted_head(self):
        q = parse_query("q(X, Y) :- e(X, Y)")
        views = ViewCatalog(["flip(B, A) :- e(A, B)"])
        result = core_cover(q, views)
        assert [str(r) for r in result.rewritings] == ["q(X, Y) :- flip(Y, X)"]
        base = Database.from_dict({"e": [(1, 2)]})
        vdb = materialize_views(views, base)
        assert evaluate(result.rewritings[0], vdb) == {(1, 2)}

    def test_single_variable_query(self):
        q = parse_query("q(X) :- e(X, X)")
        views = ViewCatalog(["v(A, B) :- e(A, B)"])
        result = core_cover(q, views)
        assert [str(r) for r in result.rewritings] == ["q(X) :- v(X, X)"]

    def test_unary_relations(self):
        q = parse_query("q(X) :- g(X), h(X)")
        views = ViewCatalog(["v1(A) :- g(A)", "v2(A) :- h(A)", "v3(A) :- g(A), h(A)"])
        result = core_cover(q, views)
        assert result.minimum_subgoals() == 1  # v3 covers both


class TestEmptyData:
    def test_plan_over_empty_views_costs_relation_reads_only(self):
        q = parse_query("q(X) :- e(X, Y)")
        views = ViewCatalog(["v(X, Y) :- e(X, Y)"])
        vdb = Database()
        vdb.ensure_relation("v", 2)
        rewriting = core_cover(q, views).rewritings[0]
        optimized = optimal_plan_m2(rewriting, vdb)
        assert optimized.cost == 0
        assert optimized.execution.answer == frozenset()

    def test_star_space_on_no_views(self):
        q = parse_query("q(X) :- e(X, X)")
        result = core_cover_star(q, ViewCatalog([]))
        assert not result.has_rewriting
        assert result.filter_candidates == ()


class TestRepeatedViewUse:
    def test_rewriting_uses_same_view_twice(self):
        q = parse_query("q(X, Z) :- e(X, Y), e(Y, Z)")
        views = ViewCatalog(["v(A, B) :- e(A, B)"])
        result = core_cover(q, views)
        assert result.minimum_subgoals() == 2
        rewriting = result.rewritings[0]
        assert is_equivalent_rewriting(rewriting, q, views)
        base = Database.from_dict({"e": [(1, 2), (2, 3)]})
        vdb = materialize_views(views, base)
        assert evaluate(rewriting, vdb) == {(1, 3)}
