"""Randomized end-to-end validation of the closed-world guarantee.

For random workloads and random base instances: materialize the views,
run every CoreCover rewriting, and compare with the query's answer on the
base data.  This exercises the whole stack — generator, canonical
databases, tuple-cores, set cover, engine — against ground truth.
"""

import random

import pytest

from repro.core import core_cover, core_cover_star
from repro.engine import evaluate, materialize_views
from repro.workload import (
    WorkloadConfig,
    generate_workload,
    schema_of,
    uniform_database,
)


@pytest.mark.parametrize("shape,nrel", [("star", 10), ("chain", 20)])
@pytest.mark.parametrize("seed", [1, 2, 3])
def test_gmrs_compute_query_answer(shape, nrel, seed):
    config = WorkloadConfig(
        shape=shape,
        num_relations=nrel,
        query_subgoals=5,
        num_views=40,
        seed=seed,
    )
    workload = generate_workload(config)
    result = core_cover(workload.query, workload.views)
    assert result.has_rewriting

    schema = schema_of(workload.query, *workload.views.definitions())
    rng = random.Random(seed * 13)
    base = uniform_database(schema, 60, 8, rng)
    vdb = materialize_views(workload.views, base)
    expected = evaluate(workload.query, base)
    for rewriting in result.rewritings:
        assert evaluate(rewriting, vdb) == expected, str(rewriting)


@pytest.mark.parametrize("seed", [4, 5])
def test_all_minimal_rewritings_compute_query_answer(seed):
    config = WorkloadConfig(
        shape="star",
        num_relations=8,
        query_subgoals=4,
        num_views=25,
        nondistinguished=1,
        seed=seed,
    )
    workload = generate_workload(config)
    result = core_cover_star(workload.query, workload.views, max_rewritings=20)
    assert result.has_rewriting

    schema = schema_of(workload.query, *workload.views.definitions())
    rng = random.Random(seed)
    base = uniform_database(schema, 40, 5, rng)
    vdb = materialize_views(workload.views, base)
    expected = evaluate(workload.query, base)
    for rewriting in result.rewritings:
        assert evaluate(rewriting, vdb) == expected, str(rewriting)


def test_filters_preserve_answers():
    """Adding empty-core filter subgoals never changes the answer."""
    from repro.core import add_filter_subgoal

    config = WorkloadConfig(
        shape="star", num_relations=8, query_subgoals=4, num_views=30, seed=9
    )
    workload = generate_workload(config)
    result = core_cover(workload.query, workload.views)

    schema = schema_of(workload.query, *workload.views.definitions())
    base = uniform_database(schema, 50, 6, random.Random(99))
    vdb = materialize_views(workload.views, base)
    expected = evaluate(workload.query, base)

    rewriting = result.rewritings[0]
    for filter_tuple in result.filter_candidates[:5]:
        extended = add_filter_subgoal(rewriting, filter_tuple)
        assert evaluate(extended, vdb) == expected, str(extended)
