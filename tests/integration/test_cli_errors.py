"""Audit: every taxonomy error reaches the CLI surface correctly.

For each documented exit code (65-79) a real command line triggers the
error, and the contract is checked end to end: the process exit code
matches the class's ``exit_code``, and the **last stderr line** is the
structured one-line JSON rendering (``error``/``exit_code``/``message``)
— under ``--format text`` and ``--format json`` alike for subcommands
that render their happy-path output in multiple formats.

The serve-tier codes (78 overload, 79 shutting down) are triggered
through a real in-process daemon: ``repro serve send`` reconstructs the
daemon's structured error response and exits with the same status a
local run would have.
"""

import json
import time
from contextlib import ExitStack

import pytest

from repro import ViewCatalog
from repro.cli import main
from repro.testing.faults import ExitFault, RaiseFault, StallFault, inject

QUERY = "q(X, Y) :- a(X, Z), a(Z, Z), b(Z, Y)"
VIEWS_TEXT = """
v1(A, B) :- a(A, B), a(B, B)
v2(C, D) :- a(C, E), b(C, D)
v3(A) :- a(A, A)
"""


@pytest.fixture()
def views_file(tmp_path):
    path = tmp_path / "views.dl"
    path.write_text(VIEWS_TEXT)
    return str(path)


def _request_file(tmp_path, *payloads):
    path = tmp_path / "requests.ndjson"
    path.write_text("\n".join(json.dumps(p) for p in payloads) + "\n")
    return str(path)


def _case_parse(tmp_path, views_file):
    return ["rewrite", "q(X :- a(X)", "--views", views_file], None


def _case_unsafe(tmp_path, views_file):
    requests = _request_file(tmp_path, {"query": "q(X) :- a(Y)"})
    return ["batch", requests, "--views", views_file], None


def _case_arity(tmp_path, views_file):
    requests = _request_file(tmp_path, {"query": "q(X) :- a(X), a(X, X)"})
    return ["batch", requests, "--views", views_file], None


def _case_unknown_view(tmp_path, views_file):
    requests = _request_file(tmp_path, {"query": QUERY, "views": ["nope"]})
    return ["batch", requests, "--views", views_file], None


def _case_budget(tmp_path, views_file):
    return [
        "rewrite", QUERY, "--views", views_file,
        "--timeout", "0", "--strict-budget",
    ], None


def _case_chain_config(tmp_path, views_file):
    requests = _request_file(tmp_path, {"query": QUERY})
    return [
        "batch", requests, "--views", views_file,
        "--chain", "corecover,inverse-rules",
    ], None


def _case_duplicate_view(tmp_path, views_file):
    dup = tmp_path / "dup.dl"
    dup.write_text("v1(A, B) :- a(A, B)\nv1(C, D) :- b(C, D)\n")
    return ["rewrite", QUERY, "--views", str(dup)], None


def _case_unsupported(tmp_path, views_file):
    return [
        "rewrite", "q(X) :- a(X, Y), X < Y", "--views", views_file,
    ], None


def _case_analysis(tmp_path, views_file):
    return ["lint", "q(X) :- a(Y)", "--views", views_file], None


def _case_retry_exhausted(tmp_path, views_file):
    requests = _request_file(tmp_path, {"query": QUERY})
    argv = [
        "batch", requests, "--views", views_file,
        "--chain", "corecover", "--max-attempts", "1",
    ]
    return argv, inject(RaiseFault("hom_search", times=None))


def _case_circuit_open(tmp_path, views_file):
    requests = _request_file(
        tmp_path, {"id": "b1", "query": QUERY}, {"id": "b2", "query": QUERY}
    )
    argv = [
        "batch", requests, "--views", views_file,
        "--chain", "corecover", "--max-attempts", "1",
        "--breaker-window", "1", "--breaker-threshold", "1.0",
        "--breaker-cooldown", "9999",
    ]
    return argv, inject(RaiseFault("hom_search", times=None))


def _case_worker_crash(tmp_path, views_file):
    # The active fault plan is fork-inherited by every pool worker, so
    # the worker SIGKILLs itself on its first task dispatch; the parent
    # times the silence out (deadline + grace) and the batch's terminal
    # failure is the WorkerCrashError.
    requests = _request_file(tmp_path, {"id": "w1", "query": QUERY,
                                        "timeout": 0.2})
    argv = [
        "batch", requests, "--views", views_file,
        "--chain", "corecover", "--workers", "2", "--task-grace", "0.5",
    ]
    return argv, inject(ExitFault("worker_dispatch", times=None))


def _case_cache_corruption(tmp_path, views_file):
    requests = _request_file(tmp_path, {"query": QUERY})
    rogue = tmp_path / "not-a-directory"
    rogue.write_text("collision")
    return [
        "batch", requests, "--views", views_file, "--cache", str(rogue),
    ], None


def _serve_config(**overrides):
    from repro.parallel import SupervisorPolicy
    from repro.parallel.worker import WorkerConfig
    from repro.serve import ServeConfig
    from repro.service import ServicePolicy

    overrides.setdefault(
        "worker",
        WorkerConfig(policy=ServicePolicy(chain=("corecover",)), pool_size=2),
    )
    overrides.setdefault("supervisor", SupervisorPolicy(workers=1))
    return ServeConfig(**overrides)


def _serve_catalog():
    return ViewCatalog(
        line.strip() for line in VIEWS_TEXT.splitlines() if line.strip()
    )


def _serve_argv(handle, requests):
    _, host, port = handle.address
    return ["serve", "send", requests, "--host", host, "--port", str(port)]


def _case_overload(tmp_path, views_file):
    # The "noisy" tenant's rate override is zero: its very first
    # request sheds with OverloadError/78 and a retry hint.
    from repro.serve import AdmissionPolicy
    from repro.serve.testing import running_daemon

    requests = _request_file(
        tmp_path, {"id": "n1", "query": QUERY, "tenant": "noisy"}
    )
    stack = ExitStack()
    handle = stack.enter_context(
        running_daemon(
            _serve_config(
                admission=AdmissionPolicy(tenant_rates={"noisy": 0.0})
            ),
            catalog=_serve_catalog(),
        )
    )
    return _serve_argv(handle, requests), stack


def _case_shutting_down(tmp_path, views_file):
    # A stalled request (on a side connection) keeps the drain from
    # completing, so the daemon deterministically answers the post-drain
    # plan frame with ShuttingDownError/79 before it exits.
    from repro.serve.testing import running_daemon

    requests = _request_file(
        tmp_path, {"id": "d", "type": "drain"}, {"id": "l1", "query": QUERY}
    )
    stack = ExitStack()
    stack.enter_context(inject(StallFault("worker_dispatch", seconds=2.0)))
    handle = stack.enter_context(
        running_daemon(_serve_config(), catalog=_serve_catalog())
    )
    blocker = stack.enter_context(handle.client())
    blocker.send({"id": "blocker", "query": QUERY})
    limit = time.monotonic() + 30.0
    while time.monotonic() < limit:
        if handle.daemon.pool.busy_workers() == 1:
            break
        time.sleep(0.02)
    else:  # pragma: no cover - diagnostic only
        raise TimeoutError("blocker request never reached a worker")
    return _serve_argv(handle, requests), stack


def _case_catalog_corruption(tmp_path, views_file):
    # A state dir whose journal claims a content root the views cannot
    # reproduce: recovery quarantines the catalog, and the plan frame
    # naming it answers with CatalogCorruptionError/80 over the wire.
    from repro.serve.journal import JOURNAL_NAME, CatalogJournal
    from repro.serve.testing import running_daemon

    state = tmp_path / "state"
    state.mkdir()
    journal = CatalogJournal(state / JOURNAL_NAME)
    journal.append(
        {
            "op": "register",
            "name": "t-bad",
            "views": [
                line.strip()
                for line in VIEWS_TEXT.splitlines()
                if line.strip()
            ],
            "root": "0" * 64,
        }
    )
    journal.close()
    requests = _request_file(
        tmp_path, {"id": "c1", "query": QUERY, "catalog": "t-bad"}
    )
    stack = ExitStack()
    handle = stack.enter_context(
        running_daemon(_serve_config(state_dir=str(state)))
    )
    return _serve_argv(handle, requests), stack


CASES = [
    pytest.param(_case_parse, 65, "ParseError", id="65-parse"),
    pytest.param(_case_unsafe, 66, "UnsafeQueryError", id="66-unsafe"),
    pytest.param(_case_arity, 67, "ArityMismatchError", id="67-arity"),
    pytest.param(
        _case_unknown_view, 68, "UnknownViewError", id="68-unknown-view"
    ),
    pytest.param(_case_budget, 69, "BudgetExceededError", id="69-budget"),
    pytest.param(
        _case_chain_config, 70, "ChainConfigError", id="70-chain-config"
    ),
    pytest.param(
        _case_duplicate_view, 71, "DuplicateViewError", id="71-duplicate"
    ),
    pytest.param(
        _case_unsupported, 72, "UnsupportedQueryError", id="72-unsupported"
    ),
    pytest.param(_case_analysis, 73, "AnalysisError", id="73-analysis"),
    pytest.param(
        _case_retry_exhausted, 74, "RetryExhaustedError", id="74-retry"
    ),
    pytest.param(
        _case_circuit_open, 75, "CircuitOpenError", id="75-circuit-open"
    ),
    pytest.param(
        _case_cache_corruption, 76, "CacheCorruptionError", id="76-cache"
    ),
    pytest.param(
        _case_worker_crash, 77, "WorkerCrashError", id="77-worker-crash"
    ),
    pytest.param(_case_overload, 78, "OverloadError", id="78-overload"),
    pytest.param(
        _case_shutting_down, 79, "ShuttingDownError", id="79-shutting-down"
    ),
    pytest.param(
        _case_catalog_corruption,
        80,
        "CatalogCorruptionError",
        id="80-catalog-corruption",
    ),
]

#: Subcommands whose happy-path output has a --format flag; the error
#: contract must hold regardless of the chosen rendering.
_FORMATTED = {"batch", "lint", "serve"}


def _run(argv, fault_context, capsys):
    if fault_context is not None:
        with fault_context:
            code = main(argv)
    else:
        code = main(argv)
    return code, capsys.readouterr()


def _assert_structured_stderr(captured, exit_code, error_name):
    lines = [line for line in captured.err.splitlines() if line.strip()]
    assert lines, "expected a structured error line on stderr"
    payload = json.loads(lines[-1])
    assert payload["error"] == error_name
    assert payload["exit_code"] == exit_code
    assert payload["message"]


@pytest.mark.parametrize("case, exit_code, error_name", CASES)
def test_exit_code_and_structured_stderr(
    case, exit_code, error_name, tmp_path, views_file, capsys
):
    argv, fault_context = case(tmp_path, views_file)
    code, captured = _run(argv, fault_context, capsys)
    assert code == exit_code
    _assert_structured_stderr(captured, exit_code, error_name)


@pytest.mark.parametrize("fmt", ["text", "json"])
@pytest.mark.parametrize("case, exit_code, error_name", CASES)
def test_contract_holds_under_both_formats(
    case, exit_code, error_name, fmt, tmp_path, views_file, capsys
):
    argv, fault_context = case(tmp_path, views_file)
    if argv[0] not in _FORMATTED:
        pytest.skip(f"{argv[0]} has a single output format")
    argv = [*argv, "--format", fmt]
    code, captured = _run(argv, fault_context, capsys)
    assert code == exit_code
    _assert_structured_stderr(captured, exit_code, error_name)


def test_every_taxonomy_exit_code_is_audited():
    """The audit table covers the documented code range with no gaps."""
    audited = sorted(code for _, code, _ in (p.values for p in CASES))
    assert audited == list(range(65, 81))
