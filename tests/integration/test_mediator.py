"""Tests for the Mediator facade."""

import pytest

from repro.datalog import parse_query
from repro.engine import Database, evaluate, materialize_views
from repro.experiments.paper_examples import car_loc_part, car_loc_part_database
from repro.mediator import Mediator
from repro.views import ViewCatalog


@pytest.fixture(scope="module")
def clp():
    return car_loc_part()


@pytest.fixture(scope="module")
def base():
    return car_loc_part_database()


class TestExactAnswers:
    @pytest.mark.parametrize("cost_model", ["m1", "m2", "m3"])
    def test_answers_match_query_on_base(self, clp, base, cost_model):
        mediator = Mediator(clp.views, base_database=base, cost_model=cost_model)
        answer = mediator.answer(clp.query)
        assert answer.exact
        assert answer.method == "rewriting"
        assert answer.rows == evaluate(clp.query, base)

    def test_accepts_prematerialized_views(self, clp, base):
        vdb = materialize_views(clp.views, base)
        mediator = Mediator(clp.views, view_database=vdb)
        assert mediator.answer(clp.query).rows == evaluate(clp.query, base)

    def test_plan_cached(self, clp, base):
        mediator = Mediator(clp.views, base_database=base)
        first = mediator.plan_for(clp.query)
        second = mediator.plan_for(clp.query)
        assert first is second
        assert mediator.cache_info()["entries"] == 1

    def test_explain_mentions_plan(self, clp, base):
        mediator = Mediator(clp.views, base_database=base)
        report = mediator.explain(clp.query)
        assert "rewriting :" in report and "cost" in report


class TestFallback:
    def test_certain_answers_when_unrewritable(self):
        # g is not derivable from the views: no equivalent rewriting, but
        # the e-part still yields certain answers... here none are certain.
        query = parse_query("q(X, Y) :- e(X, Y), g(Y)")
        views = ViewCatalog(["v(A, B) :- e(A, B)"])
        base = Database.from_dict({"e": [(1, 2)], "g": [(2,)]})
        mediator = Mediator(views, base_database=base)
        answer = mediator.answer(query)
        assert not answer.exact
        assert answer.method == "certain"
        assert answer.rows <= evaluate(query, base)

    def test_certain_answers_can_be_complete_anyway(self):
        # The composed view loses nothing for this query shape.
        query = parse_query("q(X, Y) :- e(X, Z), f(Z, Y)")
        views = ViewCatalog(["v(A, B) :- e(A, C), f(C, B)"])
        base = Database.from_dict({"e": [(1, 5)], "f": [(5, 9)]})
        mediator = Mediator(views, base_database=base)
        answer = mediator.answer(query)
        assert answer.exact  # v IS an equivalent rewriting here
        assert answer.rows == {(1, 9)}

    def test_explain_for_unrewritable(self):
        query = parse_query("q(X) :- g(X)")
        views = ViewCatalog(["v(A, B) :- e(A, B)"])
        base = Database.from_dict({"e": [(1, 2)]})
        base.ensure_relation("g", 1)
        mediator = Mediator(views, base_database=base)
        assert "inverse-rules" in mediator.explain(query)
        assert mediator.cache_info()["unrewritable"] == 1


class TestValidation:
    def test_requires_some_database(self, clp):
        with pytest.raises(ValueError):
            Mediator(clp.views)

    def test_unknown_cost_model(self, clp, base):
        with pytest.raises(ValueError):
            Mediator(clp.views, base_database=base, cost_model="m9")

    def test_views_iterable_coerced(self, base, clp):
        mediator = Mediator(list(clp.views), base_database=base)
        assert mediator.answer(clp.query).exact
