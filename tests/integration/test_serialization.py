"""Tests for the serialization helpers."""

import pytest

from repro.core import core_cover
from repro.datalog import parse_query
from repro.engine import Database
from repro.experiments.paper_examples import car_loc_part
from repro.serialization import (
    catalog_from_text,
    catalog_to_text,
    database_from_json,
    database_to_json,
    load,
    save,
    workload_from_json,
    workload_to_json,
)
from repro.workload import WorkloadConfig, generate_workload


class TestCatalogRoundTrip:
    def test_round_trip_preserves_definitions(self):
        clp = car_loc_part()
        text = catalog_to_text(clp.views)
        restored = catalog_from_text(text)
        assert restored.names() == clp.views.names()
        assert [str(v) for v in restored] == [str(v) for v in clp.views]

    def test_restored_catalog_behaves_identically(self):
        clp = car_loc_part()
        restored = catalog_from_text(catalog_to_text(clp.views))
        original = {str(r) for r in core_cover(clp.query, clp.views).rewritings}
        rerun = {str(r) for r in core_cover(clp.query, restored).rewritings}
        assert original == rerun


class TestDatabaseRoundTrip:
    def test_round_trip(self):
        db = Database.from_dict({"e": [(1, "a"), (2, "b")], "g": [(True,)]})
        restored = database_from_json(database_to_json(db))
        assert restored.relation("e").tuples == db.relation("e").tuples
        assert restored.relation("g").tuples == db.relation("g").tuples

    def test_non_json_values_rejected(self):
        db = Database.from_dict({"e": [((1, 2),)]})  # tuple value
        with pytest.raises(TypeError):
            database_to_json(db)

    def test_output_is_deterministic(self):
        db = Database.from_dict({"e": [(3,), (1,), (2,)]})
        assert database_to_json(db) == database_to_json(db)


class TestWorkloadRoundTrip:
    def test_round_trip(self):
        workload = generate_workload(
            WorkloadConfig(shape="star", num_views=15, seed=6)
        )
        restored = workload_from_json(workload_to_json(workload))
        assert str(restored.query) == str(workload.query)
        assert restored.views.names() == workload.views.names()
        assert restored.config == workload.config

    def test_restored_workload_rewrites_identically(self):
        workload = generate_workload(
            WorkloadConfig(shape="chain", num_relations=40, num_views=25, seed=2)
        )
        restored = workload_from_json(workload_to_json(workload))
        original = core_cover(workload.query, workload.views)
        rerun = core_cover(restored.query, restored.views)
        assert {str(r) for r in original.rewritings} == {
            str(r) for r in rerun.rewritings
        }


class TestFiles:
    def test_save_and_load(self, tmp_path):
        path = tmp_path / "db.json"
        db = Database.from_dict({"e": [(1, 2)]})
        save(database_to_json(db), path)
        assert database_from_json(load(path)).relation("e").tuples == {(1, 2)}
