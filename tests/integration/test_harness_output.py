"""Tests for the experiment harness's output helpers."""

import csv

import pytest

from repro.experiments import (
    SweepConfig,
    format_points,
    print_figure,
    run_sweep,
    write_csv,
)


@pytest.fixture(scope="module")
def points():
    config = SweepConfig(
        shape="chain",
        num_relations=40,
        nondistinguished=0,
        view_counts=(20,),
        queries_per_point=2,
        seed=3,
    )
    return run_sweep(config)


class TestWriteCsv:
    def test_csv_round_trips_fields(self, points, tmp_path):
        path = tmp_path / "sweep.csv"
        write_csv(points, str(path))
        with open(path) as handle:
            rows = list(csv.DictReader(handle))
        assert len(rows) == 1
        assert int(rows[0]["num_views"]) == 20
        assert float(rows[0]["mean_time_ms"]) > 0

    def test_header_covers_all_fields(self, points, tmp_path):
        import dataclasses

        from repro.experiments import SweepPoint

        path = tmp_path / "sweep.csv"
        write_csv(points, str(path))
        header = open(path).readline().strip().split(",")
        assert header == [f.name for f in dataclasses.fields(SweepPoint)]


class TestPrintFigure:
    @pytest.mark.parametrize("figure", ["fig8a", "fig9a", "fig9b"])
    def test_prints_caption_and_rows(self, points, figure, capsys):
        print_figure(points, figure)
        out = capsys.readouterr().out
        assert figure in out
        assert "20" in out

    def test_format_points_alignment(self, points):
        text = format_points(points)
        lines = text.splitlines()
        assert len(lines) == 3  # header, rule, one data row
        assert lines[0].split()[0] == "views"
