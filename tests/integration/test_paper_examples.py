"""Sanity tests for the paper-example fixtures themselves."""

import pytest

from repro.engine import evaluate, materialize_views
from repro.experiments.paper_examples import (
    car_loc_part,
    car_loc_part_database,
    car_loc_part_selective_database,
    example_31,
    example_41,
    example_42,
    example_61,
    gmr_not_cmr,
    section8_ucq,
)
from repro.views import is_equivalent_rewriting


class TestCarLocPart:
    def test_views_match_paper(self):
        clp = car_loc_part()
        assert clp.views.names() == ("v1", "v2", "v3", "v4", "v5")
        assert clp.views.get("v4").arity == 4

    def test_databases_are_nonempty_and_answerable(self):
        clp = car_loc_part()
        for base in (car_loc_part_database(), car_loc_part_selective_database()):
            assert evaluate(clp.query, base), "fixture must exercise the join"

    def test_selective_database_makes_v3_tiny(self):
        clp = car_loc_part()
        vdb = materialize_views(clp.views, car_loc_part_selective_database())
        assert len(vdb.relation("v3")) <= 3
        assert len(vdb.relation("v1")) >= 100


class TestExample31:
    @pytest.mark.parametrize("m", [1, 2, 3, 5])
    def test_rewritings_are_equivalent(self, m):
        ex = example_31(m)
        assert len(ex.rewritings) == m
        for rewriting in ex.rewritings:
            assert is_equivalent_rewriting(rewriting, ex.query, ex.views)

    def test_subgoal_counts_increase(self):
        ex = example_31(4)
        assert [len(r.body) for r in ex.rewritings] == [1, 2, 3, 4]

    def test_invalid_m(self):
        with pytest.raises(ValueError):
            example_31(0)


class TestOtherFixtures:
    def test_example_41_query_is_minimal(self):
        from repro.containment import is_minimal

        assert is_minimal(example_41().query)

    def test_example_42_sizes(self):
        ex = example_42(4)
        assert len(ex.query.body) == 8
        assert len(ex.views) == 4  # v plus v1..v3

    def test_example_42_requires_k_at_least_2(self):
        with pytest.raises(ValueError):
            example_42(1)

    def test_example_61_rewritings_are_equivalent(self):
        ex = example_61()
        for rewriting in (ex.p1, ex.p2):
            assert is_equivalent_rewriting(rewriting, ex.query, ex.views)

    def test_gmr_not_cmr_rewritings_are_equivalent(self):
        ex = gmr_not_cmr()
        for rewriting in (ex.p1, ex.p2):
            assert is_equivalent_rewriting(rewriting, ex.query, ex.views)

    def test_section8_fixture_shapes(self):
        ex = section8_ucq()
        assert len(ex.union_rewriting) == 2
        assert len(ex.single_rewriting.body) == 3
        assert any(
            atom.is_comparison
            for atom in ex.views.get("v1").definition.body
        )
