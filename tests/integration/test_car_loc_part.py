"""End-to-end tests on the paper's running example.

These cross-check the symbolic machinery (CoreCover, equivalence tests)
against actual execution: under the closed-world assumption every
equivalent rewriting must return exactly the query's answer on every base
instance.
"""

import pytest

from repro.core import core_cover, core_cover_star
from repro.cost import best_rewriting_m2, improve_with_filters, optimal_plan_m2
from repro.engine import evaluate, materialize_views
from repro.experiments.paper_examples import car_loc_part, car_loc_part_database


@pytest.fixture(scope="module")
def clp():
    return car_loc_part()


@pytest.fixture(scope="module")
def base():
    return car_loc_part_database()


@pytest.fixture(scope="module")
def vdb(clp, base):
    return materialize_views(clp.views, base)


class TestClosedWorldGuarantee:
    def test_paper_rewritings_compute_query_answer(self, clp, base, vdb):
        expected = evaluate(clp.query, base)
        for p in (clp.p1, clp.p2, clp.p3, clp.p4, clp.p5):
            assert evaluate(p, vdb) == expected, str(p)

    def test_corecover_rewritings_compute_query_answer(self, clp, base, vdb):
        expected = evaluate(clp.query, base)
        result = core_cover_star(clp.query, clp.views)
        assert result.has_rewriting
        for rewriting in result.rewritings:
            assert evaluate(rewriting, vdb) == expected, str(rewriting)

    def test_answer_nonempty(self, clp, base):
        # The deterministic instance actually exercises the join.
        assert evaluate(clp.query, base)


class TestOptimizerPipeline:
    def test_two_step_architecture(self, clp, base, vdb):
        """Generator produces logical plans; optimizer picks the best."""
        result = core_cover_star(clp.query, clp.views)
        best = best_rewriting_m2(result.rewritings, vdb)
        assert best is not None
        expected = evaluate(clp.query, base)
        assert best.execution.answer == expected

    def test_gmr_p4_is_m2_optimal_here(self, clp, vdb):
        result = core_cover_star(clp.query, clp.views)
        best = best_rewriting_m2(result.rewritings, vdb)
        # One access to v4 beats the v1 x v2 join on this instance.
        assert [a.predicate for a in best.rewriting.body] == ["v4"]

    def test_filter_improvement_never_hurts(self, clp, base, vdb):
        result = core_cover_star(clp.query, clp.views)
        p2 = next(r for r in result.rewritings if len(r.body) == 2)
        improved = improve_with_filters(p2, result.filter_candidates, vdb)
        assert improved.cost <= optimal_plan_m2(p2, vdb).cost
        assert improved.execution.answer == evaluate(clp.query, base)

    def test_selective_v3_makes_p3_strictly_cheaper(self, clp):
        """Section 5.1: on a selective instance, P3 strictly beats P2."""
        from repro.experiments.paper_examples import (
            car_loc_part_selective_database,
        )

        selective_base = car_loc_part_selective_database()
        selective_vdb = materialize_views(clp.views, selective_base)
        result = core_cover_star(clp.query, clp.views)
        p2 = next(r for r in result.rewritings if len(r.body) == 2)
        baseline = optimal_plan_m2(p2, selective_vdb)
        improved = improve_with_filters(
            p2, result.filter_candidates, selective_vdb
        )
        assert improved.cost < baseline.cost
        assert {a.predicate for a in improved.rewriting.body} == {
            "v1", "v2", "v3",
        }  # the improved rewriting IS the paper's P3
        assert improved.execution.answer == evaluate(clp.query, selective_base)
