"""Tests for the CLI extensions: SQL input, certification, certain answers."""

import json

import pytest

from repro.cli import main


@pytest.fixture()
def files(tmp_path):
    views = tmp_path / "views.dl"
    views.write_text(
        """
        v1(M, D, C) :- car(M, D), loc(D, C)
        v2(S, M, C) :- part(S, M, C)
        v4(M, D, C, S) :- car(M, D), loc(D, C), part(S, M, C)
        """
    )
    schema = tmp_path / "schema.json"
    schema.write_text(
        json.dumps(
            {
                "car": ["make", "dealer"],
                "loc": ["dealer", "city"],
                "part": ["store", "make", "city"],
            }
        )
    )
    view_data = tmp_path / "views.json"
    view_data.write_text(
        json.dumps(
            {
                "v1": [["m1", "a", "c1"]],
                "v2": [["s1", "m1", "c1"], ["s2", "m2", "c9"]],
                "v4": [["m1", "a", "c1", "s1"]],
            }
        )
    )
    return str(views), str(schema), str(view_data)


class TestSqlInput:
    def test_rewrite_from_sql(self, files, capsys):
        views, schema, _data = files
        sql = (
            "SELECT p.store, l.city FROM car c, loc l, part p "
            "WHERE c.dealer = 'a' AND l.dealer = 'a' "
            "AND p.make = c.make AND p.city = l.city"
        )
        code = main(["rewrite", sql, "--views", views, "--sql-schema", schema])
        assert code == 0
        assert "v4(" in capsys.readouterr().out


class TestCertifyFlag:
    def test_certify_ok(self, files, capsys):
        views, _schema, _data = files
        code = main(
            [
                "rewrite",
                "q1(S, C) :- car(M, a), loc(a, C), part(S, M, C)",
                "--views", views,
                "--certify",
            ]
        )
        assert code == 0
        assert "certificate: OK" in capsys.readouterr().out


class TestCertainAnswers:
    def test_certain_from_view_instance(self, files, capsys):
        views, _schema, data = files
        code = main(
            [
                "certain",
                "q1(S, C) :- car(M, a), loc(a, C), part(S, M, C)",
                "--views", views,
                "--view-data", data,
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "certain answer" in out
        assert "('s1', 'c1')" in out
