"""Property tests for the resource-budget layer's anytime laws.

Two laws pin down the semantics of budgeted planning:

1. **Subset law** — every *certified* rewriting a backend reports under
   a budget must also appear in the backend's unbudgeted result set (up
   to query equality).  Budgets may drop answers; they must never
   invent or mis-certify them.
2. **Identity law** — a budget with an infinite deadline (and no count
   limits) reproduces the unbudgeted results exactly: the anytime layer
   is observationally free when no dimension is bounded.
"""

import math

from hypothesis import given, settings, strategies as st

from repro import ResourceBudget, plan
from repro.planner import PlanStatus
from repro.workload import WorkloadConfig, generate_workload

#: Backends whose budgeted certified output must stay inside their
#: unbudgeted output.  (inverse-rules emits a datalog program rather
#: than conjunctive rewritings, so the subset law is vacuous there.)
BACKENDS = ("corecover", "corecover-star", "naive", "bucket", "minicon")


def _workload(seed):
    return generate_workload(
        WorkloadConfig(
            shape="star",
            num_relations=6,
            query_subgoals=3,
            num_views=8,
            seed=seed,
        )
    )


seeds = st.integers(min_value=0, max_value=2_000)


class TestSubsetLaw:
    @settings(max_examples=6, deadline=None)
    @given(seeds, st.sampled_from(BACKENDS))
    def test_certified_budgeted_results_subset_of_unbudgeted(
        self, seed, backend
    ):
        workload = _workload(seed)
        baseline = plan(workload.query, workload.views, backend=backend)
        unbudgeted = set(baseline.rewritings)
        for budget in (
            ResourceBudget(max_hom_searches=5, deadline_seconds=2.0),
            ResourceBudget(max_hom_searches=40, deadline_seconds=2.0),
            ResourceBudget(max_rewritings=1, deadline_seconds=2.0),
        ):
            budgeted = plan(
                workload.query, workload.views, backend=backend, budget=budget
            )
            for rewriting in budgeted.outcome.certified_rewritings:
                assert rewriting in unbudgeted, (
                    f"{backend} certified {rewriting} under {budget} but "
                    f"does not produce it unbudgeted"
                )


class TestIdentityLaw:
    @settings(max_examples=6, deadline=None)
    @given(seeds, st.sampled_from(BACKENDS + ("inverse-rules",)))
    def test_infinite_deadline_reproduces_unbudgeted_results(
        self, seed, backend
    ):
        workload = _workload(seed)
        baseline = plan(workload.query, workload.views, backend=backend)
        budgeted = plan(
            workload.query,
            workload.views,
            backend=backend,
            budget=ResourceBudget(deadline_seconds=math.inf),
        )
        assert budgeted.outcome.status is PlanStatus.COMPLETE
        # Compare the answers, not `details` — backend stats carry
        # wall-clock timings that differ between any two runs.
        assert budgeted.rewritings == baseline.rewritings
