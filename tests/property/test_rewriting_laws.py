"""Property tests for the rewriting layer's algebraic laws."""

import random

from hypothesis import given, settings, strategies as st

from repro.containment import is_equivalent_to
from repro.core import core_cover
from repro.datalog import Substitution, Variable
from repro.datalog.query import fresh_factory_for
from repro.views import expand, is_equivalent_rewriting
from repro.workload import WorkloadConfig, generate_workload


def _rewritable_workload(seed):
    return generate_workload(
        WorkloadConfig(
            shape="star",
            num_relations=7,
            query_subgoals=4,
            num_views=15,
            seed=seed,
        )
    )


class TestExpansionLaws:
    @settings(max_examples=10, deadline=None)
    @given(st.integers(min_value=0, max_value=5_000))
    def test_expansion_invariant_under_body_permutation(self, seed):
        workload = _rewritable_workload(seed)
        rewriting = core_cover(workload.query, workload.views).rewritings[0]
        rng = random.Random(seed)
        indices = list(range(len(rewriting.body)))
        rng.shuffle(indices)
        permuted = rewriting.with_body(rewriting.body[i] for i in indices)
        assert is_equivalent_to(
            expand(rewriting, workload.views), expand(permuted, workload.views)
        )

    @settings(max_examples=10, deadline=None)
    @given(st.integers(min_value=0, max_value=5_000))
    def test_equivalence_invariant_under_renaming(self, seed):
        """A rewriting stays a rewriting under variable renaming."""
        workload = _rewritable_workload(seed)
        rewriting = core_cover(workload.query, workload.views).rewritings[0]
        factory = fresh_factory_for(rewriting, workload.query)
        # Head variables must still match the query's head positionally,
        # so rename only the existential variables.
        keep = rewriting.distinguished_variables()
        renamed, _renaming = rewriting.rename_apart(factory, keep=keep)
        assert is_equivalent_rewriting(renamed, workload.query, workload.views)

    @settings(max_examples=10, deadline=None)
    @given(st.integers(min_value=0, max_value=5_000))
    def test_expansion_of_base_only_query_is_identity(self, seed):
        workload = _rewritable_workload(seed)
        # The query itself uses no view predicates: expansion is a no-op.
        assert expand(workload.query, workload.views) == workload.query

    @settings(max_examples=10, deadline=None)
    @given(st.integers(min_value=0, max_value=5_000))
    def test_double_expansion_is_stable(self, seed):
        """Expanding an already-expanded query changes nothing."""
        workload = _rewritable_workload(seed)
        rewriting = core_cover(workload.query, workload.views).rewritings[0]
        once = expand(rewriting, workload.views)
        twice = expand(once, workload.views)
        assert once == twice
