"""Delta-aware re-audit equals a from-scratch audit — the tentpole law.

A persistent :class:`CatalogAuditor` carried across an arbitrary
add/remove/replace mutation script must report exactly what a fresh
auditor reports on a from-scratch rebuild of the surviving views — same
diagnostics, same order, same fingerprints — and the same again across
the pickle (multiprocessing) boundary.  Timing-free fields only: the
reports' reuse counters legitimately differ (that is the whole point).
"""

import pickle

from hypothesis import given, settings

from repro import ViewCatalog
from repro.analysis import CatalogAuditor, audit_catalog
from repro.views import as_view

from .test_catalog_incremental import _apply, _build, mutation_sequences

SCHEMA = {"a": 2, "b": 2, "c": 2, "d": 1, "ghost": 2}


def observable(report):
    """Everything an audit consumer can see, minus cache/timing facts."""
    return (
        report.diagnostics,
        tuple(d.fingerprint for d in report.diagnostics),
        report.checked,
        report.catalog_root,
        report.views_total,
        report.ok,
    )


class TestAuditEquivalence:
    @settings(max_examples=25, deadline=None)
    @given(mutation_sequences())
    def test_incremental_audit_equals_scratch_audit(self, case):
        initial, script = case
        catalog = _build(initial)
        auditor = CatalogAuditor()
        auditor.audit(catalog, schema=SCHEMA)
        _apply(catalog, script)
        incremental = auditor.audit(catalog, schema=SCHEMA)
        scratch = audit_catalog(ViewCatalog(list(catalog)), schema=SCHEMA)
        assert observable(incremental) == observable(scratch)

    @settings(max_examples=15, deadline=None)
    @given(mutation_sequences())
    def test_audit_after_every_step_stays_consistent(self, case):
        """Auditing after *each* mutation (the serve daemon's cadence)
        never drifts from scratch — reuse across steps is sound."""
        initial, script = case
        catalog = _build(initial)
        auditor = CatalogAuditor()
        auditor.audit(catalog, schema=SCHEMA)
        # _apply's stepping, with the name counter carried across steps.
        counter = len(catalog)
        for action, body in script:
            names = catalog.names()
            if action == "add" or not names:
                catalog.add_view(as_view(f"v{counter}{body}"))
                counter += 1
            elif action == "remove":
                catalog.remove_view(names[counter % len(names)])
            else:
                name = names[counter % len(names)]
                catalog.replace_view(as_view(f"{name}{body}"))
            incremental = auditor.audit(catalog, schema=SCHEMA)
            scratch = audit_catalog(
                ViewCatalog(list(catalog)), schema=SCHEMA
            )
            assert observable(incremental) == observable(scratch)

    @settings(max_examples=15, deadline=None)
    @given(mutation_sequences())
    def test_pickle_round_trip_audits_identically(self, case):
        initial, script = case
        catalog = _build(initial)
        _apply(catalog, script)
        clone = pickle.loads(pickle.dumps(catalog))
        original = audit_catalog(catalog, schema=SCHEMA)
        shipped = audit_catalog(clone, schema=SCHEMA)
        assert observable(original) == observable(shipped)

    @settings(max_examples=15, deadline=None)
    @given(mutation_sequences())
    def test_fingerprints_are_registration_order_free(self, case):
        """Reversing registration order changes attribution (who is
        'older') but never the *set* of content fingerprints."""
        initial, script = case
        catalog = _build(initial)
        _apply(catalog, script)
        forward = audit_catalog(ViewCatalog(list(catalog)), schema=SCHEMA)
        backward = audit_catalog(
            ViewCatalog(list(reversed(list(catalog)))), schema=SCHEMA
        )
        assert {d.fingerprint for d in forward.diagnostics} == {
            d.fingerprint for d in backward.diagnostics
        }
