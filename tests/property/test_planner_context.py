"""Property: memoization never changes any backend's answer.

For random star/chain workloads, running every registered backend under a
caching :class:`PlannerContext` and under a cache-disabled one must
produce identical rewriting sets and identical non-timing statistics —
the cache may only change *how fast* an answer arrives, never the answer.
"""

from hypothesis import given, settings, strategies as st

from repro.planner import PlannerContext, available_backends, get_backend, plan
from repro.workload import WorkloadConfig, generate_workload

#: Backends cheap enough to run on every random example.  ``naive`` is
#: exponential in the number of view tuples, so it gets smaller inputs.
FAST_BACKENDS = ("corecover", "corecover-star", "bucket", "minicon",
                 "inverse-rules")


def _workload(shape, seed, num_views, subgoals=4):
    num_relations = 7 if shape == "star" else 10
    return generate_workload(
        WorkloadConfig(
            shape=shape,
            num_relations=num_relations,
            query_subgoals=subgoals,
            num_views=num_views,
            seed=seed,
        )
    )


workload_params = st.tuples(
    st.sampled_from(["star", "chain"]),
    st.integers(min_value=0, max_value=5_000),
    st.integers(min_value=5, max_value=20),
)


class TestCachedEqualsUncached:
    @settings(max_examples=8, deadline=None)
    @given(workload_params)
    def test_all_backends_agree(self, params):
        shape, seed, num_views = params
        workload = _workload(shape, seed, num_views)
        for name in FAST_BACKENDS:
            cached = plan(
                workload.query,
                workload.views,
                backend=name,
                context=PlannerContext(caching=True),
            )
            uncached = plan(
                workload.query,
                workload.views,
                backend=name,
                context=PlannerContext(caching=False),
            )
            assert cached.rewritings == uncached.rewritings, name
            assert uncached.stats.cache_hits == 0, name
            assert uncached.stats.caching_enabled is False, name
            assert cached.stats.caching_enabled is True, name
            if get_backend(name).produces_rewritings:
                assert cached.has_rewriting == uncached.has_rewriting, name

    @settings(max_examples=5, deadline=None)
    @given(
        st.sampled_from(["star", "chain"]),
        st.integers(min_value=0, max_value=5_000),
    )
    def test_naive_backend_agrees_on_small_workloads(self, shape, seed):
        workload = _workload(shape, seed, num_views=6, subgoals=3)
        cached = plan(
            workload.query,
            workload.views,
            backend="naive",
            context=PlannerContext(caching=True),
        )
        uncached = plan(
            workload.query,
            workload.views,
            backend="naive",
            context=PlannerContext(caching=False),
        )
        assert cached.rewritings == uncached.rewritings

    @settings(max_examples=8, deadline=None)
    @given(workload_params)
    def test_shared_cached_context_stays_consistent(self, params):
        """Re-running on a warm shared cache still matches a cold run."""
        shape, seed, num_views = params
        workload = _workload(shape, seed, num_views)
        shared = PlannerContext(caching=True)
        first = plan(
            workload.query, workload.views, backend="corecover",
            context=shared,
        )
        second = plan(
            workload.query, workload.views, backend="corecover",
            context=shared,
        )
        cold = plan(
            workload.query, workload.views, backend="corecover",
            context=PlannerContext(caching=False),
        )
        assert first.rewritings == cold.rewritings
        assert second.rewritings == cold.rewritings
        assert second.stats.hom_searches == 0


def test_every_registered_backend_is_exercised():
    """Guard: the property above must cover the whole registry."""
    assert set(FAST_BACKENDS) | {"naive"} == set(available_backends())
