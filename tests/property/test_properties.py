"""Property-based tests (hypothesis) for the core invariants.

These tie the symbolic layer (Chandra-Merlin containment, minimization,
CoreCover) to the semantic layer (the relational engine): containment
proofs must agree with actual query answers on random databases, and
every rewriting CoreCover emits must be a genuine equivalent rewriting.
"""

import random

from hypothesis import given, settings, strategies as st

from repro.containment import (
    canonical_database,
    is_contained_in,
    is_equivalent_to,
    is_minimal,
    minimize,
    thaw_atom,
)
from repro.core import core_cover, tuple_core, view_tuples
from repro.core.set_cover import irredundant_covers, minimum_covers
from repro.datalog import (
    Atom,
    ConjunctiveQuery,
    Constant,
    Substitution,
    Variable,
    parse_query,
)
from repro.engine import Database, evaluate
from repro.views import ViewCatalog, is_equivalent_rewriting
from repro.workload import WorkloadConfig, generate_workload

VARIABLES = [Variable(f"X{i}") for i in range(5)]
CONSTANTS = [Constant("a"), Constant("b")]
PREDICATES = [("e", 2), ("f", 2), ("g", 1)]

terms = st.one_of(st.sampled_from(VARIABLES), st.sampled_from(CONSTANTS))


@st.composite
def atoms(draw):
    predicate, arity = draw(st.sampled_from(PREDICATES))
    return Atom(predicate, tuple(draw(terms) for _ in range(arity)))


@st.composite
def queries(draw):
    body = tuple(draw(st.lists(atoms(), min_size=1, max_size=4)))
    body_vars = sorted(
        {v for atom in body for v in atom.variables()}, key=lambda v: v.name
    )
    head_vars = draw(st.permutations(body_vars)) if body_vars else []
    keep = draw(st.integers(min_value=0, max_value=len(head_vars)))
    return ConjunctiveQuery(Atom("q", tuple(head_vars[:keep])), body)


@st.composite
def databases(draw):
    db = Database()
    values = list(range(4))
    for predicate, arity in PREDICATES:
        rows = draw(
            st.lists(
                st.tuples(*(st.sampled_from(values) for _ in range(arity))),
                max_size=8,
            )
        )
        relation = db.ensure_relation(predicate, arity)
        for row in rows:
            relation.add(row)
    # Constants "a"/"b" may appear in queries; give them interpretations.
    db.relation("e").add(("a", "b"))
    db.relation("g").add(("a",))
    return db


class TestContainmentSemantics:
    @settings(max_examples=40, deadline=None)
    @given(queries())
    def test_containment_is_reflexive(self, q):
        assert is_contained_in(q, q)

    @settings(max_examples=40, deadline=None)
    @given(queries(), st.integers(min_value=0, max_value=3))
    def test_dropping_an_atom_generalizes(self, q, index):
        if len(q.body) < 2:
            return
        index %= len(q.body)
        candidate = q.without_atom(index)
        if not candidate.is_safe():
            return
        assert is_contained_in(q, candidate)

    @settings(max_examples=30, deadline=None)
    @given(queries(), queries(), databases())
    def test_containment_implies_answer_subset(self, q1, q2, db):
        """Symbolic containment must agree with the engine's semantics."""
        if q1.arity != q2.arity:
            return
        q2 = ConjunctiveQuery(Atom("q", q2.head.args), q2.body)
        if is_contained_in(q1, q2):
            assert evaluate(q1, db) <= evaluate(q2, db)

    @settings(max_examples=30, deadline=None)
    @given(queries(), databases())
    def test_equivalence_implies_equal_answers(self, q, db):
        m = minimize(q)
        assert evaluate(q, db) == evaluate(m, db)


class TestMinimization:
    @settings(max_examples=40, deadline=None)
    @given(queries())
    def test_minimize_preserves_equivalence(self, q):
        m = minimize(q)
        assert is_equivalent_to(m, q)

    @settings(max_examples=40, deadline=None)
    @given(queries())
    def test_minimize_result_is_minimal(self, q):
        assert is_minimal(minimize(q))

    @settings(max_examples=40, deadline=None)
    @given(queries())
    def test_minimize_idempotent(self, q):
        m = minimize(q)
        assert minimize(m) == m

    @settings(max_examples=40, deadline=None)
    @given(queries())
    def test_minimize_never_grows(self, q):
        assert len(minimize(q).body) <= len(q.dedup_body().body)


class TestCanonicalDatabase:
    @settings(max_examples=40, deadline=None)
    @given(queries())
    def test_freeze_thaw_round_trip(self, q):
        cdb = canonical_database(q)
        assert tuple(thaw_atom(f) for f in cdb.facts) == q.body

    @settings(max_examples=40, deadline=None)
    @given(queries())
    def test_query_satisfied_by_own_canonical_database(self, q):
        cdb = canonical_database(q)
        db = Database.from_facts(cdb.facts)
        frozen_head_tuple = tuple(
            arg.value for arg in cdb.frozen_head.args
        )
        assert frozen_head_tuple in evaluate(q, db)


class TestSubstitutions:
    @settings(max_examples=60, deadline=None)
    @given(
        st.dictionaries(st.sampled_from(VARIABLES), terms, max_size=4),
        st.dictionaries(st.sampled_from(VARIABLES), terms, max_size=4),
        terms,
    )
    def test_compose_agrees_with_sequential_application(self, m1, m2, t):
        s1, s2 = Substitution(m1), Substitution(m2)
        composed = s1.compose(s2)
        assert composed.apply_term(t) == s2.apply_term(s1.apply_term(t))


class TestSetCover:
    subsets = st.lists(
        st.frozensets(st.integers(min_value=0, max_value=5), max_size=4),
        min_size=1,
        max_size=7,
    )

    @settings(max_examples=60, deadline=None)
    @given(subsets)
    def test_minimum_covers_are_valid_and_tied(self, sets):
        universe = frozenset(range(4))
        covers = minimum_covers(universe, sets)
        sizes = {len(c) for c in covers}
        assert len(sizes) <= 1
        for cover in covers:
            covered = frozenset().union(*(sets[i] for i in cover)) if cover else frozenset()
            assert universe <= covered

    @settings(max_examples=60, deadline=None)
    @given(subsets)
    def test_irredundant_covers_are_irredundant(self, sets):
        universe = frozenset(range(3))
        for cover in irredundant_covers(universe, sets):
            for drop in cover:
                remaining = [i for i in cover if i != drop]
                covered = (
                    frozenset().union(*(sets[i] for i in remaining))
                    if remaining
                    else frozenset()
                )
                assert not universe <= covered

    @settings(max_examples=60, deadline=None)
    @given(subsets)
    def test_minimum_covers_subset_of_irredundant(self, sets):
        universe = frozenset(range(3))
        minimum = set(minimum_covers(universe, sets))
        irredundant = set(irredundant_covers(universe, sets))
        assert minimum <= irredundant


class TestCoreCoverSoundness:
    @settings(max_examples=15, deadline=None)
    @given(st.integers(min_value=0, max_value=10_000))
    def test_every_gmr_is_an_equivalent_rewriting(self, seed):
        config = WorkloadConfig(
            shape="star",
            num_relations=7,
            query_subgoals=4,
            num_views=15,
            seed=seed,
            require_rewritable=False,
        )
        workload = generate_workload(config)
        result = core_cover(workload.query, workload.views)
        for rewriting in result.rewritings:
            assert is_equivalent_rewriting(
                rewriting, workload.query, workload.views
            ), str(rewriting)

    @settings(max_examples=15, deadline=None)
    @given(st.integers(min_value=0, max_value=10_000))
    def test_gmr_sizes_are_minimum_over_view_tuple_space(self, seed):
        from repro.core import naive_gmr_search

        config = WorkloadConfig(
            shape="chain",
            num_relations=10,
            query_subgoals=3,
            num_views=8,
            seed=seed,
            require_rewritable=False,
        )
        workload = generate_workload(config)
        clever = core_cover(workload.query, workload.views)
        naive = naive_gmr_search(workload.query, workload.views)
        if naive:
            assert clever.has_rewriting
            assert clever.minimum_subgoals() == min(len(r.body) for r in naive)
        else:
            assert not clever.has_rewriting


class TestTupleCoreInvariants:
    @settings(max_examples=15, deadline=None)
    @given(st.integers(min_value=0, max_value=10_000))
    def test_closure_property_holds(self, seed):
        """Property (3): existentially-mapped variables are fully covered."""
        config = WorkloadConfig(
            shape="star",
            num_relations=7,
            query_subgoals=4,
            num_views=12,
            nondistinguished=1,
            seed=seed,
            require_rewritable=False,
        )
        workload = generate_workload(config)
        minimized = minimize(workload.query)
        for vt in view_tuples(minimized, workload.views):
            core = tuple_core(minimized, vt)
            for variable in core.mapping:
                using = {
                    i
                    for i, atom in enumerate(minimized.body)
                    if variable in atom.variable_set()
                }
                assert using <= core.covered

    @settings(max_examples=15, deadline=None)
    @given(st.integers(min_value=0, max_value=10_000))
    def test_mapping_images_are_injective(self, seed):
        config = WorkloadConfig(
            shape="chain",
            num_relations=10,
            query_subgoals=4,
            num_views=10,
            nondistinguished=1,
            seed=seed,
            require_rewritable=False,
        )
        workload = generate_workload(config)
        minimized = minimize(workload.query)
        for vt in view_tuples(minimized, workload.views):
            core = tuple_core(minimized, vt)
            images = list(core.mapping.values())
            assert len(images) == len(set(images))


class TestLemma42Uniqueness:
    """Lemma 4.2: the maximal consistent covered set is unique."""

    @settings(max_examples=15, deadline=None)
    @given(st.integers(min_value=0, max_value=10_000))
    def test_unique_maximal_core_on_random_workloads(self, seed):
        from repro.core import enumerate_consistent_cores

        config = WorkloadConfig(
            shape="star",
            num_relations=6,
            query_subgoals=4,
            num_views=10,
            nondistinguished=1,
            seed=seed,
            require_rewritable=False,
        )
        workload = generate_workload(config)
        minimized = minimize(workload.query)
        for vt in view_tuples(minimized, workload.views):
            maximal = enumerate_consistent_cores(minimized, vt)
            assert len(maximal) <= 1, (str(vt), maximal)
            core = tuple_core(minimized, vt)
            if maximal:
                assert core.covered == maximal[0]
            else:
                assert core.is_empty

    @settings(max_examples=15, deadline=None)
    @given(st.integers(min_value=0, max_value=10_000))
    def test_unique_maximal_core_on_chains(self, seed):
        from repro.core import enumerate_consistent_cores

        config = WorkloadConfig(
            shape="chain",
            num_relations=8,
            query_subgoals=4,
            num_views=10,
            nondistinguished=1,
            seed=seed,
            require_rewritable=False,
        )
        workload = generate_workload(config)
        minimized = minimize(workload.query)
        for vt in view_tuples(minimized, workload.views):
            maximal = enumerate_consistent_cores(minimized, vt)
            assert len(maximal) <= 1, (str(vt), maximal)
