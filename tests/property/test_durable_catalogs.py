"""Snapshot + journal replay equals the in-memory registry — the law.

The durable :class:`~repro.serve.catalogs.CatalogRegistry` must be a
*transparent* persistence layer: after any script of
register/update/remove operations, recovering from the state directory
yields exactly the catalogs (names and Merkle content roots) an
in-memory registry holds after the same script — through compaction,
across restarts, and at **every** crash point: truncating the journal
at any record boundary recovers exactly that prefix of operations, and
truncating mid-record recovers the floor boundary with the torn tail
dropped.
"""

import shutil

from hypothesis import HealthCheck, given, settings, strategies as st

from repro.errors import ReproError
from repro.serve.catalogs import CatalogRegistry
from repro.serve.journal import JOURNAL_NAME, scan_journal

NAMES = ["t0", "t1", "t2"]
PREDICATES = ["a", "b", "c"]


@st.composite
def scripts(draw):
    """A random register/update/remove script (abstract, pre-resolution)."""
    ops = []
    for _ in range(draw(st.integers(min_value=1, max_value=8))):
        kind = draw(
            st.sampled_from(
                ["register", "update_add", "update_remove",
                 "update_replace", "remove"]
            )
        )
        ops.append(
            (
                kind,
                draw(st.integers(min_value=0, max_value=len(NAMES) - 1)),
                draw(st.integers(min_value=0, max_value=7)),
            )
        )
    return ops


def _body(salt):
    predicate = PREDICATES[salt % len(PREDICATES)]
    args = "X, Y" if salt % 2 == 0 else "Y, X"
    return f"{predicate}({args})"


def _resolve(script):
    """Turn the abstract script into concrete registry calls.

    Runs the script against a scratch in-memory registry so that every
    emitted ``(method, kwargs)`` pair is *valid at its position*: ops
    that would fail (updating an unknown name, removing from an empty
    catalog) are dropped during resolution, which keeps the concrete
    list replayable on any fresh registry — the property the prefix
    oracles below rely on.
    """
    scratch = CatalogRegistry()
    concrete = []
    counter = 0
    for kind, name_idx, salt in script:
        name = NAMES[name_idx]
        if kind == "register":
            call = (
                "register",
                {
                    "name": name,
                    "views": [f"v{counter}(X, Y) :- {_body(salt)}"],
                },
            )
            counter += 1
        elif kind == "update_add":
            call = (
                "update",
                {"name": name,
                 "add": [f"v{counter}(X, Y) :- {_body(salt)}"]},
            )
            counter += 1
        elif kind in ("update_remove", "update_replace"):
            try:
                views = scratch.get(name).names()
            except ReproError:
                continue
            if not views:
                continue
            target = views[salt % len(views)]
            if kind == "update_remove":
                call = ("update", {"name": name, "remove": [target]})
            else:
                call = (
                    "update",
                    {"name": name,
                     "replace": [f"{target}(X, Y) :- {_body(salt)}"]},
                )
        else:
            call = ("remove", {"name": name})
        try:
            getattr(scratch, call[0])(**call[1])
        except ReproError:
            continue
        concrete.append(call)
    return concrete


def _oracle(concrete):
    """Names -> content roots after *concrete* on an in-memory registry."""
    registry = CatalogRegistry()
    for method, kwargs in concrete:
        getattr(registry, method)(**kwargs)
    return {
        name: registry.get(name).content_root()
        for name in registry.names()
    }


def _recovered(state_dir):
    registry = CatalogRegistry(state_dir=state_dir, journal_fsync=False)
    try:
        assert registry.quarantined_names() == ()
        return {
            name: registry.get(name).content_root()
            for name in registry.names()
        }
    finally:
        registry.close()


class TestDurableEqualsInMemory:
    @settings(
        max_examples=20,
        deadline=None,
        suppress_health_check=[HealthCheck.function_scoped_fixture],
    )
    @given(scripts())
    def test_recovery_matches_at_every_record_boundary(self, tmp_path, script):
        concrete = _resolve(script)
        state = tmp_path / "state"
        if state.exists():
            shutil.rmtree(state)
        durable = CatalogRegistry(
            state_dir=state, journal_fsync=False, snapshot_every=10_000
        )
        for method, kwargs in concrete:
            getattr(durable, method)(**kwargs)
        durable.close()

        # Full-journal recovery equals the in-memory oracle.
        assert _recovered(state) == _oracle(concrete)

        # Crash at every record boundary: each prefix of the journal
        # recovers exactly that prefix of operations.  Without
        # compaction, journal record i IS concrete op i.
        journal = state / JOURNAL_NAME
        records = scan_journal(journal).records
        assert len(records) == len(concrete)
        boundaries = [0] + [record.end_offset for record in records]
        data = journal.read_bytes() if journal.exists() else b""
        for count, boundary in enumerate(boundaries):
            crashed = tmp_path / f"crash-{count}"
            if crashed.exists():
                shutil.rmtree(crashed)
            shutil.copytree(state, crashed)
            (crashed / JOURNAL_NAME).write_bytes(data[:boundary])
            assert _recovered(crashed) == _oracle(concrete[:count]), (
                f"journal truncated at record boundary {count} must "
                f"recover exactly the first {count} operations"
            )

    @settings(
        max_examples=20,
        deadline=None,
        suppress_health_check=[HealthCheck.function_scoped_fixture],
    )
    @given(scripts(), st.integers(min_value=1, max_value=1_000_000))
    def test_mid_record_crash_recovers_the_floor_boundary(
        self, tmp_path, script, tear
    ):
        concrete = _resolve(script)
        if not concrete:
            return
        state = tmp_path / "state"
        if state.exists():
            shutil.rmtree(state)
        durable = CatalogRegistry(
            state_dir=state, journal_fsync=False, snapshot_every=10_000
        )
        for method, kwargs in concrete:
            getattr(durable, method)(**kwargs)
        durable.close()
        journal = state / JOURNAL_NAME
        records = scan_journal(journal).records
        # Tear somewhere strictly inside one record: pick the record and
        # the cut from the drawn integer, deterministically.
        index = tear % len(records)
        start = 0 if index == 0 else records[index - 1].end_offset
        width = records[index].end_offset - start
        cut = start + 1 + (tear % max(1, width - 1))
        data = journal.read_bytes()
        journal.write_bytes(data[:cut])

        registry = CatalogRegistry(state_dir=state, journal_fsync=False)
        try:
            assert registry.quarantined_names() == ()
            assert registry.journal_truncations == 1
            recovered = {
                name: registry.get(name).content_root()
                for name in registry.names()
            }
        finally:
            registry.close()
        assert recovered == _oracle(concrete[:index]), (
            "a tear inside record "
            f"{index + 1} must recover the floor boundary ({index} ops)"
        )

    @settings(
        max_examples=20,
        deadline=None,
        suppress_health_check=[HealthCheck.function_scoped_fixture],
    )
    @given(scripts())
    def test_recovery_matches_through_compaction(self, tmp_path, script):
        concrete = _resolve(script)
        state = tmp_path / "compacted"
        if state.exists():
            shutil.rmtree(state)
        durable = CatalogRegistry(
            state_dir=state, journal_fsync=False, snapshot_every=2
        )
        for method, kwargs in concrete:
            getattr(durable, method)(**kwargs)
        durable.close()
        # Recovery now mixes the snapshot path and the journal-tail
        # path; the composite must still equal the in-memory oracle.
        assert _recovered(state) == _oracle(concrete)
        # And recovery is idempotent: recovering the recovered state
        # (which may itself have compacted) changes nothing.
        assert _recovered(state) == _oracle(concrete)
