"""Property: ``plan()`` is deterministic and side-effect-free.

The resilient executor retries ``plan()`` on a shared
:class:`PlannerContext` and caches its answers by content-addressed
request key, so both pillars are load-bearing:

* **determinism** — the same (query, views, backend) must produce the
  same rewritings on every call, or retries could serve different
  answers for one request and the plan cache would be wrong;
* **purity** — a call must not mutate its inputs, and its only effect
  on a shared context is *monotone* cache growth (memoization may add
  entries, never remove or rewrite them).
"""

from hypothesis import given, settings, strategies as st

from repro.planner import PlannerContext, plan
from repro.workload import WorkloadConfig, generate_workload

BACKENDS = ("corecover", "bucket", "minicon")


def _workload(shape, seed, num_views):
    num_relations = 7 if shape == "star" else 10
    return generate_workload(
        WorkloadConfig(
            shape=shape,
            num_relations=num_relations,
            query_subgoals=4,
            num_views=num_views,
            seed=seed,
        )
    )


workload_params = st.tuples(
    st.sampled_from(["star", "chain"]),
    st.integers(min_value=0, max_value=5_000),
    st.integers(min_value=5, max_value=15),
)


def _fingerprint(query, views):
    return str(query), tuple(str(view.definition) for view in views)


class TestPlanPurity:
    @settings(max_examples=8, deadline=None)
    @given(workload_params)
    def test_repeated_calls_on_a_shared_context_are_identical(self, params):
        shape, seed, num_views = params
        workload = _workload(shape, seed, num_views)
        before = _fingerprint(workload.query, workload.views)
        for name in BACKENDS:
            context = PlannerContext(caching=True)
            results = [
                plan(workload.query, workload.views, backend=name,
                     context=context)
                for _ in range(3)
            ]
            first = results[0]
            for repeat in results[1:]:
                assert repeat.rewritings == first.rewritings, name
                assert repeat.has_rewriting == first.has_rewriting, name
        # Inputs survive every backend untouched.
        assert _fingerprint(workload.query, workload.views) == before

    @settings(max_examples=8, deadline=None)
    @given(workload_params)
    def test_shared_context_cache_counters_are_monotone(self, params):
        shape, seed, num_views = params
        workload = _workload(shape, seed, num_views)
        context = PlannerContext(caching=True)
        seen = []
        for _ in range(3):
            plan(
                workload.query,
                workload.views,
                backend="corecover",
                context=context,
            )
            seen.append((context.cache_hits, context.cache_misses))
        for (h0, m0), (h1, m1) in zip(seen, seen[1:]):
            assert h1 >= h0, "cache hits went backwards"
            assert m1 >= m0, "cache misses went backwards"
        # Warm repeats never re-derive: the miss count stops growing
        # after the first call, so all later lookups are pure hits.
        assert seen[1][1] == seen[2][1], "warm repeat added cache misses"

    @settings(max_examples=8, deadline=None)
    @given(workload_params)
    def test_fresh_contexts_reproduce_the_first_answer(self, params):
        """Determinism across *independent* contexts (what the executor
        relies on when it rebuilds a context per backend)."""
        shape, seed, num_views = params
        workload = _workload(shape, seed, num_views)
        answers = {
            plan(
                workload.query,
                workload.views,
                backend="corecover",
                context=PlannerContext(caching=True),
            ).rewritings
            for _ in range(2)
        }
        assert len(answers) == 1
