"""Property tests: the acyclic fast path is invisible except in speed.

Three laws, matching the routing contract of ``plan()``:

1. on acyclic queries the fast and general paths produce **identical**
   rewritings (the bit-identical contract, through the whole pipeline);
2. cyclic queries never touch the guided engine;
3. budget exhaustion on the fast path still degrades to an anytime
   ``BUDGET_EXHAUSTED`` outcome whose certified rewritings are genuine.
"""

from hypothesis import given, settings, strategies as st

from repro.datalog import Atom, ConjunctiveQuery, Variable
from repro.planner import PlannerContext, plan
from repro.planner.limits import PlanStatus, ResourceBudget
from repro.views import ViewCatalog, is_equivalent_rewriting


@st.composite
def acyclic_workloads(draw):
    """A random chain/star/tree query over a shared edge predicate, plus
    a catalog that provably rewrites it (single- and double-edge views)."""
    shape = draw(st.sampled_from(["chain", "star", "tree"]))
    size = draw(st.integers(min_value=2, max_value=5))
    variables = [Variable(f"V{i}") for i in range(size + 1)]
    atoms = []
    for child in range(1, size + 1):
        if shape == "chain":
            parent = child - 1
        elif shape == "star":
            parent = 0
        else:
            parent = draw(st.integers(min_value=0, max_value=child - 1))
        atoms.append(Atom("e", (variables[parent], variables[child])))
    # Self-joins over one predicate keep candidate lists fat — the regime
    # where the semijoin passes actually prune.
    query = ConjunctiveQuery(Atom("q", tuple(variables)), tuple(atoms))
    views = ViewCatalog(
        ["v1(A, B) :- e(A, B)", "v2(A, B, C) :- e(A, B), e(B, C)"]
    )
    return query, views


class TestBitIdenticalPlans:
    @settings(max_examples=25, deadline=None)
    @given(acyclic_workloads())
    def test_fast_and_general_paths_agree(self, workload):
        query, views = workload
        fast = plan(query, views, context=PlannerContext())
        general = plan(
            query, views, context=PlannerContext(), acyclic_fast_path=False
        )
        assert fast.rewritings == general.rewritings
        assert fast.rewritings  # the catalog rewrites every query here
        assert fast.stats.fast_path_searches > 0
        assert general.stats.fast_path_searches == 0

    @settings(max_examples=10, deadline=None)
    @given(acyclic_workloads(), st.integers(min_value=1, max_value=20))
    def test_capped_enumeration_also_agrees(self, workload, cap):
        query, views = workload
        fast = plan(
            query, views, context=PlannerContext(),
            backend="corecover-star", max_rewritings=cap,
        )
        general = plan(
            query, views, context=PlannerContext(),
            backend="corecover-star", max_rewritings=cap,
            acyclic_fast_path=False,
        )
        assert fast.rewritings == general.rewritings

    @settings(max_examples=25, deadline=None)
    @given(acyclic_workloads())
    def test_stats_report_routing(self, workload):
        query, views = workload
        result = plan(query, views, context=PlannerContext())
        stats = result.details.stats
        assert stats.acyclic_fast_path is True
        assert stats.join_tree_depth >= 1
        assert stats.hom_nodes > 0


class TestCyclicRouting:
    @settings(max_examples=15, deadline=None)
    @given(st.integers(min_value=3, max_value=6))
    def test_cycles_never_use_the_guided_engine(self, length):
        variables = [Variable(f"V{i}") for i in range(length)]
        atoms = tuple(
            Atom("e", (variables[i], variables[(i + 1) % length]))
            for i in range(length)
        )
        query = ConjunctiveQuery(Atom("q", tuple(variables)), atoms)
        views = ViewCatalog(["v1(A, B) :- e(A, B)"])
        result = plan(query, views, context=PlannerContext())
        assert result.stats.fast_path_searches == 0
        assert result.details.stats.acyclic_fast_path is False
        assert result.details.stats.join_tree_depth == -1
        # The general path still rewrites it.
        assert result.rewritings

    def test_comparison_atoms_disable_routing(self):
        # No current backend accepts comparison queries, so exercise the
        # routing guard at its two real surfaces: the guided engine
        # itself declines comparison sources even inside a routed scope,
        # and the R105 lint note reports the general path.
        from repro.analysis import analyze
        from repro.containment.homomorphism import find_homomorphisms

        X, Y, Z = Variable("X"), Variable("Y"), Variable("Z")
        query = ConjunctiveQuery(
            Atom("q", (X, Y, Z)),
            (Atom("e", (X, Y)), Atom("e", (Y, Z)), Atom("<", (X, Z))),
        )
        ctx = PlannerContext()
        # The hypergraph alone is acyclic (comparisons are not edges)...
        assert ctx.join_tree(query) is not None
        # ...but a routed scope still sends the comparison body to the
        # general backtracker (the router declines it).
        with ctx.routed_acyclic():
            list(find_homomorphisms(query.body, query.body))
        assert ctx.fast_path_searches == 0
        report = analyze(query, ViewCatalog([]), context=ctx)
        (note,) = [d for d in report.diagnostics if d.code == "R105"]
        assert "general" in note.message

    @settings(max_examples=25, deadline=None)
    @given(acyclic_workloads())
    def test_escape_hatch_disables_routing(self, workload):
        query, views = workload
        result = plan(
            query, views, context=PlannerContext(), acyclic_fast_path=False
        )
        assert result.stats.fast_path_searches == 0
        assert result.details.stats.acyclic_fast_path is False


class TestBudgetedFastPath:
    @settings(max_examples=20, deadline=None)
    @given(acyclic_workloads(), st.integers(min_value=1, max_value=30))
    def test_exhaustion_degrades_to_certified_best_so_far(
        self, workload, max_searches
    ):
        query, views = workload
        result = plan(
            query,
            views,
            context=PlannerContext(),
            budget=ResourceBudget(max_hom_searches=max_searches),
        )
        outcome = result.outcome
        assert outcome.status in (
            PlanStatus.COMPLETE,
            PlanStatus.BUDGET_EXHAUSTED,
        )
        if outcome.status is PlanStatus.BUDGET_EXHAUSTED:
            assert outcome.exhausted_resource == "hom_searches"
            # Anytime contract: whatever was certified really rewrites.
            for rewriting in outcome.certified_rewritings:
                assert is_equivalent_rewriting(rewriting, query, views)

    def test_exhaustion_can_strike_mid_semijoin(self):
        """A budget checkpoint fires inside the guided engine itself."""
        variables = [Variable(f"V{i}") for i in range(6)]
        query = ConjunctiveQuery(
            Atom("q", tuple(variables)),
            tuple(
                Atom("e", (variables[i], variables[i + 1])) for i in range(5)
            ),
        )
        views = ViewCatalog(
            ["v1(A, B) :- e(A, B)", "v2(A, B, C) :- e(A, B), e(B, C)"]
        )
        # Find a budget that exhausts after at least one guided search
        # has started (so the raise unwinds semijoin/backtracking work).
        for limit in range(1, 40):
            result = plan(
                query,
                views,
                context=PlannerContext(),
                budget=ResourceBudget(max_hom_searches=limit),
            )
            if (
                result.outcome.status is PlanStatus.BUDGET_EXHAUSTED
                and result.stats.fast_path_searches > 0
            ):
                return  # exhausted while the fast path was active
            if result.outcome.status is PlanStatus.COMPLETE:
                assert result.stats.fast_path_searches > 0
                return  # query too small to exhaust: routing still worked
        raise AssertionError("no budget produced a fast-path exhaustion")
