"""Incremental catalog maintenance equals a from-scratch rebuild.

The oracle law for the delta API: after **any** sequence of
add/remove/replace mutations, the catalog must be observationally
identical to a fresh :class:`ViewCatalog` built from its surviving
views — same index, same hashes, same content root, same view tuples,
same tuple-cores, same rewritings.  A second law covers the
multiprocessing boundary: pickling a mutated catalog (what every
:class:`WorkerTask` does) must preserve all of the above, including
interning round-trips — planning the unpickled catalog on a fresh
context reproduces the original's rewritings exactly.
"""

import pickle

from hypothesis import given, settings, strategies as st

from repro import ViewCatalog, parse_query
from repro.core import core_cover
from repro.core.view_tuples import view_tuples
from repro.planner import PlannerContext
from repro.views import as_view

#: A small relation universe so random views overlap the query often.
RELATIONS = [("a", 2), ("b", 2), ("c", 2), ("d", 1)]

QUERY = parse_query("q(X, Y) :- a(X, Z), b(Z, Y)")


@st.composite
def view_bodies(draw):
    """1-3 relational atoms over the universe, variables from A-D."""
    names = ["A", "B", "C", "D"]
    atoms = []
    for _ in range(draw(st.integers(min_value=1, max_value=3))):
        predicate, arity = draw(st.sampled_from(RELATIONS))
        args = [draw(st.sampled_from(names)) for _ in range(arity)]
        atoms.append(f"{predicate}({', '.join(args)})")
    head_vars = sorted({v for atom_args in atoms for v in names
                        if v in atom_args})
    heads = draw(
        st.lists(
            st.sampled_from(head_vars), min_size=1,
            max_size=len(head_vars), unique=True,
        )
    )
    return f"({', '.join(heads)}) :- {', '.join(atoms)}"


@st.composite
def mutation_sequences(draw):
    """An initial catalog plus a random add/remove/replace script."""
    initial = draw(
        st.lists(view_bodies(), min_size=1, max_size=4)
    )
    script = draw(
        st.lists(
            st.tuples(
                st.sampled_from(["add", "remove", "replace"]),
                view_bodies(),
            ),
            min_size=1,
            max_size=6,
        )
    )
    return initial, script


def _apply(catalog, script):
    """Run the mutation script; names are v0, v1, ... in creation order."""
    counter = len(catalog)
    for action, body in script:
        names = catalog.names()
        if action == "add" or not names:
            catalog.add_view(as_view(f"v{counter}{body}"))
            counter += 1
        elif action == "remove":
            catalog.remove_view(names[counter % len(names)])
        else:
            name = names[counter % len(names)]
            catalog.replace_view(as_view(f"{name}{body}"))


def _build(initial):
    return ViewCatalog(
        as_view(f"v{i}{body}") for i, body in enumerate(initial)
    )


class TestIncrementalOracle:
    @settings(max_examples=30, deadline=None)
    @given(mutation_sequences())
    def test_mutated_equals_rebuilt(self, case):
        initial, script = case
        catalog = _build(initial)
        _apply(catalog, script)
        rebuilt = ViewCatalog(list(catalog))

        assert catalog.names() == rebuilt.names()
        assert catalog.view_hashes() == rebuilt.view_hashes()
        assert catalog.content_root() == rebuilt.content_root()
        assert catalog.indexed_predicates() == rebuilt.indexed_predicates()
        for pair in catalog.indexed_predicates():
            assert [
                v.name for v in catalog.views_for_predicates([pair])
            ] == [v.name for v in rebuilt.views_for_predicates([pair])]
        assert catalog.relevant_names(QUERY) == rebuilt.relevant_names(QUERY)

    @settings(max_examples=15, deadline=None)
    @given(mutation_sequences())
    def test_planning_artifacts_match_rebuilt(self, case):
        """View tuples, tuple-cores, and rewritings off the mutated
        catalog are identical to the from-scratch rebuild's."""
        initial, script = case
        catalog = _build(initial)
        _apply(catalog, script)
        rebuilt = ViewCatalog(list(catalog))

        context = PlannerContext()
        minimized = context.minimize(QUERY)
        incremental = view_tuples(minimized, catalog, context=context)
        scratch = view_tuples(minimized, rebuilt, context=PlannerContext())
        assert [str(t.atom) for t in incremental] == [
            str(t.atom) for t in scratch
        ]

        left = core_cover(QUERY, catalog)
        right = core_cover(QUERY, rebuilt)
        assert [str(c) for c in left.cores] == [str(c) for c in right.cores]
        assert [str(r) for r in left.rewritings] == [
            str(r) for r in right.rewritings
        ]
        assert left.stats.touched_views == right.stats.touched_views

    @settings(max_examples=15, deadline=None)
    @given(mutation_sequences())
    def test_pickle_round_trip_preserves_everything(self, case):
        """The multiprocessing boundary: an unpickled mutated catalog
        plans identically, and its identity (version, hashes, root,
        index) survives the round trip."""
        initial, script = case
        catalog = _build(initial)
        _apply(catalog, script)

        clone = pickle.loads(pickle.dumps(catalog))
        assert clone.version == catalog.version
        assert clone.names() == catalog.names()
        assert clone.view_hashes() == catalog.view_hashes()
        assert clone.content_root() == catalog.content_root()
        assert clone.indexed_predicates() == catalog.indexed_predicates()
        assert clone.relevant_names(QUERY) == catalog.relevant_names(QUERY)

        # Fresh interner on the clone's side, as in a real worker.
        original = core_cover(QUERY, catalog, context=PlannerContext())
        shipped = core_cover(QUERY, clone, context=PlannerContext())
        assert [str(r) for r in original.rewritings] == [
            str(r) for r in shipped.rewritings
        ]
        # Mutating the clone further diverges it cleanly from the parent.
        clone.add_view(as_view("vx(A) :- d(A)"))
        assert clone.version == catalog.version + 1
        assert "vx" in clone and "vx" not in catalog
