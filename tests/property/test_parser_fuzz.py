"""Fuzz and round-trip properties for the datalog parser."""

from hypothesis import given, settings, strategies as st

from repro.datalog import (
    Atom,
    ConjunctiveQuery,
    Constant,
    DatalogSyntaxError,
    MalformedQueryError,
    Variable,
    parse_query,
)

VARIABLES = [Variable(f"X{i}") for i in range(4)] + [Variable("Make")]
CONSTANTS = [Constant("a"), Constant("anderson"), Constant(7), Constant(-3)]

terms = st.one_of(st.sampled_from(VARIABLES), st.sampled_from(CONSTANTS))


@st.composite
def printable_queries(draw):
    """Queries whose rendering follows the parser's naming conventions."""
    body = []
    for _ in range(draw(st.integers(min_value=1, max_value=4))):
        predicate = draw(st.sampled_from(["e", "f", "car", "loc"]))
        arity = draw(st.integers(min_value=1, max_value=3))
        body.append(Atom(predicate, tuple(draw(terms) for _ in range(arity))))
    body_vars = sorted(
        {v for atom in body for v in atom.variables()}, key=lambda v: v.name
    )
    keep = draw(st.integers(min_value=0, max_value=len(body_vars)))
    return ConjunctiveQuery(Atom("q", tuple(body_vars[:keep])), tuple(body))


class TestRoundTrip:
    @settings(max_examples=80, deadline=None)
    @given(printable_queries())
    def test_parse_of_str_is_identity(self, query):
        assert parse_query(str(query)) == query


class TestFuzz:
    @settings(max_examples=150, deadline=None)
    @given(st.text(max_size=60))
    def test_arbitrary_text_never_crashes_unexpectedly(self, text):
        try:
            parse_query(text)
        except (DatalogSyntaxError, MalformedQueryError):
            pass  # the two documented failure modes

    @settings(max_examples=100, deadline=None)
    @given(
        st.text(
            alphabet="qXYZabc(),:-_ <=0123456789", max_size=50
        )
    )
    def test_near_miss_text_never_crashes_unexpectedly(self, text):
        try:
            parse_query(text)
        except (DatalogSyntaxError, MalformedQueryError):
            pass
