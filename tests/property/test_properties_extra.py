"""Property-based tests for the substrate extensions.

Covers the SQL round trip, the operator layer vs. the reference
evaluator, the inverse-rules soundness guarantee, and the IO simulator's
monotonicity in the buffer pool.
"""

import random

from hypothesis import given, settings, strategies as st

from repro.baselines import certain_answers
from repro.cost import PhysicalPlan, execute_plan
from repro.cost.iomodel import IoParameters, simulate_plan_io
from repro.containment import is_equivalent_to
from repro.datalog import Atom, ConjunctiveQuery, Constant, Variable
from repro.datalog.sql import SqlSchema, parse_sql, to_sql
from repro.engine import Database, Project, build_left_deep_tree, evaluate
from repro.engine.operators import NestedLoopJoin
from repro.views import ViewCatalog
from repro.workload import (
    WorkloadConfig,
    generate_workload,
    schema_of,
    uniform_database,
)

VARIABLES = [Variable(f"X{i}") for i in range(5)]
PREDICATES = [("e", 2), ("f", 2), ("g", 1)]
SQL_SCHEMA = SqlSchema({"e": ["a", "b"], "f": ["a", "b"], "g": ["a"]})

terms = st.one_of(
    st.sampled_from(VARIABLES), st.sampled_from([Constant("k"), Constant(3)])
)


@st.composite
def atoms(draw):
    predicate, arity = draw(st.sampled_from(PREDICATES))
    return Atom(predicate, tuple(draw(terms) for _ in range(arity)))


@st.composite
def queries(draw, min_body=1, max_body=3):
    body = tuple(draw(st.lists(atoms(), min_size=min_body, max_size=max_body)))
    body_vars = sorted(
        {v for atom in body for v in atom.variables()}, key=lambda v: v.name
    )
    keep = draw(st.integers(min_value=0, max_value=len(body_vars)))
    return ConjunctiveQuery(Atom("q", tuple(body_vars[:keep])), body)


@st.composite
def databases(draw):
    db = Database()
    values = [0, 1, 2, "k", 3]
    for predicate, arity in PREDICATES:
        rows = draw(
            st.lists(
                st.tuples(*(st.sampled_from(values) for _ in range(arity))),
                max_size=8,
            )
        )
        relation = db.ensure_relation(predicate, arity)
        for row in rows:
            relation.add(row)
    return db


class TestSqlRoundTrip:
    @settings(max_examples=50, deadline=None)
    @given(queries())
    def test_to_sql_parse_sql_preserves_semantics(self, query):
        if query.arity == 0:
            # Boolean queries render as SELECT 1 (the EXISTS convention):
            # the round trip yields q(1), equivalent as a boolean test but
            # not as a CQ.  Checked separately below.
            return
        sql = to_sql(query, SQL_SCHEMA)
        reparsed = parse_sql(sql, SQL_SCHEMA, name=query.name)
        assert is_equivalent_to(reparsed, query)

    def test_boolean_query_renders_select_one(self):
        from repro.datalog import parse_query

        sql = to_sql(parse_query("q() :- e(X, X)"), SQL_SCHEMA)
        assert sql.startswith("SELECT DISTINCT 1 ")
        reparsed = parse_sql(sql, SQL_SCHEMA)
        assert reparsed.head.args == (Constant(1),)


class TestOperatorLayer:
    @settings(max_examples=40, deadline=None)
    @given(queries(), databases())
    def test_left_deep_tree_matches_evaluator(self, query, db):
        head_vars = tuple(
            arg for arg in query.head.args if isinstance(arg, Variable)
        )
        tree = build_left_deep_tree(query.body, db)
        answer = set(Project(tree, head_vars).rows())
        expected = {
            tuple(
                row[i]
                for i, arg in enumerate(query.head.args)
                if isinstance(arg, Variable)
            )
            for row in evaluate(query, db)
        }
        assert answer == expected

    @settings(max_examples=25, deadline=None)
    @given(queries(max_body=2), databases())
    def test_join_algorithms_agree(self, query, db):
        hash_tree = build_left_deep_tree(query.body, db)
        loop_tree = build_left_deep_tree(query.body, db, NestedLoopJoin)
        assert set(hash_tree.rows()) == set(loop_tree.rows())


class TestInverseRulesSoundness:
    @settings(max_examples=10, deadline=None)
    @given(st.integers(min_value=0, max_value=10_000))
    def test_certain_answers_subset_of_actual(self, seed):
        workload = generate_workload(
            WorkloadConfig(
                shape="star",
                num_relations=7,
                query_subgoals=3,
                num_views=10,
                seed=seed,
                require_rewritable=False,
            )
        )
        from repro.engine import materialize_views

        schema = schema_of(workload.query, *workload.views.definitions())
        base = uniform_database(schema, 30, 5, random.Random(seed))
        view_db = materialize_views(workload.views, base)
        certain = certain_answers(workload.query, workload.views, view_db)
        assert certain <= evaluate(workload.query, base)


class TestIoSimulator:
    @settings(max_examples=20, deadline=None)
    @given(st.integers(min_value=1, max_value=8), st.integers(min_value=0, max_value=100))
    def test_more_memory_never_costs_more(self, memory, seed):
        rng = random.Random(seed)
        db = uniform_database({"v1": 2, "v2": 2}, 150, 9, rng)
        from repro.datalog import parse_query

        rewriting = parse_query("q(A, C) :- v1(A, B), v2(B, C)")
        execution = execute_plan(PhysicalPlan.from_rewriting(rewriting), db)
        small = simulate_plan_io(
            execution, IoParameters(tuples_per_page=20, memory_pages=memory)
        )
        big = simulate_plan_io(
            execution, IoParameters(tuples_per_page=20, memory_pages=memory * 4)
        )
        assert big.total <= small.total
