"""Structural SARIF 2.1.0 conformance for lint and audit output.

The serious one: every ``physicalLocation`` MUST carry an
``artifactLocation`` (SARIF 2.1.0 §3.29.3 requires it for a region to
be interpretable) — the original emitter produced bare ``region``
objects that validators reject.
"""

import json

from repro.analysis import analyze, audit_catalog, render_json, to_sarif
from repro.analysis.sarif import FINGERPRINT_KEY, result_fingerprint
from repro.datalog.parser import parse_program_spans, parse_query_spans
from repro.views import ViewCatalog


def lint_report():
    query, query_spans = parse_query_spans("q(X, Y) :- e(X, Z)")
    rules, view_spans = parse_program_spans("v(A) :- e(A, B, B)")
    return analyze(
        query,
        ViewCatalog(rules),
        query_spans=query_spans,
        view_spans=view_spans,
    )


def audit_report():
    rules, view_spans = parse_program_spans(
        "v1(X,Y) :- a(X,Y)\nbad(X) :- a(X,Y), Y = c1, Y = c2"
    )
    return audit_catalog(ViewCatalog(rules), view_spans=view_spans)


def all_results(sarif):
    return [r for run in sarif["runs"] for r in run["results"]]


class TestPhysicalLocationShape:
    def test_every_physical_location_has_artifact_and_region(self):
        for sarif in (
            to_sarif(lint_report(), query_source="q.dl", views_source="v.dl"),
            to_sarif(audit_report(), views_source="v.dl"),
        ):
            located = 0
            for result in all_results(sarif):
                for location in result.get("locations", []):
                    physical = location["physicalLocation"]
                    assert "artifactLocation" in physical
                    assert physical["artifactLocation"]["uri"]
                    region = physical["region"]
                    assert region["startLine"] >= 1
                    assert region["startColumn"] >= 1
                    located += 1
            assert located > 0

    def test_findings_point_at_the_right_source(self):
        # R001 (unsafe query head) locates in the query file; view-subject
        # findings (the R002 arity mismatch inside v) in the views file.
        sarif = to_sarif(
            lint_report(), query_source="the-query.dl",
            views_source="the-views.dl",
        )
        uris = {
            loc["physicalLocation"]["artifactLocation"]["uri"]
            for result in all_results(sarif)
            for loc in result.get("locations", [])
        }
        assert uris == {"the-query.dl", "the-views.dl"}

    def test_audit_driver_name(self):
        sarif = to_sarif(audit_report(), driver_name="repro-audit")
        assert sarif["runs"][0]["tool"]["driver"]["name"] == "repro-audit"
        default = to_sarif(lint_report())
        assert default["runs"][0]["tool"]["driver"]["name"] == "repro-lint"


class TestPartialFingerprints:
    def test_every_result_is_fingerprinted(self):
        for report in (lint_report(), audit_report()):
            sarif = to_sarif(report)
            results = all_results(sarif)
            assert results
            for result in results:
                fingerprint = result["partialFingerprints"][FINGERPRINT_KEY]
                assert len(fingerprint) == 64

    def test_audit_fingerprints_survive_view_reordering(self):
        lines = [
            "v1(X,Y) :- a(X,Y)",
            "v2(X,Y) :- a(X,Y), b(Y,Z)",
            "bad(X) :- a(X,Y), Y = c1, Y = c2",
        ]
        forward = to_sarif(audit_catalog(ViewCatalog(lines)))
        backward = to_sarif(
            audit_catalog(ViewCatalog(list(reversed(lines))))
        )
        keys = lambda sarif: {
            r["partialFingerprints"][FINGERPRINT_KEY]
            for r in all_results(sarif)
        }
        assert keys(forward) == keys(backward)

    def test_lint_fallback_fingerprint_is_content_hashed(self):
        report = lint_report()
        finding = report.diagnostics[0]
        assert result_fingerprint(finding)
        assert result_fingerprint(finding) == result_fingerprint(finding)


class TestRenderJson:
    def test_render_json_forwards_sources(self):
        rendered = json.loads(
            render_json(
                audit_report(),
                views_source="catalog.dl",
                driver_name="repro-audit",
            )
        )
        assert rendered["runs"][0]["tool"]["driver"]["name"] == "repro-audit"
        uris = {
            loc["physicalLocation"]["artifactLocation"]["uri"]
            for result in all_results(rendered)
            for loc in result.get("locations", [])
        }
        assert uris == {"catalog.dl"}
