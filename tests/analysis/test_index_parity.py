"""R006/R102 on the predicate index == the pre-index reference.

Both rules now consult the catalog's predicate-signature index — R006 to
answer "shares a base predicate with the query" for the whole catalog at
once, R102 to skip evaluating views the index proves empty.  These tests
re-implement each rule's original per-view logic verbatim and assert the
indexed rules emit **identical diagnostics** (code, subject, message) on
the paper's example workloads and on corner cases the index must not
change: arity mismatches (R006 matches by predicate *name*), views with
no relational atoms, and catalogs mutated through the delta API.
"""

import pytest

from repro.analysis import analyze
from repro.core.view_tuples import view_tuples
from repro.experiments import paper_examples
from repro.planner import PlannerContext
from repro.views import ViewCatalog, as_view

EXAMPLES = ["car_loc_part", "example_41", "example_42", "example_61",
            "gmr_not_cmr"]

#: Corner-case workloads: (query text, view texts).
CORNERS = [
    # Arity mismatch: v1 shares predicate *name* a with the query but at
    # a different arity — the pre-index R006 calls that "relevant".
    (
        "q(X, Y) :- a(X, Y, Z), b(Z, Y)",
        ["v1(A, B) :- a(A, B)", "v2(A, B) :- b(A, B)"],
    ),
    # A fully irrelevant view plus one exporting only existentials.
    (
        "q(X, Y) :- a(X, Z), b(Z, Y)",
        [
            "v1(A, B) :- c(A, B)",
            "v2(A) :- a(A, B), c(B, A)",
            "v3(A) :- b(B, C), d(A, A)",
        ],
    ),
    # Everything relevant and usable (no diagnostics at all).
    (
        "q(X, Y) :- a(X, Z), b(Z, Y)",
        ["v1(A, B) :- a(A, B)", "v2(A, B) :- b(A, B)"],
    ),
]


def _relational_atoms(rule):
    return [atom for atom in rule.body if not atom.is_comparison]


def _reference_r006_subjects(query, views):
    """The original (pre-index) R006 logic, per view."""
    flagged = []
    query_predicates = query.predicates()
    for view in views:
        relevant = [
            atom
            for atom in _relational_atoms(view.definition)
            if atom.predicate in query_predicates
        ]
        if not relevant:
            flagged.append((f"view:{view.name}", "no-shared-predicate"))
            continue
        exported = set()
        for atom in relevant:
            exported.update(atom.variable_set())
        if not exported.intersection(view.head_variables):
            flagged.append((f"view:{view.name}", "no-exported-variable"))
    return flagged


def _reference_r102_subjects(query, views):
    """The original (pre-index) R102 logic: evaluate every view."""
    has_comparisons = any(atom.is_comparison for atom in query.body)
    if has_comparisons or not query.is_safe() or not len(views):
        return []
    context = PlannerContext()
    minimized = context.minimize(query)
    canonical = context.canonical_database(minimized)
    flagged = []
    for view in views:
        if any(atom.is_comparison for atom in view.definition.body):
            continue
        if not view_tuples(minimized, [view], canonical, context=context):
            flagged.append(f"view:{view.name}")
    return flagged


def _workloads():
    for name in EXAMPLES:
        example = getattr(paper_examples, name)()
        yield name, example.query, example.views
    for i, (query_text, view_texts) in enumerate(CORNERS):
        from repro import parse_query

        yield f"corner_{i}", parse_query(query_text), ViewCatalog(view_texts)


@pytest.mark.parametrize(
    "name,query,views",
    list(_workloads()),
    ids=[w[0] for w in _workloads()],
)
class TestIndexParity:
    def test_r006_matches_reference(self, name, query, views):
        report = analyze(query, views, select=["R006"])
        reference = _reference_r006_subjects(query, views)
        assert [d.subject for d in report] == [s for s, _ in reference]
        # The two R006 clauses stay distinguishable in the message text.
        for diagnostic, (_, kind) in zip(report.diagnostics, reference):
            if kind == "no-shared-predicate":
                assert "shares no base predicate" in diagnostic.message
            else:
                assert "exports none of the variables" in diagnostic.message

    def test_r102_matches_reference(self, name, query, views):
        report = analyze(query, views, select=["R102"])
        assert [d.subject for d in report] == _reference_r102_subjects(
            query, views
        )


def test_parity_survives_catalog_deltas():
    """Diagnostics stay reference-identical after add/remove deltas
    rebuild the index incrementally."""
    from repro import parse_query

    query = parse_query("q(X, Y) :- a(X, Z), b(Z, Y)")
    views = ViewCatalog(["v1(A, B) :- a(A, B)", "v2(A, B) :- c(A, B)"])
    views.add_view(as_view("v3(A, B) :- b(A, B), c(B, B)"))
    views.remove_view("v2")
    views.replace_view(as_view("v1(A, B) :- d(A, B)"))
    for code, reference in [
        ("R006", [s for s, _ in _reference_r006_subjects(query, views)]),
        ("R102", _reference_r102_subjects(query, views)),
    ]:
        report = analyze(query, views, select=[code])
        assert [d.subject for d in report] == reference, code
