"""Positive and negative tests for the semantic/config rules R101-R104.

R101 and R102 are validated against ground truth computed directly with
the planner's own machinery (containment on marker-renamed definitions,
``view_tuples`` over the canonical database) rather than against
hand-written expectations alone.
"""

from repro.analysis import PlannerConfig, Severity, analyze
from repro.analysis.semantic import _marker_definition
from repro.core.view_tuples import view_tuples
from repro.datalog import parse_program, parse_query
from repro.planner import PlannerContext
from repro.views import ViewCatalog


def codes(report):
    return {diagnostic.code for diagnostic in report}


def diags(report, code):
    return [d for d in report if d.code == code]


class TestRedundantViewR101:
    def test_positive_flags_later_duplicate(self):
        query = parse_query("q(X, Y) :- e(X, Z), e(Z, Y)")
        views = ViewCatalog(parse_program(
            "v1(A, B) :- e(A, C), e(C, B)\n"
            "v2(X, Y) :- e(X, M), e(M, Y)\n"
        ))
        report = analyze(query, views)
        (finding,) = diags(report, "R101")
        assert finding.subject == "view:v2"
        assert "'v1'" in finding.message

    def test_ground_truth_containment(self):
        # Every flagged pair must actually be containment-equivalent
        # under the planner's own containment test.
        query = parse_query("q(X, Y) :- e(X, Z), e(Z, Y)")
        views = ViewCatalog(parse_program(
            "v1(A, B) :- e(A, C), e(C, B)\n"
            "v2(X, Y) :- e(X, M), e(M, Y)\n"
            "v3(A, B) :- e(A, B)\n"
        ))
        context = PlannerContext()
        report = analyze(query, views, context=context)
        flagged = {d.subject.removeprefix("view:") for d in diags(report, "R101")}
        assert flagged == {"v2"}
        by_name = {view.name: view for view in views}
        assert context.is_equivalent_to(
            _marker_definition(by_name["v2"]), _marker_definition(by_name["v1"])
        )
        assert not context.is_equivalent_to(
            _marker_definition(by_name["v3"]), _marker_definition(by_name["v1"])
        )

    def test_negative_inequivalent_views(self):
        query = parse_query("q(X) :- e(X, Y)")
        views = ViewCatalog(parse_program(
            "v1(A, B) :- e(A, B)\n"
            "v2(A) :- e(A, A)\n"
        ))
        assert "R101" not in codes(analyze(query, views))

    def test_same_signature_not_equivalent(self):
        # Same predicate multiset and head arity, different join shape.
        query = parse_query("q(X, Y) :- e(X, Z), e(Z, Y)")
        views = ViewCatalog(parse_program(
            "v1(A, B) :- e(A, C), e(C, B)\n"
            "v2(A, B) :- e(A, B), e(B, B)\n"
        ))
        assert "R101" not in codes(analyze(query, views))


class TestEmptyViewTuplesR102:
    def test_positive_constant_clash(self):
        query = parse_query("q(X) :- p(X, a)")
        views = ViewCatalog(parse_program("v(X) :- p(X, b)"))
        report = analyze(query, views)
        (finding,) = diags(report, "R102")
        assert finding.subject == "view:v"
        assert finding.severity is Severity.WARNING

    def test_positive_predicate_not_in_query(self):
        query = parse_query("q(X) :- e(X, Y)")
        views = ViewCatalog(parse_program("v(A) :- f(A, A)"))
        assert "R102" in codes(analyze(query, views))

    def test_negative_usable_view(self):
        query = parse_query("q(X, Y) :- e(X, Z), e(Z, Y)")
        views = ViewCatalog(parse_program("v(A, B) :- e(A, B)"))
        assert "R102" not in codes(analyze(query, views))

    def test_ground_truth_view_tuples(self):
        # R102 must agree exactly with T(Q, {V}) computed from scratch.
        query = parse_query("q(X) :- p(X, a), r(X, Y)")
        views = ViewCatalog(parse_program(
            "v1(X) :- p(X, b)\n"
            "v2(X, Y) :- r(X, Y)\n"
            "v3(X) :- p(X, a)\n"
        ))
        context = PlannerContext()
        report = analyze(query, views, context=context)
        flagged = {d.subject.removeprefix("view:") for d in diags(report, "R102")}
        minimized = context.minimize(query)
        canonical = context.canonical_database(minimized)
        for view in views:
            tuples = view_tuples(minimized, [view], canonical)
            assert (not tuples) == (view.name in flagged), view.name

    def test_skipped_for_unsafe_query(self):
        report = analyze(
            parse_query("q(X, Y) :- e(X, Z)"),
            ViewCatalog(parse_program("v(A, B) :- e(A, B)")),
        )
        assert "R102" not in codes(report)


class TestNonMinimalQueryR103:
    def test_positive_with_core_fix(self):
        query = parse_query("q(X) :- e(X, Y), e(X, Z)")
        context = PlannerContext()
        report = analyze(query, context=context)
        (finding,) = diags(report, "R103")
        assert finding.severity is Severity.INFO
        assert finding.fix == str(context.minimize(query))

    def test_negative_minimal(self):
        report = analyze(parse_query("q(X, Y) :- e(X, Z), e(Z, Y)"))
        assert "R103" not in codes(report)


class TestConfigConflictR104:
    def test_unknown_backend(self):
        report = analyze(
            parse_query("q(X) :- e(X, X)"),
            config=PlannerConfig(backend="nope"),
        )
        findings = diags(report, "R104")
        assert findings and "nope" in findings[0].message

    def test_unknown_cost_model(self):
        report = analyze(
            parse_query("q(X) :- e(X, X)"),
            config=PlannerConfig(cost_model="m9", has_database=True),
        )
        assert "R104" in codes(report)

    def test_non_rewriting_backend_with_cost_model(self):
        report = analyze(
            parse_query("q(X) :- e(X, X)"),
            config=PlannerConfig(
                backend="inverse-rules", cost_model="m2", has_database=True
            ),
        )
        findings = diags(report, "R104")
        assert any("maximally-contained" in f.message for f in findings)
        assert any(f.severity is Severity.ERROR for f in findings)

    def test_m3_with_non_gsr_backend_is_a_warning(self):
        report = analyze(
            parse_query("q(X) :- e(X, X)"),
            config=PlannerConfig(
                backend="minicon", cost_model="m3", has_database=True
            ),
        )
        findings = diags(report, "R104")
        assert findings and findings[0].severity is Severity.WARNING

    def test_data_model_without_data(self):
        report = analyze(
            parse_query("q(X) :- e(X, X)"),
            config=PlannerConfig(backend="corecover", cost_model="m2"),
        )
        findings = diags(report, "R104")
        assert findings and findings[0].severity is Severity.ERROR
        assert "database" in findings[0].message

    def test_negative_consistent_config(self):
        report = analyze(
            parse_query("q(X) :- e(X, X)"),
            config=PlannerConfig(
                backend="corecover-star", cost_model="m3", has_database=True
            ),
        )
        assert "R104" not in codes(report)

    def test_negative_no_config(self):
        report = analyze(parse_query("q(X) :- e(X, X)"))
        assert "R104" not in codes(report)


class TestAcyclicRoutingR105:
    def test_acyclic_query_reports_fast_path_and_depth(self):
        report = analyze(parse_query("q(X, Y) :- e(X, Z), e(Z, Y)"))
        (note,) = diags(report, "R105")
        assert note.severity is Severity.INFO
        assert "alpha-acyclic" in note.message
        assert "join-tree depth 2" in note.message
        assert "--no-acyclic-fast-path" in note.message

    def test_cyclic_query_reports_irreducible_core(self):
        report = analyze(parse_query("q(X) :- e(X, Y), e(Y, Z), e(Z, X)"))
        (note,) = diags(report, "R105")
        assert "cyclic" in note.message
        assert "GYO residue" in note.message
        # The triangle's residue is all three binary edges.
        assert note.message.count("{") == 3

    def test_comparison_query_reports_general_path(self):
        report = analyze(parse_query("q(X, Y) :- e(X, Z), e(Z, Y), X < Y"))
        (note,) = diags(report, "R105")
        assert "comparison" in note.message
        assert "general" in note.message

    def test_single_atom_query_has_no_note(self):
        report = analyze(parse_query("q(X, Y) :- e(X, Y)"))
        assert "R105" not in codes(report)

    def test_single_relational_atom_with_comparison_has_no_note(self):
        report = analyze(parse_query("q(X, Y) :- e(X, Y), X < Y"))
        assert "R105" not in codes(report)
