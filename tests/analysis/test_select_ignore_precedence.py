"""--select/--ignore prefix filters: precedence with overlapping prefixes.

Shared by lint (``analyze``) and audit (``CatalogAuditor``) through the
same ``_selected`` helper: select narrows first, then ignore prunes the
survivors, so an ignore always wins over an overlapping select.
"""

from repro.analysis import analyze, audit_catalog
from repro.cli import _split_codes
from repro.datalog.parser import parse_query
from repro.views import ViewCatalog


def lint(select=None, ignore=None):
    # Fires R001 (unsafe head) and R004 (contradiction).
    query = parse_query("q(X, Y) :- e(X, Z), 2 > 3")
    return analyze(query, ViewCatalog(), select=select, ignore=ignore)


def audit(select=None, ignore=None):
    return audit_catalog(
        ViewCatalog(["v(X,Y) :- a(X,Y)"]), select=select, ignore=ignore
    )


class TestLintPrecedence:
    def test_ignore_wins_inside_a_selected_prefix(self):
        report = lint(select=["R0"], ignore=["R001"])
        assert "R001" not in report.checked
        assert "R004" in report.checked

    def test_overlapping_prefixes_compose(self):
        report = lint(select=["R"], ignore=["R00"])
        assert not any(code.startswith("R00") for code in report.checked)
        assert any(code.startswith("R1") for code in report.checked)

    def test_ignore_everything_selected_yields_empty_run(self):
        report = lint(select=["R0"], ignore=["R0"])
        assert report.checked == ()
        assert report.diagnostics == ()

    def test_case_insensitive_prefixes(self):
        report = lint(select=["r0"], ignore=["r004"])
        assert "R001" in report.checked
        assert "R004" not in report.checked


class TestAuditPrecedence:
    def test_ignore_wins_inside_a_selected_prefix(self):
        report = audit(select=["C1"], ignore=["C103"])
        assert "C103" not in report.checked
        assert "C101" in report.checked

    def test_select_r_prefix_runs_no_audit_rules(self):
        # Audit only dispatches view/catalog-scope rules; selecting the
        # lint series leaves nothing to run.
        report = audit(select=["R1"])
        assert report.checked == ()

    def test_overlapping_select_and_ignore_prefixes(self):
        report = audit(select=["C10"], ignore=["C105", "C106"])
        assert set(report.checked) == {"C101", "C102", "C103", "C104"}


class TestSplitCodes:
    def test_commas_and_repeats_flatten(self):
        assert _split_codes(["R1,R2", " C103 ", "R0"]) == [
            "R1", "R2", "C103", "R0",
        ]

    def test_empty_input_is_none(self):
        assert _split_codes(None) is None
        assert _split_codes([]) is None

    def test_blank_fragments_dropped(self):
        assert _split_codes(["R1,,  ,R2"]) == ["R1", "R2"]
