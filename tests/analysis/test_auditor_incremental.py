"""The incremental CatalogAuditor: content-keyed reuse across deltas."""

import pytest

from repro.analysis import CatalogAuditor, audit_catalog
from repro.analysis.catalog import load_baseline, write_baseline
from repro.analysis.registry import AnalysisRule, register_rule, unregister_rule
from repro.analysis.diagnostics import Severity
from repro.parallel.pool import PlannerContextPool
from repro.views import ViewCatalog


def build():
    return ViewCatalog(
        [
            "v1(X,Y) :- a(X,Y)",
            "v2(X,Y) :- a(X,Y), b(Y,Z)",
            "v3(X,Y) :- c(X,Y)",
            "v4(X) :- d(X)",
        ]
    )


class TestIncrementalReuse:
    def test_full_then_noop_reaudit(self):
        catalog = build()
        auditor = CatalogAuditor()
        first = auditor.audit(catalog)
        assert (first.views_analyzed, first.views_reused) == (4, 0)
        again = auditor.audit(catalog)
        assert (again.views_analyzed, again.views_reused) == (0, 4)
        assert again.diagnostics == first.diagnostics

    def test_isolated_view_change_reanalyzes_only_itself(self):
        catalog = build()
        auditor = CatalogAuditor()
        auditor.audit(catalog)
        # v3 shares predicate c/2 with no other view: no neighbors.
        catalog.replace_view("v3(X,Y) :- c(X,Y), c(Y,Z)")
        report = auditor.audit(catalog)
        assert (report.views_analyzed, report.views_reused) == (1, 3)

    def test_neighbor_units_invalidate_with_the_changed_view(self):
        catalog = build()
        auditor = CatalogAuditor()
        auditor.audit(catalog)
        # v1 and v2 share a/2: changing v1 re-analyzes both, not v3/v4.
        catalog.replace_view("v1(X,Y) :- a(Y,X)")
        report = auditor.audit(catalog)
        assert (report.views_analyzed, report.views_reused) == (2, 2)

    def test_added_view_invalidates_new_neighbors_only(self):
        catalog = build()
        auditor = CatalogAuditor()
        auditor.audit(catalog)
        catalog.add_view("v5(Y,Z) :- b(Y,Z)")
        report = auditor.audit(catalog)
        # v5 is new; v2 gains it as a neighbor (shared b/2).
        assert (report.views_analyzed, report.views_reused) == (2, 3)

    def test_removed_view_invalidates_its_old_neighbors(self):
        catalog = build()
        auditor = CatalogAuditor()
        auditor.audit(catalog)
        catalog.remove_view("v1")
        report = auditor.audit(catalog)
        # v2 lost its neighbor; v3 and v4 are untouched.
        assert (report.views_analyzed, report.views_reused) == (1, 2)

    def test_delta_audit_equals_scratch_audit(self):
        catalog = build()
        auditor = CatalogAuditor()
        auditor.audit(catalog)
        catalog.replace_view("v1(X,Y) :- a(X,Y), a(Y,Z)")
        catalog.add_view("v5(X,Y) :- a(X,Y)")
        incremental = auditor.audit(catalog)
        scratch = audit_catalog(ViewCatalog(list(catalog)))
        assert incremental.diagnostics == scratch.diagnostics

    def test_lifetime_counters_accumulate(self):
        catalog = build()
        auditor = CatalogAuditor()
        auditor.audit(catalog)
        auditor.audit(catalog)
        assert auditor.units_computed == 4
        assert auditor.units_reused == 4

    def test_cache_is_swept_to_live_units(self):
        catalog = build()
        auditor = CatalogAuditor()
        auditor.audit(catalog)
        catalog.remove_view("v4")
        auditor.audit(catalog)
        assert len(auditor._units) == 3


class TestContextAcquisition:
    def test_private_context_event(self):
        report = CatalogAuditor().audit(build())
        assert report.context_event == "private"

    def test_pool_events_progress_miss_to_exact(self):
        pool = PlannerContextPool(max_entries=2)
        auditor = CatalogAuditor(pool=pool)
        catalog = build()
        first = auditor.audit(catalog)
        assert first.context_event == "miss"
        second = auditor.audit(catalog)
        assert second.context_event == "exact"
        catalog.replace_view("v3(X,Y) :- c(Y,X)")
        third = auditor.audit(catalog)
        assert third.context_event == "delta"


class TestBaselines:
    def test_round_trip_suppresses_everything(self, tmp_path):
        catalog = ViewCatalog(
            ["v1(X,Y) :- a(X,Y)", "bad(X) :- a(X,Y), Y = c1, Y = c2"]
        )
        report = audit_catalog(catalog)
        assert report.diagnostics
        path = tmp_path / "baseline.json"
        pinned = write_baseline(report, path)
        assert pinned == len(report.diagnostics)
        fingerprints = load_baseline(path)
        suppressed = audit_catalog(catalog, baseline=fingerprints)
        assert suppressed.diagnostics == ()
        assert suppressed.suppressed == pinned
        assert suppressed.ok

    def test_new_findings_survive_the_baseline(self, tmp_path):
        catalog = ViewCatalog(["bad(X) :- a(X,Y), Y = c1, Y = c2"])
        path = tmp_path / "baseline.json"
        write_baseline(audit_catalog(catalog), path)
        catalog.add_view("worse(X) :- b(X,Y), Y = c1, Y = c2")
        report = audit_catalog(
            ViewCatalog(list(catalog)), baseline=load_baseline(path)
        )
        assert [d.subject for d in report.diagnostics] == ["view:worse"]
        assert report.suppressed == 1

    def test_malformed_baseline_is_a_parse_error(self, tmp_path):
        from repro.errors import ParseError

        path = tmp_path / "baseline.json"
        path.write_text("{\"version\": 99}")
        with pytest.raises(ParseError):
            load_baseline(path)
        with pytest.raises(ParseError):
            load_baseline(tmp_path / "missing.json")


class TestRuleIsolation:
    def test_crashing_audit_rule_degrades_to_r900(self):
        def _boom(inputs):
            raise RuntimeError("kaboom")
            yield  # pragma: no cover

        rule = register_rule(
            AnalysisRule(
                code="C999",
                name="test-crash",
                description="crashes for the isolation test",
                severity=Severity.INFO,
                family="structural",
                check=_boom,
                scope="view",
            )
        )
        try:
            report = audit_catalog(ViewCatalog(["v(X,Y) :- a(X,Y)"]))
            findings = [d for d in report if d.code == "R900"]
            assert len(findings) == 1
            assert "C999" in findings[0].message
            assert findings[0].subject == "view:v"
        finally:
            unregister_rule(rule.code)
