"""Positive and negative tests for the catalog-audit rules C101-C106."""

import pytest

from repro.analysis import Severity, audit_catalog
from repro.analysis.catalog import gyo_reduce, is_acyclic
from repro.datalog.parser import parse_query
from repro.views import ViewCatalog


def codes(report):
    return {diagnostic.code for diagnostic in report}


def diags(report, code):
    return [d for d in report if d.code == code]


def run(view_lines, **kwargs):
    return audit_catalog(ViewCatalog(view_lines), **kwargs)


class TestSubsumedViewC101:
    def test_positive_strict_containment(self):
        report = run(
            ["v1(X,Y) :- a(X,Y)", "v2(X,Y) :- a(X,Y), b(Y,Z)"]
        )
        (finding,) = diags(report, "C101")
        assert finding.severity is Severity.INFO
        # Reported on the contained (weaker) view.
        assert finding.subject == "view:v2"
        assert "'v1'" in finding.message
        assert finding.fingerprint

    def test_negative_incomparable_views(self):
        report = run(["v1(X,Y) :- a(X,Y)", "v2(X,Y) :- b(X,Y)"])
        assert "C101" not in codes(report)

    def test_negative_equivalent_pair_is_not_subsumption(self):
        report = run(["v1(X,Y) :- a(X,Y)", "v2(X,Y) :- a(X,Y)"])
        assert "C101" not in codes(report)

    def test_negative_different_arity(self):
        report = run(["v1(X,Y) :- a(X,Y)", "v2(X) :- a(X,Y), b(Y,Z)"])
        assert "C101" not in codes(report)

    def test_negative_comparison_bodies_skipped(self):
        report = run(
            ["v1(X,Y) :- a(X,Y)", "v2(X,Y) :- a(X,Y), X < Y"]
        )
        assert "C101" not in codes(report)


class TestEquivalentViewsC102:
    def test_positive_redundant_atom(self):
        # v2 carries a redundant atom (a(X,Z) folds onto a(X,Y)), so the
        # bodies differ textually but the views are equivalent.
        report = run(
            ["v1(X,Y) :- a(X,Y)", "v2(X,Y) :- a(X,Y), a(X,Z)"]
        )
        (finding,) = diags(report, "C102")
        assert finding.severity is Severity.WARNING
        # Reported once, on the later view of the pair.
        assert finding.subject == "view:v2"
        assert "'v1'" in finding.message

    def test_positive_pair_not_doubly_reported_as_c101_or_c104(self):
        report = run(
            ["v1(X,Y) :- a(X,Y)", "v2(X,Y) :- a(X,Y), a(X,Z)"]
        )
        assert "C101" not in codes(report)
        assert "C104" not in codes(report)

    def test_negative_plain_catalog(self):
        report = run(["v1(X,Y) :- a(X,Y)", "v2(X,Y) :- b(X,Y)"])
        assert "C102" not in codes(report)

    def test_negative_exact_duplicates_are_c104_not_c102(self):
        report = run(["v1(X,Y) :- a(X,Y)", "v2(P,Q) :- a(P,Q)"])
        assert "C102" not in codes(report)
        assert "C104" in codes(report)


class TestUnsatisfiableViewC103:
    def test_positive_conflicting_constant_bindings(self):
        report = run(
            ["v1(X,Y) :- a(X,Y)", "bad(X) :- a(X,Y), Y = c1, Y = c2"]
        )
        (finding,) = diags(report, "C103")
        assert finding.severity is Severity.ERROR
        assert finding.subject == "view:bad"
        assert not report.ok

    def test_positive_false_comparison(self):
        report = run(["bad(X) :- a(X,Y), 2 > 3"])
        (finding,) = diags(report, "C103")
        assert finding.severity is Severity.ERROR

    def test_negative_satisfiable_constants(self):
        report = run(["v(X) :- a(X,Y), Y = c1"])
        assert "C103" not in codes(report)


class TestShadowedViewC104:
    def test_positive_identical_twin_reported_on_older(self):
        report = run(
            [
                "v1(X,Y) :- a(X,Y)",
                "v2(X,Y) :- b(X,Y)",
                "v3(X,Y) :- a(X,Y)",
            ]
        )
        (finding,) = diags(report, "C104")
        assert finding.severity is Severity.WARNING
        assert finding.subject == "view:v1"
        assert "'v3'" in finding.message
        assert finding.fix is not None and "keep v3" in finding.fix

    def test_positive_fix_names_the_newest_of_three(self):
        report = run(
            [
                "v1(X,Y) :- a(X,Y)",
                "v2(X,Y) :- a(X,Y)",
                "v3(X,Y) :- a(X,Y)",
            ]
        )
        findings = diags(report, "C104")
        # v1 and v2 are each shadowed by the newest equivalent, v3.
        assert [f.subject for f in findings] == ["view:v1", "view:v2"]
        assert all("keep v3" in f.fix for f in findings)

    def test_negative_strict_containment_is_not_shadowing(self):
        report = run(
            ["v1(X,Y) :- a(X,Y)", "v2(X,Y) :- a(X,Y), a(Y,Z)"]
        )
        assert "C104" not in codes(report)

    def test_negative_renamed_variables_still_shadow(self):
        report = run(["v1(X,Y) :- a(X,Y)", "v2(P,Q) :- a(P,Q)"])
        assert [f.subject for f in diags(report, "C104")] == ["view:v1"]


class TestUnreachablePredicateC105:
    def test_positive_no_join_variable_exported(self):
        # b/2 appears only through existential variables.
        report = run(["v(X) :- a(X,Y), b(Y2,Z2)"])
        findings = diags(report, "C105")
        assert len(findings) == 1
        assert findings[0].subject == "catalog"
        assert "b/2" in findings[0].message

    def test_positive_schema_relation_never_mentioned(self):
        report = run(
            ["v(X,Y) :- a(X,Y)"], schema={"a": 2, "ghost": 3}
        )
        findings = diags(report, "C105")
        assert len(findings) == 1
        assert "ghost/3" in findings[0].message

    def test_negative_all_predicates_exported(self):
        report = run(
            ["v(X,Y) :- a(X,Y)", "w(Y,Z) :- b(Y,Z)"],
            schema={"a": 2, "b": 2},
        )
        assert "C105" not in codes(report)


class TestCyclicViewC106:
    def test_positive_triangle(self):
        report = run(
            ["tri(X) :- a(X,Y), b(Y,Z), c(Z,X)"]
        )
        (finding,) = diags(report, "C106")
        assert finding.severity is Severity.INFO
        assert finding.subject == "view:tri"
        assert "cyclic" in finding.message

    def test_negative_chain_is_acyclic(self):
        report = run(["v(X,Z) :- a(X,Y), b(Y,Z)"])
        assert "C106" not in codes(report)

    def test_negative_single_atom(self):
        report = run(["v(X,Y) :- a(X,Y)"])
        assert "C106" not in codes(report)


class TestGyoReduction:
    def test_triangle_is_cyclic(self):
        query = parse_query("q(X) :- a(X,Y), b(Y,Z), c(Z,X)")
        assert not is_acyclic(query)
        assert len(gyo_reduce(query)) == 3

    def test_chain_is_acyclic(self):
        query = parse_query("q(X,W) :- a(X,Y), b(Y,Z), c(Z,W)")
        assert is_acyclic(query)

    def test_star_is_acyclic(self):
        query = parse_query("q(X) :- a(X,Y), b(X,Z), c(X,W)")
        assert is_acyclic(query)

    def test_comparisons_do_not_form_edges(self):
        query = parse_query("q(X,Z) :- a(X,Y), b(Y,Z), X < Z")
        assert is_acyclic(query)

    def test_cycle_with_pendant_ear(self):
        query = parse_query(
            "q(X) :- a(X,Y), b(Y,Z), c(Z,X), d(X,W)"
        )
        assert not is_acyclic(query)
        assert len(gyo_reduce(query)) == 3


class TestReportShape:
    def test_checked_rules_and_summary(self):
        report = run(["v1(X,Y) :- a(X,Y)"])
        assert {"C101", "C102", "C103", "C104", "C105", "C106"} <= set(
            report.checked
        )
        text = report.render_text()
        assert "audited 1 view(s)" in text

    def test_select_restricts_audit_rules(self):
        report = run(
            ["v1(X,Y) :- a(X,Y)", "v2(X,Y) :- a(X,Y)"],
            select=["C103"],
        )
        assert report.checked == ("C103",)
        assert "C104" not in codes(report)

    def test_fingerprints_are_reordering_stable(self):
        lines = [
            "v1(X,Y) :- a(X,Y)",
            "v2(X,Y) :- a(X,Y), b(Y,Z)",
            "bad(X) :- a(X,Y), Y = c1, Y = c2",
        ]
        forward = audit_catalog(ViewCatalog(lines))
        backward = audit_catalog(ViewCatalog(list(reversed(lines))))
        assert {d.fingerprint for d in forward} == {
            d.fingerprint for d in backward
        }

    def test_triple_duplicate_fingerprints_survive_reordering(self):
        # With >= 3 duplicates the (shadowed, newest) pairing depends on
        # registration order; the class-based C104 fingerprint must not.
        lines = [
            "v1(X,Y) :- a(X,Y)",
            "v2(P,Q) :- a(P,Q)",
            "v3(R,S) :- a(R,S)",
        ]
        forward = audit_catalog(ViewCatalog(lines))
        backward = audit_catalog(ViewCatalog(list(reversed(lines))))
        assert {d.fingerprint for d in diags(forward, "C104")} == {
            d.fingerprint for d in diags(backward, "C104")
        }

    def test_lint_rules_stay_out_of_audit(self):
        report = run(["v(X,Y) :- a(X,Y)"])
        assert not any(code.startswith("R") for code in report.checked)
