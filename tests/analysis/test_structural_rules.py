"""Positive and negative tests for the structural rules R001-R006."""

import pytest

from repro.analysis import Severity, analyze
from repro.datalog.parser import parse_program_spans, parse_query_spans
from repro.views import ViewCatalog


def codes(report):
    return {diagnostic.code for diagnostic in report}


def diags(report, code):
    return [d for d in report if d.code == code]


def run(query_text, view_lines=(), **kwargs):
    query, query_spans = parse_query_spans(query_text)
    views = ViewCatalog()
    view_spans = None
    if view_lines:
        rules, view_spans = parse_program_spans("\n".join(view_lines))
        views = ViewCatalog(rules)
    return analyze(
        query,
        views,
        query_spans=query_spans,
        view_spans=view_spans,
        **kwargs,
    )


class TestUnsafeHeadR001:
    def test_positive(self):
        report = run("q(X, Y) :- e(X, Z)")
        (finding,) = diags(report, "R001")
        assert finding.severity is Severity.ERROR
        assert "Y" in finding.message
        assert finding.span is not None

    def test_negative(self):
        report = run("q(X, Y) :- e(X, Z), e(Z, Y)")
        assert "R001" not in codes(report)

    def test_constant_head_argument_is_safe(self):
        report = run("q(X, a) :- e(X, Y)")
        assert "R001" not in codes(report)


class TestArityMismatchR002:
    def test_positive_against_declared_schema(self):
        report = run("q(X) :- e(X, Y)", schema={"e": 3})
        findings = diags(report, "R002")
        assert findings and all(f.severity is Severity.ERROR for f in findings)
        assert "arity 3" in findings[0].message

    def test_positive_cross_consistency_with_view(self):
        report = run("q(X) :- e(X, Y)", ["v(A) :- e(A, B, B)"])
        findings = diags(report, "R002")
        assert findings
        assert findings[0].subject == "view:v"

    def test_negative(self):
        report = run(
            "q(X) :- e(X, Y)", ["v(A) :- e(A, B)"], schema={"e": 2}
        )
        assert "R002" not in codes(report)

    def test_schema_match_suppresses_cross_check(self):
        # With a declared arity, each use is judged against the schema only.
        report = run("q(X) :- e(X, Y)", schema={"e": 2})
        assert "R002" not in codes(report)


class TestCartesianProductR003:
    def test_positive(self):
        report = run("q(X, Y) :- e(X, X), f(Y, Y)")
        (finding,) = diags(report, "R003")
        assert finding.severity is Severity.WARNING
        assert "2 components" in finding.message

    def test_negative_connected(self):
        report = run("q(X, Y) :- e(X, Z), f(Z, Y)")
        assert "R003" not in codes(report)

    def test_negative_single_atom(self):
        report = run("q(X) :- e(X, X)")
        assert "R003" not in codes(report)

    def test_comparisons_do_not_connect(self):
        # A comparison atom is not a join; the base atoms stay disconnected.
        report = run("q(X, Y) :- e(X, X), f(Y, Y), X = Y")
        assert "R003" in codes(report)


class TestContradictoryConstantsR004:
    def test_positive_direct(self):
        report = run("q(X) :- e(X, Y), X = a, X = b")
        findings = diags(report, "R004")
        assert findings and findings[0].severity is Severity.ERROR

    def test_positive_transitive_chain(self):
        report = run("q(X) :- e(X, Y), X = a, Y = b, X = Y")
        assert "R004" in codes(report)

    def test_positive_false_constant_comparison(self):
        report = run("q(X) :- e(X, Y), 2 > 3")
        (finding,) = diags(report, "R004")
        assert "always" in finding.message

    def test_negative_consistent(self):
        report = run("q(X) :- e(X, Y), X = a, Y = b")
        assert "R004" not in codes(report)

    def test_negative_repeated_same_constant(self):
        report = run("q(X) :- e(X, Y), X = a, X = a")
        assert "R004" not in codes(report)


class TestDuplicateSubgoalsR005:
    def test_positive_with_fix(self):
        report = run("q(X) :- e(X, Y), e(X, Y)")
        (finding,) = diags(report, "R005")
        assert finding.severity is Severity.WARNING
        assert finding.fix is not None
        assert finding.fix.count("e(X, Y)") == 1

    def test_negative_distinct_atoms(self):
        report = run("q(X) :- e(X, Y), e(Y, X)")
        assert "R005" not in codes(report)


class TestIrrelevantViewR006:
    def test_positive_no_shared_predicate(self):
        report = run("q(X) :- e(X, Y)", ["v(A) :- f(A, B)"])
        (finding,) = diags(report, "R006")
        assert finding.subject == "view:v"
        assert "no base predicate" in finding.message

    def test_positive_exports_nothing_relevant(self):
        # v's head exports only the f-side variable; its e-subgoal joins
        # through existentials alone.
        report = run("q(X) :- e(X, Y)", ["v(C) :- e(A, B), f(B, C)"])
        assert "R006" in codes(report)

    def test_negative_useful_view(self):
        report = run("q(X) :- e(X, Y)", ["v(A, B) :- e(A, B)"])
        assert "R006" not in codes(report)


class TestSpans:
    def test_view_findings_point_into_the_program_text(self):
        lines = ["v1(A, B) :- e(A, B)", "v2(A) :- f(A, A)"]
        report = run("q(X) :- e(X, Y)", lines)
        (finding,) = diags(report, "R006")
        text = "\n".join(lines)
        assert finding.span is not None
        assert finding.span.line == 2
        assert text[finding.span.start:finding.span.end] == lines[1]

    def test_schema_finding_points_at_the_offending_atom(self):
        text = "q(X) :- e(X, Y), f(X)"
        report = run(text, schema={"f": 2})
        (finding,) = diags(report, "R002")
        assert text[finding.span.start:finding.span.end] == "f(X)"


@pytest.mark.parametrize(
    "code", ["R001", "R002", "R003", "R004", "R005", "R006"]
)
def test_every_structural_code_is_checked_by_default(code):
    report = run("q(X) :- e(X, X)")
    assert code in report.checked
