"""``plan(..., preflight=True)``: rejection, advisories, shared caches."""

from repro.analysis import AnalysisReport, Severity
from repro.datalog import parse_program, parse_query
from repro.planner import PlannerContext, PlanStatus, plan
from repro.views import ViewCatalog

VIEWS = "v1(A, B) :- e(A, C), e(C, B)\nv2(A, B) :- e(A, B)\n"


def catalog():
    return ViewCatalog(parse_program(VIEWS))


class TestRejection:
    def test_unsafe_query_is_rejected_before_the_backend_runs(self):
        result = plan(
            parse_query("q(X, Y) :- e(X, Z)"), catalog(), preflight=True
        )
        assert result.outcome.status is PlanStatus.REJECTED
        assert result.rewritings == ()
        assert result.details is None  # the backend never ran
        assert any(d.code == "R001" for d in result.diagnostics)
        assert isinstance(result.analysis, AnalysisReport)
        assert not result.analysis.ok

    def test_config_conflict_is_rejected(self):
        # M2 without a database is an R104 error.
        result = plan(
            parse_query("q(X, Y) :- e(X, Z), e(Z, Y)"),
            catalog(),
            cost_model="m2",
            preflight=True,
        )
        assert result.outcome.status is PlanStatus.REJECTED
        assert any(d.code == "R104" for d in result.diagnostics)

    def test_without_preflight_no_rejection_no_report(self):
        result = plan(parse_query("q(X, Y) :- e(X, Z), e(Z, Y)"), catalog())
        assert result.outcome.status is PlanStatus.COMPLETE
        assert result.analysis is None
        assert result.diagnostics == ()


class TestCleanPreflight:
    def test_warnings_ride_along_without_blocking(self):
        views = ViewCatalog(parse_program(
            VIEWS + "v3(X, Y) :- e(X, M), e(M, Y)\n"  # duplicate of v1
        ))
        result = plan(
            parse_query("q(X, Y) :- e(X, Z), e(Z, Y)"), views, preflight=True
        )
        assert result.outcome.status is PlanStatus.COMPLETE
        assert result.rewritings  # planning proceeded
        assert any(d.code == "R101" for d in result.diagnostics)
        assert all(
            d.severity is not Severity.ERROR for d in result.diagnostics
        )
        assert result.analysis is not None and result.analysis.ok

    def test_preflight_matches_plain_plan_results(self):
        query = parse_query("q(X, Y) :- e(X, Z), e(Z, Y)")
        plain = plan(query, catalog())
        checked = plan(query, catalog(), preflight=True)
        assert set(map(str, plain.rewritings)) == set(
            map(str, checked.rewritings)
        )

    def test_preflight_stage_is_recorded(self):
        context = PlannerContext()
        plan(
            parse_query("q(X, Y) :- e(X, Z), e(Z, Y)"),
            catalog(),
            context=context,
            preflight=True,
        )
        assert "preflight" in context.stage_seconds
        assert "analyze" in context.stage_seconds


class TestSharedCaches:
    def test_preflight_warms_the_planner_caches(self):
        # The semantic rules minimize the query and build its canonical
        # database on the shared context; the backend then hits those
        # entries instead of recomputing.
        query = parse_query("q(X, Y) :- e(X, Z), e(Z, Y)")
        shared = PlannerContext()
        result = plan(query, catalog(), context=shared, preflight=True)
        assert result.outcome.status is PlanStatus.COMPLETE
        assert result.stats.cache_hits > 0

        cold = plan(parse_query("q(X, Y) :- e(X, Z), e(Z, Y)"), catalog())
        assert result.stats.cache_hits > cold.stats.cache_hits
