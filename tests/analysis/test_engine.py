"""Engine behavior: select/ignore, plugins, rule isolation, SARIF shape."""

import json

import pytest

from repro.analysis import (
    AnalysisRule,
    Severity,
    UnknownRuleError,
    analyze,
    available_rules,
    get_rule,
    register_rule,
    render_json,
    to_sarif,
    unregister_rule,
)
from repro.analysis.engine import INTERNAL_RULE_FAILURE
from repro.datalog import parse_query
from repro.errors import BudgetExceededError, UnsupportedQueryError

SAFE = "q(X, Y) :- e(X, Z), e(Z, Y)"


class TestSelectIgnore:
    def test_select_prefix(self):
        report = analyze(parse_query(SAFE), select=["R0"])
        assert report.checked
        assert all(code.startswith("R0") for code in report.checked)

    def test_select_exact_code(self):
        report = analyze(parse_query(SAFE), select=["R003"])
        assert report.checked == ("R003",)

    def test_ignore(self):
        report = analyze(parse_query(SAFE), ignore=["R1"])
        assert report.checked
        assert not any(code.startswith("R1") for code in report.checked)

    def test_select_then_ignore(self):
        report = analyze(parse_query(SAFE), select=["R0"], ignore=["R003"])
        assert "R003" not in report.checked
        assert "R001" in report.checked

    def test_codes_are_case_insensitive(self):
        report = analyze(parse_query(SAFE), select=["r003"])
        assert report.checked == ("R003",)


class TestPluginRegistry:
    def test_register_run_unregister(self):
        def check(inputs):
            yield rule.diagnostic("two subgoals" if len(inputs.query.body) == 2
                                  else "not two")

        rule = AnalysisRule(
            code="X100",
            name="test-plugin",
            description="test rule",
            severity=Severity.INFO,
            family="structural",
            check=check,
        )
        register_rule(rule)
        try:
            assert get_rule("X100") is rule
            report = analyze(parse_query(SAFE), select=["X100"])
            (finding,) = report.diagnostics
            assert finding.code == "X100"
            assert finding.rule == "test-plugin"
            assert finding.message == "two subgoals"
        finally:
            unregister_rule("X100")
        assert all(r.code != "X100" for r in available_rules())

    def test_duplicate_registration_rejected(self):
        existing = get_rule("R001")
        with pytest.raises(ValueError):
            register_rule(existing)
        register_rule(existing, replace=True)  # idempotent with replace

    def test_unknown_rule_lookup(self):
        with pytest.raises(UnknownRuleError):
            get_rule("Z999")


class TestRuleIsolation:
    def _plugin(self, code, check):
        return AnalysisRule(
            code=code,
            name="crashy",
            description="crashes",
            severity=Severity.INFO,
            family="structural",
            check=check,
        )

    def test_crashing_rule_becomes_r900(self):
        def check(inputs):
            raise RuntimeError("boom")

        register_rule(self._plugin("X901", check))
        try:
            report = analyze(parse_query(SAFE), select=["X901", "R003"])
            (finding,) = report.diagnostics
            assert finding.code == INTERNAL_RULE_FAILURE
            assert finding.severity is Severity.WARNING
            assert "boom" in finding.message
            # The other selected rule still ran.
            assert "R003" in report.checked
        finally:
            unregister_rule("X901")

    def test_unsupported_query_error_skips_rule(self):
        def check(inputs):
            raise UnsupportedQueryError("outside fragment")

        register_rule(self._plugin("X902", check))
        try:
            report = analyze(parse_query(SAFE), select=["X902"])
            assert report.diagnostics == ()
            assert report.checked == ("X902",)
        finally:
            unregister_rule("X902")

    def test_budget_exhaustion_propagates(self):
        def check(inputs):
            raise BudgetExceededError("out of time", resource="deadline")

        register_rule(self._plugin("X903", check))
        try:
            with pytest.raises(BudgetExceededError):
                analyze(parse_query(SAFE), select=["X903"])
        finally:
            unregister_rule("X903")


class TestReport:
    def test_severity_helpers(self):
        report = analyze(parse_query("q(X, Y) :- e(X, Z), f(A, A)"))
        assert report.errors and not report.ok  # R001 unsafe head
        assert report.warnings  # R003 cartesian product
        assert report.max_severity is Severity.ERROR
        assert set(report.at_least(Severity.WARNING)) == set(
            report.errors + report.warnings
        )

    def test_counts_and_render_text(self):
        report = analyze(parse_query("q(X, Y) :- e(X, Z)"))
        counts = report.counts()
        assert counts["error"] == len(report.errors)
        text = report.render_text()
        assert "R001" in text
        assert f"{counts['error']} error(s)" in text

    def test_clean_render(self):
        report = analyze(parse_query(SAFE), select=["R001"])
        assert report.ok
        assert report.render_text().startswith("clean:")


class TestSarif:
    def test_shape(self):
        report = analyze(parse_query("q(X, Y) :- e(X, Z)"))
        sarif = to_sarif(report)
        assert sarif["version"] == "2.1.0"
        (run,) = sarif["runs"]
        assert run["tool"]["driver"]["name"] == "repro-lint"
        rule_ids = {r["id"] for r in run["tool"]["driver"]["rules"]}
        assert set(report.checked) <= rule_ids | {INTERNAL_RULE_FAILURE}
        assert len(run["results"]) == len(report.diagnostics)
        (result,) = [r for r in run["results"] if r["ruleId"] == "R001"]
        assert result["level"] == "error"

    def test_result_region_from_span(self):
        from repro.datalog.parser import parse_query_spans

        query, spans = parse_query_spans("q(X, Y) :- e(X, Z)")
        report = analyze(query, query_spans=spans)
        sarif = to_sarif(report)
        (result,) = [
            r for r in sarif["runs"][0]["results"] if r["ruleId"] == "R001"
        ]
        region = result["locations"][0]["physicalLocation"]["region"]
        assert region["startLine"] == 1
        assert region["charOffset"] == 0

    def test_render_json_round_trips(self):
        report = analyze(parse_query(SAFE))
        payload = json.loads(render_json(report))
        assert payload["runs"][0]["properties"]["counts"]["error"] == 0
