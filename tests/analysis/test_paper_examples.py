"""Acceptance: lint emits zero false-positive *errors* on the paper's examples.

Every Section 3-7 example workload in :mod:`repro.experiments.paper_examples`
is a well-formed query/view set the paper plans successfully, so any
error-severity diagnostic on them would be a false positive.  Advisory
findings are allowed only where they state a true fact (car-loc-part's
``v5`` really is a copy of ``v1``).
"""

import pytest

from repro.analysis import analyze
from repro.experiments import paper_examples
from repro.planner import PlannerContext

EXAMPLES = ["car_loc_part", "example_41", "example_42", "example_61",
            "gmr_not_cmr"]


@pytest.mark.parametrize("name", EXAMPLES)
def test_no_false_positive_errors(name):
    example = getattr(paper_examples, name)()
    report = analyze(example.query, example.views)
    assert report.ok, (
        f"{name}: lint raised error diagnostics on a paper example: "
        f"{[str(d) for d in report.errors]}"
    )


def test_car_loc_part_flags_only_the_true_duplicate():
    example = paper_examples.car_loc_part()
    context = PlannerContext()
    report = analyze(example.query, example.views, context=context)
    # R105 is the (always-on) acyclic-routing note; beyond it, the only
    # finding must be the true duplicate.
    assert [d.code for d in report if d.code != "R105"] == ["R101"]
    (finding,) = [d for d in report.diagnostics if d.code == "R101"]
    assert finding.subject == "view:v5"
    # Ground truth: v5's definition is exactly v1's up to renaming.
    from repro.analysis.semantic import _marker_definition

    by_name = {view.name: view for view in example.views}
    assert context.is_equivalent_to(
        _marker_definition(by_name["v5"]), _marker_definition(by_name["v1"])
    )


@pytest.mark.parametrize("name", EXAMPLES)
def test_examples_clean_under_planning_config(name):
    example = getattr(paper_examples, name)()
    from repro.analysis import PlannerConfig

    report = analyze(
        example.query,
        example.views,
        config=PlannerConfig(
            backend="corecover-star", cost_model="m1", has_database=False
        ),
    )
    assert report.ok, [str(d) for d in report.errors]
