"""The acyclic fast path must be bit-identical to the general search."""

import random

import pytest

from repro.containment.homomorphism import (
    acyclic_scope,
    find_homomorphisms,
    observe_searches,
)
from repro.containment.join_guided import AcyclicRouter
from repro.datalog import Atom, Constant, Substitution, Variable

X, Y, Z, W, U = (Variable(n) for n in ("X", "Y", "Z", "W", "U"))
a, b, c = Constant("a"), Constant("b"), Constant("c")


def both_paths(source, target, seed=Substitution(), injective=False):
    general = list(find_homomorphisms(source, target, seed, injective))
    with acyclic_scope(AcyclicRouter()):
        guided = list(find_homomorphisms(source, target, seed, injective))
    return general, guided


def _random_edges(rng, size, universe):
    return [
        Atom("e", (Constant(rng.choice(universe)), Constant(rng.choice(universe))))
        for _ in range(size)
    ]


class TestBitIdenticalEnumeration:
    def test_chain_source(self):
        source = [Atom("e", (X, Y)), Atom("e", (Y, Z)), Atom("e", (Z, W))]
        rng = random.Random(7)
        target = _random_edges(rng, 12, "abcd")
        general, guided = both_paths(source, target)
        assert general == guided
        assert len(general) > 0

    def test_seeded_search(self):
        source = [Atom("e", (X, Y)), Atom("e", (Y, Z))]
        target = [Atom("e", (a, b)), Atom("e", (b, a)), Atom("e", (b, c))]
        general, guided = both_paths(source, target, seed=Substitution({X: a}))
        assert general == guided == [
            Substitution({X: a, Y: b, Z: a}),
            Substitution({X: a, Y: b, Z: c}),
        ]

    def test_injective_mode(self):
        source = [Atom("e", (X, Y)), Atom("e", (Y, X))]
        target = [Atom("e", (a, a)), Atom("e", (a, b)), Atom("e", (b, a))]
        general, guided = both_paths(source, target, injective=True)
        assert general == guided
        # The only injective solutions swap a and b.
        assert all(h[X] != h[Y] for h in guided)

    def test_constants_in_source(self):
        source = [Atom("e", (a, X)), Atom("e", (X, Y))]
        target = [Atom("e", (a, b)), Atom("e", (b, c)), Atom("e", (c, a))]
        general, guided = both_paths(source, target)
        assert general == guided == [Substitution({X: b, Y: c})]

    def test_duplicate_source_atoms(self):
        source = [Atom("e", (X, Y)), Atom("e", (X, Y))]
        target = [Atom("e", (a, b)), Atom("e", (b, c))]
        general, guided = both_paths(source, target)
        assert general == guided

    def test_no_solution(self):
        source = [Atom("e", (X, X)), Atom("e", (X, Y))]
        target = [Atom("e", (a, b))]
        general, guided = both_paths(source, target)
        assert general == guided == []

    @pytest.mark.parametrize("seed", range(50))
    def test_random_acyclic_sources(self, seed):
        rng = random.Random(seed)
        variables = [X, Y, Z, W, U]
        # Build a random tree-shaped (hence acyclic) source: each new
        # atom shares exactly one variable with the atoms so far.
        used = [variables[0]]
        source = []
        for i in range(rng.randint(2, 4)):
            hook = rng.choice(used)
            fresh = variables[len(used)]
            used.append(fresh)
            source.append(
                Atom("e", (hook, fresh) if rng.random() < 0.5 else (fresh, hook))
            )
        target = _random_edges(rng, rng.randint(4, 14), "abc")
        general, guided = both_paths(source, target)
        assert general == guided


class TestRoutingAndFallback:
    def test_cyclic_source_falls_back(self):
        router = AcyclicRouter()
        source = [Atom("e", (X, Y)), Atom("e", (Y, Z)), Atom("e", (Z, X))]
        target = [Atom("e", (a, a))]
        with acyclic_scope(router):
            homs = list(find_homomorphisms(source, target))
        assert router.guided_searches == 0  # declined: cyclic
        assert homs == list(find_homomorphisms(source, target))

    def test_trivial_source_falls_back(self):
        router = AcyclicRouter()
        with acyclic_scope(router):
            list(find_homomorphisms([Atom("e", (X, Y))], [Atom("e", (a, b))]))
        assert router.guided_searches == 0

    def test_comparison_source_falls_back(self):
        router = AcyclicRouter()
        source = [Atom("e", (X, Y)), Atom("<", (X, Y))]
        target = [Atom("e", (a, b)), Atom("<", (a, b))]
        with acyclic_scope(router):
            list(find_homomorphisms(source, target))
        assert router.guided_searches == 0

    def test_guided_searches_count(self):
        router = AcyclicRouter()
        source = [Atom("e", (X, Y)), Atom("e", (Y, Z))]
        target = [Atom("e", (a, b)), Atom("e", (b, c))]
        with acyclic_scope(router):
            list(find_homomorphisms(source, target))
            list(find_homomorphisms(source, target))
        assert router.guided_searches == 2

    def test_join_tree_memoized_per_source(self):
        router = AcyclicRouter()
        source = (Atom("e", (X, Y)), Atom("e", (Y, Z)))
        first = router.tree_for(source)
        assert router.tree_for(source) is first


class _CountingObserver:
    def __init__(self):
        self.searches = 0
        self.fast_path = 0
        self.nodes = 0

    def record_search(self):
        self.searches += 1

    def record_fast_path_search(self):
        self.fast_path += 1

    def record_nodes(self, nodes):
        self.nodes += nodes


class _MinimalObserver:
    """An observer implementing only the required protocol method."""

    def __init__(self):
        self.searches = 0

    def record_search(self):
        self.searches += 1


class TestObserverAccounting:
    def _self_join_chain(self, length):
        variables = [Variable(f"V{i}") for i in range(length + 1)]
        return [
            Atom("e", (variables[i], variables[i + 1])) for i in range(length)
        ]

    def test_fast_path_reduces_nodes_on_self_join_chains(self):
        source = self._self_join_chain(8)
        rng = random.Random(3)
        target = [
            Atom("e", (Constant(f"n{i}"), Constant(f"n{i + 1}")))
            for i in range(9)
        ] + [
            Atom("e", (Constant(f"n{rng.randint(0, 9)}"), Constant("x")))
            for _ in range(6)
        ]
        general = _CountingObserver()
        with observe_searches(general):
            general_homs = list(find_homomorphisms(source, target))
        guided = _CountingObserver()
        with observe_searches(guided), acyclic_scope(AcyclicRouter()):
            guided_homs = list(find_homomorphisms(source, target))
        assert general_homs == guided_homs
        assert guided.fast_path == 1 and general.fast_path == 0
        assert guided.nodes < general.nodes  # pruned dead branches

    def test_minimal_observer_keeps_working(self):
        observer = _MinimalObserver()
        source = [Atom("e", (X, Y)), Atom("e", (Y, Z))]
        target = [Atom("e", (a, b)), Atom("e", (b, c))]
        with observe_searches(observer), acyclic_scope(AcyclicRouter()):
            list(find_homomorphisms(source, target))
        assert observer.searches == 1

    def test_nodes_flush_on_early_close(self):
        observer = _CountingObserver()
        source = [Atom("e", (X, Y)), Atom("e", (Y, Z))]
        target = [Atom("e", (a, b)), Atom("e", (b, c)), Atom("e", (b, a))]
        with observe_searches(observer), acyclic_scope(AcyclicRouter()):
            iterator = find_homomorphisms(source, target)
            next(iterator)
            iterator.close()
        assert observer.nodes > 0
