"""Cache behaviour when analysis and planning share one PlannerContext.

The semantic lint rules (R101-R103) and the planner bottom out in the
same memoized containment operations, so running ``analyze`` and
``plan`` on one :class:`PlannerContext` must (a) never change results,
(b) let the later phase reuse the earlier phase's cache entries, and
(c) keep per-phase accounting separable via ``PlannerStats.since``.
"""

from repro.analysis import analyze
from repro.datalog import parse_program, parse_query
from repro.planner import PlannerContext, plan
from repro.views import ViewCatalog

QUERY = "q(X, Y) :- e(X, Z), e(Z, Y)"
VIEWS = "v1(A, B) :- e(A, C), e(C, B)\nv2(A, B) :- e(A, B)\n"


def catalog():
    return ViewCatalog(parse_program(VIEWS))


class TestSharedResultsUnchanged:
    def test_plan_results_identical_after_analyze_on_same_context(self):
        fresh = plan(parse_query(QUERY), catalog())
        shared = PlannerContext()
        analyze(parse_query(QUERY), catalog(), context=shared)
        warmed = plan(parse_query(QUERY), catalog(), context=shared)
        assert set(map(str, warmed.rewritings)) == set(
            map(str, fresh.rewritings)
        )
        assert warmed.outcome.status is fresh.outcome.status

    def test_analyze_results_identical_after_plan_on_same_context(self):
        shared = PlannerContext()
        plan(parse_query(QUERY), catalog(), context=shared)
        warmed = analyze(parse_query(QUERY), catalog(), context=shared)
        cold = analyze(parse_query(QUERY), catalog())
        assert [d.code for d in warmed] == [d.code for d in cold]

    def test_cached_and_uncached_reports_agree(self):
        # caching=False recomputes everything; structural keys are sound,
        # so the memoized run must report the same findings.
        views = ViewCatalog(parse_program(
            VIEWS + "v3(A, B) :- e(A, M), e(M, B)\n"  # duplicate of v1
        ))
        cached = analyze(
            parse_query(QUERY), views, context=PlannerContext()
        )
        uncached = analyze(
            parse_query(QUERY), views,
            context=PlannerContext(caching=False),
        )
        assert [d.code for d in cached] == [d.code for d in uncached]
        assert [d.subject for d in cached] == [d.subject for d in uncached]


class TestCacheReuse:
    def test_plan_after_analyze_hits_warm_entries(self):
        shared = PlannerContext()
        analyze(parse_query(QUERY), catalog(), context=shared)
        before = shared.snapshot()
        plan(parse_query(QUERY), catalog(), context=shared)
        delta = shared.snapshot().since(before)
        cold_context = PlannerContext()
        plan(parse_query(QUERY), catalog(), context=cold_context)
        cold = cold_context.snapshot()
        # Planning on the warm context does strictly fewer fresh
        # homomorphism searches than on a cold one, and sees hits the
        # cold run could not.
        assert delta.hom_searches < cold.hom_searches
        assert delta.cache_hits > cold.cache_hits

    def test_repeated_analyze_is_served_from_cache(self):
        shared = PlannerContext()
        analyze(parse_query(QUERY), catalog(), context=shared)
        before = shared.snapshot()
        analyze(parse_query(QUERY), catalog(), context=shared)
        delta = shared.snapshot().since(before)
        assert delta.hom_searches == 0
        assert delta.cache_misses == 0
        assert delta.cache_hits > 0

    def test_uncached_context_never_hits(self):
        context = PlannerContext(caching=False)
        analyze(parse_query(QUERY), catalog(), context=context)
        plan(parse_query(QUERY), catalog(), context=context)
        assert context.cache_hits == 0
        assert context.cache_misses > 0


class TestSinceAccounting:
    def test_phase_deltas_partition_the_totals(self):
        shared = PlannerContext()
        start = shared.snapshot()
        analyze(parse_query(QUERY), catalog(), context=shared)
        after_analyze = shared.snapshot()
        plan(parse_query(QUERY), catalog(), context=shared)
        after_plan = shared.snapshot()

        analyze_delta = after_analyze.since(start)
        plan_delta = after_plan.since(after_analyze)
        total = after_plan.since(start)
        assert (
            analyze_delta.hom_searches + plan_delta.hom_searches
            == total.hom_searches
        )
        assert (
            analyze_delta.cache_lookups + plan_delta.cache_lookups
            == total.cache_lookups
        )
        # Each phase did real work under its own window.
        assert analyze_delta.cache_lookups > 0
        assert plan_delta.cache_lookups > 0

    def test_per_cache_counters_never_double_count(self):
        shared = PlannerContext()
        analyze(parse_query(QUERY), catalog(), context=shared)
        before = shared.snapshot()
        plan(parse_query(QUERY), catalog(), context=shared)
        delta = shared.snapshot().since(before)
        by_name = {name: (hits, misses) for name, hits, misses in delta.caches}
        assert sum(h for h, _ in by_name.values()) == delta.cache_hits
        assert sum(m for _, m in by_name.values()) == delta.cache_misses
        assert all(h >= 0 and m >= 0 for h, m in by_name.values())

    def test_stage_times_accumulate_without_resetting(self):
        shared = PlannerContext()
        analyze(parse_query(QUERY), catalog(), context=shared)
        analyze_seconds = shared.stage_seconds["analyze"]
        plan(parse_query(QUERY), catalog(), context=shared, preflight=True)
        assert shared.stage_seconds["analyze"] >= analyze_seconds
        assert "preflight" in shared.stage_seconds
