"""Tests for Chandra-Merlin containment and equivalence."""

import pytest

from repro.containment import (
    containment_mapping,
    containment_mappings,
    head_unifier,
    is_contained_in,
    is_equivalent_to,
    is_properly_contained_in,
)
from repro.containment.containment import IncompatibleQueriesError
from repro.datalog import parse_query


class TestContainment:
    def test_specialization_is_contained(self):
        specific = parse_query("q(X) :- e(X, X)")
        general = parse_query("q(X) :- e(X, Y)")
        assert is_contained_in(specific, general)
        assert not is_contained_in(general, specific)

    def test_extra_subgoal_restricts(self):
        more = parse_query("q(X) :- e(X, Y), f(Y, Z)")
        less = parse_query("q(X) :- e(X, Y)")
        assert is_contained_in(more, less)
        assert not is_contained_in(less, more)

    def test_constants_must_match(self):
        with_const = parse_query("q(X) :- e(X, a)")
        with_var = parse_query("q(X) :- e(X, Y)")
        assert is_contained_in(with_const, with_var)
        assert not is_contained_in(with_var, with_const)

    def test_different_head_predicates_incomparable(self):
        q = parse_query("q(X) :- e(X, X)")
        p = parse_query("p(X) :- e(X, X)")
        assert not is_contained_in(q, p)

    def test_head_constant_unification(self):
        grounded = parse_query("q(a) :- e(a, a)")
        general = parse_query("q(X) :- e(X, X)")
        assert is_contained_in(grounded, general)
        assert not is_contained_in(general, grounded)

    def test_classic_path_vs_cycle(self):
        # A boolean 2-cycle query is contained in the 2-path query.
        cycle = parse_query("q(X) :- e(X, Y), e(Y, X)")
        path = parse_query("q(X) :- e(X, Y), e(Y, Z)")
        assert is_contained_in(cycle, path)
        assert not is_contained_in(path, cycle)

    def test_rejects_comparison_atoms(self):
        q = parse_query("q(X) :- e(X, Y), X <= Y")
        with pytest.raises(IncompatibleQueriesError):
            is_contained_in(q, q)


class TestEquivalence:
    def test_renaming_equivalence(self):
        q1 = parse_query("q(X, Y) :- e(X, Z), f(Z, Y)")
        q2 = parse_query("q(U, V) :- e(U, W), f(W, V)")
        assert is_equivalent_to(q1, q2)

    def test_redundant_subgoal_equivalence(self):
        q1 = parse_query("q(X) :- e(X, Y), e(X, Z)")
        q2 = parse_query("q(X) :- e(X, Y)")
        assert is_equivalent_to(q1, q2)

    def test_body_order_irrelevant(self):
        q1 = parse_query("q(X) :- e(X, Y), f(Y, X)")
        q2 = parse_query("q(X) :- f(Y, X), e(X, Y)")
        assert is_equivalent_to(q1, q2)

    def test_not_equivalent(self):
        assert not is_equivalent_to(
            parse_query("q(X) :- e(X, X)"), parse_query("q(X) :- e(X, Y)")
        )

    def test_proper_containment(self):
        specific = parse_query("q(X) :- e(X, X)")
        general = parse_query("q(X) :- e(X, Y)")
        assert is_properly_contained_in(specific, general)
        assert not is_properly_contained_in(general, general)


class TestMappings:
    def test_head_unifier_binds_positionally(self):
        outer = parse_query("q(U, V) :- e(U, V)")
        inner = parse_query("q(X, a) :- e(X, a)")
        seed = head_unifier(outer, inner)
        assert seed is not None
        assert seed.apply_atom(outer.head) == inner.head

    def test_head_unifier_conflict(self):
        outer = parse_query("q(U, U) :- e(U, U)")
        inner = parse_query("q(X, Y) :- e(X, Y)")
        # U must map to both X and Y: impossible.
        assert head_unifier(outer, inner) is None

    def test_containment_mapping_witness(self):
        outer = parse_query("q(X) :- e(X, Y)")
        inner = parse_query("q(X) :- e(X, X)")
        mapping = containment_mapping(outer, inner)
        assert mapping is not None
        mapped_body = mapping.apply_atoms(outer.body)
        assert set(mapped_body) <= set(inner.body)

    def test_all_mappings_enumerated(self):
        outer = parse_query("q(X) :- e(X, Y)")
        inner = parse_query("q(X) :- e(X, Z), e(X, W)")
        assert len(list(containment_mappings(outer, inner))) == 2
