"""Tests for conjunctive-query minimization (core computation)."""

from repro.containment import is_equivalent_to, is_minimal, minimize
from repro.containment.minimize import core_size
from repro.datalog import parse_query


class TestMinimize:
    def test_removes_duplicate_atoms(self):
        q = parse_query("q(X) :- e(X, Y), e(X, Y)")
        assert len(minimize(q)) == 1

    def test_removes_subsumed_atom(self):
        q = parse_query("q(X) :- e(X, Y), e(X, Z)")
        m = minimize(q)
        assert len(m) == 1
        assert is_equivalent_to(m, q)

    def test_keeps_constant_restriction(self):
        # e(X, a) is more specific than e(X, Y): neither subsumes the other
        # at the query level because dropping e(X, Y) is fine but dropping
        # e(X, a) is not.
        q = parse_query("q(X) :- e(X, a), e(X, Y)")
        m = minimize(q)
        assert len(m) == 1
        assert m.body[0] == parse_query("q(X) :- e(X, a)").body[0]

    def test_already_minimal_untouched(self):
        q = parse_query("q(X, Y) :- e(X, Z), f(Z, Y)")
        assert minimize(q) == q

    def test_triangle_folds_onto_loop(self):
        # Boolean query: a 2-path folds onto the self-loop.
        q = parse_query("q() :- e(X, Y), e(Y, X), e(X, X)")
        m = minimize(q)
        assert len(m) == 1
        assert is_equivalent_to(m, q)

    def test_distinguished_variables_block_folding(self):
        # With X and Y distinguished, nothing can fold.
        q = parse_query("q(X, Y) :- e(X, Y), e(Y, X)")
        assert minimize(q) == q

    def test_equivalence_preserved(self):
        q = parse_query(
            "q(X) :- e(X, Y), e(X, Z), f(Z, W), f(Z, U), e(X, X)"
        )
        m = minimize(q)
        assert is_equivalent_to(m, q)
        assert is_minimal(m)

    def test_core_size(self):
        assert core_size(parse_query("q(X) :- e(X, Y), e(X, Z)")) == 1


class TestIsMinimal:
    def test_minimal_query(self):
        assert is_minimal(parse_query("q(X) :- e(X, Y), f(Y, X)"))

    def test_redundant_query(self):
        assert not is_minimal(parse_query("q(X) :- e(X, Y), e(X, Z)"))

    def test_duplicate_atoms_not_minimal(self):
        assert not is_minimal(parse_query("q(X) :- e(X, Y), e(X, Y)"))

    def test_minimize_idempotent(self):
        q = parse_query("q(X) :- e(X, Y), e(Y, Z), e(X, Z), e(X, W)")
        once = minimize(q)
        assert minimize(once) == once
