"""Tests for the homomorphism search engine."""

from repro.containment import find_homomorphism, find_homomorphisms, unify_atom
from repro.datalog import Atom, Constant, Substitution, Variable


X, Y, Z, W = Variable("X"), Variable("Y"), Variable("Z"), Variable("W")
a, b = Constant("a"), Constant("b")


class TestUnifyAtom:
    def test_basic(self):
        sub = unify_atom(Atom("e", (X, Y)), Atom("e", (Z, a)), Substitution())
        assert sub is not None
        assert sub[X] == Z and sub[Y] == a

    def test_predicate_mismatch(self):
        assert unify_atom(Atom("e", (X,)), Atom("f", (X,)), Substitution()) is None

    def test_arity_mismatch(self):
        assert unify_atom(Atom("e", (X,)), Atom("e", (X, Y)), Substitution()) is None

    def test_constant_match(self):
        sub = unify_atom(Atom("e", (a,)), Atom("e", (a,)), Substitution())
        assert sub == Substitution()

    def test_constant_mismatch(self):
        assert unify_atom(Atom("e", (a,)), Atom("e", (b,)), Substitution()) is None

    def test_constant_vs_variable_target(self):
        # A source constant must map to itself, never to a target variable.
        assert unify_atom(Atom("e", (a,)), Atom("e", (X,)), Substitution()) is None

    def test_repeated_variable_consistency(self):
        assert unify_atom(Atom("e", (X, X)), Atom("e", (a, b)), Substitution()) is None
        sub = unify_atom(Atom("e", (X, X)), Atom("e", (a, a)), Substitution())
        assert sub is not None and sub[X] == a

    def test_respects_seed(self):
        seed = Substitution({X: a})
        assert unify_atom(Atom("e", (X,)), Atom("e", (b,)), seed) is None


class TestFindHomomorphisms:
    def test_finds_all(self):
        source = [Atom("e", (X, Y))]
        target = [Atom("e", (a, b)), Atom("e", (b, a))]
        homs = list(find_homomorphisms(source, target))
        assert len(homs) == 2

    def test_multiple_source_atoms_share_bindings(self):
        source = [Atom("e", (X, Y)), Atom("f", (Y, Z))]
        target = [Atom("e", (a, b)), Atom("f", (b, a)), Atom("f", (a, b))]
        homs = list(find_homomorphisms(source, target))
        assert len(homs) == 1
        assert homs[0][Y] == b and homs[0][Z] == a

    def test_no_homomorphism(self):
        assert (
            find_homomorphism([Atom("e", (X, X))], [Atom("e", (a, b))]) is None
        )

    def test_two_source_atoms_may_share_one_target(self):
        source = [Atom("e", (X, Y)), Atom("e", (Y, X))]
        target = [Atom("e", (a, a))]
        hom = find_homomorphism(source, target)
        assert hom is not None
        assert hom[X] == a and hom[Y] == a

    def test_seeded_search(self):
        source = [Atom("e", (X, Y))]
        target = [Atom("e", (a, b)), Atom("e", (b, a))]
        homs = list(find_homomorphisms(source, target, Substitution({X: b})))
        assert len(homs) == 1
        assert homs[0][Y] == a

    def test_injective_mode_rejects_merging(self):
        source = [Atom("e", (X, Y)), Atom("e", (Y, X))]
        target = [Atom("e", (a, a))]
        assert find_homomorphism(source, target, injective=True) is None

    def test_injective_mode_accepts_bijection(self):
        source = [Atom("e", (X, Y))]
        target = [Atom("e", (Z, W))]
        hom = find_homomorphism(source, target, injective=True)
        assert hom is not None

    def test_injective_rejects_variable_to_source_constant(self):
        # X -> a collides with the source constant a (which maps to itself).
        source = [Atom("e", (X, a))]
        target = [Atom("e", (a, a))]
        assert find_homomorphism(source, target, injective=True) is None
        assert find_homomorphism(source, target) is not None

    def test_empty_source_yields_seed(self):
        homs = list(find_homomorphisms([], [Atom("e", (a,))]))
        assert homs == [Substitution()]
