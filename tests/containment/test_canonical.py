"""Tests for canonical (frozen) databases."""

from repro.containment import canonical_database, is_frozen, thaw_atom, thaw_term
from repro.containment.canonical import FrozenMarker, freeze_variable
from repro.datalog import Constant, Variable, parse_query


class TestFreezing:
    def test_facts_are_ground(self):
        q = parse_query("q(S, C) :- car(M, a), loc(a, C), part(S, M, C)")
        cdb = canonical_database(q)
        for fact in cdb.facts:
            assert all(isinstance(arg, Constant) for arg in fact.args)

    def test_distinct_variables_get_distinct_constants(self):
        q = parse_query("q(X, Y) :- e(X, Y)")
        cdb = canonical_database(q)
        fact = cdb.facts[0]
        assert fact.args[0] != fact.args[1]

    def test_repeated_variable_shares_constant(self):
        q = parse_query("q(X) :- e(X, X)")
        cdb = canonical_database(q)
        fact = cdb.facts[0]
        assert fact.args[0] == fact.args[1]

    def test_real_constants_preserved(self):
        q = parse_query("q(X) :- e(X, anderson)")
        cdb = canonical_database(q)
        assert Constant("anderson") in cdb.facts[0].args

    def test_frozen_constants_cannot_collide_with_real_ones(self):
        # Even a constant literally named like a frozen marker's variable
        # stays distinct, because frozen payloads are FrozenMarker objects.
        q = parse_query("q(X) :- e(X, 'X')")
        cdb = canonical_database(q)
        frozen, real = cdb.facts[0].args
        assert is_frozen(frozen)
        assert not is_frozen(real)
        assert frozen != real

    def test_frozen_head(self):
        q = parse_query("q(X) :- e(X, Y)")
        cdb = canonical_database(q)
        assert is_frozen(cdb.frozen_head.args[0])


class TestThawing:
    def test_round_trip(self):
        q = parse_query("q(S, C) :- car(M, a), loc(a, C), part(S, M, C)")
        cdb = canonical_database(q)
        thawed = tuple(thaw_atom(fact) for fact in cdb.facts)
        assert thawed == q.body

    def test_thaw_term_on_plain_constant(self):
        assert thaw_term(Constant("a")) == Constant("a")

    def test_freeze_then_thaw_variable(self):
        v = Variable("City")
        assert thaw_term(freeze_variable(v)) == v

    def test_marker_str(self):
        assert str(FrozenMarker("X")) == "~X"
