"""Tests for the naive Theorem 3.1 search (cross-check for CoreCover)."""

import pytest

from repro.core import core_cover, naive_gmr_search
from repro.datalog import parse_query
from repro.experiments.paper_examples import car_loc_part, example_41, example_42
from repro.views import ViewCatalog
from repro.workload import WorkloadConfig, generate_workload


class TestNaiveSearch:
    def test_car_loc_part(self):
        clp = car_loc_part()
        naive = naive_gmr_search(clp.query, clp.views)
        assert [str(r) for r in naive] == ["q1(S, C) :- v4(M, a, C, S)"]

    def test_example_41(self):
        ex = example_41()
        naive = naive_gmr_search(ex.query, ex.views)
        assert [str(r) for r in naive] == ["q(X, Y) :- v1(X, Z), v2(Z, Y)"]

    def test_example_42(self):
        ex = example_42(2)
        naive = naive_gmr_search(ex.query, ex.views)
        assert [str(r) for r in naive] == ["q(X, Y) :- v(X, Y)"]

    def test_no_rewriting(self):
        q = parse_query("q(X) :- e(X, X), f(X, X)")
        views = ViewCatalog(["v(A) :- e(A, A)"])
        assert naive_gmr_search(q, views) == []

    @pytest.mark.parametrize("seed", [1, 2, 3])
    def test_agrees_with_corecover_on_random_workloads(self, seed):
        config = WorkloadConfig(
            shape="star",
            num_relations=6,
            query_subgoals=4,
            num_views=8,
            seed=seed,
        )
        workload = generate_workload(config)
        naive_rewritings = naive_gmr_search(workload.query, workload.views)
        clever_result = core_cover(workload.query, workload.views)
        naive = {r.canonical_form() for r in naive_rewritings}
        clever = {r.canonical_form() for r in clever_result.rewritings}
        assert naive and clever
        # Same minimum size, and CoreCover's GMRs (built from the
        # representative view tuples, a subset of all view tuples) are all
        # found by the brute-force search.
        assert min(len(r.body) for r in naive_rewritings) == (
            clever_result.minimum_subgoals()
        )
        assert clever <= naive

    def test_minimum_size_agreement(self):
        clp = car_loc_part()
        naive = naive_gmr_search(clp.query, clp.views)
        clever = core_cover(clp.query, clp.views)
        assert min(len(r.body) for r in naive) == clever.minimum_subgoals()
