"""Tests for equivalence classes of views and view tuples (Section 5.2)."""

from repro.containment import minimize
from repro.core import (
    core_representatives,
    group_cores_by_coverage,
    group_equivalent_views,
    tuple_cores,
    view_representatives,
    view_tuples,
)
from repro.datalog import parse_query
from repro.experiments.paper_examples import car_loc_part
from repro.views import ViewCatalog, as_view


class TestViewGrouping:
    def test_identical_definitions_grouped(self):
        clp = car_loc_part()
        classes = group_equivalent_views(list(clp.views))
        sizes = sorted(len(members) for members in classes)
        assert sizes == [1, 1, 1, 2]  # v1 and v5 together
        merged = next(c for c in classes if len(c) == 2)
        assert {v.name for v in merged} == {"v1", "v5"}

    def test_equivalence_modulo_renaming(self):
        views = [
            as_view("v1(A, B) :- e(A, C), f(C, B)"),
            as_view("v2(X, Y) :- e(X, W), f(W, Y)"),
        ]
        assert len(group_equivalent_views(views)) == 1

    def test_equivalence_modulo_redundancy(self):
        views = [
            as_view("v1(A) :- e(A, B)"),
            as_view("v2(A) :- e(A, B), e(A, C)"),
        ]
        assert len(group_equivalent_views(views)) == 1

    def test_different_views_not_grouped(self):
        views = [
            as_view("v1(A) :- e(A, B)"),
            as_view("v2(A) :- e(B, A)"),
        ]
        assert len(group_equivalent_views(views)) == 2

    def test_head_argument_order_matters(self):
        views = [
            as_view("v1(A, B) :- e(A, B)"),
            as_view("v2(B, A) :- e(A, B)"),
        ]
        assert len(group_equivalent_views(views)) == 2

    def test_representatives_one_per_class(self):
        clp = car_loc_part()
        reps = view_representatives(list(clp.views))
        assert len(reps) == 4


class TestCoreGrouping:
    def test_group_by_coverage(self):
        clp = car_loc_part()
        minimized = minimize(clp.query)
        tuples = view_tuples(minimized, clp.views)
        cores = tuple_cores(minimized, tuples)
        groups = group_cores_by_coverage(cores)
        # Coverage sets: {0,1} (v1, v5), {2} (v2), {} (v3), {0,1,2} (v4).
        assert len(groups) == 4
        assert len(groups[frozenset({0, 1})]) == 2

    def test_representatives_ordered_largest_first(self):
        clp = car_loc_part()
        minimized = minimize(clp.query)
        tuples = view_tuples(minimized, clp.views)
        cores = tuple_cores(minimized, tuples)
        reps = core_representatives(cores)
        sizes = [len(core.covered) for core in reps]
        assert sizes == sorted(sizes, reverse=True)
        assert len(reps) == 4
