"""Tests for LMR enumeration within the view-tuple space."""

import pytest

from repro.core import (
    core_cover,
    enumerate_view_tuple_lmrs,
    view_tuple_lattice,
)
from repro.datalog import parse_query
from repro.experiments.paper_examples import car_loc_part, example_41
from repro.views import ViewCatalog, is_locally_minimal


class TestEnumeration:
    def test_car_loc_part_lmrs(self):
        clp = car_loc_part()
        lmrs = list(enumerate_view_tuple_lmrs(clp.query, clp.views))
        rendered = {str(q) for q in lmrs}
        assert "q1(S, C) :- v4(M, a, C, S)" in rendered
        assert "q1(S, C) :- v1(M, a, C), v2(S, M, C)" in rendered
        # The v5 twin of P2 is also a distinct view-tuple LMR.
        assert "q1(S, C) :- v2(S, M, C), v5(M, a, C)" in rendered

    def test_all_yields_are_locally_minimal(self):
        clp = car_loc_part()
        for lmr in enumerate_view_tuple_lmrs(clp.query, clp.views):
            assert is_locally_minimal(lmr, clp.query, clp.views), str(lmr)

    def test_subset_minimality_filters_supersets(self):
        ex = example_41()
        lmrs = list(enumerate_view_tuple_lmrs(ex.query, ex.views))
        assert [str(q) for q in lmrs] == ["q(X, Y) :- v1(X, Z), v2(Z, Y)"]

    def test_limit_respected(self):
        clp = car_loc_part()
        lmrs = list(enumerate_view_tuple_lmrs(clp.query, clp.views, limit=1))
        assert len(lmrs) == 1

    def test_no_rewriting_yields_nothing(self):
        q = parse_query("q(X) :- e(X, X), f(X, X)")
        views = ViewCatalog(["v(A) :- e(A, A)"])
        assert list(enumerate_view_tuple_lmrs(q, views)) == []


class TestLattice:
    def test_gmrs_match_corecover(self):
        clp = car_loc_part()
        lattice = view_tuple_lattice(clp.query, clp.views)
        corecover = core_cover(clp.query, clp.views)
        assert {str(q) for q in lattice.gmrs()} == {
            str(q) for q in corecover.rewritings
        }

    def test_proposition_32_cmrs_contain_a_gmr(self):
        """Proposition 3.2 on concrete instances."""
        clp = car_loc_part()
        lattice = view_tuple_lattice(clp.query, clp.views)
        gmr_sizes = {len(q.body) for q in lattice.gmrs()}
        cmr_sizes = {len(q.body) for q in lattice.cmrs()}
        assert min(gmr_sizes) in cmr_sizes

    def test_gmr_not_cmr_example_lattice(self):
        from repro.experiments.paper_examples import gmr_not_cmr

        ex = gmr_not_cmr()
        lattice = view_tuple_lattice(ex.query, ex.views)
        # The view-tuple space only contains P2 here.
        assert [str(q) for q in lattice.rewritings] == ["q(X) :- v(X, X)"]
        assert lattice.cmr_indices == (0,)
