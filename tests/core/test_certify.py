"""Tests for the CoreCover certification layer."""

import dataclasses

import pytest

from repro.core import core_cover, core_cover_star
from repro.core.certify import Certificate, certify
from repro.datalog import parse_query
from repro.experiments.paper_examples import car_loc_part, example_41
from repro.views import ViewCatalog
from repro.workload import WorkloadConfig, generate_workload


class TestValidResults:
    def test_car_loc_part_certifies(self):
        clp = car_loc_part()
        result = core_cover(clp.query, clp.views)
        certificate = certify(result, clp.views, verify_minimality=True)
        assert certificate.ok, str(certificate)

    def test_example_41_certifies(self):
        ex = example_41()
        result = core_cover(ex.query, ex.views)
        assert certify(result, ex.views, verify_minimality=True).ok

    def test_star_variant_certifies(self):
        clp = car_loc_part()
        result = core_cover_star(clp.query, clp.views)
        assert certify(result, clp.views).ok

    @pytest.mark.parametrize("seed", [3, 4])
    def test_random_workload_certifies(self, seed):
        workload = generate_workload(
            WorkloadConfig(
                shape="chain",
                num_relations=15,
                query_subgoals=4,
                num_views=20,
                seed=seed,
            )
        )
        result = core_cover(workload.query, workload.views)
        certificate = certify(result, workload.views, verify_minimality=True)
        assert certificate.ok, str(certificate)

    def test_empty_result_certifies(self):
        q = parse_query("q(X) :- e(X, X), f(X, X)")
        views = ViewCatalog(["v(A) :- e(A, A)"])
        assert certify(core_cover(q, views), views).ok


class TestTamperedResults:
    def test_bogus_rewriting_detected(self):
        clp = car_loc_part()
        result = core_cover(clp.query, clp.views)
        bogus = parse_query("q1(S, C) :- v2(S, M, C)")
        tampered = dataclasses.replace(
            result, rewritings=result.rewritings + (bogus,)
        )
        certificate = certify(tampered, clp.views)
        assert not certificate.ok
        assert any("not an equivalent rewriting" in i for i in certificate.issues)

    def test_unsafe_rewriting_detected(self):
        clp = car_loc_part()
        result = core_cover(clp.query, clp.views)
        unsafe = parse_query("q1(S, C) :- v3(S)")  # C unbound
        tampered = dataclasses.replace(
            result, rewritings=result.rewritings + (unsafe,)
        )
        certificate = certify(tampered, clp.views)
        assert any("unsafe" in issue for issue in certificate.issues)

    def test_foreign_predicate_detected(self):
        clp = car_loc_part()
        result = core_cover(clp.query, clp.views)
        foreign = parse_query("q1(S, C) :- w(S, C)")
        tampered = dataclasses.replace(
            result, rewritings=result.rewritings + (foreign,)
        )
        certificate = certify(tampered, clp.views)
        assert any("non-view predicates" in issue for issue in certificate.issues)

    def test_inflated_minimum_detected(self):
        clp = car_loc_part()
        star = core_cover_star(clp.query, clp.views)
        # Pretend the 2-subgoal rewriting is the best (drop the GMR).
        only_p2 = tuple(r for r in star.rewritings if len(r.body) == 2)
        tampered = dataclasses.replace(star, rewritings=only_p2)
        certificate = certify(tampered, clp.views, verify_minimality=True)
        assert any("found smaller" in issue for issue in certificate.issues)

    def test_certificate_rendering(self):
        assert str(Certificate()) == "certificate: OK"
        assert "1 issue" in str(Certificate(("boom",)))
