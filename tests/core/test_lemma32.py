"""Tests for the constructive Lemma 3.2 transformation."""

import pytest

from repro.containment import is_contained_in, is_equivalent_to
from repro.core import core_cover_star, to_view_tuple_rewriting, view_tuples
from repro.containment import minimize
from repro.datalog import parse_query
from repro.experiments.paper_examples import car_loc_part
from repro.views import ViewCatalog, is_equivalent_rewriting


@pytest.fixture(scope="module")
def clp():
    return car_loc_part()


class TestTransformation:
    def test_p1_becomes_p2(self, clp):
        """The paper's worked example of the Lemma 3.2 proof."""
        transformed = to_view_tuple_rewriting(clp.p1, clp.query, clp.views)
        assert transformed is not None
        assert is_equivalent_to(transformed, clp.p2)
        assert len(transformed.body) == 2  # the duplicate v1 collapses

    def test_result_contained_in_original(self, clp):
        for original in (clp.p1, clp.p3, clp.p5):
            transformed = to_view_tuple_rewriting(original, clp.query, clp.views)
            assert transformed is not None
            assert is_contained_in(transformed, original)

    def test_result_is_equivalent_rewriting(self, clp):
        for original in (clp.p1, clp.p2, clp.p3, clp.p4, clp.p5):
            transformed = to_view_tuple_rewriting(original, clp.query, clp.views)
            assert is_equivalent_rewriting(transformed, clp.query, clp.views)

    def test_result_subgoals_are_view_tuples(self, clp):
        tuple_atoms = {
            vt.atom for vt in view_tuples(minimize(clp.query), clp.views)
        }
        for original in (clp.p1, clp.p2, clp.p5):
            transformed = to_view_tuple_rewriting(original, clp.query, clp.views)
            for atom in transformed.body:
                assert atom in tuple_atoms, str(atom)

    def test_view_tuple_rewriting_is_fixpoint(self, clp):
        star = core_cover_star(clp.query, clp.views)
        for rewriting in star.rewritings:
            transformed = to_view_tuple_rewriting(rewriting, clp.query, clp.views)
            assert set(transformed.body) == set(rewriting.body)

    def test_none_when_query_not_contained(self):
        query = parse_query("q(X) :- e(X, X)")
        views = ViewCatalog(["v(A) :- e(A, A), g(A)"])
        candidate = parse_query("q(X) :- v(X)")
        # candidate^exp has g(A): Q is NOT contained in it.
        assert to_view_tuple_rewriting(candidate, query, views) is None
