"""Tests for the exact set-cover enumerations."""

from repro.core import greedy_cover, irredundant_covers, minimum_covers


def fs(*items):
    return frozenset(items)


class TestMinimumCovers:
    def test_single_set_cover(self):
        covers = minimum_covers(fs(0, 1, 2), [fs(0, 1, 2), fs(0), fs(1, 2)])
        assert covers == [(0,)]

    def test_all_minimum_covers_found(self):
        covers = minimum_covers(fs(0, 1), [fs(0), fs(1), fs(0, 1)])
        assert covers == [(0, 1), (2,)] or covers == [(2,)]
        # The (0,1) pair has size 2 > 1, so only (2,) is minimum.
        assert covers == [(2,)]

    def test_ties_enumerated(self):
        covers = minimum_covers(fs(0, 1), [fs(0), fs(1), fs(0), fs(1)])
        assert sorted(covers) == [(0, 1), (0, 3), (1, 2), (2, 3)]

    def test_no_cover(self):
        assert minimum_covers(fs(0, 1), [fs(0)]) == []

    def test_empty_universe(self):
        assert minimum_covers(frozenset(), [fs(0)]) == [()]

    def test_dominated_set_can_join_minimum_cover(self):
        """A ⊂ B may still appear in a minimum cover (module docstring)."""
        sets = [fs(0), fs(0, 1), fs(1, 2)]
        covers = minimum_covers(fs(0, 1, 2), sets)
        assert (0, 2) in covers  # {A, D}
        assert (1, 2) in covers  # {B, D}

    def test_overlapping_sets_allowed(self):
        covers = minimum_covers(fs(0, 1, 2), [fs(0, 1), fs(1, 2)])
        assert covers == [(0, 1)]


class TestIrredundantCovers:
    def test_includes_non_minimum_irredundant(self):
        # {0,1} and {2} are both irredundant covers of {a,b}.
        sets = [fs(0), fs(1), fs(0, 1)]
        covers = irredundant_covers(fs(0, 1), sets)
        assert sorted(covers) == [(0, 1), (2,)]

    def test_redundant_cover_excluded(self):
        # Using all three sets would be redundant.
        sets = [fs(0), fs(1), fs(0, 1)]
        covers = irredundant_covers(fs(0, 1), sets)
        assert (0, 1, 2) not in covers

    def test_no_cover(self):
        assert irredundant_covers(fs(0, 1), [fs(1)]) == []

    def test_empty_universe(self):
        assert irredundant_covers(frozenset(), []) == [()]

    def test_max_covers_cap(self):
        sets = [fs(0), fs(1), fs(0, 1)]
        covers = irredundant_covers(fs(0, 1), sets, max_covers=1)
        assert len(covers) == 1

    def test_every_minimum_cover_is_irredundant(self):
        sets = [fs(0), fs(0, 1), fs(1, 2), fs(2)]
        minimum = set(minimum_covers(fs(0, 1, 2), sets))
        irredundant = set(irredundant_covers(fs(0, 1, 2), sets))
        assert minimum <= irredundant


class TestGreedyCover:
    def test_finds_a_cover(self):
        cover = greedy_cover(fs(0, 1, 2), [fs(0, 1), fs(2), fs(0)])
        assert cover is not None
        covered = set()
        sets = [fs(0, 1), fs(2), fs(0)]
        for index in cover:
            covered |= sets[index]
        assert covered >= {0, 1, 2}

    def test_greedy_can_be_suboptimal_but_valid(self):
        # Classic greedy trap: greedy picks the big set first.
        sets = [fs(0, 1, 2, 3), fs(0, 1, 4), fs(2, 3, 5), fs(4), fs(5)]
        cover = greedy_cover(fs(0, 1, 2, 3, 4, 5), sets)
        assert cover is not None

    def test_none_when_impossible(self):
        assert greedy_cover(fs(0, 1), [fs(0)]) is None
