"""Tests for tuple-cores (Definition 4.1 / Lemma 4.2 / Table 2)."""

import pytest

from repro.containment import minimize
from repro.core import tuple_core, tuple_cores, view_tuples
from repro.datalog import Variable, parse_query
from repro.experiments.paper_examples import car_loc_part, example_41
from repro.views import ViewCatalog


def cores_by_name(query, views):
    minimized = minimize(query)
    tuples = view_tuples(minimized, views)
    return minimized, {
        str(t): core for t, core in zip(tuples, tuple_cores(minimized, tuples))
    }


class TestTable2:
    """Reproduces Table 2 of the paper exactly."""

    def test_tuple_cores_of_example_41(self):
        ex = example_41()
        minimized, cores = cores_by_name(ex.query, ex.views)
        body = [str(atom) for atom in minimized.body]

        def covered_atoms(name):
            return sorted(body[i] for i in cores[name].covered)

        assert covered_atoms("v1(X, Z)") == ["a(X, Z)", "a(Z, Z)"]
        assert covered_atoms("v1(Z, Z)") == ["a(Z, Z)"]
        assert covered_atoms("v2(Z, Y)") == ["b(Z, Y)"]

    def test_witness_mappings_are_identity_on_tuple_args(self):
        ex = example_41()
        _minimized, cores = cores_by_name(ex.query, ex.views)
        for core in cores.values():
            for variable, image in core.mapping.items():
                # Any explicit binding targets a fresh existential.
                assert variable != image


class TestCarLocPart:
    def test_cores_match_section_41(self):
        clp = car_loc_part()
        minimized, cores = cores_by_name(clp.query, clp.views)
        n = len(minimized.body)
        assert cores["v1(M, a, C)"].covered == {0, 1}
        assert cores["v5(M, a, C)"].covered == {0, 1}
        assert cores["v2(S, M, C)"].covered == {2}
        assert cores["v4(M, a, C, S)"].covered == frozenset(range(n))

    def test_v3_has_empty_core(self):
        """V3's only mapping violates property (2): C is distinguished."""
        clp = car_loc_part()
        _minimized, cores = cores_by_name(clp.query, clp.views)
        assert cores["v3(S)"].is_empty


class TestProperties:
    def test_property2_distinguished_variable_blocks_coverage(self):
        # Y is distinguished in Q but existential in the view.
        q = parse_query("q(X, Y) :- e(X, Y)")
        views = ViewCatalog(["v(A) :- e(A, B)"])
        minimized, cores = cores_by_name(q, views)
        assert cores["v(X)"].is_empty

    def test_property3_closure_pulls_in_neighbors(self):
        # Z is nondistinguished; the view covers e(X,Z) mapping Z to an
        # existential, so f(Z,Y) must also be covered — and it can be.
        q = parse_query("q(X, Y) :- e(X, Z), f(Z, Y)")
        views = ViewCatalog(["v(A, B) :- e(A, C), f(C, B)"])
        minimized, cores = cores_by_name(q, views)
        assert cores["v(X, Y)"].covered == {0, 1}

    def test_property3_closure_failure_empties_core(self):
        # The view only has e; covering e(X,Z) maps Z existentially but
        # f(Z,Y) cannot be covered, so the core is empty.
        q = parse_query("q(X, Y) :- e(X, Z), f(Z, Y)")
        views = ViewCatalog(["v(A) :- e(A, C)"])
        minimized, cores = cores_by_name(q, views)
        assert cores["v(X)"].is_empty

    def test_distinguished_view_variable_avoids_closure(self):
        # Same shape, but Z is distinguished in the view: no closure needed,
        # single-atom coverage is fine.
        q = parse_query("q(X, Y) :- e(X, Z), f(Z, Y)")
        views = ViewCatalog(["v(A, C) :- e(A, C)"])
        minimized, cores = cores_by_name(q, views)
        assert cores["v(X, Z)"].covered == {0}

    def test_injectivity_blocks_merging_variables(self):
        # Covering both atoms would need Y1 and Y2 to map to the same
        # existential variable of the view: forbidden by property (1).
        q = parse_query("q(X) :- e(X, Y1), e(X, Y2), f(Y1, Y2)")
        views = ViewCatalog(["v(A) :- e(A, B)"])
        minimized, cores = cores_by_name(q, views)
        # covering e(X,Y1) requires covering f(Y1,Y2) too (closure), which
        # the view cannot do; the core is empty.
        assert cores["v(X)"].is_empty

    def test_core_can_exceed_view_body_size(self):
        # One view atom covers two query atoms that fold together.
        q = parse_query("q(X) :- e(X, Y), e(X, Z), g(Y), g(Z)")
        views = ViewCatalog(["v(A) :- e(A, B), g(B)"])
        minimized, cores = cores_by_name(q, views)
        # The minimized query already folds Y/Z, so check via minimized size.
        assert len(minimized.body) == 2
        assert cores["v(X)"].covered == {0, 1}

    def test_covered_atoms_helper(self):
        ex = example_41()
        minimized, cores = cores_by_name(ex.query, ex.views)
        atoms = cores["v2(Z, Y)"].covered_atoms(minimized)
        assert [str(a) for a in atoms] == ["b(Z, Y)"]

    def test_core_with_constants(self):
        q = parse_query("q(S) :- e(S, a), f(a, S)")
        views = ViewCatalog(["v(S) :- e(S, a), f(a, S)"])
        minimized, cores = cores_by_name(q, views)
        assert cores["v(S)"].covered == {0, 1}


class TestUniqueness:
    """Lemma 4.2: the tuple-core is unique (maximum = maximal)."""

    @pytest.mark.parametrize("seed", range(5))
    def test_core_invariant_under_query_body_permutation(self, seed):
        import random

        rng = random.Random(seed)
        clp = car_loc_part()
        minimized = minimize(clp.query)
        indices = list(range(len(minimized.body)))
        rng.shuffle(indices)
        permuted = minimized.with_body(minimized.body[i] for i in indices)
        tuples = view_tuples(permuted, clp.views)
        for vt, core in zip(tuples, tuple_cores(permuted, tuples)):
            atoms = frozenset(str(permuted.body[i]) for i in core.covered)
            base_tuples = view_tuples(minimized, clp.views)
            base_core = {
                str(t): c
                for t, c in zip(base_tuples, tuple_cores(minimized, base_tuples))
            }[str(vt)]
            base_atoms = frozenset(
                str(minimized.body[i]) for i in base_core.covered
            )
            assert atoms == base_atoms
