"""Tests for CoreCover and CoreCover* (Sections 4 and 5)."""

import pytest

from repro.containment import is_equivalent_to
from repro.core import add_filter_subgoal, core_cover, core_cover_star
from repro.datalog import parse_query
from repro.experiments.paper_examples import (
    car_loc_part,
    example_41,
    example_42,
    gmr_not_cmr,
)
from repro.views import ViewCatalog, is_equivalent_rewriting


class TestCarLocPart:
    def test_gmr_is_p4(self):
        clp = car_loc_part()
        result = core_cover(clp.query, clp.views)
        assert [str(r) for r in result.rewritings] == [
            "q1(S, C) :- v4(M, a, C, S)"
        ]
        assert result.minimum_subgoals() == 1

    def test_v3_reported_as_filter_candidate(self):
        clp = car_loc_part()
        result = core_cover(clp.query, clp.views)
        assert [str(f) for f in result.filter_candidates] == ["v3(S)"]

    def test_star_variant_includes_p2(self):
        clp = car_loc_part()
        result = core_cover_star(clp.query, clp.views)
        rendered = {str(r) for r in result.rewritings}
        assert "q1(S, C) :- v4(M, a, C, S)" in rendered
        assert "q1(S, C) :- v1(M, a, C), v2(S, M, C)" in rendered

    def test_star_rewritings_all_equivalent(self):
        clp = car_loc_part()
        result = core_cover_star(clp.query, clp.views)
        for rewriting in result.rewritings:
            assert is_equivalent_rewriting(rewriting, clp.query, clp.views)

    def test_add_filter_subgoal_reconstructs_p3(self):
        clp = car_loc_part()
        result = core_cover_star(clp.query, clp.views)
        p2 = next(r for r in result.rewritings if len(r.body) == 2)
        v3 = result.filter_candidates[0]
        p3 = add_filter_subgoal(p2, v3)
        assert is_equivalent_rewriting(p3, clp.query, clp.views)
        assert len(p3.body) == 3

    def test_view_grouping_detects_v1_v5(self):
        clp = car_loc_part()
        result = core_cover(clp.query, clp.views)
        assert result.stats.total_views == 5
        assert result.stats.view_classes == 4


class TestExamples:
    def test_example_41_gmr(self):
        ex = example_41()
        result = core_cover(ex.query, ex.views)
        assert [str(r) for r in result.rewritings] == [
            "q(X, Y) :- v1(X, Z), v2(Z, Y)"
        ]

    @pytest.mark.parametrize("k", [2, 3, 4])
    def test_example_42_single_literal_gmr(self, k):
        ex = example_42(k)
        result = core_cover(ex.query, ex.views)
        assert [str(r) for r in result.rewritings] == ["q(X, Y) :- v(X, Y)"]

    def test_gmr_not_cmr_example(self):
        ex = gmr_not_cmr()
        result = core_cover(ex.query, ex.views)
        # The view-tuple space contains P2 (which is both GMR and CMR).
        assert [str(r) for r in result.rewritings] == ["q(X) :- v(X, X)"]


class TestBehaviour:
    def test_no_rewriting(self):
        q = parse_query("q(X) :- e(X, X), f(X, X)")
        views = ViewCatalog(["v(A) :- e(A, A)"])
        result = core_cover(q, views)
        assert not result.has_rewriting
        assert result.minimum_subgoals() is None

    def test_rewriting_requires_full_coverage(self):
        q = parse_query("q(X, Y) :- e(X, Y), f(Y, X)")
        views = ViewCatalog(["v(A, B) :- e(A, B)"])
        assert not core_cover(q, views).has_rewriting

    def test_query_minimized_first(self):
        # The redundant second subgoal must not demand coverage.
        q = parse_query("q(X) :- e(X, a), e(X, Y)")
        views = ViewCatalog(["v(A) :- e(A, a)"])
        result = core_cover(q, views)
        assert [str(r) for r in result.rewritings] == ["q(X) :- v(X)"]
        assert len(result.minimized_query.body) == 1

    def test_multiple_gmrs_enumerated(self):
        q = parse_query("q(X, Y) :- e(X, Y)")
        views = ViewCatalog(
            ["v1(A, B) :- e(A, B)", "v2(A, B) :- e(A, B), g(A, B)"]
        )
        result = core_cover(q, views)
        # v2 cannot help (g is not in the query); only v1 covers.
        assert [str(r) for r in result.rewritings] == ["q(X, Y) :- v1(X, Y)"]

    def test_grouping_does_not_change_rewriting_count_semantics(self):
        clp = car_loc_part()
        grouped = core_cover(clp.query, clp.views)
        ungrouped = core_cover(
            clp.query, clp.views, group_views=False, group_tuples=False
        )
        # v1/v5 are interchangeable: ungrouped finds the same GMR set here
        # because v4 alone wins in both.
        assert {str(r) for r in grouped.rewritings} == {
            str(r) for r in ungrouped.rewritings
        }

    def test_ungrouped_star_exposes_duplicates(self):
        q = parse_query("q(X, Y) :- e(X, Y)")
        views = ViewCatalog(["v1(A, B) :- e(A, B)", "v2(A, B) :- e(A, B)"])
        grouped = core_cover_star(q, views)
        ungrouped = core_cover_star(
            q, views, group_views=False, group_tuples=False
        )
        assert len(grouped.rewritings) == 1
        assert len(ungrouped.rewritings) == 2  # one per equivalent view

    def test_stats_fields_populated(self):
        clp = car_loc_part()
        stats = core_cover(clp.query, clp.views).stats
        # View tuples are computed from the 4 view representatives
        # (v1 and v5 collapse during view grouping).
        assert stats.total_view_tuples == 4
        assert stats.view_tuple_classes == 4
        assert stats.maximal_tuple_classes == 1  # v4 covers everything
        assert stats.elapsed_seconds > 0

    def test_max_rewritings_cap(self):
        q = parse_query("q(X, Y) :- e(X, Y)")
        views = ViewCatalog(
            [f"v{i}(A, B) :- e(A, B)" for i in range(4)]
        )
        result = core_cover_star(q, views, group_views=False, max_rewritings=2)
        assert len(result.rewritings) <= 2

    def test_rewriting_head_matches_query_head(self):
        clp = car_loc_part()
        for rewriting in core_cover_star(clp.query, clp.views).rewritings:
            assert rewriting.head == clp.query.head


class TestComparisonGuard:
    def test_comparison_in_query_rejected(self):
        q = parse_query("q(X, Y) :- e(X, Y), X <= Y")
        views = ViewCatalog(["v(A, B) :- e(A, B)"])
        with pytest.raises(ValueError, match="comparison atoms"):
            core_cover(q, views)

    def test_comparison_in_view_rejected(self):
        q = parse_query("q(X, Y) :- e(X, Y)")
        views = ViewCatalog(["v(A, B) :- e(A, B), A <= B"])
        with pytest.raises(ValueError, match="repro.extensions"):
            core_cover_star(q, views)
