"""Tests for view-tuple computation (Section 3.3)."""

from repro.containment import minimize
from repro.core import view_tuples
from repro.datalog import Variable, parse_atom, parse_query
from repro.experiments.paper_examples import car_loc_part, example_41
from repro.views import ViewCatalog


class TestCarLocPart:
    def test_paper_view_tuples(self):
        clp = car_loc_part()
        tuples = view_tuples(minimize(clp.query), clp.views)
        rendered = sorted(str(t) for t in tuples)
        assert rendered == [
            "v1(M, a, C)",
            "v2(S, M, C)",
            "v3(S)",
            "v4(M, a, C, S)",
            "v5(M, a, C)",
        ]

    def test_view_reference_preserved(self):
        clp = car_loc_part()
        tuples = view_tuples(minimize(clp.query), clp.views)
        by_name = {t.name: t for t in tuples}
        assert by_name["v4"].view.arity == 4


class TestExample41:
    def test_three_view_tuples(self):
        ex = example_41()
        tuples = view_tuples(minimize(ex.query), ex.views)
        rendered = sorted(str(t) for t in tuples)
        assert rendered == ["v1(X, Z)", "v1(Z, Z)", "v2(Z, Y)"]

    def test_expansion_of_view_tuple(self):
        ex = example_41()
        tuples = view_tuples(minimize(ex.query), ex.views)
        from repro.datalog import FreshVariableFactory

        v2_tuple = next(t for t in tuples if t.name == "v2")
        atoms, fresh = v2_tuple.expansion(FreshVariableFactory(["X", "Y", "Z"]))
        assert len(atoms) == 2
        assert len(fresh) == 1  # E is existential in v2
        # The expansion mentions the tuple's own arguments Z and Y.
        variables = set()
        for atom in atoms:
            variables |= atom.variable_set()
        assert Variable("Z") in variables and Variable("Y") in variables


class TestGeneralBehaviour:
    def test_view_over_missing_relation_yields_nothing(self):
        q = parse_query("q(X) :- e(X, X)")
        views = ViewCatalog(["v(A) :- f(A, A)"])
        assert view_tuples(minimize(q), views) == []

    def test_multiple_tuples_from_one_view(self):
        q = parse_query("q(X, Y) :- e(X, Y), e(Y, X)")
        views = ViewCatalog(["v(A, B) :- e(A, B)"])
        tuples = view_tuples(minimize(q), views)
        assert sorted(str(t) for t in tuples) == ["v(X, Y)", "v(Y, X)"]

    def test_constant_in_view_restricts_tuples(self):
        q = parse_query("q(X) :- e(X, a), e(X, b)")
        views = ViewCatalog(["v(A) :- e(A, a)"])
        tuples = view_tuples(minimize(q), views)
        assert [str(t) for t in tuples] == ["v(X)"]

    def test_query_constant_appears_in_tuple(self):
        q = parse_query("q(X) :- e(X, a)")
        views = ViewCatalog(["v(A, B) :- e(A, B)"])
        tuples = view_tuples(minimize(q), views)
        assert [str(t) for t in tuples] == ["v(X, a)"]

    def test_deterministic_order(self):
        clp = car_loc_part()
        first = [str(t) for t in view_tuples(minimize(clp.query), clp.views)]
        second = [str(t) for t in view_tuples(minimize(clp.query), clp.views)]
        assert first == second

    def test_duplicate_valuations_deduplicated(self):
        # Two valuations of the view body can produce the same head tuple.
        q = parse_query("q(X) :- e(X, Y), e(X, Z)")
        views = ViewCatalog(["v(A) :- e(A, B)"])
        tuples = view_tuples(minimize(q), views)
        assert [str(t) for t in tuples] == ["v(X)"]
