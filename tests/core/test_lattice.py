"""Tests for the LMR partial order and Figure 1 classification."""

import pytest

from repro.containment import is_properly_contained_in
from repro.core import (
    RewritingRegion,
    build_lmr_lattice,
    classify_rewriting,
    core_cover,
)
from repro.datalog import parse_query
from repro.experiments.paper_examples import car_loc_part, example_31, gmr_not_cmr
from repro.views import is_locally_minimal


class TestLemma31:
    """Containment between LMRs bounds their subgoal counts."""

    def test_car_loc_part_p2_contained_in_p1(self):
        clp = car_loc_part()
        assert is_properly_contained_in(clp.p2, clp.p1)
        assert len(clp.p2.body) <= len(clp.p1.body)

    def test_example_31_chain(self):
        ex = example_31(3)
        p1, p2, p3 = ex.rewritings
        for rewriting in ex.rewritings:
            assert is_locally_minimal(rewriting, ex.query, ex.views)
        assert is_properly_contained_in(p1, p2)
        assert is_properly_contained_in(p2, p3)
        assert is_properly_contained_in(p1, p3)

    @pytest.mark.parametrize("m", [2, 4])
    def test_example_31_generalized_chain(self, m):
        ex = example_31(m)
        assert len(ex.rewritings) == m
        for smaller, larger in zip(ex.rewritings, ex.rewritings[1:]):
            assert is_properly_contained_in(smaller, larger)


class TestLattice:
    def test_example_31_lattice_structure(self):
        ex = example_31(3)
        lattice = build_lmr_lattice(ex.rewritings)
        # Hasse edges: P3 -> P2 -> P1 (upper properly contains lower).
        assert set(lattice.edges) == {(2, 1), (1, 0)}
        assert lattice.cmr_indices == (0,)
        assert lattice.gmr_indices == (0,)
        assert [len(q.body) for q in lattice.gmrs()] == [1]

    def test_car_loc_part_lattice(self):
        clp = car_loc_part()
        lmrs = [clp.p1, clp.p2, clp.p4, clp.p5]
        lattice = build_lmr_lattice(lmrs)
        cmrs = {str(q) for q in lattice.cmrs()}
        # P2 is a CMR (Section 3.2); P1 is not.
        assert str(clp.p2) in cmrs
        assert str(clp.p1) not in cmrs
        # P4 has the fewest subgoals.
        assert [str(q) for q in lattice.gmrs()] == [str(clp.p4)]


class TestGmrNotCmr:
    def test_p1_gmr_but_not_cmr(self):
        ex = gmr_not_cmr()
        lattice = build_lmr_lattice([ex.p1, ex.p2])
        # Both are GMRs (one subgoal each) but only P2 is a CMR.
        assert set(lattice.gmr_indices) == {0, 1}
        assert lattice.cmr_indices == (1,)
        assert is_properly_contained_in(ex.p2, ex.p1)


class TestClassification:
    def test_figure1_regions(self):
        clp = car_loc_part()
        known_minimum = core_cover(clp.query, clp.views).minimum_subgoals()
        lmrs = [clp.p1, clp.p2, clp.p4]

        region_p3 = classify_rewriting(
            clp.p3, clp.query, clp.views, lmrs, known_minimum
        )
        assert RewritingRegion.MINIMAL in region_p3
        assert RewritingRegion.LOCALLY_MINIMAL not in region_p3

        region_p2 = classify_rewriting(
            clp.p2, clp.query, clp.views, [clp.p1, clp.p4], known_minimum
        )
        assert RewritingRegion.LOCALLY_MINIMAL in region_p2
        assert RewritingRegion.CONTAINMENT_MINIMAL in region_p2
        assert RewritingRegion.GLOBALLY_MINIMAL not in region_p2

        region_p4 = classify_rewriting(
            clp.p4, clp.query, clp.views, lmrs, known_minimum
        )
        assert RewritingRegion.GLOBALLY_MINIMAL in region_p4

    def test_non_rewriting_is_none(self):
        clp = car_loc_part()
        bad = parse_query("q1(S, C) :- v2(S, M, C)")
        region = classify_rewriting(bad, clp.query, clp.views)
        assert region == RewritingRegion.NONE

    def test_p1_not_containment_minimal_given_p2(self):
        clp = car_loc_part()
        region = classify_rewriting(clp.p1, clp.query, clp.views, [clp.p2])
        assert RewritingRegion.LOCALLY_MINIMAL in region
        assert RewritingRegion.CONTAINMENT_MINIMAL not in region
