"""Tests for the rewriter-backend and cost-model registries."""

import pytest

from repro import (
    PlannerContext,
    ViewCatalog,
    available_backends,
    bucket_algorithm,
    core_cover,
    core_cover_star,
    get_backend,
    minicon,
    naive_gmr_search,
    parse_query,
    plan,
)
from repro.baselines.inverse_rules import InverseRule
from repro.cost import (
    UnknownCostModelError,
    available_cost_models,
    get_cost_model,
)
from repro.planner import UnknownBackendError


@pytest.fixture()
def clp():
    """The car-loc-part running example."""
    query = parse_query("q1(S, C) :- car(M, a), loc(a, C), part(S, M, C)")
    views = ViewCatalog(
        [
            "v1(M, D, C) :- car(M, D), loc(D, C)",
            "v2(S, M, C) :- part(S, M, C)",
            "v3(S) :- car(M, a), loc(a, C), part(S, M, C)",
            "v4(M, D, C, S) :- car(M, D), loc(D, C), part(S, M, C)",
            "v5(M, D, C) :- car(M, D), loc(D, C)",
        ]
    )
    return query, views


class TestBackendRegistry:
    def test_expected_backends_registered(self):
        assert available_backends() == (
            "bucket",
            "corecover",
            "corecover-star",
            "inverse-rules",
            "minicon",
            "naive",
        )

    def test_every_listed_backend_resolves(self):
        for name in available_backends():
            backend = get_backend(name)
            assert backend.name == name
            assert backend.description

    def test_name_normalization(self):
        assert get_backend("CoreCover").name == "corecover"
        assert get_backend("corecover_star").name == "corecover-star"
        assert get_backend("  MINICON ").name == "minicon"

    def test_unknown_backend_lists_registered(self):
        with pytest.raises(UnknownBackendError) as excinfo:
            get_backend("does-not-exist")
        message = str(excinfo.value)
        assert "does-not-exist" in message
        for name in available_backends():
            assert name in message

    def test_plan_rejects_unknown_backend(self, clp):
        query, views = clp
        with pytest.raises(UnknownBackendError):
            plan(query, views, backend="no-such-backend")


class TestPlanEntryPoint:
    def test_every_backend_runs_through_plan(self, clp):
        query, views = clp
        for name in available_backends():
            result = plan(query, views, backend=name)
            assert result.backend == name
            assert result.stats.cache_misses >= 0
            if get_backend(name).produces_rewritings:
                assert result.rewritings, f"{name} found no rewriting"

    def test_inverse_rules_details_are_rules(self, clp):
        query, views = clp
        result = plan(query, views, backend="inverse-rules")
        assert result.rewritings == ()
        assert not result.has_rewriting
        assert all(isinstance(rule, InverseRule) for rule in result.details)

    def test_stats_are_per_call_deltas_on_shared_context(self, clp):
        query, views = clp
        context = PlannerContext()
        first = plan(query, views, backend="corecover", context=context)
        second = plan(query, views, backend="corecover", context=context)
        # The second run re-asks the same interned questions: everything
        # is a hit, and its delta-stats must not include the first run.
        assert second.stats.hom_searches == 0
        assert second.stats.cache_hits <= first.stats.cache_lookups
        assert second.rewritings == first.rewritings

    def test_plan_with_cost_model_m1(self, clp):
        query, views = clp
        result = plan(query, views, backend="corecover", cost_model="m1")
        assert result.cost_model == "m1"
        assert result.chosen is not None
        best = min(result.rewritings, key=lambda r: len(r.body))
        assert len(result.chosen.rewriting.body) == len(best.body)


class TestLegacyShims:
    def test_core_cover_matches_registry(self, clp):
        query, views = clp
        shim = core_cover(query, views)
        direct = plan(query, views, backend="corecover")
        assert shim.rewritings == direct.rewritings
        assert shim.rewritings == direct.details.rewritings

    def test_core_cover_star_matches_registry(self, clp):
        query, views = clp
        shim = core_cover_star(query, views, max_rewritings=16)
        direct = plan(
            query, views, backend="corecover-star", max_rewritings=16
        )
        assert shim.rewritings == direct.rewritings

    def test_naive_matches_registry(self, clp):
        query, views = clp
        shim = naive_gmr_search(query, views)
        direct = plan(query, views, backend="naive")
        assert tuple(shim) == direct.rewritings

    def test_minicon_matches_registry(self, clp):
        query, views = clp
        shim = minicon(query, views)
        direct = plan(query, views, backend="minicon")
        assert shim.mcds == direct.details.mcds
        assert shim.equivalent_rewritings == direct.rewritings

    def test_bucket_matches_registry(self, clp):
        query, views = clp
        shim = bucket_algorithm(query, views)
        direct = plan(query, views, backend="bucket")
        assert shim.contained_rewritings == direct.details.contained_rewritings
        assert shim.equivalent_rewritings == direct.rewritings


class TestCostModelRegistry:
    def test_expected_models_registered(self):
        assert available_cost_models() == ("m1", "m2", "m3")

    def test_every_listed_model_resolves(self):
        for name in available_cost_models():
            model = get_cost_model(name)
            assert model.name == name

    def test_unknown_model_lists_registered(self):
        with pytest.raises(UnknownCostModelError) as excinfo:
            get_cost_model("m99")
        message = str(excinfo.value)
        for name in available_cost_models():
            assert name in message

    def test_m2_without_data_raises(self, clp):
        query, views = clp
        with pytest.raises(ValueError, match="m2"):
            plan(query, views, backend="corecover", cost_model="m2")

    def test_m1_needs_no_data(self):
        assert get_cost_model("m1").needs_data is False
        assert get_cost_model("m2").needs_data is True
