"""Phase-level profiling: taxonomy mapping, profiler, and surfacing.

Covers the :mod:`repro.profiling` primitives with a fake clock, the
stage -> phase folding rules (``cost:*`` folds, ``rewrite:*`` drops),
and every surface the profile reaches: ``CoreCoverStats.phase_seconds``,
``PlanResult.phase_profile()``, the executor's ``--profile`` payload,
and the two CLI renderings.
"""

import json

import pytest

from repro.profiling import (
    CANONICAL_PHASES,
    PhaseProfile,
    PhaseProfiler,
    phase_for_stage,
    profile_from_stages,
)

QUERY = "q(X, Y) :- a(X, Z), a(Z, Z), b(Z, Y)"
VIEWS = [
    "v1(A, B) :- a(A, B), a(B, B)",
    "v2(C, D) :- a(C, E), b(C, D)",
]


class TestTaxonomy:
    def test_canonical_order_is_the_pipeline_order(self):
        assert CANONICAL_PHASES == (
            "parse",
            "preflight",
            "minimize",
            "grouping",
            "canonical_db",
            "view_tuples",
            "tuple_cores",
            "set_cover",
            "cost_ranking",
        )

    @pytest.mark.parametrize(
        "stage, phase",
        [
            ("preflight", "preflight"),
            ("minimize", "minimize"),
            ("grouping", "grouping"),
            ("canonical_db", "canonical_db"),
            ("view_tuples", "view_tuples"),
            ("tuple_cores", "tuple_cores"),
            ("cover", "set_cover"),
            ("cost:subgoals", "cost_ranking"),
            ("cost:oracle", "cost_ranking"),
        ],
    )
    def test_stage_mapping(self, stage, phase):
        assert phase_for_stage(stage) == phase

    @pytest.mark.parametrize(
        "stage", ["rewrite:corecover", "rewrite:bucket", "mystery"]
    )
    def test_envelopes_and_unknown_stages_are_dropped(self, stage):
        assert phase_for_stage(stage) is None


class TestProfiler:
    def test_phase_context_manager_uses_injected_clock(self):
        ticks = iter([1.0, 3.5, 10.0, 10.25])
        profiler = PhaseProfiler(clock=lambda: next(ticks))
        with profiler.phase("minimize"):
            pass
        with profiler.phase("minimize"):
            pass
        profile = profiler.snapshot()
        assert profile.seconds("minimize") == pytest.approx(2.75)
        assert profile.seconds("set_cover") == 0.0

    def test_unknown_phase_is_rejected(self):
        profiler = PhaseProfiler()
        with pytest.raises(ValueError, match="unknown phase"):
            profiler.record("rewrite:corecover", 1.0)
        with pytest.raises(ValueError, match="unknown phase"):
            with profiler.phase("warmup"):
                pass  # pragma: no cover - never entered

    def test_profile_shape_is_stable_and_total_sums(self):
        profiler = PhaseProfiler()
        profiler.record("parse", 0.25)
        profiler.record("set_cover", 0.75)
        profile = profiler.snapshot()
        assert [name for name, _ in profile.phases] == list(CANONICAL_PHASES)
        assert profile.total_seconds == pytest.approx(1.0)
        fractions = profile.fractions()
        assert fractions["parse"] == pytest.approx(0.25)
        assert fractions["set_cover"] == pytest.approx(0.75)
        assert fractions["minimize"] == 0.0

    def test_empty_profile_has_zero_fractions(self):
        profile = PhaseProfiler().snapshot()
        assert profile.total_seconds == 0.0
        assert set(profile.fractions().values()) == {0.0}

    def test_merged_sums_phase_wise(self):
        left = PhaseProfiler()
        left.record("minimize", 1.0)
        right = PhaseProfiler()
        right.record("minimize", 0.5)
        right.record("cost_ranking", 2.0)
        merged = left.snapshot().merged(right.snapshot())
        assert merged.seconds("minimize") == pytest.approx(1.5)
        assert merged.seconds("cost_ranking") == pytest.approx(2.0)

    def test_from_stages_folds_and_drops(self):
        profile = profile_from_stages(
            [
                ("rewrite:corecover", 9.0),  # envelope: dropped
                ("minimize", 0.5),
                ("cover", 0.25),
                ("cost:subgoals", 0.125),
                ("cost:oracle", 0.125),
            ],
            parse_seconds=1.0,
        )
        assert profile.seconds("parse") == pytest.approx(1.0)
        assert profile.seconds("minimize") == pytest.approx(0.5)
        assert profile.seconds("set_cover") == pytest.approx(0.25)
        assert profile.seconds("cost_ranking") == pytest.approx(0.25)
        assert profile.total_seconds == pytest.approx(2.0)

    def test_json_payload_shape(self):
        profile = PhaseProfile(
            tuple(
                (name, 0.5 if name == "minimize" else 0.0)
                for name in CANONICAL_PHASES
            )
        )
        payload = profile.to_json()
        assert payload["total_seconds"] == 0.5
        assert payload["phase_seconds"]["minimize"] == 0.5
        assert payload["fractions"]["minimize"] == 1.0
        assert set(payload["phase_seconds"]) == set(CANONICAL_PHASES)

    def test_render_text_is_one_row_per_phase(self):
        text = PhaseProfiler().snapshot().render_text()
        lines = text.splitlines()
        assert lines[0].startswith("phase profile (total")
        assert len(lines) == 1 + len(CANONICAL_PHASES)


class TestPlannerSurfaces:
    def test_corecover_stats_carry_phase_seconds(self):
        from repro import ViewCatalog, parse_query
        from repro.core.corecover import core_cover

        result = core_cover(parse_query(QUERY), ViewCatalog(VIEWS))
        phases = dict(result.stats.phase_seconds)
        assert set(phases) == set(CANONICAL_PHASES)
        # The pipeline phases that always run must have been timed.
        for name in ("minimize", "canonical_db", "view_tuples",
                     "tuple_cores", "set_cover"):
            assert phases[name] > 0.0, name

    def test_plan_result_phase_profile(self):
        from repro import ViewCatalog, parse_query
        from repro.planner.registry import plan

        result = plan(
            parse_query(QUERY),
            ViewCatalog(VIEWS),
            backend="corecover",
            cost_model="m1",
        )
        profile = result.phase_profile(parse_seconds=0.125)
        assert profile.seconds("parse") == pytest.approx(0.125)
        assert profile.seconds("set_cover") > 0.0
        # the cost:m1 ranking stage folds into cost_ranking
        assert profile.seconds("cost_ranking") > 0.0

    def test_executor_attaches_profile_only_when_enabled(self):
        from repro import ViewCatalog, parse_query
        from repro.service import (
            PlanRequest,
            ResilientExecutor,
            ServicePolicy,
        )

        request = PlanRequest(
            query=parse_query(QUERY),
            views=ViewCatalog(VIEWS),
            parse_seconds=0.5,
        )
        policy = ServicePolicy(chain=("corecover",))
        plain = ResilientExecutor(policy).execute(request)
        assert plain.profile is None
        assert "profile" not in plain.to_json()

        profiled = ResilientExecutor(policy, profile=True).execute(request)
        assert profiled.profile is not None
        payload = profiled.to_json()["profile"]
        assert payload["phase_seconds"]["parse"] == 0.5
        assert payload["phase_seconds"]["set_cover"] > 0.0
        # Search-effort counters ride along with the phase timings.
        search = payload["search"]
        assert search["hom_searches"] > 0
        assert search["hom_nodes"] > 0
        assert search["fast_path_searches"] > 0  # QUERY is acyclic


class TestCliSurfaces:
    def test_plan_profile_renders_table(self, tmp_path, capsys):
        from repro.cli import main

        views = tmp_path / "views.dl"
        views.write_text("\n".join(VIEWS) + "\n")
        code = main(
            ["plan", QUERY, "--views", str(views), "--profile"]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "phase profile (total" in out
        assert "set_cover" in out

    def test_batch_profile_attaches_json_payload(self, tmp_path, capsys):
        from repro.cli import main

        views = tmp_path / "views.dl"
        views.write_text("\n".join(VIEWS) + "\n")
        requests = tmp_path / "requests.ndjson"
        requests.write_text(json.dumps({"id": "p1", "query": QUERY}) + "\n")
        code = main(
            [
                "batch", str(requests), "--views", str(views),
                "--chain", "corecover", "--format", "json", "--profile",
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        payload = json.loads(out.splitlines()[0])
        profile = payload["profile"]
        assert set(profile["phase_seconds"]) == set(CANONICAL_PHASES)
        assert profile["phase_seconds"]["parse"] > 0.0
        assert profile["total_seconds"] > 0.0
        assert profile["search"]["hom_searches"] > 0
        assert profile["search"]["fast_path_searches"] > 0

        # Without --profile the key is absent (default JSON unchanged).
        main(
            [
                "batch", str(requests), "--views", str(views),
                "--chain", "corecover", "--format", "json",
            ]
        )
        bare = json.loads(capsys.readouterr().out.splitlines()[0])
        assert "profile" not in bare
