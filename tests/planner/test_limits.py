"""Unit tests for ResourceBudget / BudgetMeter (deterministic fake clock)."""

import math

import pytest

from repro.errors import BudgetExceededError
from repro.planner.limits import (
    AnytimeRewriting,
    PlanOutcome,
    PlanStatus,
    ResourceBudget,
)
from repro.datalog import parse_query


class FakeClock:
    """A manually-advanced monotonic clock."""

    def __init__(self, now: float = 0.0) -> None:
        self.now = now

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


class TestResourceBudget:
    def test_default_is_unlimited(self):
        assert ResourceBudget().is_unlimited

    def test_inf_deadline_is_unlimited(self):
        assert ResourceBudget(deadline_seconds=math.inf).is_unlimited

    def test_any_limit_is_not_unlimited(self):
        assert not ResourceBudget(deadline_seconds=1.0).is_unlimited
        assert not ResourceBudget(max_hom_searches=5).is_unlimited
        assert not ResourceBudget(max_view_tuples=5).is_unlimited
        assert not ResourceBudget(max_rewritings=5).is_unlimited

    @pytest.mark.parametrize(
        "field",
        ["deadline_seconds", "max_hom_searches",
         "max_view_tuples", "max_rewritings"],
    )
    def test_negative_limits_rejected(self, field):
        with pytest.raises(ValueError):
            ResourceBudget(**{field: -1})

    def test_zero_limits_allowed(self):
        meter = ResourceBudget(max_hom_searches=0).start()
        with pytest.raises(BudgetExceededError):
            meter.charge_hom_search()


class TestBudgetMeter:
    def test_deadline_trips_after_clock_advances(self):
        clock = FakeClock()
        meter = ResourceBudget(deadline_seconds=5.0).start(clock=clock)
        meter.checkpoint()  # healthy
        clock.advance(4.9)
        meter.checkpoint()  # still inside the deadline
        clock.advance(0.2)
        with pytest.raises(BudgetExceededError) as info:
            meter.checkpoint()
        assert info.value.resource == "deadline"

    def test_exhaustion_is_sticky(self):
        clock = FakeClock()
        meter = ResourceBudget(deadline_seconds=1.0).start(clock=clock)
        clock.advance(2.0)
        with pytest.raises(BudgetExceededError):
            meter.checkpoint()
        # Even if the clock ran backwards, the meter stays tripped.
        clock.now = 0.0
        with pytest.raises(BudgetExceededError):
            meter.checkpoint()
        assert meter.exhausted

    def test_hom_search_limit(self):
        meter = ResourceBudget(max_hom_searches=3).start()
        for _ in range(3):
            meter.charge_hom_search()
        with pytest.raises(BudgetExceededError) as info:
            meter.charge_hom_search()
        assert info.value.resource == "hom_searches"

    def test_view_tuple_limit(self):
        meter = ResourceBudget(max_view_tuples=2).start()
        meter.charge_view_tuple()
        meter.charge_view_tuple()
        with pytest.raises(BudgetExceededError) as info:
            meter.charge_view_tuple()
        assert info.value.resource == "view_tuples"

    def test_rewriting_limit(self):
        meter = ResourceBudget(max_rewritings=1).start()
        meter.charge_rewriting()
        with pytest.raises(BudgetExceededError) as info:
            meter.charge_rewriting()
        assert info.value.resource == "rewritings"

    def test_unlimited_meter_never_trips(self):
        meter = ResourceBudget().start()
        for _ in range(1000):
            meter.checkpoint()
            meter.charge_hom_search()
            meter.charge_view_tuple()
            meter.charge_rewriting()
        assert not meter.exhausted

    def test_elapsed_and_remaining(self):
        clock = FakeClock(100.0)
        meter = ResourceBudget(deadline_seconds=10.0).start(clock=clock)
        clock.advance(3.0)
        assert meter.elapsed() == pytest.approx(3.0)
        assert meter.remaining_seconds() == pytest.approx(7.0)
        unlimited = ResourceBudget().start(clock=clock)
        assert unlimited.remaining_seconds() == math.inf


class TestPlanOutcome:
    def test_certified_partition(self):
        good = parse_query("q(X) :- v1(X)")
        maybe = parse_query("q(X) :- v2(X)")
        outcome = PlanOutcome(
            status=PlanStatus.BUDGET_EXHAUSTED,
            rewritings=(
                AnytimeRewriting(good, certified=True),
                AnytimeRewriting(maybe, certified=False),
            ),
            exhausted_resource="deadline",
        )
        assert not outcome.ok
        assert outcome.certified_rewritings == (good,)
        assert outcome.uncertified_rewritings == (maybe,)
        assert "deadline" in str(outcome)
