"""Caching effect of the PlannerContext on the Figure 6 star workload.

The acceptance bar for the memoization layer: on the paper's 500-view
star workload, CoreCover with caching on must answer identical questions
from cache — measurably fewer homomorphism searches than with caching
off, with byte-identical rewritings.
"""

import pytest

from repro import PlannerContext, core_cover
from repro.workload import WorkloadConfig, generate_workload

STAR_RELATIONS = 13
NUM_VIEWS = 500
SEED = 17


@pytest.fixture(scope="module")
def star500():
    return generate_workload(
        WorkloadConfig(
            shape="star",
            num_relations=STAR_RELATIONS,
            num_views=NUM_VIEWS,
            nondistinguished=0,
            seed=SEED,
        )
    )


@pytest.fixture(scope="module")
def cached_and_uncached(star500):
    cached = core_cover(
        star500.query, star500.views, context=PlannerContext(caching=True)
    )
    uncached = core_cover(
        star500.query, star500.views, context=PlannerContext(caching=False)
    )
    return cached, uncached


class TestCachingEffect:
    def test_identical_rewritings(self, cached_and_uncached):
        cached, uncached = cached_and_uncached
        assert cached.rewritings == uncached.rewritings
        assert cached.has_rewriting

    def test_identical_intermediates(self, cached_and_uncached):
        cached, uncached = cached_and_uncached
        assert cached.minimized_query == uncached.minimized_query
        assert cached.view_tuples == uncached.view_tuples
        assert [c.covered for c in cached.cores] == [
            c.covered for c in uncached.cores
        ]
        assert cached.filter_candidates == uncached.filter_candidates

    def test_fewer_homomorphism_searches_with_caching(
        self, cached_and_uncached
    ):
        cached, uncached = cached_and_uncached
        assert cached.stats.caching_enabled is True
        assert uncached.stats.caching_enabled is False
        # The 500-view star catalog contains many structurally duplicate
        # view definitions; with caching their minimizations and
        # equivalence tests are answered without a search.
        assert cached.stats.hom_searches < uncached.stats.hom_searches

    def test_tuple_core_searches_not_worse_with_caching(
        self, cached_and_uncached
    ):
        # Within one run the view-equivalence grouping already removed
        # duplicate definitions, so tuple-core search counts match; the
        # strict reduction appears across runs (see the shared-context
        # test below).
        cached, uncached = cached_and_uncached
        assert cached.stats.core_searches <= uncached.stats.core_searches

    def test_cache_counters(self, cached_and_uncached):
        cached, uncached = cached_and_uncached
        assert cached.stats.cache_hits > 0
        assert cached.stats.cache_hit_rate > 0.0
        assert uncached.stats.cache_hits == 0
        assert uncached.stats.cache_hit_rate == 0.0


class TestSharedContextAcrossRuns:
    def test_second_run_is_all_hits(self, star500):
        context = PlannerContext()
        first = core_cover(star500.query, star500.views, context=context)
        second = core_cover(star500.query, star500.views, context=context)
        assert second.rewritings == first.rewritings
        assert second.stats.hom_searches == 0
        assert second.stats.core_searches == 0
        assert second.stats.cache_misses == 0
        assert second.stats.cache_hits > 0

    def test_stage_times_accumulate(self, star500):
        context = PlannerContext()
        core_cover(star500.query, star500.views, context=context)
        stages = dict(context.snapshot().stages)
        for stage in (
            "minimize",
            "grouping",
            "view_tuples",
            "tuple_cores",
            "cover",
            "rewrite:corecover",
        ):
            assert stage in stages
            assert stages[stage] >= 0.0
