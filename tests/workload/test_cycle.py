"""Tests for the cycle workload shape."""

import random

import pytest

from repro.core import core_cover
from repro.datalog import Variable
from repro.workload import (
    WorkloadConfig,
    cycle_query,
    cycle_view,
    generate_workload,
)


class TestCycleQuery:
    def test_edges_close_the_cycle(self):
        q = cycle_query([0, 1, 2])
        assert [a.predicate for a in q.body] == ["r0", "r1", "r2"]
        assert q.body[-1].args[1] == q.body[0].args[0]

    def test_all_distinguished_by_default(self):
        q = cycle_query([0, 1, 2, 3])
        assert q.existential_variables() == frozenset()

    def test_nondistinguished_drops_variables(self):
        q = cycle_query([0, 1, 2], nondistinguished=1)
        assert len(q.existential_variables()) == 1

    def test_too_small_cycle_rejected(self):
        with pytest.raises(ValueError):
            cycle_query([0])

    def test_cannot_drop_everything(self):
        with pytest.raises(ValueError):
            cycle_query([0, 1], nondistinguished=2)


class TestCycleView:
    def test_arc_over_ring(self):
        view = cycle_view([5, 6, 7], start=2, length=2, name="v")
        # Arc starting at ring position 2 wraps: r7 then r5.
        assert [a.predicate for a in view.definition.body] == ["r7", "r5"]

    def test_arc_is_a_chain(self):
        view = cycle_view([0, 1, 2, 3], start=0, length=3, name="v")
        body = view.definition.body
        for left, right in zip(body, body[1:]):
            assert left.args[1] == right.args[0]

    def test_bad_length_rejected(self):
        with pytest.raises(ValueError):
            cycle_view([0, 1], start=0, length=3, name="v")

    def test_interior_drop(self):
        view = cycle_view(
            [0, 1, 2], start=0, length=3, name="v",
            nondistinguished=1, rng=random.Random(1),
        )
        assert len(view.existential_variables()) == 1


class TestCycleWorkloads:
    @pytest.mark.parametrize("seed", [1, 2])
    def test_rewritable_workloads_generated(self, seed):
        workload = generate_workload(
            WorkloadConfig(
                shape="cycle",
                num_relations=20,
                query_subgoals=6,
                num_views=60,
                seed=seed,
            )
        )
        result = core_cover(workload.query, workload.views)
        assert result.has_rewriting
        # A cycle can never be covered by a single ≤3-subgoal view.
        assert result.minimum_subgoals() >= 2

    def test_closed_world_on_cycles(self):
        from repro.engine import evaluate, materialize_views
        from repro.workload import schema_of, uniform_database

        workload = generate_workload(
            WorkloadConfig(
                shape="cycle",
                num_relations=15,
                query_subgoals=5,
                num_views=50,
                seed=5,
            )
        )
        result = core_cover(workload.query, workload.views)
        schema = schema_of(workload.query, *workload.views.definitions())
        base = uniform_database(schema, 60, 7, random.Random(5))
        vdb = materialize_views(workload.views, base)
        expected = evaluate(workload.query, base)
        for rewriting in result.rewritings:
            assert evaluate(rewriting, vdb) == expected
