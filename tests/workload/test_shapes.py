"""Tests for query/view shape builders."""

import random

import pytest

from repro.datalog import Variable
from repro.workload import (
    chain_query,
    chain_view,
    random_query,
    random_view,
    relation_name,
    star_query,
    star_view,
)


class TestStar:
    def test_query_shares_center(self):
        q = star_query([3, 1, 4])
        center = Variable("X0")
        for atom in q.body:
            assert atom.args[0] == center
        assert [a.predicate for a in q.body] == ["r3", "r1", "r4"]

    def test_all_distinguished_by_default(self):
        q = star_query([0, 1])
        assert q.existential_variables() == frozenset()

    def test_nondistinguished_drops_tail(self):
        q = star_query([0, 1, 2], nondistinguished=1)
        assert len(q.existential_variables()) == 1

    def test_view_nondistinguished_keeps_center(self):
        rng = random.Random(0)
        view = star_view([0, 1, 2], "v", nondistinguished=2, rng=rng)
        assert Variable("C") in set(view.head_variables)
        assert len(view.existential_variables()) == 2


class TestChain:
    def test_query_chains_consecutive_relations(self):
        q = chain_query(2, 3)
        assert [a.predicate for a in q.body] == ["r2", "r3", "r4"]
        for left, right in zip(q.body, q.body[1:]):
            assert left.args[1] == right.args[0]

    def test_endpoints_always_distinguished(self):
        q = chain_query(0, 4, nondistinguished=2)
        head = set(q.head.args)
        assert Variable("X0") in head and Variable("X4") in head

    def test_cannot_drop_more_than_interior(self):
        with pytest.raises(ValueError):
            chain_query(0, 2, nondistinguished=2)

    def test_single_subgoal_view_fully_distinguished(self):
        view = chain_view(0, 1, "v", nondistinguished=1)
        assert view.existential_variables() == frozenset()

    def test_long_view_drops_interior(self):
        view = chain_view(0, 3, "v", nondistinguished=1, rng=random.Random(1))
        assert len(view.existential_variables()) == 1


class TestRandom:
    def test_query_is_safe(self):
        rng = random.Random(5)
        for _ in range(20):
            q = random_query(6, 5, rng)
            assert q.is_safe()

    def test_view_head_variables_distinct(self):
        rng = random.Random(5)
        for i in range(20):
            view = random_view(6, 3, f"v{i}", rng)
            assert len(set(view.head_variables)) == len(view.head_variables)

    def test_relation_name(self):
        assert relation_name(7) == "r7"
