"""Tests for base-data instance generation."""

import random

import pytest

from repro.datalog import parse_query
from repro.workload import schema_of, skewed_database, uniform_database


class TestUniform:
    def test_schema_and_sizes(self):
        rng = random.Random(0)
        db = uniform_database({"e": 2, "f": 3}, 50, 100, rng)
        assert db.relation("e").arity == 2
        assert db.relation("f").arity == 3
        assert 0 < len(db.relation("e")) <= 50

    def test_values_within_domain(self):
        rng = random.Random(1)
        db = uniform_database({"e": 2}, 30, 5, rng)
        for row in db.relation("e"):
            assert all(0 <= v < 5 for v in row)

    def test_deterministic_with_seed(self):
        a = uniform_database({"e": 2}, 20, 10, random.Random(42))
        b = uniform_database({"e": 2}, 20, 10, random.Random(42))
        assert a.relation("e").tuples == b.relation("e").tuples


class TestSkewed:
    def test_skew_prefers_small_keys(self):
        rng = random.Random(2)
        db = skewed_database({"e": 1}, 500, 50, rng, skew=1.5)
        values = [row[0] for row in db.relation("e")]
        # With heavy skew, the generated distinct values concentrate low.
        assert min(values) == 0

    def test_rows_bounded(self):
        rng = random.Random(3)
        db = skewed_database({"e": 2}, 100, 10, rng)
        assert len(db.relation("e")) <= 100


class TestSchemaOf:
    def test_collects_arities(self):
        q = parse_query("q(X) :- e(X, Y), f(Y, X, X)")
        assert schema_of(q) == {"e": 2, "f": 3}

    def test_merges_multiple_queries(self):
        q1 = parse_query("q(X) :- e(X, Y)")
        q2 = parse_query("p(X) :- g(X)")
        assert schema_of(q1, q2) == {"e": 2, "g": 1}

    def test_skips_comparisons(self):
        q = parse_query("q(X) :- e(X, Y), X <= Y")
        assert schema_of(q) == {"e": 2}

    def test_inconsistent_arity_rejected(self):
        q1 = parse_query("q(X) :- e(X, Y)")
        q2 = parse_query("p(X) :- e(X)")
        with pytest.raises(ValueError):
            schema_of(q1, q2)
