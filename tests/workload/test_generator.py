"""Tests for the Section 7 workload generator."""

import pytest

from repro.core import core_cover
from repro.workload import WorkloadConfig, WorkloadError, generate_workload
from repro.workload.generator import workload_series


class TestGeneration:
    def test_rewritable_by_construction(self):
        config = WorkloadConfig(shape="star", num_views=40, seed=3)
        workload = generate_workload(config)
        assert core_cover(workload.query, workload.views).has_rewriting

    def test_deterministic_for_seed(self):
        config = WorkloadConfig(shape="star", num_views=30, seed=9)
        first = generate_workload(config)
        second = generate_workload(config)
        assert str(first.query) == str(second.query)
        assert [str(v) for v in first.views] == [str(v) for v in second.views]

    def test_different_seeds_differ(self):
        a = generate_workload(WorkloadConfig(shape="star", num_views=30, seed=1))
        b = generate_workload(WorkloadConfig(shape="star", num_views=30, seed=2))
        assert str(a.query) != str(b.query) or [str(v) for v in a.views] != [
            str(v) for v in b.views
        ]

    def test_view_count_respected(self):
        config = WorkloadConfig(shape="chain", num_relations=40, num_views=25)
        workload = generate_workload(config)
        assert len(workload.views) == 25

    def test_query_subgoals_respected(self):
        config = WorkloadConfig(
            shape="chain", num_relations=40, query_subgoals=5, num_views=30
        )
        workload = generate_workload(config)
        assert len(workload.query.body) == 5

    def test_chain_all_shapes_generate(self):
        for shape, nrel in [("star", 13), ("chain", 40), ("random", 8)]:
            config = WorkloadConfig(
                shape=shape, num_relations=nrel, num_views=60, seed=11
            )
            workload = generate_workload(config)
            assert core_cover(workload.query, workload.views).has_rewriting

    def test_nondistinguished_configs_generate(self):
        for shape, nrel in [("star", 13), ("chain", 40)]:
            config = WorkloadConfig(
                shape=shape,
                num_relations=nrel,
                num_views=80,
                nondistinguished=1,
                seed=4,
            )
            workload = generate_workload(config)
            assert core_cover(workload.query, workload.views).has_rewriting

    def test_unknown_shape_rejected(self):
        with pytest.raises(ValueError):
            generate_workload(WorkloadConfig(shape="lattice"))

    def test_unrewritable_configuration_raises(self):
        # One view over one relation cannot rewrite an 8-subgoal star
        # (satellites of uncovered relations are lost).
        config = WorkloadConfig(
            shape="star",
            num_relations=13,
            num_views=1,
            seed=0,
            max_attempts=3,
        )
        with pytest.raises(WorkloadError):
            generate_workload(config)

    def test_require_rewritable_false_skips_check(self):
        config = WorkloadConfig(
            shape="star", num_views=1, seed=0, require_rewritable=False
        )
        workload = generate_workload(config)
        assert len(workload.views) == 1


class TestSeries:
    def test_series_yields_distinct_workloads(self):
        config = WorkloadConfig(shape="star", num_views=30, seed=5)
        series = list(workload_series(config, 3))
        assert len(series) == 3
        queries = {str(w.query) for w in series}
        assert len(queries) >= 2  # overwhelmingly distinct
