"""Tests for the completion-based containment test with comparisons."""

import pytest

from repro.datalog import as_union, parse_query
from repro.extensions import (
    TooManyTermsError,
    completions,
    is_contained_with_comparisons,
    is_equivalent_with_comparisons,
)


class TestCompletions:
    def test_counts_ordered_partitions(self):
        # Two variables: {X=Y}, {X<Y}, {Y<X} = 3 completions.
        q = parse_query("q(X, Y) :- r(X, Y)")
        assert len(list(completions(q))) == 3

    def test_comparison_prunes_completions(self):
        q = parse_query("q(X, Y) :- r(X, Y), X < Y")
        ranks = list(completions(q))
        assert len(ranks) == 1
        from repro.datalog import Variable

        (only,) = ranks
        assert only[Variable("X")] < only[Variable("Y")]

    def test_le_allows_equality(self):
        q = parse_query("q(X, Y) :- r(X, Y), X <= Y")
        assert len(list(completions(q))) == 2

    def test_contradictory_comparisons_yield_nothing(self):
        q = parse_query("q(X, Y) :- r(X, Y), X < Y, Y < X")
        assert list(completions(q)) == []

    def test_too_many_terms_guard(self):
        body = ", ".join(f"r(X{i}, X{i + 1})" for i in range(8))
        q = parse_query(f"q(X0) :- {body}")
        with pytest.raises(TooManyTermsError):
            list(completions(q))


class TestContainment:
    def test_reduces_to_chandra_merlin_without_comparisons(self):
        specific = parse_query("q(X) :- e(X, X)")
        general = parse_query("q(X) :- e(X, Y)")
        assert is_contained_with_comparisons(specific, general)
        assert not is_contained_with_comparisons(general, specific)

    def test_comparison_tightens_containee(self):
        tight = parse_query("q(X, Y) :- r(X, Y), X < Y")
        loose = parse_query("q(X, Y) :- r(X, Y)")
        assert is_contained_with_comparisons(tight, loose)
        assert not is_contained_with_comparisons(loose, tight)

    def test_implied_comparison(self):
        # X < Y implies X <= Y.
        lt = parse_query("q(X, Y) :- r(X, Y), X < Y")
        le = parse_query("q(X, Y) :- r(X, Y), X <= Y")
        assert is_contained_with_comparisons(lt, le)
        assert not is_contained_with_comparisons(le, lt)

    def test_transitivity_of_order_is_understood(self):
        # X < Y and Y < Z imply X < Z — invisible to homomorphisms alone.
        inner = parse_query("q(X, Z) :- r(X, Y), r(Y, Z), X < Y, Y < Z")
        outer = parse_query("q(X, Z) :- r(X, U), r(V, Z), X < Z")
        assert is_contained_with_comparisons(inner, outer)

    def test_union_covers_dense_order(self):
        base = parse_query("q(U, W) :- r(U, W)")
        union = as_union(
            [
                parse_query("q(U, W) :- r(U, W), U <= W"),
                parse_query("q(U, W) :- r(U, W), W <= U"),
            ]
        )
        assert is_equivalent_with_comparisons(union, base)

    def test_strict_union_leaves_the_diagonal_uncovered(self):
        base = parse_query("q(U, W) :- r(U, W)")
        union = as_union(
            [
                parse_query("q(U, W) :- r(U, W), U < W"),
                parse_query("q(U, W) :- r(U, W), W < U"),
            ]
        )
        # U = W satisfies neither strict disjunct.
        assert is_contained_with_comparisons(union, base)
        assert not is_contained_with_comparisons(base, union)

    def test_constants_rejected(self):
        q1 = parse_query("q(X) :- r(X, 3)")
        q2 = parse_query("q(X) :- r(X, Y)")
        with pytest.raises(NotImplementedError):
            is_contained_with_comparisons(q1, q2)
