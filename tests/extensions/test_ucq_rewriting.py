"""Tests for UCQ rewritings: equivalence with comparisons, MCR."""

import pytest

from repro.containment import is_contained_in, is_equivalent_to
from repro.datalog import as_union, parse_query
from repro.extensions import (
    expand_union,
    is_equivalent_ucq_rewriting,
    maximally_contained_rewriting,
)
from repro.experiments.paper_examples import car_loc_part, section8_ucq
from repro.views import ViewCatalog, expand


class TestSection8Symbolic:
    """Symbolic (not just data-driven) verification of the P1/P2 example."""

    def test_union_rewriting_p1_is_equivalent(self):
        ex = section8_ucq()
        assert is_equivalent_ucq_rewriting(
            ex.union_rewriting, ex.query, ex.views
        )

    def test_single_rewriting_p2_is_equivalent(self):
        ex = section8_ucq()
        assert is_equivalent_ucq_rewriting(
            ex.single_rewriting, ex.query, ex.views
        )

    def test_single_disjunct_of_p1_is_not_equivalent(self):
        ex = section8_ucq()
        assert not is_equivalent_ucq_rewriting(
            ex.union_rewriting[0], ex.query, ex.views
        )

    def test_expand_union_expands_each_disjunct(self):
        ex = section8_ucq()
        expansion = expand_union(ex.union_rewriting, ex.views)
        assert len(expansion) == 2
        for disjunct in expansion.disjuncts:
            assert any(atom.is_comparison for atom in disjunct.body)


class TestMaximallyContained:
    def test_equivalent_rewriting_dominates(self):
        q = parse_query("q(X, Y) :- e(X, Z), f(Z, Y)")
        views = ViewCatalog(
            ["v1(X, Y) :- e(X, C), f(C, Y)", "v2(X, Z) :- e(X, Z)"]
        )
        mcr = maximally_contained_rewriting(q, views)
        assert mcr is not None
        assert len(mcr) == 1
        assert is_equivalent_to(expand(mcr.disjuncts[0], views), q)

    def test_strictly_weaker_views_yield_contained_union(self):
        q = parse_query("q(X, Y) :- e(X, Y)")
        views = ViewCatalog(
            [
                "v1(X) :- e(X, X)",  # loses Y: unusable (Y distinguished)
                "v2(X, Y) :- e(X, Y), g(Y)",  # only g-marked targets
            ]
        )
        mcr = maximally_contained_rewriting(q, views)
        assert mcr is not None
        for disjunct in mcr.disjuncts:
            assert is_contained_in(expand(disjunct, views), q)
            assert not is_equivalent_to(expand(disjunct, views), q)

    def test_no_rewriting_returns_none(self):
        q = parse_query("q(X, Y) :- e(X, Y)")
        views = ViewCatalog(["v(A) :- f(A, A)"])
        assert maximally_contained_rewriting(q, views) is None

    def test_redundant_disjuncts_pruned(self):
        clp = car_loc_part()
        mcr = maximally_contained_rewriting(clp.query, clp.views)
        assert mcr is not None
        # No disjunct's expansion is contained in another's.
        expansions = [expand(d, clp.views) for d in mcr.disjuncts]
        for i, left in enumerate(expansions):
            for j, right in enumerate(expansions):
                if i != j:
                    assert not is_contained_in(left, right)

    def test_car_loc_part_mcr_is_equivalent_to_query(self):
        clp = car_loc_part()
        mcr = maximally_contained_rewriting(clp.query, clp.views)
        # The query is rewritable, so the MCR collapses to equivalents.
        assert all(
            is_equivalent_to(expand(d, clp.views), clp.query)
            for d in mcr.disjuncts
        )
