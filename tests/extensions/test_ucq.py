"""Tests for the Section 8 extension: built-in predicates and UCQ rewritings.

The paper's closing example: with a view carrying ``C <= D``, the query
``q(X,Y,U,W) :- p(X,Y), r(U,W), r(W,U)`` has a rewriting that is a union
of two conjunctive queries (P1) and a single-CQ rewriting with one more
subgoal (P2).  We verify both compute the query's answer on concrete data
— the engine supports comparisons even though symbolic containment for
them is out of scope (as in the paper, which leaves it as future work).
"""

import random

import pytest

from repro.datalog import as_union
from repro.engine import Database, evaluate, materialize_views
from repro.experiments.paper_examples import section8_ucq


@pytest.fixture(scope="module")
def ex():
    return section8_ucq()


def random_base(seed, size=25, domain=6):
    rng = random.Random(seed)
    db = Database()
    db.ensure_relation("p", 2)
    db.ensure_relation("r", 2)
    for _ in range(size):
        db.add_fact("p", (rng.randrange(domain), rng.randrange(domain)))
        db.add_fact("r", (rng.randrange(domain), rng.randrange(domain)))
    return db


def evaluate_union(disjuncts, database):
    answer = frozenset()
    for disjunct in disjuncts:
        answer |= evaluate(disjunct, database)
    return answer


class TestSection8Example:
    @pytest.mark.parametrize("seed", [0, 1, 2, 3])
    def test_union_rewriting_computes_answer(self, ex, seed):
        base = random_base(seed)
        vdb = materialize_views(ex.views, base)
        expected = evaluate(ex.query, base)
        assert evaluate_union(ex.union_rewriting, vdb) == expected

    @pytest.mark.parametrize("seed", [0, 1, 2, 3])
    def test_single_cq_rewriting_computes_answer(self, ex, seed):
        base = random_base(seed)
        vdb = materialize_views(ex.views, base)
        expected = evaluate(ex.query, base)
        assert evaluate(ex.single_rewriting, vdb) == expected

    def test_v1_materialization_respects_inequality(self, ex):
        base = Database.from_dict({"p": [(0, 0)], "r": [(1, 2), (2, 1)]})
        vdb = materialize_views(ex.views, base)
        assert vdb.relation("v1").tuples == {(0, 0, 1, 2)}

    def test_tradeoff_counts(self, ex):
        """P1 uses fewer subgoals per disjunct; P2 fewer disjuncts."""
        union = as_union(ex.union_rewriting)
        assert len(union) == 2
        assert all(len(q.body) == 2 for q in union.disjuncts)
        assert len(ex.single_rewriting.body) == 3

    def test_union_needed_when_r_asymmetric(self, ex):
        # A base where only the (U <= W) orientation is in v1 shows why
        # P1 needs both disjuncts.
        base = Database.from_dict({"p": [(9, 9)], "r": [(3, 5), (5, 3)]})
        vdb = materialize_views(ex.views, base)
        expected = evaluate(ex.query, base)
        assert (9, 9, 5, 3) in expected and (9, 9, 3, 5) in expected
        first_only = evaluate(ex.union_rewriting[0], vdb)
        assert first_only != expected  # one disjunct is not enough
        assert evaluate_union(ex.union_rewriting, vdb) == expected
