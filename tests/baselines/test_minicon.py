"""Tests for the MiniCon baseline and the Section 4.3 comparison."""

import pytest

from repro.baselines import form_mcds, minicon
from repro.core import core_cover
from repro.datalog import parse_query
from repro.experiments.paper_examples import car_loc_part, example_42
from repro.views import ViewCatalog, is_equivalent_rewriting


class TestMcdFormation:
    def test_mcds_cover_pairs_in_example_42(self):
        ex = example_42(3)
        mcds = form_mcds(ex.query, ex.views)
        v_mcds = [m for m in mcds if m.view.name == "v"]
        # One MCD per a_i/b_i pair, as the paper describes.
        assert sorted(tuple(sorted(m.covered)) for m in v_mcds) == [
            (0, 1), (2, 3), (4, 5),
        ]

    def test_distinguished_variable_blocks_mcd(self):
        q = parse_query("q(X, Y) :- e(X, Y)")
        views = ViewCatalog(["v(A) :- e(A, B)"])  # B existential
        assert form_mcds(q, views) == []

    def test_existential_closure_enforced(self):
        q = parse_query("q(X, Y) :- e(X, Z), f(Z, Y)")
        views = ViewCatalog(["v(A, B) :- e(A, C), f(C, B)"])
        mcds = form_mcds(q, views)
        assert len(mcds) == 1
        assert mcds[0].covered == {0, 1}

    def test_closure_failure_yields_no_mcd(self):
        q = parse_query("q(X, Y) :- e(X, Z), f(Z, Y)")
        views = ViewCatalog(["v(A) :- e(A, C)"])
        assert form_mcds(q, views) == []

    def test_constant_in_query_meets_head_variable(self):
        q = parse_query("q(X) :- e(X, a)")
        views = ViewCatalog(["v(A, B) :- e(A, B)"])
        mcds = form_mcds(q, views)
        assert len(mcds) == 1
        assert str(mcds[0].literal) == "v(X, a)"


class TestExample42Comparison:
    """Section 4.3: MiniCon produces redundant rewritings, CoreCover not."""

    def test_minicon_produces_redundant_combinations(self):
        ex = example_42(3)
        result = minicon(ex.query, ex.views)
        sizes = sorted(len(r.body) for r in result.contained_rewritings)
        assert sizes[0] == 1  # the good rewriting q :- v(X, Y)
        assert sizes[-1] > 1  # plus redundant combinations

    def test_corecover_produces_only_the_gmr(self):
        ex = example_42(3)
        result = core_cover(ex.query, ex.views)
        assert [len(r.body) for r in result.rewritings] == [1]

    def test_minicon_redundant_rewritings_still_equivalent(self):
        """Closed world: the redundant combinations compute the answer too."""
        ex = example_42(2)
        result = minicon(ex.query, ex.views)
        for rewriting in result.contained_rewritings:
            assert is_equivalent_rewriting(rewriting, ex.query, ex.views)


class TestMiniConGeneral:
    def test_car_loc_part_equivalents_found_but_never_p4(self):
        """MiniCon's minimal MCDs cannot merge into one v4 literal.

        Every MCD covers a minimal closed subgoal set, so the combination
        step emits one literal per MCD: MiniCon finds 3-subgoal equivalent
        rewritings (e.g. three v4 literals) but never the 1-subgoal GMR P4
        — the Section 4.3 criticism CoreCover addresses.
        """
        clp = car_loc_part()
        result = minicon(clp.query, clp.views, require_equivalent=True)
        assert result.contained_rewritings
        sizes = {len(r.body) for r in result.contained_rewritings}
        assert min(sizes) == 3
        rendered = {r.canonical_form() for r in result.contained_rewritings}
        assert clp.p4.canonical_form() not in rendered

    def test_contained_rewritings_are_contained(self):
        clp = car_loc_part()
        from repro.views import is_contained_rewriting

        result = minicon(clp.query, clp.views)
        for rewriting in result.contained_rewritings:
            assert is_contained_rewriting(rewriting, clp.query, clp.views)

    def test_no_views_no_rewritings(self):
        q = parse_query("q(X) :- e(X, X)")
        result = minicon(q, ViewCatalog([]))
        assert result.contained_rewritings == ()

    def test_max_rewritings_cap(self):
        ex = example_42(4)
        result = minicon(ex.query, ex.views, max_rewritings=2)
        assert len(result.contained_rewritings) <= 2
