"""Tests for the Bucket algorithm baseline."""

from repro.baselines import bucket_algorithm, build_buckets
from repro.core import core_cover
from repro.datalog import parse_query
from repro.experiments.paper_examples import car_loc_part
from repro.views import ViewCatalog, is_equivalent_rewriting


class TestBuckets:
    def test_buckets_built_per_subgoal(self):
        clp = car_loc_part()
        buckets = build_buckets(clp.query, clp.views)
        assert len(buckets) == 3
        # The car(M, a) subgoal can come from v1, v3, v4, v5 (all contain
        # car), but not v2.
        names = {lit.predicate for lit in buckets[0].literals}
        assert "v2" not in names
        assert {"v1", "v4", "v5"} <= names

    def test_distinguished_variable_restriction(self):
        q = parse_query("q(X, Y) :- e(X, Y)")
        views = ViewCatalog(["v(A) :- e(A, B)"])  # Y would be lost
        buckets = build_buckets(q, views)
        assert buckets[0].literals == ()

    def test_empty_bucket_short_circuits(self):
        q = parse_query("q(X) :- e(X, X), g(X)")
        views = ViewCatalog(["v(A) :- e(A, A)"])  # nothing supplies g
        result = bucket_algorithm(q, views)
        assert result.combinations_tried == 0
        assert result.contained_rewritings == ()


class TestRewritings:
    def test_finds_equivalent_rewritings_on_car_loc_part(self):
        clp = car_loc_part()
        result = bucket_algorithm(clp.query, clp.views)
        assert result.equivalent_rewritings
        for rewriting in result.equivalent_rewritings:
            assert is_equivalent_rewriting(rewriting, clp.query, clp.views)

    def test_bucket_minimum_never_beats_corecover(self):
        """One literal per bucket: the 1-subgoal GMR P4 is out of reach.

        The bucket algorithm instantiates a fresh literal per subgoal, so
        its best car-loc-part rewriting has 3 subgoals while CoreCover's
        GMR has 1 — the classic weakness the later algorithms fix.
        """
        clp = car_loc_part()
        bucket = bucket_algorithm(clp.query, clp.views)
        clever = core_cover(clp.query, clp.views)
        bucket_minimum = min(len(r.body) for r in bucket.equivalent_rewritings)
        assert bucket_minimum == 3
        assert bucket_minimum > clever.minimum_subgoals()

    def test_combinations_capped(self):
        clp = car_loc_part()
        result = bucket_algorithm(clp.query, clp.views, max_combinations=2)
        assert result.combinations_tried <= 3  # cap + the breaking probe

    def test_duplicate_literals_merged(self):
        # Identical duplicate subgoals fill identical buckets, and the
        # combination deduplicates the repeated literal.
        q = parse_query("q(X, Y) :- e(X, Y), e(X, Y)")
        views = ViewCatalog(["v(A, B) :- e(A, B)"])
        result = bucket_algorithm(q, views)
        assert any(len(r.body) == 1 for r in result.equivalent_rewritings)
