"""Tests for the inverse-rules algorithm."""

import random

import pytest

from repro.baselines import (
    SkolemValue,
    certain_answers,
    contains_skolem,
    derive_base_facts,
    invert_views,
)
from repro.datalog import parse_query
from repro.engine import Database, evaluate, materialize_views
from repro.experiments.paper_examples import car_loc_part, car_loc_part_database
from repro.views import ViewCatalog
from repro.workload import (
    WorkloadConfig,
    generate_workload,
    schema_of,
    uniform_database,
)


class TestInversion:
    def test_one_rule_per_body_subgoal(self):
        views = ViewCatalog(["v(X, Y) :- e(X, Z), f(Z, Y)"])
        rules = invert_views(views)
        assert [r.head.predicate for r in rules] == ["e", "f"]

    def test_comparisons_not_inverted(self):
        views = ViewCatalog(["v(X, Y) :- e(X, Y), X <= Y"])
        rules = invert_views(views)
        assert [r.head.predicate for r in rules] == ["e"]

    def test_rendering(self):
        views = ViewCatalog(["v(X) :- e(X, Z)"])
        (rule,) = invert_views(views)
        assert str(rule) == "e(X, Z) :- v(X)"


class TestDerivation:
    def test_existential_becomes_skolem(self):
        views = ViewCatalog(["v(X) :- e(X, Z)"])
        view_db = Database.from_dict({"v": [(1,), (2,)]})
        base = derive_base_facts(invert_views(views), view_db)
        rows = sorted(base.relation("e"), key=str)
        assert len(rows) == 2
        for row in rows:
            assert isinstance(row[1], SkolemValue)
            assert row[1].view == "v"

    def test_same_view_tuple_shares_skolems_across_rules(self):
        # Z is shared by both subgoals: the derived e and f facts must
        # carry the *same* Skolem value so the join still succeeds.
        views = ViewCatalog(["v(X, Y) :- e(X, Z), f(Z, Y)"])
        view_db = Database.from_dict({"v": [(1, 9)]})
        base = derive_base_facts(invert_views(views), view_db)
        (e_row,) = base.relation("e")
        (f_row,) = base.relation("f")
        assert e_row[1] == f_row[0]

    def test_distinct_view_tuples_get_distinct_skolems(self):
        views = ViewCatalog(["v(X) :- e(X, Z)"])
        view_db = Database.from_dict({"v": [(1,), (2,)]})
        base = derive_base_facts(invert_views(views), view_db)
        skolems = {row[1] for row in base.relation("e")}
        assert len(skolems) == 2

    def test_constants_in_view_body_pass_through(self):
        views = ViewCatalog(["v(X) :- e(X, a)"])
        view_db = Database.from_dict({"v": [(1,)]})
        base = derive_base_facts(invert_views(views), view_db)
        assert (1, "a") in base.relation("e")

    def test_missing_view_relation_skipped(self):
        views = ViewCatalog(["v(X) :- e(X, X)"])
        base = derive_base_facts(invert_views(views), Database())
        assert not base.has_relation("e")


class TestCertainAnswers:
    def test_skolem_free_answers_only(self):
        query = parse_query("q(X, Y) :- e(X, Y)")
        views = ViewCatalog(["v(X) :- e(X, Z)"])
        view_db = Database.from_dict({"v": [(1,)]})
        assert certain_answers(query, views, view_db) == frozenset()

    def test_join_through_skolems(self):
        # Certain answer via a Skolem join: v stores endpoints of e;f path.
        query = parse_query("q(X, Y) :- e(X, Z), f(Z, Y)")
        views = ViewCatalog(["v(X, Y) :- e(X, Z), f(Z, Y)"])
        view_db = Database.from_dict({"v": [(1, 9)]})
        assert certain_answers(query, views, view_db) == {(1, 9)}

    def test_car_loc_part_matches_query_answer(self):
        clp = car_loc_part()
        base = car_loc_part_database()
        view_db = materialize_views(clp.views, base)
        assert certain_answers(clp.query, clp.views, view_db) == evaluate(
            clp.query, base
        )

    @pytest.mark.parametrize("seed", [1, 2])
    def test_matches_query_answer_when_rewritable(self, seed):
        """Closed world + equivalent rewriting exists => certain answers
        equal the query's answer on the real base data."""
        workload = generate_workload(
            WorkloadConfig(
                shape="star",
                num_relations=8,
                query_subgoals=4,
                num_views=25,
                seed=seed,
            )
        )
        schema = schema_of(workload.query, *workload.views.definitions())
        base = uniform_database(schema, 40, 6, random.Random(seed))
        view_db = materialize_views(workload.views, base)
        assert certain_answers(
            workload.query, workload.views, view_db
        ) == evaluate(workload.query, base)

    def test_certain_answers_sound_without_rewriting(self):
        """Without an equivalent rewriting, certain ⊆ actual answers."""
        query = parse_query("q(X, Y) :- e(X, Y), g(Y)")
        views = ViewCatalog(["v(X, Y) :- e(X, Y)"])  # g is unavailable
        base = Database.from_dict({"e": [(1, 2)], "g": [(2,)]})
        view_db = materialize_views(views, base)
        certain = certain_answers(query, views, view_db)
        assert certain <= evaluate(query, base)
        assert certain == frozenset()  # g can never be derived

    def test_contains_skolem_helper(self):
        assert contains_skolem((1, SkolemValue("v", "Z", (1,))))
        assert not contains_skolem((1, 2, "a"))
