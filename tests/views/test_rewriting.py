"""Tests for equivalent rewritings and the Section 3 minimality notions."""

import pytest

from repro.containment import is_equivalent_to
from repro.datalog import parse_query
from repro.experiments.paper_examples import car_loc_part
from repro.views import (
    ViewCatalog,
    enumerate_lmrs_within,
    expand,
    is_contained_rewriting,
    is_equivalent_rewriting,
    is_locally_minimal,
    is_minimal_as_query,
    locally_minimize,
    subgoal_count,
)


@pytest.fixture(scope="module")
def clp():
    return car_loc_part()


class TestEquivalentRewriting:
    def test_all_paper_rewritings_are_equivalent(self, clp):
        for p in (clp.p1, clp.p2, clp.p3, clp.p4, clp.p5):
            assert is_equivalent_rewriting(p, clp.query, clp.views)

    def test_rewritings_not_equivalent_as_queries(self, clp):
        """P1 ≡ P2 as expansions but NOT as queries (Section 2.1)."""
        assert is_equivalent_to(
            expand(clp.p1, clp.views), expand(clp.p2, clp.views)
        )
        assert not is_equivalent_to(clp.p1, clp.p2)

    def test_non_rewriting_detected(self, clp):
        bad = parse_query("q1(S, C) :- v2(S, M, C)")
        assert not is_equivalent_rewriting(bad, clp.query, clp.views)
        assert not is_contained_rewriting(bad, clp.query, clp.views)

    def test_contained_but_not_equivalent(self, clp):
        # Asking for an extra join with v3 keeps containment; adding an
        # unrelated restriction on the head vars does not break
        # containment either, so craft a strictly-contained rewriting:
        narrowed = parse_query("q1(S, C) :- v4(M, a, C, S), v3(S), v1(M, a, c9)")
        assert is_contained_rewriting(narrowed, clp.query, clp.views)
        assert not is_equivalent_rewriting(narrowed, clp.query, clp.views)


class TestMinimality:
    def test_p3_minimal_as_query_but_not_lmr(self, clp):
        """P3 is a minimal rewriting but not locally minimal (Section 3.1)."""
        assert is_minimal_as_query(clp.p3)
        assert not is_locally_minimal(clp.p3, clp.query, clp.views)

    def test_p1_and_p2_are_lmrs(self, clp):
        assert is_locally_minimal(clp.p1, clp.query, clp.views)
        assert is_locally_minimal(clp.p2, clp.query, clp.views)

    def test_p4_is_lmr(self, clp):
        assert is_locally_minimal(clp.p4, clp.query, clp.views)

    def test_locally_minimize_p3_reaches_p2(self, clp):
        lmr = locally_minimize(clp.p3, clp.query, clp.views)
        assert subgoal_count(lmr) == 2
        assert is_equivalent_to(lmr, clp.p2)

    def test_locally_minimize_keeps_lmr_fixed(self, clp):
        assert locally_minimize(clp.p2, clp.query, clp.views) == clp.p2

    def test_enumerate_lmrs_within_p3(self, clp):
        lmrs = list(enumerate_lmrs_within(clp.p3, clp.query, clp.views))
        assert len(lmrs) == 1
        assert is_equivalent_to(lmrs[0], clp.p2)

    def test_enumerate_lmrs_multiple(self, clp):
        combined = parse_query(
            "q1(S, C) :- v4(M, a, C, S), v1(M2, a, C), v2(S, M2, C)"
        )
        lmrs = list(enumerate_lmrs_within(combined, clp.query, clp.views))
        sizes = sorted(subgoal_count(p) for p in lmrs)
        assert sizes == [1, 2]

    def test_subgoal_count(self, clp):
        assert subgoal_count(clp.p1) == 3
        assert subgoal_count(clp.p4) == 1
