"""Tests for rewriting expansion (view unfolding, Definition 2.2)."""

from repro.containment import is_equivalent_to
from repro.datalog import parse_query
from repro.views import ViewCatalog, expand


CATALOG = ViewCatalog(
    [
        "v1(M, D, C) :- car(M, D), loc(D, C)",
        "v2(S, M, C) :- part(S, M, C)",
        "v3(S) :- car(M, a), loc(a, C), part(S, M, C)",
    ]
)


class TestExpansion:
    def test_simple_unfolding(self):
        p = parse_query("q1(S, C) :- v1(M, a, C), v2(S, M, C)")
        expected = parse_query(
            "q1(S, C) :- car(M, a), loc(a, C), part(S, M, C)"
        )
        assert is_equivalent_to(expand(p, CATALOG), expected)

    def test_expansion_substitutes_head_arguments(self):
        p = parse_query("q(C) :- v1(m1, a, C)")
        expansion = expand(p, CATALOG)
        assert str(expansion.body[0]) == "car(m1, a)"
        assert str(expansion.body[1]) == "loc(a, C)"

    def test_existential_variables_freshened(self):
        p = parse_query("q(S) :- v3(S)")
        expansion = expand(p, CATALOG)
        # M and C from v3's definition must not leak verbatim when they
        # could collide; here they may appear, but they must not be
        # distinguished.
        assert expansion.head == p.head
        assert len(expansion.body) == 3

    def test_repeated_view_occurrences_standardized_apart(self):
        p = parse_query("q(S, S2) :- v3(S), v3(S2)")
        expansion = expand(p, CATALOG)
        # Each v3 occurrence introduces its own fresh copies of M and C:
        # 6 atoms, and the two copies share no existential variables.
        assert len(expansion.body) == 6
        first_vars = set()
        for atom in expansion.body[:3]:
            first_vars |= atom.variable_set()
        second_vars = set()
        for atom in expansion.body[3:]:
            second_vars |= atom.variable_set()
        shared = (first_vars & second_vars) - expansion.distinguished_variables()
        assert not shared

    def test_fresh_variables_avoid_rewriting_variables(self):
        # The rewriting already uses names like M and C; expansion must not
        # capture them.
        p = parse_query("q(S, M, C) :- v3(S), v2(S, M, C)")
        expansion = expand(p, CATALOG)
        expected = parse_query(
            "q(S, M, C) :- car(M2, a), loc(a, C2), part(S, M2, C2), part(S, M, C)"
        )
        assert is_equivalent_to(expansion, expected)

    def test_non_view_predicates_pass_through(self):
        p = parse_query("q(S, M, C) :- v2(S, M, C), extra(S)")
        expansion = expand(p, CATALOG)
        assert str(expansion.body[1]) == "extra(S)"

    def test_comparison_atoms_pass_through(self):
        p = parse_query("q(S, M, C) :- v2(S, M, C), S != M")
        expansion = expand(p, CATALOG)
        assert expansion.body[1].is_comparison

    def test_paper_p1_expansion(self):
        """P1's expansion from Section 2.1 of the paper."""
        p1 = parse_query(
            "q1(S, C) :- v1(M, a, C1), v1(M1, a, C), v2(S, M, C)"
        )
        expected = parse_query(
            "q1(S, C) :- car(M, a), loc(a, C1), car(M1, a), loc(a, C), "
            "part(S, M, C)"
        )
        assert is_equivalent_to(expand(p1, CATALOG), expected)
