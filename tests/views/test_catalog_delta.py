"""The indexed, versioned catalog: deltas, the index, and chaos safety.

The contract under test: every mutation is one copy-on-write delta —
version bumps monotonically, the content root tracks exactly the set of
rendered definitions, the predicate index answers relevance queries
identically to a from-scratch rebuild, and a fault injected mid-delta
(the ``catalog_delta`` point) leaves the catalog on the **old**
consistent version with no torn index.
"""

import pytest

from repro.errors import DuplicateViewError, UnknownViewError
from repro.testing.faults import RaiseFault, inject
from repro.views import CatalogDelta, ViewCatalog, as_view, view_content_hash


@pytest.fixture()
def catalog():
    return ViewCatalog(
        [
            "v1(A, B) :- a(A, B)",
            "v2(A, B) :- b(A, B), a(B, B)",
            "v3(A) :- c(A, A)",
        ]
    )


class TestVersioning:
    def test_version_bumps_once_per_mutation(self, catalog):
        start = catalog.version
        catalog.add("v4(A) :- d(A, A)")
        catalog.remove_view("v4")
        catalog.replace_view(as_view("v3(A) :- d(A, A)"))
        assert catalog.version == start + 3

    def test_delta_reports_versions_roots_and_members(self, catalog):
        old_root = catalog.content_root()
        delta = catalog.add_view(as_view("v4(A) :- d(A, A)"))
        assert isinstance(delta, CatalogDelta)
        assert delta.old_version + 1 == delta.new_version == catalog.version
        assert delta.old_root == old_root
        assert delta.new_root == catalog.content_root() != old_root
        assert [v.name for v in delta.added] == ["v4"]
        assert delta.removed == ()

    def test_replace_is_one_delta(self, catalog):
        start = catalog.version
        delta = catalog.replace_view(as_view("v1(A, B) :- d(A, B)"))
        assert catalog.version == start + 1
        assert [v.name for v in delta.added] == ["v1"]
        assert [v.name for v in delta.removed] == ["v1"]
        assert delta.removed[0].definition != delta.added[0].definition

    def test_content_root_is_order_independent(self):
        texts = ["v1(A) :- a(A, A)", "v2(A) :- b(A, A)"]
        forward = ViewCatalog(texts)
        backward = ViewCatalog(list(reversed(texts)))
        assert forward.content_root() == backward.content_root()

    def test_root_round_trips_through_remove(self, catalog):
        root = catalog.content_root()
        catalog.add("v4(A) :- d(A, A)")
        catalog.remove_view("v4")
        assert catalog.content_root() == root

    def test_hashes_are_per_view_content(self, catalog):
        hashes = catalog.view_hashes()
        assert set(hashes) == {"v1", "v2", "v3"}
        assert hashes["v1"] == view_content_hash(catalog.get("v1"))


class TestIndex:
    def test_matches_from_scratch_rebuild(self, catalog):
        catalog.add("v4(A) :- a(A, A), c(A, A)")
        catalog.remove_view("v2")
        catalog.replace_view(as_view("v3(A) :- b(A, A)"))
        rebuilt = ViewCatalog(list(catalog))
        assert catalog.indexed_predicates() == rebuilt.indexed_predicates()
        for pair in catalog.indexed_predicates():
            assert [
                v.name for v in catalog.views_for_predicates([pair])
            ] == [v.name for v in rebuilt.views_for_predicates([pair])]

    def test_no_shared_predicate_prunes_to_nothing(self):
        from repro import parse_query

        catalog = ViewCatalog(["v1(A) :- a(A, A)"])
        query = parse_query("q(X) :- b(X, X)")
        assert catalog.relevant_names(query) == ()
        assert ("a", 2) in catalog.indexed_predicates()

    def test_comparison_atoms_stay_out_of_the_index(self):
        catalog = ViewCatalog(["v1(A, B) :- a(A, B), A < B"])
        assert catalog.indexed_predicates() == frozenset({("a", 2)})


class TestChaosSafety:
    def test_fault_mid_add_leaves_old_version(self, catalog):
        version = catalog.version
        root = catalog.content_root()
        names = catalog.names()
        index = {
            pair: tuple(
                v.name for v in catalog.views_for_predicates([pair])
            )
            for pair in catalog.indexed_predicates()
        }
        with inject(RaiseFault("catalog_delta")):
            with pytest.raises(RuntimeError):
                catalog.add("v4(A) :- a(A, A)")
        # The mutation never happened: no torn index, no half-bump.
        assert catalog.version == version
        assert catalog.content_root() == root
        assert catalog.names() == names
        assert "v4" not in catalog
        assert {
            pair: tuple(
                v.name for v in catalog.views_for_predicates([pair])
            )
            for pair in catalog.indexed_predicates()
        } == index

    def test_fault_mid_remove_keeps_the_view(self, catalog):
        version = catalog.version
        with inject(RaiseFault("catalog_delta")):
            with pytest.raises(RuntimeError):
                catalog.remove_view("v1")
        assert "v1" in catalog and catalog.version == version
        # The index still routes a-queries through v1.
        assert "v1" in {
            v.name for v in catalog.views_for_predicates([("a", 2)])
        }

    def test_fault_mid_replace_keeps_old_definition(self, catalog):
        old = catalog.get("v1")
        with inject(RaiseFault("catalog_delta")):
            with pytest.raises(RuntimeError):
                catalog.replace_view(as_view("v1(A, B) :- d(A, B)"))
        assert catalog.get("v1") is old
        assert ("d", 2) not in catalog.indexed_predicates()

    def test_catalog_usable_after_fault(self, catalog):
        """After an aborted delta the next mutation commits normally and
        lands on the same state a never-faulted catalog reaches."""
        with inject(RaiseFault("catalog_delta")):
            with pytest.raises(RuntimeError):
                catalog.add("v4(A) :- d(A, A)")
        delta = catalog.add_view(as_view("v4(A) :- d(A, A)"))
        assert delta.old_version + 1 == catalog.version
        pristine = ViewCatalog(list(catalog))
        assert pristine.content_root() == catalog.content_root()

    def test_duplicate_and_unknown_raise_before_any_state_change(
        self, catalog
    ):
        version = catalog.version
        with pytest.raises(DuplicateViewError):
            catalog.add("v1(A) :- a(A, A)")
        with pytest.raises(UnknownViewError):
            catalog.remove_view("nope")
        assert catalog.version == version
