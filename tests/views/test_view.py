"""Tests for view definitions and catalogs."""

import pytest

from repro.datalog import MalformedQueryError, Variable, parse_query
from repro.views import View, ViewCatalog, as_view


class TestView:
    def test_basic_properties(self):
        view = as_view("v1(M, D, C) :- car(M, D), loc(D, C)")
        assert view.name == "v1"
        assert view.arity == 3
        assert view.head_variables == (
            Variable("M"), Variable("D"), Variable("C"),
        )
        assert view.existential_variables() == frozenset()

    def test_existential_variables(self):
        view = as_view("v3(S) :- car(M, a), loc(a, C), part(S, M, C)")
        assert view.existential_variables() == {Variable("M"), Variable("C")}

    def test_rejects_unsafe_definition(self):
        with pytest.raises(MalformedQueryError):
            as_view("v(X, Y) :- e(X, X)")

    def test_rejects_constant_in_head(self):
        with pytest.raises(MalformedQueryError):
            View(parse_query("v(X, a) :- e(X, a)"))

    def test_rejects_repeated_head_variable(self):
        with pytest.raises(MalformedQueryError):
            View(parse_query("v(X, X) :- e(X, X)"))


class TestViewCatalog:
    def test_accepts_strings_queries_and_views(self):
        catalog = ViewCatalog(
            [
                "v1(X) :- e(X, Y)",
                parse_query("v2(X) :- f(X, X)"),
                as_view("v3(X, Y) :- e(X, Y)"),
            ]
        )
        assert catalog.names() == ("v1", "v2", "v3")

    def test_duplicate_names_rejected(self):
        with pytest.raises(ValueError):
            ViewCatalog(["v(X) :- e(X, X)", "v(Y) :- f(Y, Y)"])

    def test_contains_and_get(self):
        catalog = ViewCatalog(["v(X) :- e(X, X)"])
        assert "v" in catalog
        assert "w" not in catalog
        assert catalog.get("v").arity == 1

    def test_definitions_order(self):
        catalog = ViewCatalog(["b(X) :- e(X, X)", "a(X) :- f(X, X)"])
        assert [d.name for d in catalog.definitions()] == ["b", "a"]

    def test_len_and_iter(self):
        catalog = ViewCatalog(["v1(X) :- e(X, X)", "v2(X) :- f(X, X)"])
        assert len(catalog) == 2
        assert {v.name for v in catalog} == {"v1", "v2"}
