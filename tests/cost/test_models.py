"""Tests for the Table 1 cost models."""

import pytest

from repro.cost import PhysicalPlan, cost_m1, cost_m2, cost_m3, execute_plan
from repro.datalog import parse_query
from repro.engine import Database


VDB = Database.from_dict(
    {
        "v1": [(1, 2), (1, 4), (2, 2)],
        "v2": [(1, 2), (3, 4)],
    }
)


class TestM1:
    def test_counts_subgoals_of_plan(self):
        p = parse_query("q(A) :- v1(A, B), v2(A, C)")
        assert cost_m1(PhysicalPlan.from_rewriting(p)) == 2

    def test_counts_subgoals_of_rewriting(self):
        assert cost_m1(parse_query("q(A) :- v1(A, B)")) == 1


class TestM2:
    def test_sum_of_subgoal_and_intermediate_sizes(self):
        p = parse_query("q(A) :- v1(A, B), v2(A, C)")
        execution = execute_plan(PhysicalPlan.from_rewriting(p), VDB)
        # size(v1)=3 + size(IR1)=3 + size(v2)=2 + size(IR2)=2.
        assert cost_m2(execution) == 10

    def test_rejects_annotated_plans(self):
        p = parse_query("q(A) :- v1(A, B), v2(A, C)")
        from repro.datalog import Variable

        plan = PhysicalPlan.from_rewriting(
            p, drops=[{Variable("B")}, frozenset()]
        )
        execution = execute_plan(plan, VDB)
        with pytest.raises(ValueError):
            cost_m2(execution)


class TestM3:
    def test_sum_with_gsr_sizes(self):
        from repro.datalog import Variable

        p = parse_query("q(A) :- v1(A, B), v2(A, C)")
        plan = PhysicalPlan.from_rewriting(
            p, drops=[{Variable("B")}, {Variable("C")}]
        )
        execution = execute_plan(plan, VDB)
        # size(v1)=3 + GSR1={1,2}=2 + size(v2)=2 + GSR2={1}=1.
        assert cost_m3(execution) == 8

    def test_m3_on_unannotated_plan_equals_m2(self):
        p = parse_query("q(A) :- v1(A, B), v2(A, C)")
        execution = execute_plan(PhysicalPlan.from_rewriting(p), VDB)
        assert cost_m3(execution) == cost_m2(execution)

    def test_dropping_never_increases_cost_for_same_order(self):
        from repro.cost import supplementary_plan

        p = parse_query("q(A) :- v1(A, B), v2(A, C)")
        bare = execute_plan(PhysicalPlan.from_rewriting(p), VDB)
        dropped = execute_plan(supplementary_plan(p), VDB)
        assert cost_m3(dropped) <= cost_m2(bare)
