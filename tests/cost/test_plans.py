"""Tests for physical plans and drop annotations."""

import pytest

from repro.cost import PhysicalPlan, PlanStep
from repro.datalog import Variable, parse_atom, parse_query


A, B, C = Variable("A"), Variable("B"), Variable("C")


class TestConstruction:
    def test_from_rewriting_default_order(self):
        p = parse_query("q(A) :- v1(A, B), v2(A, C)")
        plan = PhysicalPlan.from_rewriting(p)
        assert [str(step.atom) for step in plan.steps] == [
            "v1(A, B)", "v2(A, C)",
        ]

    def test_from_rewriting_custom_order(self):
        p = parse_query("q(A) :- v1(A, B), v2(A, C)")
        plan = PhysicalPlan.from_rewriting(p, order=[1, 0])
        assert plan.atoms[0].predicate == "v2"

    def test_rejects_non_permutation(self):
        p = parse_query("q(A) :- v1(A, B), v2(A, C)")
        with pytest.raises(ValueError):
            PhysicalPlan.from_rewriting(p, order=[0, 0])

    def test_rejects_wrong_drop_count(self):
        p = parse_query("q(A) :- v1(A, B), v2(A, C)")
        with pytest.raises(ValueError):
            PhysicalPlan.from_rewriting(p, drops=[frozenset()])

    def test_rejects_empty_plan(self):
        with pytest.raises(ValueError):
            PhysicalPlan(parse_atom("q(A)"), ())

    def test_rewriting_round_trip(self):
        p = parse_query("q(A) :- v1(A, B), v2(A, C)")
        plan = PhysicalPlan.from_rewriting(p, order=[1, 0])
        back = plan.rewriting()
        assert set(back.body) == set(p.body)
        assert back.head == p.head


class TestSchemaAfter:
    def test_no_drops_accumulates(self):
        p = parse_query("q(A) :- v1(A, B), v2(A, C)")
        plan = PhysicalPlan.from_rewriting(p)
        assert plan.schema_after(0) == (A, B)
        assert plan.schema_after(1) == (A, B, C)

    def test_drop_removes_column(self):
        p = parse_query("q(A) :- v1(A, B), v2(A, C)")
        plan = PhysicalPlan.from_rewriting(
            p, drops=[{B}, {C}]
        )
        assert plan.schema_after(0) == (A,)
        assert plan.schema_after(1) == (A,)

    def test_dropped_variable_reenters_on_later_occurrence(self):
        """Section 6.2 renaming semantics: a severed variable comes back."""
        p = parse_query("q(A) :- v1(A, B), v2(A, B)")
        plan = PhysicalPlan.from_rewriting(p, drops=[{B}, frozenset()])
        assert plan.schema_after(0) == (A,)
        assert plan.schema_after(1) == (A, B)

    def test_str_rendering(self):
        step = PlanStep(parse_atom("v1(A, B)"), frozenset({B}))
        assert str(step) == "v1(A, B){B}"
        plan = PhysicalPlan(parse_atom("q(A)"), (step,))
        assert "v1(A, B){B}" in str(plan)
