"""Tests for statistics-only M3 optimization and the projection estimator."""

import random

import pytest

from repro.cost import (
    StatisticsCatalog,
    cost_m3,
    optimal_plan_m3,
    optimal_plan_m3_estimated,
)
from repro.datalog import Variable, parse_atom
from repro.engine import materialize_views
from repro.experiments.paper_examples import example_61


@pytest.fixture(scope="module")
def ex61_setup():
    ex = example_61()
    vdb = materialize_views(ex.views, ex.base)
    catalog = StatisticsCatalog.from_database(vdb)
    return ex, vdb, catalog


class TestProjectionEstimate:
    catalog = StatisticsCatalog()

    def test_capped_by_rows(self):
        assert self.catalog.estimate_projection_size(10, 1e6) == pytest.approx(10, rel=0.01)

    def test_capped_by_domain(self):
        assert self.catalog.estimate_projection_size(1e6, 10) <= 10

    def test_zero_rows(self):
        assert self.catalog.estimate_projection_size(0, 100) == 0.0

    def test_cardenas_midrange(self):
        # 100 rows into 100 slots: ~63.4 distinct.
        estimate = self.catalog.estimate_projection_size(100, 100)
        assert 60 < estimate < 67

    def test_huge_domain_passthrough(self):
        assert self.catalog.estimate_projection_size(500, 1e15) == 500


class TestVariableDomain:
    def test_minimum_over_occurrences(self, ex61_setup):
        _ex, _vdb, catalog = ex61_setup
        atoms = [parse_atom("v1(A, B)"), parse_atom("v2(A, B)")]
        domain = catalog.variable_domain(atoms, Variable("A"))
        # v1 column 0 has 1 distinct value; v2 column 0 has 4.
        assert domain == 1.0

    def test_unknown_variable_defaults_to_one(self, ex61_setup):
        _ex, _vdb, catalog = ex61_setup
        assert catalog.variable_domain([], Variable("Z")) == 1.0


class TestEstimatedM3:
    def test_example_61_matches_exact_costs(self, ex61_setup):
        """The estimates land on the paper's exact 10 vs. 13."""
        ex, _vdb, catalog = ex61_setup
        smart = optimal_plan_m3_estimated(
            ex.p2, ex.query, ex.views, catalog, "heuristic"
        )
        plain = optimal_plan_m3_estimated(
            ex.p2, ex.query, ex.views, catalog, "supplementary"
        )
        assert smart.cost == pytest.approx(10.0, rel=0.05)
        assert plain.cost == pytest.approx(13.0, rel=0.05)

    def test_estimated_order_agrees_with_exact(self, ex61_setup):
        ex, vdb, catalog = ex61_setup
        estimated = optimal_plan_m3_estimated(
            ex.p2, ex.query, ex.views, catalog, "heuristic"
        )
        exact = optimal_plan_m3(ex.p2, ex.query, ex.views, vdb, "heuristic")
        assert cost_m3(exact.execution) <= estimated.cost * 1.5 + 1

    def test_unknown_annotator_rejected(self, ex61_setup):
        ex, _vdb, catalog = ex61_setup
        with pytest.raises(ValueError):
            optimal_plan_m3_estimated(ex.p2, ex.query, ex.views, catalog, "x")

    def test_no_execution_attached(self, ex61_setup):
        ex, _vdb, catalog = ex61_setup
        plan = optimal_plan_m3_estimated(ex.p2, ex.query, ex.views, catalog)
        assert plan.execution is None
