"""Tests for the plan optimizer (M2 dynamic program, M3 search, filters)."""

import random
from itertools import permutations

import pytest

from repro.cost import (
    PhysicalPlan,
    StatisticsCatalog,
    TooManySubgoalsError,
    best_rewriting_m2,
    cost_m2,
    cost_m3,
    execute_plan,
    improve_with_filters,
    optimal_plan_m2,
    optimal_plan_m2_estimated,
    optimal_plan_m3,
)
from repro.core import core_cover_star
from repro.datalog import parse_query
from repro.engine import Database, evaluate, materialize_views
from repro.experiments.paper_examples import example_61
from repro.workload import uniform_database


def brute_force_m2(rewriting, database):
    best = None
    for order in permutations(range(len(rewriting.body))):
        execution = execute_plan(
            PhysicalPlan.from_rewriting(rewriting, order), database
        )
        cost = cost_m2(execution)
        if best is None or cost < best:
            best = cost
    return best


class TestM2DynamicProgram:
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_matches_brute_force(self, seed):
        rng = random.Random(seed)
        rewriting = parse_query(
            "q(A, D) :- v1(A, B), v2(B, C), v3(C, D), v4(A, D)"
        )
        database = uniform_database(
            {"v1": 2, "v2": 2, "v3": 2, "v4": 2}, 30, 6, rng
        )
        optimized = optimal_plan_m2(rewriting, database)
        assert optimized.cost == brute_force_m2(rewriting, database)

    def test_execution_attached(self):
        ex = example_61()
        vdb = materialize_views(ex.views, ex.base)
        optimized = optimal_plan_m2(ex.p1, vdb)
        assert optimized.execution is not None
        assert optimized.execution.answer == {(1,)}

    def test_single_subgoal(self):
        database = Database.from_dict({"v": [(1, 2), (3, 4)]})
        optimized = optimal_plan_m2(parse_query("q(A) :- v(A, B)"), database)
        assert optimized.cost == 4  # size(v) + size(IR1)

    def test_too_many_subgoals_guard(self):
        body = ", ".join(f"v{i}(X{i}, X{i + 1})" for i in range(17))
        rewriting = parse_query(f"q(X0) :- {body}")
        with pytest.raises(TooManySubgoalsError):
            optimal_plan_m2(rewriting, Database())


class TestM2Estimated:
    def test_estimated_orders_prefer_selective_first(self):
        rng = random.Random(7)
        database = uniform_database({"big": 2, "small": 2}, 0, 5, rng)
        database.relation("big").add_all([(i, i % 5) for i in range(200)])
        database.relation("small").add_all([(1, 2), (2, 3)])
        catalog = StatisticsCatalog.from_database(database)
        rewriting = parse_query("q(A) :- big(A, B), small(A, C)")
        optimized = optimal_plan_m2_estimated(rewriting, catalog)
        assert optimized.plan.atoms[0].predicate == "small"

    def test_estimated_cost_close_to_exact_on_uniform_data(self):
        rng = random.Random(3)
        database = uniform_database({"v1": 2, "v2": 2}, 50, 20, rng)
        catalog = StatisticsCatalog.from_database(database)
        rewriting = parse_query("q(A) :- v1(A, B), v2(B, C)")
        estimated = optimal_plan_m2_estimated(rewriting, catalog)
        exact = optimal_plan_m2(rewriting, database)
        assert estimated.cost == pytest.approx(exact.cost, rel=0.5)


class TestM3Optimizer:
    def test_heuristic_beats_or_ties_supplementary(self):
        ex = example_61()
        vdb = materialize_views(ex.views, ex.base)
        smart = optimal_plan_m3(ex.p2, ex.query, ex.views, vdb, "heuristic")
        plain = optimal_plan_m3(ex.p2, ex.query, ex.views, vdb, "supplementary")
        assert smart.cost <= plain.cost
        assert smart.cost == 10

    def test_unknown_annotator_rejected(self):
        ex = example_61()
        vdb = materialize_views(ex.views, ex.base)
        with pytest.raises(ValueError):
            optimal_plan_m3(ex.p2, ex.query, ex.views, vdb, "nope")

    def test_answers_preserved(self):
        ex = example_61()
        vdb = materialize_views(ex.views, ex.base)
        expected = evaluate(ex.query, ex.base)
        for annotator in ("heuristic", "supplementary"):
            optimized = optimal_plan_m3(
                ex.p2, ex.query, ex.views, vdb, annotator
            )
            assert optimized.execution.answer == expected


class TestFilters:
    def test_best_rewriting_selected(self):
        ex = example_61()
        vdb = materialize_views(ex.views, ex.base)
        best = best_rewriting_m2([ex.p1, ex.p2], vdb)
        assert best is not None
        assert best.cost == min(
            optimal_plan_m2(ex.p1, vdb).cost, optimal_plan_m2(ex.p2, vdb).cost
        )

    def test_best_rewriting_empty(self):
        assert best_rewriting_m2([], Database()) is None

    def test_selective_filter_improves_cost(self):
        """The P3-beats-P2 phenomenon: a selective empty-core view helps."""
        from repro.experiments.paper_examples import car_loc_part

        clp = car_loc_part()
        base = Database()
        # Many dealers' cars/cities, but almost no store qualifies for V3.
        for i in range(30):
            base.add_fact("car", (f"m{i % 6}", "a"))
            base.add_fact("loc", ("a", f"c{i % 5}"))
        for s in range(40):
            base.add_fact("part", (f"s{s}", f"m{s % 6}", f"c{(s * 3) % 7}"))
        vdb = materialize_views(clp.views, base)

        result = core_cover_star(clp.query, clp.views)
        p2 = next(r for r in result.rewritings if len(r.body) == 2)
        improved = improve_with_filters(p2, result.filter_candidates, vdb)
        baseline = optimal_plan_m2(p2, vdb)
        assert improved.cost <= baseline.cost
        # The improved plan still computes the right answer.
        assert improved.execution.answer == evaluate(clp.query, base)

    def test_useless_filter_not_added(self):
        ex = example_61()
        vdb = materialize_views(ex.views, ex.base)
        improved = improve_with_filters(ex.p2, [], vdb)
        assert improved.rewriting == ex.p2
