"""Tests for supplementary relations and the Section 6.2 heuristic."""

import pytest

from repro.cost import (
    cost_m3,
    execute_plan,
    heuristic_drops,
    heuristic_plan,
    supplementary_drops,
    supplementary_plan,
)
from repro.datalog import Variable, parse_query
from repro.engine import evaluate, materialize_views
from repro.experiments.paper_examples import example_61
from repro.views import is_equivalent_rewriting

A, B, C = Variable("A"), Variable("B"), Variable("C")


@pytest.fixture(scope="module")
def ex61():
    return example_61()


@pytest.fixture(scope="module")
def vdb(ex61):
    return materialize_views(ex61.views, ex61.base)


class TestFigure5Data(object):
    def test_materialized_views_match_paper(self, vdb):
        assert vdb.relation("v1").tuples == {(1, 2), (1, 4), (1, 6), (1, 8)}
        assert vdb.relation("v2").tuples == {(1, 2), (3, 4), (5, 6), (7, 8)}


class TestSupplementaryDrops:
    def test_dead_variable_dropped(self, ex61):
        drops = supplementary_drops(ex61.p1)  # v1(A,B), v2(A,C)
        assert drops[0] == {B}
        assert drops[1] == {C}

    def test_live_variable_kept(self, ex61):
        drops = supplementary_drops(ex61.p2)  # v1(A,B), v2(A,B)
        assert drops[0] == frozenset()  # B used later
        assert drops[1] == {B}

    def test_head_variable_never_dropped(self):
        p = parse_query("q(A, B) :- v1(A, B), v2(A, C)")
        drops = supplementary_drops(p)
        assert B not in drops[0] and B not in drops[1]

    def test_respects_order(self, ex61):
        drops = supplementary_drops(ex61.p1, order=[1, 0])
        # Order [v2(A,C), v1(A,B)]: C dead after step 1, B after step 2.
        assert drops[0] == {C}
        assert drops[1] == {B}


class TestHeuristicDrops:
    def test_example_61_drops_b_early(self, ex61):
        drops, renamed = heuristic_drops(ex61.p2, ex61.query, ex61.views)
        assert drops[0] == {B}
        assert is_equivalent_rewriting(renamed, ex61.query, ex61.views)

    def test_renamed_rewriting_differs_from_original(self, ex61):
        _drops, renamed = heuristic_drops(ex61.p2, ex61.query, ex61.views)
        assert renamed.body != ex61.p2.body

    def test_does_not_drop_required_join_variable(self):
        # Here the B-join is essential: severing it changes the answer.
        query = parse_query("q(A) :- r(A, B), s(B, B)")
        from repro.views import ViewCatalog

        views = ViewCatalog(
            ["v1(A, B) :- r(A, B)", "v2(B) :- s(B, B)"]
        )
        p = parse_query("q(A) :- v1(A, B), v2(B)")
        drops, _renamed = heuristic_drops(p, query, views)
        assert B not in drops[0]


class TestExample61Costs:
    """The paper's Example 6.1 cost comparison, with the Figure 5 data."""

    def test_supplementary_cost_p1_beats_p2(self, ex61, vdb):
        f1 = execute_plan(supplementary_plan(ex61.p1, [0, 1]), vdb)
        f2 = execute_plan(supplementary_plan(ex61.p2, [0, 1]), vdb)
        assert cost_m3(f1) == 10  # 4 + 1 + 4 + 1
        assert cost_m3(f2) == 13  # 4 + 4 + 4 + 1
        assert cost_m3(f1) < cost_m3(f2)

    def test_reversed_order_does_not_favor_p2(self, ex61, vdb):
        # The paper claims P1 stays strictly cheaper with the subgoals
        # reversed; under set semantics the projections tie (13 = 13), so
        # we assert the direction (P2 never wins) — see EXPERIMENTS.md.
        f1 = execute_plan(supplementary_plan(ex61.p1, [1, 0]), vdb)
        f2 = execute_plan(supplementary_plan(ex61.p2, [1, 0]), vdb)
        assert cost_m3(f1) <= cost_m3(f2)

    def test_heuristic_recovers_p2(self, ex61, vdb):
        smart = execute_plan(
            heuristic_plan(ex61.p2, ex61.query, ex61.views, [0, 1]), vdb
        )
        assert cost_m3(smart) == 10

    def test_all_plans_compute_the_query_answer(self, ex61, vdb):
        expected = evaluate(ex61.query, ex61.base)
        for build in (
            lambda: supplementary_plan(ex61.p1, [0, 1]),
            lambda: supplementary_plan(ex61.p2, [0, 1]),
            lambda: heuristic_plan(ex61.p2, ex61.query, ex61.views, [0, 1]),
            lambda: heuristic_plan(ex61.p2, ex61.query, ex61.views, [1, 0]),
        ):
            assert execute_plan(build(), vdb).answer == expected
