"""Tests for the IO-driven optimizer variant."""

import random

import pytest

from repro.cost import optimal_plan_io, optimal_plan_m2
from repro.cost.iomodel import IoParameters, simulate_plan_io
from repro.datalog import parse_query
from repro.workload import uniform_database


@pytest.fixture(scope="module")
def instance():
    rng = random.Random(8)
    rewriting = parse_query("q(A, D) :- v1(A, B), v2(B, C), v3(C, D)")
    database = uniform_database({"v1": 2, "v2": 2, "v3": 2}, 250, 10, rng)
    return rewriting, database


class TestOptimalIo:
    def test_returns_cheapest_order(self, instance):
        rewriting, database = instance
        best = optimal_plan_io(rewriting, database)
        assert best.execution is not None
        # Recost the chosen plan: the reported cost must be consistent.
        recost = simulate_plan_io(best.execution).total
        assert recost == best.cost

    def test_m2_choice_close_to_io_choice(self, instance):
        """M2 approximates IO: its chosen order prices near the IO optimum."""
        rewriting, database = instance
        params = IoParameters(tuples_per_page=20)
        io_best = optimal_plan_io(rewriting, database, params)
        m2_best = optimal_plan_m2(rewriting, database)
        m2_order_io = simulate_plan_io(m2_best.execution, params).total
        assert m2_order_io <= io_best.cost * 1.5 + 2

    def test_guard_on_large_rewritings(self):
        body = ", ".join(f"v{i}(X{i}, X{i + 1})" for i in range(9))
        rewriting = parse_query(f"q(X0) :- {body}")
        from repro.cost import TooManySubgoalsError
        from repro.engine import Database

        with pytest.raises(TooManySubgoalsError):
            optimal_plan_io(rewriting, Database())
