"""Tests for exact plan execution and intermediate sizes."""

import pytest

from repro.cost import PhysicalPlan, execute_plan, join_atoms, join_step
from repro.cost.intermediates import PlanExecutionError, VarTable
from repro.datalog import Variable, parse_atom, parse_query
from repro.engine import Database

A, B, C = Variable("A"), Variable("B"), Variable("C")

VDB = Database.from_dict(
    {
        "v1": [(1, 2), (1, 4), (2, 2)],
        "v2": [(1, 2), (3, 4)],
        "v3": [(1, 1), (2, 3)],
    }
)


def start_table():
    return VarTable((), frozenset({()}))


class TestJoinStep:
    def test_scan(self):
        table = join_step(start_table(), parse_atom("v1(A, B)"), VDB)
        assert table.schema == (A, B)
        assert len(table) == 3

    def test_join_on_shared_variable(self):
        table = join_step(start_table(), parse_atom("v1(A, B)"), VDB)
        table = join_step(table, parse_atom("v2(A, C)"), VDB)
        assert table.schema == (A, B, C)
        assert table.rows == {(1, 2, 2), (1, 4, 2)}

    def test_join_on_two_shared_variables(self):
        table = join_step(start_table(), parse_atom("v1(A, B)"), VDB)
        table = join_step(table, parse_atom("v2(A, B)"), VDB)
        assert table.rows == {(1, 2)}

    def test_constant_selection(self):
        table = join_step(start_table(), parse_atom("v1(2, B)"), VDB)
        assert table.schema == (B,)
        assert table.rows == {(2,)}

    def test_repeated_variable_selection(self):
        table = join_step(start_table(), parse_atom("v3(A, A)"), VDB)
        assert table.rows == {(1,)}

    def test_missing_relation_raises(self):
        with pytest.raises(PlanExecutionError):
            join_step(start_table(), parse_atom("nope(A)"), VDB)

    def test_arity_mismatch_raises(self):
        with pytest.raises(PlanExecutionError):
            join_step(start_table(), parse_atom("v1(A)"), VDB)


class TestVarTable:
    def test_project(self):
        table = VarTable((A, B), frozenset({(1, 2), (1, 3)}))
        projected = table.project((A,))
        assert projected.schema == (A,)
        assert projected.rows == {(1,)}


class TestExecutePlan:
    def test_sizes_without_drops(self):
        p = parse_query("q(A) :- v1(A, B), v2(A, C)")
        execution = execute_plan(PhysicalPlan.from_rewriting(p), VDB)
        assert execution.subgoal_sizes() == (3, 2)
        assert execution.intermediate_sizes() == (3, 2)
        assert execution.answer == {(1,)}

    def test_sizes_with_drops(self):
        p = parse_query("q(A) :- v1(A, B), v2(A, C)")
        plan = PhysicalPlan.from_rewriting(p, drops=[{B}, {C}])
        execution = execute_plan(plan, VDB)
        assert execution.intermediate_sizes() == (2, 1)
        assert execution.answer == {(1,)}

    def test_head_constant(self):
        p = parse_query("q(A, tag) :- v1(A, B)")
        execution = execute_plan(PhysicalPlan.from_rewriting(p), VDB)
        assert execution.answer == {(1, "tag"), (2, "tag")}

    def test_dropping_head_variable_without_rebinding_raises(self):
        p = parse_query("q(A) :- v1(A, B)")
        plan = PhysicalPlan.from_rewriting(p, drops=[{A}])
        with pytest.raises(PlanExecutionError):
            execute_plan(plan, VDB)

    def test_dropped_variable_rebinds_from_later_subgoal(self):
        # Dropping B after step 1 severs the equality; v2's B re-enters.
        p = parse_query("q(A, B) :- v1(A, B), v2(A, B)")
        plan = PhysicalPlan.from_rewriting(p, drops=[{B}, frozenset()])
        execution = execute_plan(plan, VDB)
        assert execution.answer == {(1, 2)}

    def test_order_changes_intermediates_not_answer(self):
        p = parse_query("q(A) :- v1(A, B), v2(A, C)")
        forward = execute_plan(PhysicalPlan.from_rewriting(p, [0, 1]), VDB)
        backward = execute_plan(PhysicalPlan.from_rewriting(p, [1, 0]), VDB)
        assert forward.answer == backward.answer
        assert forward.intermediate_sizes() != backward.intermediate_sizes()


class TestJoinAtoms:
    def test_order_independence_of_full_join(self):
        atoms = [parse_atom("v1(A, B)"), parse_atom("v2(A, C)")]
        forward = join_atoms(atoms, VDB)
        backward = join_atoms(list(reversed(atoms)), VDB)
        assert len(forward) == len(backward)
        as_sets = lambda t: {
            frozenset(zip(t.schema, row)) for row in t.rows
        }
        assert as_sets(forward) == as_sets(backward)
