"""Tests for the EXPLAIN-style plan reports."""

from repro.cost import explain_plan, optimal_plan_m2, optimal_plan_m3
from repro.cost.iomodel import IoParameters
from repro.cost.optimizer import OptimizedPlan
from repro.cost.plans import PhysicalPlan
from repro.datalog import parse_query
from repro.engine import materialize_views
from repro.experiments.paper_examples import example_61


def make_plans():
    ex = example_61()
    vdb = materialize_views(ex.views, ex.base)
    m2 = optimal_plan_m2(ex.p2, vdb)
    m3 = optimal_plan_m3(ex.p2, ex.query, ex.views, vdb, "heuristic")
    return m2, m3


class TestExplain:
    def test_contains_cost_and_steps(self):
        m2, _m3 = make_plans()
        report = explain_plan(m2)
        assert "cost" in report
        assert "v1(A, B)" in report and "v2(A, B)" in report
        assert "answer    : 1 tuple(s)" in report

    def test_drop_annotations_rendered(self):
        _m2, m3 = make_plans()
        report = explain_plan(m3)
        assert " B " in report or " B\n" in report or "B               " in report

    def test_io_section_optional(self):
        m2, _m3 = make_plans()
        without = explain_plan(m2)
        with_io = explain_plan(m2, IoParameters(tuples_per_page=2))
        assert "simulated IO" not in without
        assert "simulated IO" in with_io

    def test_estimated_plan_without_execution(self):
        rewriting = parse_query("q(A) :- v1(A, B)")
        plan = PhysicalPlan.from_rewriting(rewriting)
        optimized = OptimizedPlan(rewriting, plan, 42.0, None)
        report = explain_plan(optimized)
        assert "estimated costing" in report
