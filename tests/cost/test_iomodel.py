"""Tests for the page-based IO simulator behind cost model M2."""

import random

import pytest

from repro.cost import PhysicalPlan, execute_plan
from repro.cost.iomodel import (
    IoParameters,
    io_tracks_m2,
    simulate_plan_io,
)
from repro.datalog import parse_query
from repro.engine import Database
from repro.workload import uniform_database


class TestPages:
    def test_rounding_up(self):
        params = IoParameters(tuples_per_page=50)
        assert params.pages(0) == 0
        assert params.pages(1) == 1
        assert params.pages(50) == 1
        assert params.pages(51) == 2


class TestSimulation:
    @pytest.fixture(scope="class")
    def execution(self):
        database = Database.from_dict(
            {
                "v1": [(i, i % 7) for i in range(300)],
                "v2": [(i % 7, i) for i in range(200)],
            }
        )
        rewriting = parse_query("q(A, C) :- v1(A, B), v2(B, C)")
        return execute_plan(PhysicalPlan.from_rewriting(rewriting), database)

    def test_scan_costs_relation_pages(self, execution):
        params = IoParameters(tuples_per_page=50, memory_pages=1000)
        report = simulate_plan_io(execution, params)
        assert report.steps[0].subgoal_pages == 6  # 300 / 50

    def test_one_pass_join_when_memory_suffices(self, execution):
        params = IoParameters(tuples_per_page=50, memory_pages=1000)
        report = simulate_plan_io(execution, params)
        assert report.steps[1].build_passes == 1

    def test_two_pass_join_when_memory_tight(self, execution):
        params = IoParameters(tuples_per_page=10, memory_pages=2)
        report = simulate_plan_io(execution, params)
        assert report.steps[1].build_passes == 3

    def test_tight_memory_costs_more(self, execution):
        roomy = simulate_plan_io(
            execution, IoParameters(tuples_per_page=10, memory_pages=1000)
        )
        tight = simulate_plan_io(
            execution, IoParameters(tuples_per_page=10, memory_pages=2)
        )
        assert tight.total > roomy.total

    def test_total_is_sum_of_steps(self, execution):
        report = simulate_plan_io(execution)
        assert report.total == sum(step.total for step in report.steps)


class TestM2Validation:
    """The Section 2.2 motivation: M2 ranks plans like disk IO does."""

    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_io_tracks_m2_across_orders(self, seed):
        rng = random.Random(seed)
        database = uniform_database({"v1": 2, "v2": 2, "v3": 2}, 200, 12, rng)
        rewriting = parse_query("q(A, D) :- v1(A, B), v2(B, C), v3(C, D)")
        from itertools import permutations

        executions = [
            execute_plan(PhysicalPlan.from_rewriting(rewriting, order), database)
            for order in permutations(range(3))
        ]
        assert io_tracks_m2(executions, IoParameters(tuples_per_page=25))
