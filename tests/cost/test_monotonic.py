"""Tests for containment-monotonic cost models (Section 5.3)."""

import random

import pytest

from repro.cost import (
    check_m1_monotonic,
    check_m2_monotonic,
    covering_containment_mapping,
    verify_monotonicity,
)
from repro.datalog import parse_query
from repro.engine import materialize_views
from repro.experiments.paper_examples import car_loc_part, car_loc_part_database
from repro.workload import uniform_database


class TestCoveringMapping:
    def test_p1_maps_onto_p2(self):
        """The paper's Section 5.1 example: P2 at least as efficient as P1."""
        clp = car_loc_part()
        mapping = covering_containment_mapping(clp.p1, clp.p2)
        assert mapping is not None

    def test_no_covering_mapping_between_unrelated(self):
        p = parse_query("q(X) :- v1(X, Y)")
        r = parse_query("q(X) :- v2(X, Y)")
        assert covering_containment_mapping(p, r) is None

    def test_mapping_must_be_onto(self):
        # P2 maps into P1 but cannot cover P1's three subgoals' images...
        # actually P2 -> P1 maps two subgoals onto two of P1's three, so
        # the image misses one subgoal: not covering.
        clp = car_loc_part()
        assert covering_containment_mapping(clp.p2, clp.p1) is None


class TestM1:
    def test_paper_pair(self):
        clp = car_loc_part()
        assert check_m1_monotonic(clp.p1, clp.p2)

    def test_vacuous_when_premise_fails(self):
        p = parse_query("q(X) :- v1(X, Y)")
        r = parse_query("q(X) :- v2(X, Y), v2(Y, X)")
        assert check_m1_monotonic(p, r)


class TestM2:
    def test_paper_pair_on_concrete_data(self):
        clp = car_loc_part()
        vdb = materialize_views(clp.views, car_loc_part_database())
        assert check_m2_monotonic(clp.p1, clp.p2, vdb)

    @pytest.mark.parametrize("seed", [0, 1])
    def test_random_specializations_monotonic(self, seed):
        """P2 = image of P1 under variable merging is never costlier."""
        rng = random.Random(seed)
        database = uniform_database({"v1": 2, "v2": 2}, 40, 8, rng)
        pairs = []
        p1 = parse_query("q(A) :- v1(A, B), v2(A, C)")
        p2 = parse_query("q(A) :- v1(A, B), v2(A, B)")
        pairs.append((p1, p2))
        p3 = parse_query("q(A) :- v1(A, B), v1(A, C), v2(A, D)")
        pairs.append((p3, p1))
        violations = verify_monotonicity(
            pairs, lambda a, b: check_m2_monotonic(a, b, database)
        )
        assert violations == []
