"""Tests for the System-R style cardinality estimator."""

import pytest

from repro.cost import RelationStats, StatisticsCatalog
from repro.datalog import parse_atom
from repro.engine import Database


class TestCatalog:
    def test_from_database(self):
        db = Database.from_dict({"e": [(1, 2), (1, 3), (2, 3)]})
        catalog = StatisticsCatalog.from_database(db)
        stats = catalog.stats("e")
        assert stats.cardinality == 3
        assert stats.distinct == (2, 2)

    def test_contains(self):
        catalog = StatisticsCatalog([RelationStats("e", 10, (5, 5))])
        assert "e" in catalog and "f" not in catalog

    def test_distinct_at_floors_at_one(self):
        stats = RelationStats("e", 0, (0,))
        assert stats.distinct_at(0) == 1


class TestEstimates:
    catalog = StatisticsCatalog(
        [
            RelationStats("e", 100, (50, 20)),
            RelationStats("f", 200, (40, 10)),
        ]
    )

    def test_single_scan(self):
        assert self.catalog.estimate_join_size([parse_atom("e(X, Y)")]) == 100

    def test_constant_selectivity(self):
        # 100 / V(e, 1) = 100 / 20.
        assert self.catalog.estimate_join_size([parse_atom("e(X, 7)")]) == 5

    def test_join_selectivity_uses_max_distinct(self):
        # 100 * 200 / max(V(e,1)=20, V(f,0)=40) = 500.
        size = self.catalog.estimate_join_size(
            [parse_atom("e(X, Y)"), parse_atom("f(Y, Z)")]
        )
        assert size == pytest.approx(100 * 200 / 40)

    def test_repeated_variable_within_atom(self):
        # 100 / max(V(e,0), V(e,1)) = 100 / 50.
        size = self.catalog.estimate_join_size([parse_atom("e(X, X)")])
        assert size == pytest.approx(2.0)

    def test_unknown_relation_estimates_zero(self):
        assert self.catalog.estimate_join_size([parse_atom("nope(X)")]) == 0.0
        assert self.catalog.estimate_relation_size(parse_atom("nope(X)")) == 0

    def test_estimate_matches_exact_on_uniform_keys(self):
        # A key-foreign-key join estimated exactly under uniformity.
        rows_e = [(i, i % 10) for i in range(100)]
        rows_f = [(i, i + 1) for i in range(10)]
        db = Database.from_dict({"e": rows_e, "f": rows_f})
        catalog = StatisticsCatalog.from_database(db)
        estimated = catalog.estimate_join_size(
            [parse_atom("e(X, Y)"), parse_atom("f(Y, Z)")]
        )
        from repro.cost import join_atoms

        exact = len(join_atoms([parse_atom("e(X, Y)"), parse_atom("f(Y, Z)")], db))
        assert estimated == pytest.approx(exact)
