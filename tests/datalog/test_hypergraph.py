"""Tests for the shared hypergraph module: GYO reduction and join trees."""

import pytest

from repro.datalog import parse_query
from repro.datalog.hypergraph import (
    JoinTree,
    gyo_reduce,
    is_acyclic,
    join_tree,
    join_tree_of_atoms,
)

CHAIN = parse_query("q(X0, X4) :- e(X0, X1), e(X1, X2), e(X2, X3), e(X3, X4)")
STAR = parse_query("q(C) :- r1(C, A), r2(C, B), r3(C, D)")
TRIANGLE = parse_query("q(X) :- e(X, Y), e(Y, Z), e(Z, X)")
COMPARISON = parse_query("q(X, Y) :- e(X, Z), e(Z, Y), X < Y")


def _check_running_intersection(query, tree):
    """Every variable's atoms must form a connected subtree."""
    relational = [a for a in query.body if not a.is_comparison]
    parent_of = dict(zip(tree.order, tree.parent))
    for variable in {v for a in relational for v in a.variable_set()}:
        holders = {
            position
            for position, atom in enumerate(query.body)
            if not atom.is_comparison and variable in atom.variable_set()
        }
        # Walk each holder towards the root; within the holder set, all
        # but one node (the subtree's top) must have a holder parent.
        tops = [p for p in holders if parent_of[p] not in holders]
        assert len(tops) == 1, (
            f"{variable} spans a disconnected set of atoms {holders}"
        )


class TestJoinTreeShapes:
    def test_chain_is_acyclic_with_linear_tree(self):
        tree = join_tree(CHAIN)
        assert tree is not None
        assert sorted(tree.order) == [0, 1, 2, 3]
        assert tree.parent.count(-1) == 1  # connected: a single root
        assert tree.depth == 4  # a chain join tree is a path
        _check_running_intersection(CHAIN, tree)

    def test_star_is_acyclic(self):
        tree = join_tree(STAR)
        assert tree is not None
        # Lowest-position-first ear elimination linearizes a star whose
        # hub variable lives in every edge (any chaining satisfies the
        # running-intersection property), so the depth is the atom count.
        assert tree.depth == 3
        _check_running_intersection(STAR, tree)

    def test_triangle_is_cyclic(self):
        assert join_tree(TRIANGLE) is None
        assert not is_acyclic(TRIANGLE)
        residue = gyo_reduce(TRIANGLE)
        assert len(residue) == 3  # all three edges survive

    def test_single_atom_is_its_own_root(self):
        tree = join_tree(parse_query("q(X) :- e(X, Y)"))
        assert tree is not None
        assert tree.order == (0,)
        assert tree.parent == (-1,)
        assert tree.depth == 1

    def test_disconnected_body_yields_forest(self):
        forest = join_tree(parse_query("q(X, Y) :- e(X, A), f(Y, B)"))
        assert forest is not None
        assert set(forest.roots) == {0, 1}
        assert forest.depth == 1

    def test_comparison_atoms_are_not_nodes(self):
        tree = join_tree(COMPARISON)
        assert tree is not None
        assert sorted(tree.order) == [0, 1]  # the `<` atom is skipped

    def test_children_precede_parents_in_order(self):
        for query in (CHAIN, STAR, COMPARISON):
            tree = join_tree(query)
            seen = set()
            for node, parent in zip(tree.order, tree.parent):
                assert parent not in seen or parent == -1
                seen.add(node)
            # Every non-root parent appears somewhere in the order.
            assert all(p == -1 or p in seen for p in tree.parent)

    def test_traversal_is_root_first(self):
        tree = join_tree(CHAIN)
        assert tree.traversal() == tuple(reversed(tree.order))
        assert tree.traversal()[0] in tree.roots

    def test_parent_of(self):
        tree = join_tree(CHAIN)
        for node, parent in zip(tree.order, tree.parent):
            assert tree.parent_of(node) == parent


class TestAgreementWithGyo:
    @pytest.mark.parametrize("seed", range(30))
    def test_join_tree_exists_iff_gyo_reduces(self, seed):
        from repro.workload import WorkloadConfig, generate_workload

        workload = generate_workload(
            WorkloadConfig(
                shape="random",
                num_relations=5,
                query_subgoals=5,
                num_views=1,
                seed=seed,
                require_rewritable=False,
            )
        )
        query = workload.query
        assert (join_tree(query) is not None) == is_acyclic(query)

    def test_join_tree_of_atoms_matches_query_form(self):
        assert join_tree_of_atoms(CHAIN.body) == join_tree(CHAIN)


class TestDeprecatedReExport:
    def test_catalog_gyo_module_still_exports_the_names(self):
        from repro.analysis.catalog import gyo

        assert gyo.gyo_reduce is gyo_reduce
        assert gyo.is_acyclic is is_acyclic

    def test_catalog_package_export(self):
        from repro.analysis import catalog

        assert catalog.is_acyclic is is_acyclic


class TestJoinTreeDataclass:
    def test_frozen(self):
        tree = join_tree(CHAIN)
        with pytest.raises(Exception):
            tree.depth = 99

    def test_empty_tree(self):
        tree = JoinTree(order=(), parent=(), depth=0)
        assert tree.roots == ()
        assert tree.traversal() == ()
