"""Tests for the datalog parser."""

import pytest

from repro.datalog import (
    Atom,
    Constant,
    DatalogSyntaxError,
    Variable,
    parse_atom,
    parse_program,
    parse_query,
)


class TestTerms:
    def test_uppercase_is_variable(self):
        q = parse_query("q(X) :- e(X, Make)")
        assert Variable("Make") in q.variables()

    def test_lowercase_is_constant(self):
        q = parse_query("q(X) :- car(X, anderson)")
        assert Constant("anderson") in q.constants()

    def test_quoted_string_constant(self):
        q = parse_query("q(X) :- e(X, 'Upper Case City')")
        assert Constant("Upper Case City") in q.constants()

    def test_integer_constant(self):
        q = parse_query("q(X) :- e(X, 42)")
        assert Constant(42) in q.constants()

    def test_negative_and_float_constants(self):
        q = parse_query("q(X) :- e(X, -3), f(X, 2.5)")
        assert Constant(-3) in q.constants()
        assert Constant(2.5) in q.constants()

    def test_anonymous_variables_are_distinct(self):
        q = parse_query("q(X) :- e(X, _), f(X, _)")
        anons = [v for v in q.variables() if v.name.startswith("_Anon")]
        assert len(set(anons)) == 2


class TestStructure:
    def test_multi_subgoal_rule(self):
        q = parse_query("q(S, C) :- car(M, a), loc(a, C), part(S, M, C)")
        assert [atom.predicate for atom in q.body] == ["car", "loc", "part"]

    def test_comparison_literal(self):
        q = parse_query("q(X, Y) :- e(X, Y), X <= Y")
        assert q.body[1] == Atom("<=", (Variable("X"), Variable("Y")))

    def test_all_comparison_operators(self):
        for op in ["<", "<=", ">", ">=", "=", "!="]:
            q = parse_query(f"q(X, Y) :- e(X, Y), X {op} Y")
            assert q.body[1].predicate == op

    def test_parse_atom(self):
        atom = parse_atom("v1(M, a, C)")
        assert atom == Atom(
            "v1", (Variable("M"), Constant("a"), Variable("C"))
        )

    def test_zero_arity_atom(self):
        assert parse_atom("done()").arity == 0

    def test_parse_program_skips_comments_and_blanks(self):
        program = parse_program(
            """
            # a comment
            q(X) :- e(X, Y)

            % another comment
            p(Y) :- f(Y, Y)
            """
        )
        assert [rule.name for rule in program] == ["q", "p"]


class TestErrors:
    def test_missing_arrow(self):
        with pytest.raises(DatalogSyntaxError):
            parse_query("q(X) e(X, Y)")

    def test_unbalanced_parens(self):
        with pytest.raises(DatalogSyntaxError):
            parse_query("q(X :- e(X, Y)")

    def test_garbage_character(self):
        with pytest.raises(DatalogSyntaxError):
            parse_query("q(X) :- e(X, Y) @")

    def test_trailing_tokens(self):
        with pytest.raises(DatalogSyntaxError):
            parse_atom("v1(M) extra")
