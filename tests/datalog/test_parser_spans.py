"""Source-span regression tests: every parse error carries a span, and
recorded spans survive atom/query interning.
"""

import pytest

from repro.datalog.interning import InternTable
from repro.datalog.parser import (
    check_arities,
    parse_program_spans,
    parse_query,
    parse_query_spans,
)
from repro.errors import (
    ArityMismatchError,
    ParseError,
    SourceSpan,
    UnsafeQueryError,
)


class TestSpanFidelity:
    def test_atom_spans_reconstruct_their_source_text(self):
        text = "q(X, Y) :- edge(X, Z), edge(Z, Y)"
        query, spans = parse_query_spans(text)
        for atom in (query.head, *query.body):
            span = spans.span_for(atom)
            assert span is not None
            assert text[span.start:span.end] == str(atom).replace(", ", ", ")

    def test_rule_span_covers_the_whole_rule(self):
        text = "  q(X) :- e(X, X)  "
        query, spans = parse_query_spans(text)
        span = spans.span_for(query)
        assert text[span.start:span.end] == "q(X) :- e(X, X)"

    def test_comparison_atom_spans(self):
        text = "q(X) :- e(X, Y), X < Y"
        query, spans = parse_query_spans(text)
        comparison = next(a for a in query.body if a.is_comparison)
        span = spans.span_for(comparison)
        assert text[span.start:span.end] == "X < Y"

    def test_program_spans_use_global_offsets_and_lines(self):
        text = "v1(A, B) :- e(A, B)\n# comment\nv2(A) :- e(A, A)\n"
        rules, spans = parse_program_spans(text)
        assert len(rules) == 2
        first, second = (spans.span_for(rule) for rule in rules)
        assert (first.line, second.line) == (1, 3)
        assert text[second.start:second.end] == "v2(A) :- e(A, A)"
        head_span = spans.span_for(rules[1].head)
        assert text[head_span.start:head_span.end] == "v2(A)"
        assert head_span.column == 1

    def test_indented_program_line_column(self):
        text = "v1(A) :- e(A, A)\n    v2(B) :- e(B, B)"
        rules, spans = parse_program_spans(text)
        span = spans.span_for(rules[1])
        assert span.line == 2
        assert span.column == 5
        assert text[span.start:span.end] == "v2(B) :- e(B, B)"


class TestErrorsCarrySpans:
    @pytest.mark.parametrize(
        "text",
        [
            "q(X :- e(X)",          # unbalanced head
            "q(X) : e(X)",          # bad separator
            "q(X) :- e(X,)",        # dangling comma
            "q(X) :- ",             # empty body
            "(X) :- e(X)",          # missing predicate
            "q(X) :- e(X) junk",    # trailing garbage
        ],
    )
    def test_parse_error_span(self, text):
        with pytest.raises(ParseError) as excinfo:
            parse_query(text)
        span = excinfo.value.span
        assert isinstance(span, SourceSpan)
        assert 0 <= span.start <= len(text)

    def test_unsafe_query_error_span_points_at_the_head(self):
        text = "q(X, Y) :- e(X, X)"
        with pytest.raises(UnsafeQueryError) as excinfo:
            parse_query(text, require_safe=True)
        span = excinfo.value.span
        assert span is not None
        assert text[span.start:span.end] == "q(X, Y)"

    def test_arity_error_span_points_at_the_offending_atom(self):
        text = "q(X) :- e(X, X), e(X, X, X)"
        with pytest.raises(ArityMismatchError) as excinfo:
            parse_query(text, consistent_arities=True)
        span = excinfo.value.span
        assert span is not None
        assert text[span.start:span.end] == "e(X, X, X)"

    def test_program_error_spans_are_global(self):
        text = "v1(A) :- e(A, A)\nv2(B) :- e(B,)\n"
        with pytest.raises(ParseError) as excinfo:
            parse_program_spans(text)
        span = excinfo.value.span
        assert span is not None
        assert span.line == 2
        assert span.start > text.index("\n")

    def test_check_arities_standalone_attaches_span(self):
        text = "p(Y) :- e(Y, Y, Y)"
        query, qspans = parse_query_spans("q(X) :- e(X, X)")
        other, ospans = parse_query_spans(text)
        qspans.merge(ospans)
        known = check_arities(query, origin="q", source_map=qspans)
        with pytest.raises(ArityMismatchError) as excinfo:
            check_arities(other, known, origin="p", source_map=qspans)
        span = excinfo.value.span
        assert span is not None
        assert text[span.start:span.end] == "e(Y, Y, Y)"


class TestSpansSurviveInterning:
    def test_atom_spans_survive_intern_table(self):
        text = "q(X, Y) :- e(X, Z), e(Z, Y)"
        query, spans = parse_query_spans(text)
        table = InternTable()
        table.query_key(query)
        for atom in query.body:
            key = table.atom_key(atom)
            assert isinstance(key, int)
            assert spans.span_for(atom) is not None

    def test_structurally_equal_atoms_keep_distinct_spans(self):
        # Interning maps both copies to one key, but each parsed object
        # keeps its own source location.
        text = "q(X) :- e(X, X), e(X, X)"
        query, spans = parse_query_spans(text)
        first, second = query.body
        table = InternTable()
        assert table.atom_key(first) == table.atom_key(second)
        s1, s2 = spans.span_for(first), spans.span_for(second)
        assert (s1.start, s1.end) != (s2.start, s2.end)
        assert text[s1.start:s1.end] == text[s2.start:s2.end] == "e(X, X)"

    def test_spans_survive_planning_on_the_parsed_objects(self):
        # End to end: plan() interns the query's atoms into the context's
        # table; the span map still resolves afterwards.
        from repro.planner import plan
        from repro.views import ViewCatalog

        qtext = "q(X, Y) :- e(X, Z), e(Z, Y)"
        vtext = "v(A, B) :- e(A, B)"
        query, qspans = parse_query_spans(qtext)
        views, vspans = parse_program_spans(vtext)
        result = plan(query, ViewCatalog(views))
        assert result.rewritings
        for atom in (query.head, *query.body):
            assert qspans.span_for(atom) is not None
        assert vspans.span_for(views[0]) is not None


class TestSourceSpanValue:
    def test_validation(self):
        with pytest.raises(ValueError):
            SourceSpan(-1, 2)
        with pytest.raises(ValueError):
            SourceSpan(5, 2)

    def test_shifted_and_length(self):
        span = SourceSpan(3, 7, line=1, column=4)
        moved = span.shifted(offset=10, lines=2)
        assert (moved.start, moved.end, moved.line) == (13, 17, 3)
        assert moved.length == span.length == 4

    def test_json_and_str(self):
        span = SourceSpan(2, 5, line=1, column=3)
        assert span.to_json() == {"start": 2, "end": 5, "line": 1, "column": 3}
        assert "offset 2" in str(span)
