"""Tests for atoms (subgoals)."""

import pytest

from repro.datalog import Atom, Constant, Variable, make_atom


X, Y, Z = Variable("X"), Variable("Y"), Variable("Z")
a = Constant("a")


class TestAtom:
    def test_arity(self):
        assert Atom("car", (X, a)).arity == 2

    def test_args_coerced_to_tuple(self):
        atom = Atom("car", [X, a])  # type: ignore[arg-type]
        assert isinstance(atom.args, tuple)

    def test_rejects_non_terms(self):
        with pytest.raises(TypeError):
            Atom("car", ("raw-string",))  # type: ignore[arg-type]

    def test_equality_and_hash(self):
        assert Atom("p", (X, Y)) == Atom("p", (X, Y))
        assert Atom("p", (X, Y)) != Atom("p", (Y, X))
        assert len({Atom("p", (X, Y)), Atom("p", (X, Y))}) == 1

    def test_variables_with_repetition(self):
        atom = Atom("p", (X, X, a, Y))
        assert list(atom.variables()) == [X, X, Y]
        assert atom.variable_set() == {X, Y}

    def test_constants(self):
        atom = Atom("p", (X, a, Constant(3)))
        assert set(atom.constants()) == {a, Constant(3)}

    def test_str_relational(self):
        assert str(Atom("car", (X, a))) == "car(X, a)"

    def test_str_comparison(self):
        assert str(Atom("<=", (X, Y))) == "X <= Y"

    def test_is_comparison(self):
        assert Atom("<=", (X, Y)).is_comparison
        assert not Atom("le", (X, Y)).is_comparison

    def test_make_atom(self):
        assert make_atom("p", [X]) == Atom("p", (X,))

    def test_zero_arity(self):
        atom = Atom("done", ())
        assert atom.arity == 0
        assert str(atom) == "done()"
