"""Tests for unions of conjunctive queries (Section 8 extension)."""

import pytest

from repro.containment import is_contained_in
from repro.datalog import (
    UnionQuery,
    as_union,
    parse_query,
    union_contained_in,
    union_equivalent,
)


class TestConstruction:
    def test_requires_disjuncts(self):
        with pytest.raises(ValueError):
            UnionQuery(())

    def test_requires_matching_heads(self):
        with pytest.raises(ValueError):
            UnionQuery(
                (
                    parse_query("q(X) :- e(X, X)"),
                    parse_query("p(X) :- e(X, X)"),
                )
            )

    def test_as_union_coerces(self):
        q = parse_query("q(X) :- e(X, X)")
        assert len(as_union(q)) == 1
        assert len(as_union([q, q])) == 2

    def test_total_subgoals(self):
        u = as_union(
            [
                parse_query("q(X) :- e(X, X)"),
                parse_query("q(X) :- e(X, Y), e(Y, X)"),
            ]
        )
        assert u.total_subgoals() == 3


class TestContainment:
    def test_single_disjunct_matches_cq_containment(self):
        q1 = as_union(parse_query("q(X) :- e(X, X)"))
        q2 = as_union(parse_query("q(X) :- e(X, Y)"))
        assert union_contained_in(q1, q2, is_contained_in)
        assert not union_contained_in(q2, q1, is_contained_in)

    def test_union_contained_in_bigger_union(self):
        small = as_union(parse_query("q(X) :- e(X, X)"))
        big = as_union(
            [
                parse_query("q(X) :- e(X, X)"),
                parse_query("q(X) :- f(X, X)"),
            ]
        )
        assert union_contained_in(small, big, is_contained_in)
        assert not union_contained_in(big, small, is_contained_in)

    def test_equivalence_with_redundant_disjunct(self):
        base = parse_query("q(X) :- e(X, Y)")
        redundant = parse_query("q(X) :- e(X, X)")  # contained in base
        left = as_union([base, redundant])
        right = as_union(base)
        assert union_equivalent(left, right, is_contained_in)
