"""Tests for substitutions."""

import pytest

from repro.datalog import Atom, Constant, Substitution, Variable
from repro.datalog.substitution import IDENTITY


X, Y, Z, W = Variable("X"), Variable("Y"), Variable("Z"), Variable("W")
a, b = Constant("a"), Constant("b")


class TestApplication:
    def test_apply_term_bound(self):
        sub = Substitution({X: a})
        assert sub.apply_term(X) == a

    def test_apply_term_unbound_is_identity(self):
        sub = Substitution({X: a})
        assert sub.apply_term(Y) == Y

    def test_apply_term_constant_unchanged(self):
        sub = Substitution({X: a})
        assert sub.apply_term(b) == b

    def test_apply_atom(self):
        sub = Substitution({X: Y, Z: a})
        assert sub.apply_atom(Atom("p", (X, Z, W))) == Atom("p", (Y, a, W))

    def test_identity(self):
        assert IDENTITY.apply_atom(Atom("p", (X, a))) == Atom("p", (X, a))

    def test_rejects_constant_keys(self):
        with pytest.raises(TypeError):
            Substitution({a: X})  # type: ignore[dict-item]


class TestConstruction:
    def test_extended_new_binding(self):
        sub = Substitution({X: a}).extended(Y, b)
        assert sub is not None
        assert sub[Y] == b

    def test_extended_consistent_rebinding(self):
        sub = Substitution({X: a})
        assert sub.extended(X, a) == sub

    def test_extended_conflict_returns_none(self):
        assert Substitution({X: a}).extended(X, b) is None

    def test_merged(self):
        left = Substitution({X: a})
        right = Substitution({Y: b})
        merged = left.merged(right)
        assert merged == Substitution({X: a, Y: b})

    def test_merged_conflict(self):
        assert Substitution({X: a}).merged(Substitution({X: b})) is None

    def test_compose_applies_second_to_images(self):
        first = Substitution({X: Y})
        second = Substitution({Y: a})
        composed = first.compose(second)
        assert composed.apply_term(X) == a
        assert composed.apply_term(Y) == a

    def test_restrict(self):
        sub = Substitution({X: a, Y: b}).restrict([X])
        assert X in sub and Y not in sub


class TestProperties:
    def test_is_injective_on_true(self):
        sub = Substitution({X: a, Y: b})
        assert sub.is_injective_on([X, Y])

    def test_is_injective_on_false(self):
        sub = Substitution({X: a, Y: a})
        assert not sub.is_injective_on([X, Y])

    def test_injective_counts_unbound_identity(self):
        sub = Substitution({X: Y})
        # X -> Y and Y -> Y collide.
        assert not sub.is_injective_on([X, Y])

    def test_equality_and_hash(self):
        assert Substitution({X: a}) == Substitution({X: a})
        assert hash(Substitution({X: a})) == hash(Substitution({X: a}))

    def test_mapping_protocol(self):
        sub = Substitution({X: a, Y: b})
        assert len(sub) == 2
        assert set(sub) == {X, Y}
        assert sub[X] == a
