"""Tests for the SQL front-end."""

import pytest

from repro.containment import is_equivalent_to
from repro.datalog import parse_query
from repro.datalog.sql import SqlError, SqlSchema, parse_sql, to_sql
from repro.engine import Database, evaluate


SCHEMA = SqlSchema(
    {
        "car": ["make", "dealer"],
        "loc": ["dealer", "city"],
        "part": ["store", "make", "city"],
        "e": ["src", "dst"],
    }
)


class TestParse:
    def test_simple_scan(self):
        q = parse_sql("SELECT c.make, c.dealer FROM car c", SCHEMA)
        assert is_equivalent_to(q, parse_query("q(M, D) :- car(M, D)"))

    def test_join_on_equality(self):
        q = parse_sql(
            "SELECT c.make, l.city FROM car c, loc l "
            "WHERE c.dealer = l.dealer",
            SCHEMA,
        )
        expected = parse_query("q(M, C) :- car(M, D), loc(D, C)")
        assert is_equivalent_to(q, expected)

    def test_constant_selection(self):
        q = parse_sql(
            "SELECT c.make FROM car c WHERE c.dealer = 'anderson'", SCHEMA
        )
        assert is_equivalent_to(q, parse_query("q(M) :- car(M, anderson)"))

    def test_car_loc_part_query(self):
        """The paper's Example 1.1 query, written in SQL."""
        q = parse_sql(
            "SELECT p.store, l.city FROM car c, loc l, part p "
            "WHERE c.dealer = 'a' AND l.dealer = 'a' "
            "AND p.make = c.make AND p.city = l.city",
            SCHEMA,
            name="q1",
        )
        expected = parse_query(
            "q1(S, C) :- car(M, a), loc(a, C), part(S, M, C)"
        )
        assert is_equivalent_to(q, expected)

    def test_constant_propagates_through_equality_chain(self):
        q = parse_sql(
            "SELECT c.make FROM car c, loc l "
            "WHERE c.dealer = l.dealer AND l.dealer = 'a'",
            SCHEMA,
        )
        expected = parse_query("q(M) :- car(M, a), loc(a, C)")
        assert is_equivalent_to(q, expected)

    def test_table_as_alias(self):
        q = parse_sql("SELECT c.make FROM car AS c", SCHEMA)
        assert q.body[0].predicate == "car"

    def test_default_alias_is_table_name(self):
        q = parse_sql("SELECT car.make FROM car", SCHEMA)
        assert len(q.body) == 1

    def test_select_star(self):
        q = parse_sql("SELECT * FROM e", SCHEMA)
        assert is_equivalent_to(q, parse_query("q(X, Y) :- e(X, Y)"))

    def test_self_join(self):
        q = parse_sql(
            "SELECT a.src, b.dst FROM e a, e b WHERE a.dst = b.src", SCHEMA
        )
        expected = parse_query("q(X, Z) :- e(X, Y), e(Y, Z)")
        assert is_equivalent_to(q, expected)

    def test_comparison_predicate(self):
        q = parse_sql(
            "SELECT a.src FROM e a WHERE a.src <= a.dst", SCHEMA
        )
        assert q.body[1].predicate == "<="

    def test_numeric_literal(self):
        q = parse_sql("SELECT a.src FROM e a WHERE a.dst = 3", SCHEMA)
        assert evaluate(q, Database.from_dict({"e": [(1, 3), (2, 4)]})) == {(1,)}

    def test_distinct_keyword_accepted(self):
        q = parse_sql("SELECT DISTINCT c.make FROM car c", SCHEMA)
        assert q.arity == 1


class TestParseErrors:
    def test_unknown_table(self):
        with pytest.raises(SqlError):
            parse_sql("SELECT x.a FROM nope x", SCHEMA)

    def test_unknown_column(self):
        with pytest.raises(SqlError):
            parse_sql("SELECT c.nope FROM car c", SCHEMA)

    def test_unknown_alias(self):
        with pytest.raises(SqlError):
            parse_sql("SELECT z.make FROM car c", SCHEMA)

    def test_duplicate_alias(self):
        with pytest.raises(SqlError):
            parse_sql("SELECT c.make FROM car c, loc c", SCHEMA)

    def test_not_a_select(self):
        with pytest.raises(SqlError):
            parse_sql("DELETE FROM car", SCHEMA)

    def test_conflicting_constants(self):
        with pytest.raises(SqlError):
            parse_sql(
                "SELECT c.make FROM car c "
                "WHERE c.dealer = 'a' AND c.dealer = 'b'",
                SCHEMA,
            )


class TestRoundTrip:
    @pytest.mark.parametrize(
        "datalog",
        [
            "q(M, D) :- car(M, D)",
            "q(M, C) :- car(M, D), loc(D, C)",
            "q(M) :- car(M, anderson)",
            "q1(S, C) :- car(M, a), loc(a, C), part(S, M, C)",
            "q(X, Z) :- e(X, Y), e(Y, Z)",
            "q(X) :- e(X, X)",
        ],
    )
    def test_to_sql_then_parse_preserves_semantics(self, datalog):
        original = parse_query(datalog)
        sql = to_sql(original, SCHEMA)
        reparsed = parse_sql(sql, SCHEMA, name=original.name)
        assert is_equivalent_to(reparsed, original)

    def test_to_sql_renders_comparisons(self):
        q = parse_query("q(X, Y) :- e(X, Y), X <= Y")
        sql = to_sql(q, SCHEMA)
        assert "<=" in sql

    def test_to_sql_rejects_unbound_head(self):
        from repro.datalog import Atom, ConjunctiveQuery, Variable

        bad = ConjunctiveQuery(
            Atom("q", (Variable("Z"),)),
            (Atom("e", (Variable("X"), Variable("Y"))),),
        )
        with pytest.raises(SqlError):
            to_sql(bad, SCHEMA)
