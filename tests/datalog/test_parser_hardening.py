"""Hardening tests: malformed input maps to the precise taxonomy error.

Every failure mode carries a source position (offset + line/column, or a
``line N:`` prefix in :func:`parse_program`) and an ``exit_code`` drawn
from the shared taxonomy in :mod:`repro.errors`, so the CLI can turn any
of these into a distinct nonzero exit.
"""

import pytest

from repro.datalog import DatalogSyntaxError, parse_program, parse_query
from repro.errors import (
    ArityMismatchError,
    DuplicateViewError,
    ParseError,
    ReproError,
    UnknownViewError,
    UnsafeQueryError,
)
from repro.views import ViewCatalog


class TestSyntaxPositions:
    def test_unexpected_character_reports_position(self):
        with pytest.raises(ParseError, match=r"offset 8 \(line 1, column 9\)"):
            parse_query("q(X) :- @e(X)")

    def test_missing_paren_reports_position(self):
        with pytest.raises(ParseError, match=r"line 1, column"):
            parse_query("q(X :- e(X)")

    def test_truncated_input_names_end_of_input(self):
        with pytest.raises(ParseError, match="end of input"):
            parse_query("q(X) :- e(X,")

    def test_multiline_program_reports_line_and_column(self):
        text = "q(X) :- e(X)\np(Y) :- f(Y,"
        with pytest.raises(ParseError, match="line 2"):
            parse_program(text)

    def test_alias_still_catches_everything(self):
        """``DatalogSyntaxError`` predates the taxonomy; it must keep
        catching every parse-level failure, refined subtypes included."""
        assert DatalogSyntaxError is ParseError
        with pytest.raises(DatalogSyntaxError):
            parse_query("q(X) :- e(X", require_safe=True)
        with pytest.raises(DatalogSyntaxError):
            parse_query("q(X) :- e(Y)", require_safe=True)


class TestArityConsistency:
    def test_inconsistent_arity_within_rule(self):
        with pytest.raises(ArityMismatchError, match="arity"):
            parse_query(
                "q(X) :- e(X), e(X, X)", consistent_arities=True
            )

    def test_inconsistent_arity_across_program_names_both_lines(self):
        text = "q(X) :- e(X, X)\np(Y) :- e(Y)"
        with pytest.raises(ArityMismatchError, match="line 1") as info:
            parse_program(text)
        assert "line 2" in str(info.value)

    def test_permissive_by_default_for_single_queries(self):
        # Overloaded predicates are legal in a lone query: several
        # analyses construct them deliberately.
        parse_query("q(X) :- e(X), e(X, X)")

    def test_program_opt_out(self):
        rules = parse_program(
            "q(X) :- e(X, X)\np(Y) :- e(Y)", consistent_arities=False
        )
        assert len(rules) == 2


class TestSafety:
    def test_unsafe_head_rejected_when_requested(self):
        with pytest.raises(UnsafeQueryError, match="head variables"):
            parse_query("q(X, Y) :- e(X)", require_safe=True)

    def test_unsafe_head_error_names_the_variables(self):
        with pytest.raises(UnsafeQueryError, match="Y"):
            parse_query("q(X, Y) :- e(X)", require_safe=True)

    def test_safe_query_passes(self):
        parse_query("q(X) :- e(X, Y)", require_safe=True)

    def test_program_safety_opt_in(self):
        with pytest.raises(UnsafeQueryError, match="line 2"):
            parse_program(
                "q(X) :- e(X)\np(X, Y) :- e(X)", require_safe=True
            )


class TestCatalogErrors:
    def test_duplicate_view_name(self):
        with pytest.raises(DuplicateViewError, match="v1"):
            ViewCatalog(["v1(X) :- e(X)", "v1(Y) :- f(Y)"])

    def test_unknown_view_lists_registered_names(self):
        catalog = ViewCatalog(["v1(X) :- e(X)", "v2(Y) :- f(Y)"])
        with pytest.raises(UnknownViewError, match="v1, v2"):
            catalog.get("v9")


class TestExitCodes:
    @pytest.mark.parametrize(
        "error_type, code",
        [
            (ParseError, 65),
            (UnsafeQueryError, 66),
            (ArityMismatchError, 67),
            (UnknownViewError, 68),
            (DuplicateViewError, 71),
            (ReproError, 70),
        ],
    )
    def test_distinct_nonzero_exit_codes(self, error_type, code):
        assert error_type("boom").exit_code == code

    def test_all_taxonomy_errors_are_repro_errors(self):
        for error_type in (
            ParseError,
            UnsafeQueryError,
            ArityMismatchError,
            UnknownViewError,
            DuplicateViewError,
        ):
            assert issubclass(error_type, ReproError)
