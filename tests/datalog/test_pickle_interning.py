"""Pickle-safe interning for terms, atoms, and substitutions.

The parallel engine ships queries, catalogs, and outcomes across a
process boundary.  ``__reduce__`` on :class:`Variable`, :class:`Constant`
and :class:`Atom` routes unpickling through module-level intern pools,
so two copies of one object that cross a pickle round trip collapse back
to a *single* object in the receiving process and identity-keyed fast
paths (the :class:`InternTable`, shared-substitution checks) stay hot.
"""

import copy
import pickle

import pytest

from repro.datalog.atoms import clear_interned_atoms, make_atom
from repro.datalog.parser import parse_query
from repro.datalog.substitution import Substitution
from repro.datalog.terms import (
    Constant,
    Variable,
    clear_interned_terms,
    interned_constant,
    interned_variable,
)
from repro.datalog.interning import InternTable


@pytest.fixture(autouse=True)
def _fresh_pools():
    """Each test sees empty intern pools (they are process-global)."""
    clear_interned_terms()
    clear_interned_atoms()
    yield
    clear_interned_terms()
    clear_interned_atoms()


class TestTermRoundTrip:
    def test_two_unpickles_of_one_variable_are_identical(self):
        x = Variable("X")
        a = pickle.loads(pickle.dumps(x))
        b = pickle.loads(pickle.dumps(x))
        assert a == x
        assert a is b

    def test_two_unpickles_of_one_constant_are_identical(self):
        c = Constant(42)
        a = pickle.loads(pickle.dumps(c))
        b = pickle.loads(pickle.dumps(c))
        assert a == c
        assert a is b

    def test_interned_constructors_are_get_or_create(self):
        assert interned_variable("X") is interned_variable("X")
        assert interned_constant("paris") is interned_constant("paris")
        assert interned_variable("X") != interned_variable("Y")

    def test_unhashable_constant_falls_back_to_fresh_object(self):
        # Unhashable constant values are legal but cannot be pooled.
        assert interned_constant([1, 2]).value == [1, 2]
        assert interned_constant([1, 2]) is not interned_constant([1, 2])


class TestAtomRoundTrip:
    def test_atom_unpickles_to_one_canonical_object(self):
        atom = make_atom("edge", (Variable("X"), Constant(1)))
        a = pickle.loads(pickle.dumps(atom))
        b = pickle.loads(pickle.dumps(atom))
        assert a == atom
        assert a is b
        # Its terms were re-interned too.
        assert a.args[0] is interned_variable("X")

    def test_deepcopy_returns_the_interned_object(self):
        # __reduce__ also drives copy; for immutable atoms sharing is
        # exactly what we want.
        atom = pickle.loads(pickle.dumps(make_atom("r", (Variable("X"),))))
        assert copy.deepcopy(atom) is atom


class TestQueryRoundTrip:
    def test_query_round_trips_equal_with_shared_structure(self):
        q = parse_query("q(X, Z) :- car(X, Y), loc(Y, Z)")
        q2 = pickle.loads(pickle.dumps(q))
        q3 = pickle.loads(pickle.dumps(q))
        assert str(q2) == str(q)
        assert q2 == q
        assert q2.head is q3.head

    def test_intern_table_identity_fast_path_after_round_trip(self):
        """The InternTable's id()-keyed fast path must hold for atoms
        that crossed a process boundary: two unpickles are one object,
        so they share one structural key."""
        table = InternTable()
        atom = make_atom("edge", (Variable("X"), Variable("Y")))
        a = pickle.loads(pickle.dumps(atom))
        b = pickle.loads(pickle.dumps(atom))
        assert a is b
        assert table.atom_key(a) == table.atom_key(b)


class TestSubstitutionRoundTrip:
    def test_substitution_round_trips_with_interned_keys(self):
        x, y = Variable("X"), Variable("Y")
        sub = Substitution({x: Constant(1), y: Variable("Z")})
        sub2 = pickle.loads(pickle.dumps(sub))
        assert sub2.as_dict() == sub.as_dict()
        (kx, ky) = sorted(sub2.as_dict(), key=lambda v: v.name)
        assert kx is pickle.loads(pickle.dumps(x))
        assert ky is pickle.loads(pickle.dumps(y))
