"""Tests for terms: variables, constants, and the fresh-variable factory."""

import pytest

from repro.datalog import Constant, Variable, is_constant, is_variable
from repro.datalog.terms import FreshVariableFactory


class TestVariable:
    def test_equality_by_name(self):
        assert Variable("X") == Variable("X")
        assert Variable("X") != Variable("Y")

    def test_hashable(self):
        assert len({Variable("X"), Variable("X"), Variable("Y")}) == 2

    def test_str(self):
        assert str(Variable("Make")) == "Make"

    def test_is_variable(self):
        assert is_variable(Variable("X"))
        assert not is_variable(Constant("x"))


class TestConstant:
    def test_equality_by_value(self):
        assert Constant(1) == Constant(1)
        assert Constant(1) != Constant("1")

    def test_not_equal_to_variable(self):
        assert Constant("X") != Variable("X")

    def test_hashable_mixed_domain(self):
        values = {Constant(1), Constant("a"), Constant(("t", 2))}
        assert len(values) == 3

    def test_is_constant(self):
        assert is_constant(Constant("anderson"))
        assert not is_constant(Variable("D"))


class TestFreshVariableFactory:
    def test_avoids_reserved_names(self):
        factory = FreshVariableFactory(["F_0", "F_1"])
        fresh = factory.fresh("F")
        assert fresh.name not in {"F_0", "F_1"}

    def test_never_repeats(self):
        factory = FreshVariableFactory()
        produced = {factory.fresh() for _ in range(100)}
        assert len(produced) == 100

    def test_fresh_like_derives_name(self):
        factory = FreshVariableFactory()
        fresh = factory.fresh_like(Variable("City"))
        assert fresh.name.startswith("City")
        assert fresh != Variable("City")

    def test_reserve_extends_used_set(self):
        factory = FreshVariableFactory()
        first = factory.fresh("X")
        factory.reserve([f"X_{i}" for i in range(10)])
        second = factory.fresh("X")
        assert second.name not in {f"X_{i}" for i in range(10)}
        assert second != first

    def test_stream_yields_fresh_variables(self):
        factory = FreshVariableFactory()
        stream = factory.stream("S")
        names = {next(stream).name for _ in range(5)}
        assert len(names) == 5
