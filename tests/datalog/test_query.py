"""Tests for conjunctive queries."""

import pytest

from repro.datalog import (
    Atom,
    ConjunctiveQuery,
    Constant,
    Substitution,
    Variable,
    make_query,
    parse_query,
)
from repro.datalog.query import MalformedQueryError, fresh_factory_for


X, Y, Z = Variable("X"), Variable("Y"), Variable("Z")
a = Constant("a")


class TestStructure:
    def test_name_and_arity(self):
        q = parse_query("q(X, Y) :- e(X, Y)")
        assert q.name == "q"
        assert q.arity == 2
        assert len(q) == 1

    def test_head_variables_order_and_dedup(self):
        q = ConjunctiveQuery(Atom("q", (X, Y, X)), (Atom("e", (X, Y)),))
        assert q.head_variables() == (X, Y)

    def test_distinguished_and_existential(self):
        q = parse_query("q(X) :- e(X, Y), f(Y, Z)")
        assert q.distinguished_variables() == {X}
        assert q.existential_variables() == {Y, Z}

    def test_constants(self):
        q = parse_query("q(X) :- e(X, a), f(a, b)")
        assert q.constants() == {Constant("a"), Constant("b")}

    def test_predicates(self):
        q = parse_query("q(X) :- e(X, Y), f(Y, X), e(X, X)")
        assert q.predicates() == {"e", "f"}

    def test_atoms_with(self):
        q = parse_query("q(X) :- e(X, Y), f(Y, Z)")
        assert q.atoms_with(Y) == q.body
        assert q.atoms_with(X) == (q.body[0],)


class TestSafety:
    def test_safe_query(self):
        assert parse_query("q(X) :- e(X, Y)").is_safe()

    def test_unsafe_query(self):
        q = ConjunctiveQuery(Atom("q", (X,)), (Atom("e", (Y, Y)),))
        assert not q.is_safe()
        with pytest.raises(MalformedQueryError):
            q.check_safe()

    def test_make_query_checks_safety(self):
        with pytest.raises(MalformedQueryError):
            make_query("q", [X], [Atom("e", (Y, Z))])


class TestTransformations:
    def test_apply(self):
        q = parse_query("q(X) :- e(X, Y)")
        renamed = q.apply(Substitution({Y: Z}))
        assert renamed == parse_query("q(X) :- e(X, Z)")

    def test_without_atom(self):
        q = parse_query("q(X) :- e(X, Y), f(X, Z)")
        assert q.without_atom(0) == parse_query("q(X) :- f(X, Z)")

    def test_dedup_body(self):
        q = parse_query("q(X) :- e(X, Y), e(X, Y), f(X, X)")
        assert q.dedup_body() == parse_query("q(X) :- e(X, Y), f(X, X)")

    def test_rename_apart_disjoint(self):
        q = parse_query("q(X) :- e(X, Y)")
        factory = fresh_factory_for(q)
        renamed, renaming = q.rename_apart(factory)
        assert renamed.variables().isdisjoint(q.variables())
        assert renaming.apply_atom(q.head) == renamed.head

    def test_rename_apart_keep(self):
        q = parse_query("q(X) :- e(X, Y)")
        factory = fresh_factory_for(q)
        renamed, _renaming = q.rename_apart(factory, keep=[X])
        assert X in renamed.variables()
        assert Y not in renamed.variables()


class TestInvariants:
    def test_canonical_form_order_invariant(self):
        q1 = parse_query("q(X) :- e(X, Y), f(Y, X)")
        q2 = parse_query("q(X) :- f(Y, X), e(X, Y)")
        assert q1.canonical_form() == q2.canonical_form()

    def test_signature_equal_for_renamings(self):
        q1 = parse_query("q(X) :- e(X, Y), f(Y, a)")
        q2 = parse_query("q(U) :- e(U, V), f(V, a)")
        assert q1.signature() == q2.signature()

    def test_signature_distinguishes_constants(self):
        q1 = parse_query("q(X) :- e(X, a)")
        q2 = parse_query("q(X) :- e(X, b)")
        assert q1.signature() != q2.signature()

    def test_str_round_trip(self):
        text = "q(X, Y) :- e(X, Z), f(Z, Y)"
        assert str(parse_query(text)) == text
