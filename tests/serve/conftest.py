"""Shared fixtures for the serve-daemon suite."""

import pytest

from repro import ViewCatalog

QUERY = "q(X, Z) :- car(X, Y), loc(Y, Z)"


@pytest.fixture()
def catalog():
    return ViewCatalog(
        [
            "v1(X, Z) :- car(X, Y), loc(Y, Z)",
            "v2(X, Y) :- car(X, Y)",
        ]
    )


@pytest.fixture()
def query_text():
    return QUERY


class FakeClock:
    """A manually-advanced monotonic clock for deterministic timing."""

    def __init__(self, now: float = 0.0) -> None:
        self.now = now

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


@pytest.fixture()
def fake_clock():
    return FakeClock()
