"""Unit tests for the admission controller's shed-or-admit decision.

Everything here runs against an injected clock, so token-bucket refill
and retry hints are asserted exactly — no sleeping, no flakes.
"""

import pytest

from repro.errors import OverloadError, ShuttingDownError
from repro.serve.admission import (
    AdmissionController,
    AdmissionPolicy,
    TokenBucket,
)
from repro.testing.faults import inject


class TestTokenBucket:
    def test_burst_then_exact_refill_wait(self, fake_clock):
        bucket = TokenBucket(2.0, 2.0, clock=fake_clock)
        assert bucket.try_acquire() is None
        assert bucket.try_acquire() is None
        # Bucket empty: at 2 tokens/s the next token is 0.5s away.
        assert bucket.try_acquire() == pytest.approx(0.5)
        fake_clock.advance(0.5)
        assert bucket.try_acquire() is None

    def test_refill_caps_at_burst(self, fake_clock):
        bucket = TokenBucket(10.0, 3.0, clock=fake_clock)
        for _ in range(3):
            assert bucket.try_acquire() is None
        fake_clock.advance(100.0)
        for _ in range(3):
            assert bucket.try_acquire() is None
        assert bucket.try_acquire() is not None

    def test_zero_rate_never_refills(self, fake_clock):
        bucket = TokenBucket(0.0, 1.0, clock=fake_clock)
        assert bucket.try_acquire() is None
        wait = bucket.try_acquire()
        assert wait is not None and wait > 0
        fake_clock.advance(1e6)
        assert bucket.try_acquire() is not None


class TestAdmissionController:
    def test_healthy_admission_counts_and_fires(self, fake_clock):
        controller = AdmissionController(clock=fake_clock)
        with inject() as plan:
            controller.admit(queue_depth=0)
        assert controller.admitted == 1
        assert plan.observed["serve_admission"] == 1

    def test_draining_sheds_with_retry_hint(self, fake_clock):
        controller = AdmissionController(
            AdmissionPolicy(drain_retry_after=7.5), clock=fake_clock
        )
        controller.draining = True
        with pytest.raises(ShuttingDownError) as excinfo:
            controller.admit()
        assert excinfo.value.retry_after == 7.5
        assert excinfo.value.exit_code == 79
        assert controller.shed_draining == 1
        assert controller.admitted == 0

    def test_rate_limit_sheds_with_exact_wait(self, fake_clock):
        controller = AdmissionController(
            AdmissionPolicy(tenant_rate=1.0, tenant_burst=1.0),
            clock=fake_clock,
        )
        controller.admit(tenant="t")
        with pytest.raises(OverloadError) as excinfo:
            controller.admit(tenant="t")
        error = excinfo.value
        assert error.exit_code == 78
        assert error.reason == "rate_limited"
        # 1 request/second and an empty 1-token bucket: wait exactly 1s.
        assert error.retry_after == pytest.approx(1.0)
        assert controller.shed_rate_limited == 1

    def test_rate_limits_are_per_tenant(self, fake_clock):
        controller = AdmissionController(
            AdmissionPolicy(tenant_rate=1.0, tenant_burst=1.0),
            clock=fake_clock,
        )
        controller.admit(tenant="a")
        controller.admit(tenant="b")  # b has its own bucket
        with pytest.raises(OverloadError):
            controller.admit(tenant="a")

    def test_tenant_override_of_zero_blocks_the_tenant(self, fake_clock):
        controller = AdmissionController(
            AdmissionPolicy(tenant_rates={"noisy": 0.0}), clock=fake_clock
        )
        controller.admit(tenant="calm")  # default: unlimited
        with pytest.raises(OverloadError) as excinfo:
            controller.admit(tenant="noisy")
        assert excinfo.value.reason == "rate_limited"

    def test_queue_full_sheds_with_depth_and_hint(self, fake_clock):
        controller = AdmissionController(
            AdmissionPolicy(max_queue_depth=2), clock=fake_clock
        )
        controller.admit(queue_depth=1)
        with pytest.raises(OverloadError) as excinfo:
            controller.admit(queue_depth=2)
        error = excinfo.value
        assert error.reason == "queue_full"
        assert error.queue_depth == 2
        assert error.retry_after is not None and error.retry_after > 0
        assert controller.shed_queue_full == 1

    def test_queue_full_shed_does_not_debit_the_token_bucket(
        self, fake_clock
    ):
        controller = AdmissionController(
            AdmissionPolicy(
                max_queue_depth=1, tenant_rate=1.0, tenant_burst=1.0
            ),
            clock=fake_clock,
        )
        with pytest.raises(OverloadError) as excinfo:
            controller.admit(tenant="t", queue_depth=1)
        assert excinfo.value.reason == "queue_full"
        # The shed request never touched the bucket: once the queue has
        # room again the tenant's full burst is still available, so it
        # is not rate-limited for a request that was never admitted.
        controller.admit(tenant="t", queue_depth=0)
        assert controller.shed_rate_limited == 0

    def test_queue_hint_tracks_service_time_ewma(self, fake_clock):
        controller = AdmissionController(
            AdmissionPolicy(max_queue_depth=4), clock=fake_clock
        )
        baseline = controller.queue_retry_after(4)
        for _ in range(20):
            controller.record_service_time(2.0)
        assert controller.queue_retry_after(4) > baseline

    def test_shed_requests_are_not_counted_admitted(self, fake_clock):
        controller = AdmissionController(
            AdmissionPolicy(max_queue_depth=1), clock=fake_clock
        )
        with pytest.raises(OverloadError):
            controller.admit(queue_depth=1)
        stats = controller.stats()
        assert stats["admitted"] == 0
        assert stats["shed"]["queue_full"] == 1

    def test_shed_paths_do_not_fire_the_admission_point(self, fake_clock):
        controller = AdmissionController(
            AdmissionPolicy(max_queue_depth=1), clock=fake_clock
        )
        with inject() as plan:
            with pytest.raises(OverloadError):
                controller.admit(queue_depth=1)
        assert plan.observed["serve_admission"] == 0
