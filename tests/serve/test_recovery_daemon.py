"""Daemon-level durability: restart, recover, and keep serving.

These tests run real daemons (in-process, over real sockets) against a
shared ``--state-dir`` and check the end-to-end recovery contract: the
catalogs a tenant registered come back content-root-identical after a
drain→restart cycle, stale socket files and populated state dirs
interact correctly, quarantined content answers with exit 80 over the
wire, and the warm plan-cache/fingerprint machinery survives restarts.
"""

import os
import socket

from repro.parallel import SupervisorPolicy
from repro.parallel.worker import WorkerConfig
from repro.serve import ServeConfig
from repro.serve.journal import JOURNAL_NAME, CatalogJournal
from repro.serve.testing import running_daemon
from repro.service import ServicePolicy

from .conftest import QUERY

VIEWS = [
    "v1(X, Z) :- car(X, Y), loc(Y, Z)",
    "v2(X, Y) :- car(X, Y)",
]


def _config(tmp_path, **overrides):
    overrides.setdefault(
        "worker",
        WorkerConfig(policy=ServicePolicy(chain=("corecover",)), pool_size=2),
    )
    overrides.setdefault("supervisor", SupervisorPolicy(workers=1))
    overrides.setdefault("state_dir", str(tmp_path / "state"))
    return ServeConfig(**overrides)


def test_registered_catalogs_survive_drain_and_restart(tmp_path):
    config = _config(tmp_path)
    with running_daemon(config) as handle:
        with handle.client() as client:
            ack = client.register_catalog("t1", VIEWS)
            assert ack["status"] == "ok"
            client.update_catalog("t1", add=["w3(Y, Z) :- loc(Y, Z)"])
            stats = client.stats()
            root = stats["catalogs"]["t1"]["content_root"]
            assert stats["durability"]["journaled_ops"] == 2
    assert handle.join() == 0
    # The clean drain checkpointed: one snapshot, an empty journal.
    assert handle.daemon.final_checkpoint == {"seq": 2, "catalogs": 1}
    assert (tmp_path / "state" / JOURNAL_NAME).stat().st_size == 0

    with running_daemon(config) as handle:
        with handle.client() as client:
            health = client.healthz()
            assert health["recovered_catalogs"] == 1
            assert health["quarantined_catalogs"] == 0
            stats = client.stats()
            assert stats["catalogs"]["t1"]["content_root"] == root
            # Recovered content plans without re-registration.
            served = client.plan(QUERY, id="r1", catalog="t1")
            assert served["status"] == "ok"
    assert handle.join() == 0


def test_stale_socket_and_populated_state_dir_together(tmp_path):
    """Satellite: recovery and stale-socket unlink must compose.

    A SIGKILLed daemon leaves *both* artifacts behind — the bound Unix
    socket file and a journal with un-checkpointed tail records.  The
    next start must unlink the stale socket, recover the journaled
    catalogs, and serve on the same path.
    """
    path = str(tmp_path / "repro.sock")
    config = _config(tmp_path, unix_socket=path)
    with running_daemon(config) as handle:
        with handle.client() as client:
            client.register_catalog("t1", VIEWS)
            root = client.stats()["catalogs"]["t1"]["content_root"]
    assert handle.join() == 0
    # Simulate the kill-9 aftermath: a stale socket file reappears (the
    # dead daemon never unlinked it) next to the populated state dir.
    stale = socket.socket(socket.AF_UNIX)
    stale.bind(path)
    stale.close()
    assert os.path.exists(path)

    with running_daemon(config) as handle:
        assert handle.address == ("unix", path)
        with handle.client() as client:
            stats = client.stats()
            assert stats["catalogs"]["t1"]["content_root"] == root
            assert stats["durability"]["recovered_catalogs"] == 1
            served = client.plan(QUERY, id="again", catalog="t1")
            assert served["status"] == "ok"
    assert handle.join() == 0
    assert not os.path.exists(path)


def test_stats_counters_are_monotone_across_drain_restart_recover(tmp_path):
    """Satellite: within a daemon, counters only grow; across a restart,
    the journal sequence number carries forward monotonically."""
    config = _config(tmp_path)
    seen_seq = 0
    with running_daemon(config) as handle:
        with handle.client() as client:
            observed = []
            client.register_catalog("t1", VIEWS)
            observed.append(client.stats())
            client.plan(QUERY, id="p1", catalog="t1")
            observed.append(client.stats())
            client.update_catalog("t1", add=["w3(Y, Z) :- loc(Y, Z)"])
            observed.append(client.stats())
        for before, after in zip(observed, observed[1:]):
            for key in ("received", "responses"):
                assert after["requests"][key] >= before["requests"][key]
            assert (
                after["durability"]["last_seq"]
                >= before["durability"]["last_seq"]
            )
            assert (
                after["durability"]["journaled_ops"]
                >= before["durability"]["journaled_ops"]
            )
        seen_seq = observed[-1]["durability"]["last_seq"]
        assert seen_seq == 2
    assert handle.join() == 0

    with running_daemon(config) as handle:
        with handle.client() as client:
            stats = client.stats()
            # Sequence numbering survives compaction and restart: the
            # recovered daemon continues from the drained one's seq.
            assert stats["durability"]["last_seq"] >= seen_seq
            client.update_catalog("t1", remove=["w3"])
            after = client.stats()
            assert after["durability"]["last_seq"] == seen_seq + 1
    assert handle.join() == 0


def test_quarantined_catalog_answers_exit_80_over_the_wire(tmp_path):
    state = tmp_path / "state"
    state.mkdir()
    journal = CatalogJournal(state / JOURNAL_NAME)
    journal.append(
        {
            "op": "register",
            "name": "t-bad",
            "views": VIEWS,
            "root": "0" * 64,
        }
    )
    journal.close()
    with running_daemon(_config(tmp_path)) as handle:
        with handle.client() as client:
            health = client.healthz()
            assert health["status"] == "degraded"
            assert health["quarantined_catalogs"] == 1
            response = client.plan(QUERY, id="r1", catalog="t-bad")
            assert response["status"] == "error"
            assert response["error"]["error"] == "CatalogCorruptionError"
            assert response["error"]["exit_code"] == 80
            stats = client.stats()
            assert stats["catalogs"]["t-bad"]["quarantined"] is True
            # Re-registration clears the quarantine and restores service.
            ack = client.register_catalog("t-bad", VIEWS)
            assert ack["status"] == "ok"
            assert client.healthz()["quarantined_catalogs"] == 0
            served = client.plan(QUERY, id="r2", catalog="t-bad")
            assert served["status"] == "ok"
    assert handle.join() == 0


def test_remove_action_over_the_wire(tmp_path):
    config = _config(tmp_path)
    with running_daemon(config) as handle:
        with handle.client() as client:
            client.register_catalog("t1", VIEWS)
            ack = client.remove_catalog("t1")
            assert ack["status"] == "ok"
            assert ack["removed"] is True
            missing = client.plan(QUERY, id="gone", catalog="t1")
            assert missing["error"]["exit_code"] == 68
    assert handle.join() == 0
    with running_daemon(config) as handle:
        with handle.client() as client:
            assert client.healthz()["recovered_catalogs"] == 0
            still_missing = client.plan(QUERY, id="still", catalog="t1")
            assert still_missing["error"]["exit_code"] == 68
    assert handle.join() == 0


def test_update_with_bad_name_and_malformed_payload_reports_registry_error(
    tmp_path,
):
    """Satellite pin, daemon-side: the name check precedes shape checks."""
    with running_daemon(_config(tmp_path)) as handle:
        with handle.client() as client:
            response = client.request(
                {
                    "type": "catalog",
                    "action": "update",
                    "name": "no-such-catalog",
                    "add": "not-even-a-list",
                }
            )
            assert response["status"] == "error"
            assert response["error"]["error"] == "UnknownViewError"
            assert response["error"]["exit_code"] == 68
    assert handle.join() == 0


def test_warm_plan_cache_and_fingerprints_survive_restart(tmp_path):
    """The parallel tier's warm machinery keys on catalog content roots;
    recovery rebuilds byte-identical roots, so a restarted daemon serves
    cache hits for plans computed before the restart."""
    cache_dir = str(tmp_path / "cache")
    config = _config(
        tmp_path,
        worker=WorkerConfig(
            policy=ServicePolicy(chain=("corecover",)),
            pool_size=2,
            cache_dir=cache_dir,
        ),
    )
    with running_daemon(config) as handle:
        with handle.client() as client:
            client.register_catalog("t1", VIEWS)
            first = client.plan(QUERY, id="cold", catalog="t1")
            assert first["status"] == "ok"
            root = client.stats()["catalogs"]["t1"]["content_root"]
    assert handle.join() == 0

    with running_daemon(config) as handle:
        with handle.client() as client:
            assert client.stats()["catalogs"]["t1"]["content_root"] == root
            warm = client.plan(QUERY, id="warm", catalog="t1")
            assert warm["status"] == "ok"
            assert warm["cache"] == "hit", (
                "recovered catalog must hash to the same cache key"
            )
            assert warm["rewritings"] == first["rewritings"]
    assert handle.join() == 0


def test_drain_exposes_final_checkpoint_and_durability_stats(tmp_path):
    config = _config(tmp_path)
    with running_daemon(config) as handle:
        with handle.client() as client:
            client.register_catalog("t1", VIEWS)
            health = client.healthz()
            assert health["recovered_catalogs"] == 0
            assert health["compactions"] == 0
            stats = client.stats()
            assert stats["durability"]["state_dir"] == str(
                tmp_path / "state"
            )
            assert stats["durability"]["fsyncs"] == 1
    assert handle.join() == 0
    # The drain-time checkpoint is the operator's recovery receipt: it
    # rides on the CLI's drained event verbatim.
    assert handle.daemon.final_checkpoint == {"seq": 1, "catalogs": 1}
    durability = handle.daemon.catalogs.durability_stats()
    assert durability is not None
    assert durability["journaled_ops"] == 1
    assert durability["compactions"] == 1
