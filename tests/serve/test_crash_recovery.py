"""Kill-9 chaos: a real daemon subprocess dies mid-commit and recovers.

The durability contract under test is *committed-prefix exactness*: a
daemon SIGKILLed at a journal fault point must restart serving exactly
the operations it acknowledged — verified by comparing every recovered
catalog's ``content_root`` against an uncrashed in-memory oracle that
applied the same operation prefix.  ``kill:journal_append`` fires
*before* the record's bytes are written, so the crashed operation is
deterministically absent; ``kill:journal_fsync`` fires after the write
but before fsync, so recovery lands on the pre- or post-op state —
never on a torn or quarantined one.
"""

import json
import os
import signal
import subprocess
import sys
from pathlib import Path

from repro.serve.catalogs import CatalogRegistry
from repro.serve.client import ServeClient

REPO_ROOT = Path(__file__).resolve().parent.parent.parent

QUERY = "q(X, Z) :- car(X, Y), loc(Y, Z)"
VIEWS = [
    "v1(X, Z) :- car(X, Y), loc(Y, Z)",
    "v2(X, Y) :- car(X, Y)",
]

#: The mutation script both the daemon and the oracle run, in order.
#: Each entry is the kwargs of one registry operation.
OPS = [
    ("register", {"name": "t1", "views": VIEWS}),
    ("update", {"name": "t1", "add": ["w3(Y, Z) :- loc(Y, Z)"]}),
    ("update", {"name": "t1", "add": ["w4(X, Y) :- car(X, Y)"]}),
]


def _boot(state_dir, *, chaos=()):
    argv = [
        sys.executable, "-m", "repro", "serve", "run",
        "--host", "127.0.0.1", "--port", "0",
        "--workers", "1",
        "--state-dir", str(state_dir),
    ]
    for spec in chaos:
        argv += ["--chaos", spec]
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO_ROOT / "src")
    proc = subprocess.Popen(
        argv, env=env, cwd=REPO_ROOT,
        stdout=subprocess.PIPE, stderr=subprocess.PIPE, text=True,
    )
    ready_line = proc.stdout.readline()
    if not ready_line:
        proc.kill()
        raise RuntimeError(
            "daemon never became ready: " + proc.stderr.read()
        )
    ready = json.loads(ready_line)
    assert ready["event"] == "ready", ready
    return proc, ready["host"], ready["port"]


def _frame(index):
    """The wire frame for OPS[index]."""
    action, kwargs = OPS[index]
    return {"id": f"op-{index}", "type": "catalog", "action": action,
            **kwargs}


def _apply_prefix(count):
    """An uncrashed in-memory oracle after the first *count* operations."""
    oracle = CatalogRegistry()
    for action, kwargs in OPS[:count]:
        getattr(oracle, action)(**kwargs)
    return {
        name: oracle.get(name).content_root() for name in oracle.names()
    }


def _drive_until_killed(host, port, proc):
    """Send OPS one at a time; return how many were acknowledged."""
    acked = 0
    client = ServeClient(host, port, timeout=30.0)
    try:
        for index in range(len(OPS)):
            try:
                response = client.request(_frame(index))
            except (ConnectionError, OSError):
                break
            if response.get("status") != "ok":
                break
            acked += 1
    finally:
        client.close()
    proc.wait(timeout=30.0)
    return acked


def _recovered_roots(state_dir):
    """Boot a clean daemon on *state_dir*; return its catalog roots."""
    proc, host, port = _boot(state_dir)
    try:
        client = ServeClient(host, port, timeout=30.0)
        try:
            stats = client.stats()
            health = client.healthz()
            served = client.request(
                {"id": "probe", "query": QUERY, "catalog": "t1"}
            )
        finally:
            client.close()
        proc.send_signal(signal.SIGTERM)
        stdout_rest, stderr_rest = proc.communicate(timeout=60.0)
        assert proc.returncode == 0, stderr_rest[-2000:]
    finally:
        if proc.poll() is None:
            proc.kill()
            proc.communicate(timeout=30.0)
    roots = {
        name: entry["content_root"]
        for name, entry in stats["catalogs"].items()
        if "content_root" in entry
    }
    return roots, stats, health, served, stdout_rest


def test_sigkill_before_journal_write_recovers_exact_committed_prefix(
    tmp_path,
):
    state = tmp_path / "state"
    # The third append dies before any bytes reach the journal: ops 1-2
    # were acknowledged, op 3 never was.
    proc, host, port = _boot(
        state, chaos=["kill:journal_append:after=3"]
    )
    try:
        acked = _drive_until_killed(host, port, proc)
    finally:
        if proc.poll() is None:
            proc.kill()
            proc.communicate(timeout=30.0)
    assert proc.returncode == -signal.SIGKILL
    assert acked == 2, "the fault must land on the third commit"

    roots, stats, health, served, stdout_rest = _recovered_roots(state)
    assert roots == _apply_prefix(2), (
        "recovered state must equal the uncrashed oracle after exactly "
        "the acknowledged operations"
    )
    assert health["recovered_catalogs"] == 1
    assert health["quarantined_catalogs"] == 0
    assert served["status"] == "ok"
    # The recovered daemon's clean drain reports its checkpoint on the
    # drained event — the operator's receipt that the state dir is
    # compacted for the next boot.
    drained = None
    for line in stdout_rest.splitlines():
        try:
            event = json.loads(line)
        except ValueError:
            continue
        if event.get("event") == "drained":
            drained = event
    assert drained is not None
    assert drained["checkpoint"]["catalogs"] == 1
    assert drained["durability"]["recovered_catalogs"] == 1


def test_sigkill_before_fsync_recovers_a_committed_boundary(tmp_path):
    state = tmp_path / "state"
    # The second commit dies after its bytes were written but before
    # fsync: the record may or may not survive, but recovery must land
    # on a clean operation boundary either way — never a torn tail that
    # crashes the daemon, never a quarantine.
    proc, host, port = _boot(state, chaos=["kill:journal_fsync:after=2"])
    try:
        acked = _drive_until_killed(host, port, proc)
    finally:
        if proc.poll() is None:
            proc.kill()
            proc.communicate(timeout=30.0)
    assert proc.returncode == -signal.SIGKILL
    assert acked == 1, "the second commit must never be acknowledged"

    roots, stats, health, served, _ = _recovered_roots(state)
    assert roots in (_apply_prefix(1), _apply_prefix(2)), (
        "recovery must land on the state before or after the unsynced "
        "commit, never in between"
    )
    assert health["quarantined_catalogs"] == 0
    assert served["status"] == "ok"
