"""`serve send --retry-on`: backoff schedule and retry loop semantics."""

from repro.serve.client import RetryBackoff, ServeClient


def _shed(retry_after=None):
    error = {"error": "OverloadError", "exit_code": 78,
             "message": "queue full"}
    if retry_after is not None:
        error["retry_after"] = retry_after
    return {"id": "r", "status": "error", "error": error}


def _draining():
    return {
        "id": "r",
        "status": "error",
        "error": {"error": "ShuttingDownError", "exit_code": 79,
                  "message": "draining", "retry_after": 1.5},
    }


OK = {"id": "r", "status": "ok", "rewritings": []}


class _ScriptedClient(ServeClient):
    """A ServeClient whose wire is a canned response script."""

    def __init__(self, responses):
        # Deliberately skip ServeClient.__init__: no socket.
        self._responses = list(responses)
        self.sent = []

    def request(self, payload):
        self.sent.append(dict(payload))
        return self._responses.pop(0)


class TestRetryBackoff:
    def test_capped_exponential_without_hint(self):
        backoff = RetryBackoff(base=0.05, max_delay=1.0)
        delays = [backoff.delay(attempt) for attempt in range(8)]
        assert delays[:5] == [0.05, 0.1, 0.2, 0.4, 0.8]
        assert delays[5:] == [1.0, 1.0, 1.0]  # clamped, never unbounded

    def test_server_hint_wins_over_the_schedule(self):
        backoff = RetryBackoff(base=0.05, max_delay=5.0)
        # The daemon knows its refill rate: the hint IS the delay, on
        # every attempt, not a floor or a ceiling for the exponential.
        assert backoff.delay(0, retry_after=0.8) == 0.8
        assert backoff.delay(6, retry_after=0.8) == 0.8

    def test_hint_is_still_clamped_to_max_delay(self):
        backoff = RetryBackoff(base=0.05, max_delay=2.0)
        assert backoff.delay(0, retry_after=60.0) == 2.0

    def test_negative_hint_falls_back_to_schedule(self):
        backoff = RetryBackoff(base=0.1, max_delay=5.0)
        assert backoff.delay(2, retry_after=-1.0) == 0.4


class TestRequestWithRetry:
    def test_retries_until_success_and_counts(self):
        client = _ScriptedClient([_shed(), _shed(), OK])
        slept = []
        response, retries = client.request_with_retry(
            {"id": "r", "query": "q(X) :- car(X, X)"},
            sleep=slept.append,
        )
        assert response == OK
        assert retries == 2
        assert len(client.sent) == 3
        # No hints rode on the sheds: pure exponential schedule.
        assert slept == [0.05, 0.1]

    def test_honors_retry_after_hint_per_attempt(self):
        client = _ScriptedClient([_shed(retry_after=0.7), _draining(), OK])
        slept = []
        response, retries = client.request_with_retry(
            {"id": "r"}, sleep=slept.append
        )
        assert response == OK
        assert retries == 2
        assert slept == [0.7, 1.5]

    def test_gives_up_after_max_retries_returning_last_error(self):
        responses = [_shed() for _ in range(4)]
        client = _ScriptedClient(responses)
        slept = []
        response, retries = client.request_with_retry(
            {"id": "r"}, max_retries=3, sleep=slept.append
        )
        assert response["status"] == "error"
        assert retries == 3
        assert len(slept) == 3  # one wait per retry, none after giving up

    def test_non_retryable_error_returns_immediately(self):
        unknown_view = {
            "id": "r",
            "status": "error",
            "error": {"error": "UnknownViewError", "exit_code": 68,
                      "message": "no such catalog"},
        }
        client = _ScriptedClient([unknown_view])
        slept = []
        response, retries = client.request_with_retry(
            {"id": "r"}, sleep=slept.append
        )
        assert response == unknown_view
        assert retries == 0
        assert slept == []

    def test_retry_on_codes_are_configurable(self):
        # Only 79 is retryable here; the shed (78) must return as-is.
        client = _ScriptedClient([_shed()])
        response, retries = client.request_with_retry(
            {"id": "r"}, retry_on=(79,), sleep=lambda _s: None
        )
        assert response["error"]["exit_code"] == 78
        assert retries == 0

    def test_injected_backoff_is_used(self):
        client = _ScriptedClient([_shed(), OK])
        slept = []
        _response, retries = client.request_with_retry(
            {"id": "r"},
            backoff=RetryBackoff(base=2.0, max_delay=3.0),
            sleep=slept.append,
        )
        assert retries == 1
        assert slept == [2.0]


class TestServeSendRetryCli:
    def test_bad_retry_on_spec_is_a_parse_error(self, tmp_path, capsys):
        from repro.cli import main

        requests = tmp_path / "r.ndjson"
        requests.write_text('{"type": "healthz"}\n')
        code = main(
            [
                "serve", "send", str(requests),
                "--host", "127.0.0.1", "--port", "1",
                "--retry-on", "78,banana",
            ]
        )
        assert code == 65  # ParseError, before any connection attempt
        assert "--retry-on" in capsys.readouterr().err

    def test_summary_reports_retries_taken(self, tmp_path, capsys):
        """End-to-end: a draining daemon sheds, the client rides it out.

        Uses a daemon with admission capped at zero burst for one
        tenant so the first attempt sheds with a retry_after hint and
        the retry (after the token refills) succeeds.
        """
        from repro.cli import main
        from repro.parallel import SupervisorPolicy
        from repro.parallel.worker import WorkerConfig
        from repro.serve import AdmissionPolicy, ServeConfig
        from repro.serve.testing import running_daemon
        from repro.service import ServicePolicy
        from repro.views.view import ViewCatalog

        catalog = ViewCatalog(
            ["v1(X, Z) :- car(X, Y), loc(Y, Z)", "v2(X, Y) :- car(X, Y)"]
        )
        config = ServeConfig(
            worker=WorkerConfig(
                policy=ServicePolicy(chain=("corecover",)), pool_size=2
            ),
            supervisor=SupervisorPolicy(workers=1),
            # One request per second, no burst headroom: the second
            # frame in a tight loop sheds with a refill hint.
            admission=AdmissionPolicy(tenant_rate=1.0, tenant_burst=1),
        )
        requests = tmp_path / "r.ndjson"
        requests.write_text(
            '{"id": "a", "query": "q(X, Z) :- car(X, Y), loc(Y, Z)"}\n'
            '{"id": "b", "query": "q(X, Z) :- car(X, Y), loc(Y, Z)"}\n'
        )
        with running_daemon(config, catalog=catalog) as handle:
            host, port = handle.address[1], handle.address[2]
            code = main(
                [
                    "serve", "send", str(requests),
                    "--host", host, "--port", str(port),
                    "--retry-on", "78,79",
                    "--retry-base", "0.2",
                ]
            )
        assert handle.join() == 0
        assert code == 0
        captured = capsys.readouterr()
        assert "2 ok" in captured.err
        assert "retried" in captured.err

    def test_summary_is_unchanged_when_nothing_retried(
        self, tmp_path, capsys
    ):
        from repro.cli import main
        from repro.parallel import SupervisorPolicy
        from repro.parallel.worker import WorkerConfig
        from repro.serve import ServeConfig
        from repro.serve.testing import running_daemon
        from repro.service import ServicePolicy

        config = ServeConfig(
            worker=WorkerConfig(
                policy=ServicePolicy(chain=("corecover",)), pool_size=2
            ),
            supervisor=SupervisorPolicy(workers=1),
        )
        requests = tmp_path / "r.ndjson"
        requests.write_text('{"id": "h", "type": "healthz"}\n')
        with running_daemon(config) as handle:
            host, port = handle.address[1], handle.address[2]
            code = main(
                [
                    "serve", "send", str(requests),
                    "--host", host, "--port", str(port),
                    "--retry-on", "78,79",
                ]
            )
        assert handle.join() == 0
        assert code == 0
        err = capsys.readouterr().err
        assert "1 control" in err
        assert "retried" not in err
