"""Audit preflight on catalog register/update — registry and daemon.

With ``--audit-fail-on`` set, a catalog whose C1xx findings reach the
threshold never becomes visible to plan requests: a rejected
registration is not installed and a rejected update is rolled back.
Rejections travel as structured :class:`AnalysisError` frames (exit 73
through ``serve send``) carrying the offending diagnostics.
"""

import json

import pytest

from repro.errors import AnalysisError, UnknownViewError
from repro.serve import ServeClient, ServeConfig
from repro.serve.catalogs import CatalogRegistry
from repro.serve.testing import running_daemon
from repro.parallel import SupervisorPolicy
from repro.parallel.worker import WorkerConfig
from repro.service import ServicePolicy

from .conftest import QUERY

GOOD = [
    "v1(X, Z) :- car(X, Y), loc(Y, Z)",
    "v2(X, Y) :- car(X, Y)",
]
# C103 (ERROR): the comparison is false on every database.
UNSAT = "bad(X) :- car(X, Y), 2 > 3"
# C104 (WARNING): w2 duplicates w1 up to renaming.
TWINS = ["w1(X, Y) :- car(X, Y)", "w2(P, Q) :- car(P, Q)"]


def _config(**overrides):
    overrides.setdefault(
        "worker",
        WorkerConfig(policy=ServicePolicy(chain=("corecover",)), pool_size=2),
    )
    overrides.setdefault("supervisor", SupervisorPolicy(workers=2))
    return ServeConfig(**overrides)


class TestRegistryPreflight:
    def test_rejected_registration_is_not_installed(self):
        registry = CatalogRegistry(audit_fail_on="error")
        with pytest.raises(AnalysisError) as excinfo:
            registry.register("t1", GOOD + [UNSAT])
        assert excinfo.value.exit_code == 73
        assert {d.code for d in excinfo.value.diagnostics} == {"C103"}
        assert "t1" not in registry
        assert registry.registrations == 0
        assert registry.audit_rejections == 1

    def test_warnings_pass_at_error_threshold(self):
        registry = CatalogRegistry(audit_fail_on="error")
        ack = registry.register("t1", TWINS)
        assert ack["audit"]["diagnostics"]["warning"] >= 1
        assert "t1" in registry

    def test_warning_threshold_rejects_duplicates(self):
        registry = CatalogRegistry(audit_fail_on="warning")
        with pytest.raises(AnalysisError) as excinfo:
            registry.register("t1", TWINS)
        assert any(d.code == "C104" for d in excinfo.value.diagnostics)

    def test_disabled_registry_never_audits(self):
        for off in (None, "never"):
            registry = CatalogRegistry(audit_fail_on=off)
            assert registry.auditing is False
            ack = registry.register("t1", GOOD + [UNSAT])
            assert "audit" not in ack
            assert registry.audits == 0

    def test_rejected_update_rolls_back_added_view(self):
        registry = CatalogRegistry(audit_fail_on="error")
        registry.register("t1", GOOD)
        catalog = registry.get("t1")
        before_root = catalog.content_root()
        before_names = catalog.names()
        with pytest.raises(AnalysisError):
            registry.update("t1", add=[UNSAT])
        assert catalog.content_root() == before_root
        assert catalog.names() == before_names
        assert registry.updates == 0

    def test_rejected_update_rolls_back_replacement(self):
        registry = CatalogRegistry(audit_fail_on="error")
        registry.register("t1", GOOD)
        catalog = registry.get("t1")
        before_root = catalog.content_root()
        with pytest.raises(AnalysisError):
            registry.update(
                "t1", replace=["v2(X, Y) :- car(X, Y), 2 > 3"]
            )
        assert catalog.content_root() == before_root

    def test_audit_is_incremental_across_updates(self):
        registry = CatalogRegistry(audit_fail_on="error")
        ack = registry.register(
            "t1", ["a1(X, Y) :- r1(X, Y)", "a2(X, Y) :- r2(X, Y)"]
        )
        assert ack["audit"]["views_analyzed"] == 2
        ack = registry.update("t1", add=["a3(X, Y) :- r3(X, Y)"])
        # The new view shares no predicate with the old ones, so only
        # it is re-analyzed; both existing units are cache hits.
        assert ack["audit"]["views_analyzed"] == 1
        assert ack["audit"]["views_reused"] == 2

    def test_stats_reports_per_catalog_diagnostics(self):
        registry = CatalogRegistry(audit_fail_on="error")
        registry.register("t1", TWINS)
        stats = registry.stats()
        assert stats["t1"]["diagnostics"] == {
            "error": 0,
            "warning": 1,
            "info": 0,
        }


class TestDaemonPreflight:
    def test_register_rejection_over_the_wire(self, catalog):
        config = _config(audit_fail_on="error")
        with running_daemon(config, catalog=catalog) as handle:
            with handle.client() as client:
                response = client.register_catalog(
                    "tenant-a", GOOD + [UNSAT]
                )
                assert response["status"] == "error"
                error = response["error"]
                assert error["error"] == "AnalysisError"
                assert error["exit_code"] == 73
                codes = {d["code"] for d in error["diagnostics"]}
                assert "C103" in codes
                with pytest.raises(AnalysisError) as excinfo:
                    ServeClient.raise_for_response(response)
                assert excinfo.value.diagnostics
                # The rejected catalog never became plannable.
                missing = client.plan(QUERY, id="m", catalog="tenant-a")
                assert missing["error"]["error"] == "UnknownViewError"
                with pytest.raises(UnknownViewError):
                    ServeClient.raise_for_response(missing)
                stats = client.stats()
                assert stats["audit"] == {
                    "enabled": True,
                    "audits": 1,
                    "rejections": 1,
                }
        assert handle.join() == 0

    def test_update_rejection_keeps_serving_old_content(self, catalog):
        config = _config(audit_fail_on="error")
        with running_daemon(config, catalog=catalog) as handle:
            with handle.client() as client:
                ack = client.register_catalog("tenant-a", GOOD)
                assert ack["status"] == "ok"
                assert ack["audit"]["views_analyzed"] == 2
                rejected = client.update_catalog("tenant-a", add=[UNSAT])
                assert rejected["status"] == "error"
                assert rejected["error"]["exit_code"] == 73
                # The catalog still serves with its accepted content.
                served = client.plan(QUERY, id="ok", catalog="tenant-a")
                assert served["status"] == "ok"
                stats = client.stats()
                entry = stats["catalogs"]["tenant-a"]
                assert entry["views"] == 2
                assert entry["diagnostics"]["error"] == 0
        assert handle.join() == 0

    def test_audit_disabled_by_default(self, catalog):
        with running_daemon(_config(), catalog=catalog) as handle:
            with handle.client() as client:
                ack = client.register_catalog("t", GOOD + [UNSAT])
                assert ack["status"] == "ok"
                assert "audit" not in ack
                stats = client.stats()
                assert stats["audit"]["enabled"] is False
        assert handle.join() == 0


def test_serve_send_exits_73_on_audit_rejection(catalog, tmp_path, capsys):
    from repro.cli import main

    config = _config(audit_fail_on="error")
    with running_daemon(config, catalog=catalog) as handle:
        requests = tmp_path / "requests.ndjson"
        requests.write_text(
            json.dumps(
                {
                    "id": "reg",
                    "type": "catalog",
                    "action": "register",
                    "name": "tenant-a",
                    "views": GOOD + [UNSAT],
                }
            )
            + "\n"
        )
        _, host, port = handle.address
        code = main(
            [
                "serve", "send", str(requests),
                "--host", host, "--port", str(port),
                "--format", "json",
            ]
        )
        captured = capsys.readouterr()
        assert code == 73
        (line,) = [
            json.loads(line) for line in captured.out.splitlines()
        ]
        assert line["error"]["error"] == "AnalysisError"
        assert line["error"]["diagnostics"]
    assert handle.join() == 0
