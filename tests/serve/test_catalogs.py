"""Catalog-registry tests: named registration, incremental update, errors."""

import pytest

from repro.errors import ParseError, UnknownViewError
from repro.serve.catalogs import CatalogRegistry

V1 = "v1(X, Z) :- car(X, Y), loc(Y, Z)"
V2 = "v2(X, Y) :- car(X, Y)"
V2_PRIME = "v2(X, Y) :- car(Y, X)"
W3 = "w3(Y, Z) :- loc(Y, Z)"


def test_register_and_get():
    registry = CatalogRegistry()
    ack = registry.register("t1", [V1, V2])
    assert ack["catalog"] == "t1"
    assert ack["replaced"] is False
    assert ack["views"] == 2
    assert ack["version"] == len(registry.get("t1"))
    assert "t1" in registry
    assert len(registry.get("t1")) == 2


def test_register_replaces_wholesale():
    registry = CatalogRegistry()
    registry.register("t1", [V1, V2])
    ack = registry.register("t1", [W3])
    assert ack["replaced"] is True
    assert ack["views"] == 1
    assert registry.registrations == 2


def test_empty_name_rejected():
    registry = CatalogRegistry()
    with pytest.raises(ParseError):
        registry.register("", [V1])


def test_unknown_catalog_is_taxonomy_error():
    registry = CatalogRegistry()
    with pytest.raises(UnknownViewError) as excinfo:
        registry.get("nope")
    assert excinfo.value.exit_code == 68


def test_resolve_prefers_name_then_default(catalog):
    registry = CatalogRegistry()
    registry.register("t1", [W3])
    assert registry.resolve("t1", catalog) is registry.get("t1")
    assert registry.resolve(None, catalog) is catalog
    with pytest.raises(UnknownViewError):
        registry.resolve(None, None)


def test_update_applies_deltas_and_advances_version():
    registry = CatalogRegistry()
    registry.register("t1", [V1, V2])
    before = registry.get("t1")
    before_root = before.content_root()
    before_version = before.version
    ack = registry.update(
        "t1", add=[W3], remove=["v1"], replace=[V2_PRIME]
    )
    assert ack["views"] == 2  # -v1, ~v2, +w3
    assert ack["version"] == before_version + 3  # three deltas applied
    assert len(ack["deltas"]) == 3
    assert ack["content_root"] != before_root
    assert registry.updates == 1
    names = {view.name for view in registry.get("t1")}
    assert names == {"v2", "w3"}


def test_update_removal_of_missing_view_raises():
    registry = CatalogRegistry()
    registry.register("t1", [V1])
    with pytest.raises(UnknownViewError):
        registry.update("t1", remove=["ghost"])


def test_stats_snapshot():
    registry = CatalogRegistry()
    registry.register("b", [V1])
    registry.register("a", [V2, W3])
    stats = registry.stats()
    assert list(stats) == ["a", "b"]
    assert stats["a"]["views"] == 2
    assert stats["b"]["views"] == 1
    assert isinstance(stats["b"]["content_root"], str)
