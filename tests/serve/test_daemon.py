"""End-to-end tests for the planning daemon over its real socket.

The acceptance scenario from the issue lives here: SIGTERM-style drain
under a 50-request load must settle every request within the drain
deadline, exit 0, never drop a request silently, and leave the plan
cache intact for a warm follow-up run.
"""

import json
import os
import socket
import time

import pytest

from repro.errors import (
    OverloadError,
    ParseError,
    ShuttingDownError,
    UnknownViewError,
)
from repro.parallel import SupervisorPolicy
from repro.serve import AdmissionPolicy, ServeClient, ServeConfig
from repro.serve.testing import running_daemon
from repro.service import ServicePolicy
from repro.parallel.worker import WorkerConfig
from repro.testing.faults import ExitFault, StallFault, inject

from .conftest import QUERY


def _wait_until(predicate, timeout=30.0):
    limit = time.monotonic() + timeout
    while time.monotonic() < limit:
        if predicate():
            return True
        time.sleep(0.02)
    return False


def _config(**overrides):
    overrides.setdefault(
        "worker",
        WorkerConfig(policy=ServicePolicy(chain=("corecover",)), pool_size=2),
    )
    overrides.setdefault("supervisor", SupervisorPolicy(workers=2))
    return ServeConfig(**overrides)


def test_plan_roundtrip_and_health(catalog):
    with running_daemon(_config(), catalog=catalog) as handle:
        with handle.client() as client:
            health = client.healthz()
            assert health["status"] == "healthy"
            assert health["workers"] == 2
            response = client.plan(QUERY, id="r1")
            assert response["id"] == "r1"
            assert response["status"] == "ok"
            assert response["backend_used"] == "corecover"
            assert response["rewritings"]
            stats = client.stats()
            assert stats["admission"]["admitted"] == 1
            assert stats["requests"]["errors"] == 0
    assert handle.join() == 0


def test_bad_requests_answer_per_request_and_daemon_survives(catalog):
    with running_daemon(_config(), catalog=catalog) as handle:
        with handle.client() as client:
            bad = client.plan("q(X :- broken", id="bad")
            assert bad["status"] == "error"
            assert bad["error"]["error"] == "ParseError"
            assert bad["error"]["exit_code"] == 65
            with pytest.raises(ParseError):
                ServeClient.raise_for_response(bad)

            unknown_type = client.request({"type": "telnet", "id": "t"})
            assert unknown_type["status"] == "error"

            missing_catalog = client.plan(QUERY, id="m", catalog="ghost")
            assert missing_catalog["error"]["error"] == "UnknownViewError"
            with pytest.raises(UnknownViewError):
                ServeClient.raise_for_response(missing_catalog)

            # Garbage on the wire gets an error frame, not a hangup.
            client.send({"query": QUERY})  # warm the line
            client.recv()
            client._file.write(b"{not json\n")
            client._file.flush()
            junk = client.recv()
            assert junk["status"] == "error"
            assert junk["error"]["error"] == "ParseError"

            # After all that abuse the daemon still serves.
            good = client.plan(QUERY, id="ok")
            assert good["status"] == "ok"
    assert handle.join() == 0


def test_named_catalogs_register_update_and_serve(catalog):
    with running_daemon(_config(), catalog=catalog) as handle:
        with handle.client() as client:
            ack = client.register_catalog(
                "tenant-a", ["w1(X, Z) :- car(X, Y), loc(Y, Z)"]
            )
            assert ack["status"] == "ok"
            assert ack["views"] == 1
            served = client.plan(QUERY, id="a1", catalog="tenant-a")
            assert served["status"] == "ok"

            update = client.update_catalog(
                "tenant-a", add=["w2(X, Y) :- car(X, Y)"]
            )
            assert update["status"] == "ok"
            assert update["deltas"]
            stats = client.stats()
            assert stats["catalogs"]["tenant-a"]["views"] == 2
    assert handle.join() == 0


def test_rate_limited_tenant_sheds_with_retry_after(catalog):
    config = _config(
        admission=AdmissionPolicy(tenant_rates={"noisy": 0.0})
    )
    with running_daemon(config, catalog=catalog) as handle:
        with handle.client() as client:
            ok = client.plan(QUERY, id="calm-1", tenant="calm")
            assert ok["status"] == "ok"
            shed = client.plan(QUERY, id="noisy-1", tenant="noisy")
            assert shed["status"] == "error"
            assert shed["error"]["error"] == "OverloadError"
            assert shed["error"]["exit_code"] == 78
            assert shed["error"]["retry_after"] > 0
            with pytest.raises(OverloadError):
                ServeClient.raise_for_response(shed)
            stats = client.stats()
            assert stats["admission"]["shed"]["rate_limited"] == 1
    assert handle.join() == 0


def test_drain_message_stops_admission_and_exits_clean(catalog):
    config = _config(
        supervisor=SupervisorPolicy(workers=1, heartbeat_grace=60.0),
    )
    # Keep one request in flight for ~1s so the drain has work to
    # settle — which also guarantees the daemon is still alive to
    # answer the late arrival below.
    with inject(StallFault("worker_dispatch", seconds=1.0)):
        with running_daemon(config, catalog=catalog) as handle:
            with handle.client(timeout=60.0) as client:
                client.send({"query": QUERY, "id": "r1"})
                assert _wait_until(
                    lambda: handle.daemon.pool.busy_workers() == 1
                )
                ack = client.drain()
                assert ack["status"] == "draining"
                late = client.plan(QUERY, id="late")
                assert late["status"] == "error"
                assert late["error"]["error"] == "ShuttingDownError"
                assert late["error"]["exit_code"] == 79
                with pytest.raises(ShuttingDownError):
                    ServeClient.raise_for_response(late)
                settled = client.recv()
                assert settled["id"] == "r1"
                assert settled["status"] == "ok"
        assert handle.join() == 0
    report = handle.daemon.drain_report
    assert report is not None and report["drained"] is True


def test_deadline_spent_queued_is_answered_not_planned(catalog):
    # One dispatcher and a stalled first request force the second to
    # sit queued past its whole deadline; it must come back as a
    # structured BudgetExceededError without ever reaching a worker.
    config = _config(
        dispatchers=1,
        supervisor=SupervisorPolicy(workers=1, heartbeat_grace=60.0),
    )
    stall = StallFault("worker_dispatch", seconds=1.0)
    with inject(stall):
        with running_daemon(config, catalog=catalog) as handle:
            with handle.client() as slow, handle.client() as fast:
                slow.send({"query": QUERY, "id": "slow"})
                assert _wait_until(
                    lambda: handle.daemon.pool.busy_workers() == 1
                )
                fast.send({"query": QUERY, "id": "fast", "timeout": 0.1})
                fast_response = fast.recv()
                slow_response = slow.recv()
            assert slow_response["status"] == "ok"
            assert fast_response["status"] == "error"
            assert fast_response["error"]["error"] == "BudgetExceededError"
            assert "queued" in fast_response["error"]["message"]
        assert handle.join() == 0


def test_worker_kill_mid_request_degrades_only_that_request(catalog):
    config = _config(
        supervisor=SupervisorPolicy(workers=1, heartbeat_grace=60.0),
    )
    # The third dispatched request kills its worker mid-plan.
    with inject(ExitFault("worker_dispatch", after=3)):
        with running_daemon(config, catalog=catalog) as handle:
            with handle.client() as client:
                responses = [
                    client.plan(QUERY, id=f"r{i}", timeout=20.0)
                    for i in range(5)
                ]
            failed = [r for r in responses if r["status"] == "failed"]
            assert len(failed) == 1
            assert failed[0]["id"] == "r2"
            assert failed[0]["error"]["error"] == "WorkerCrashError"
            assert failed[0]["error"]["exit_code"] == 77
            ok = [r for r in responses if r["status"] == "ok"]
            assert len(ok) == 4
            with handle.client() as client:
                health = client.healthz()
                assert health["status"] == "degraded"
        assert handle.join() == 0


def test_sigterm_drain_under_load_settles_every_request(catalog, tmp_path):
    """The issue's acceptance scenario, in-process.

    50 pipelined requests; a drain lands mid-load.  Every request must
    get a terminal response (ok, or a structured shed/abort error),
    the daemon must exit 0 within the drain deadline, and the plan
    cache must be intact for a warm follow-up run.
    """
    cache_dir = str(tmp_path / "cache")
    config = _config(
        worker=WorkerConfig(
            policy=ServicePolicy(chain=("corecover",)),
            pool_size=2,
            cache_dir=cache_dir,
        ),
        supervisor=SupervisorPolicy(workers=2),
        drain_deadline=30.0,
    )
    total = 50
    # Each dispatch stalls 50ms so a real backlog exists when the
    # drain lands — the drain must settle it, not abort it.
    with inject(StallFault("worker_dispatch", seconds=0.05, times=None)):
        with running_daemon(config, catalog=catalog) as handle:
            with handle.client(timeout=120.0) as client:
                for i in range(total):
                    client.send({"query": QUERY, "id": f"r{i}"})
                # All frames admitted; a backlog is still outstanding.
                assert _wait_until(
                    lambda: handle.daemon.requests_total >= total
                )
                assert (
                    handle.daemon._queue.qsize()
                    + handle.daemon.pool.outstanding()
                    > 0
                ), "the drain must land while work is still in flight"
                # SIGTERM equivalent: the signal handler calls exactly
                # this, from the loop's callback context.
                handle.begin_drain("signal:SIGTERM")
                responses = [client.recv() for _ in range(total)]
        exit_code = handle.join(timeout=120.0)

    assert len(responses) == total, "no request may be silently dropped"
    by_id = {r["id"] for r in responses}
    assert by_id == {f"r{i}" for i in range(total)}
    for response in responses:
        assert response["status"] in ("ok", "degraded"), (
            "an admitted request must be settled by the drain, "
            f"got {response!r}"
        )
    assert exit_code == 0, "a graceful drain exits 0"
    report = handle.daemon.drain_report
    assert report is not None
    assert report["drained"] is True
    assert report["aborted"] == 0

    # The flushed cache must serve a warm follow-up run.
    flushed = handle.daemon.cache_entries_flushed
    assert flushed is not None and flushed >= 1
    with running_daemon(config, catalog=catalog) as handle2:
        with handle2.client() as client:
            warm = client.plan(QUERY, id="warm")
            assert warm["status"] == "ok"
            assert warm["cache"] == "hit"
            assert warm["attempts"] == 0
    assert handle2.join() == 0


def test_drain_deadline_aborts_stuck_work_instead_of_hanging(catalog):
    """A blown drain deadline must abort, answer, and exit 79 — not hang.

    One worker is stuck far past the deadline (still heartbeating, no
    request deadline of its own) and a second request sits queued
    behind it.  The drain must kill the stuck worker, answer *both*
    requests with a structured ShuttingDownError, and exit 79 shortly
    after the deadline — not plan the backlog late or wait forever.
    """
    config = _config(
        dispatchers=1,
        supervisor=SupervisorPolicy(workers=1, heartbeat_grace=120.0),
        drain_deadline=1.0,
    )
    with inject(StallFault("worker_dispatch", seconds=120.0)):
        with running_daemon(config, catalog=catalog) as handle:
            with handle.client(timeout=60.0) as client:
                client.send({"query": QUERY, "id": "stuck"})
                assert _wait_until(
                    lambda: handle.daemon.pool.busy_workers() == 1
                )
                client.send({"query": QUERY, "id": "queued"})
                assert _wait_until(
                    lambda: handle.daemon.requests_total >= 2
                )
                started = time.monotonic()
                handle.begin_drain("signal:SIGTERM")
                responses = {}
                for _ in range(2):
                    response = client.recv()
                    responses[response["id"]] = response
        exit_code = handle.join(timeout=60.0)
        elapsed = time.monotonic() - started

    assert set(responses) == {"stuck", "queued"}
    # The killed in-flight request settles as a structured "failed"
    # outcome; the never-submitted backlog request as an error frame.
    # Both carry ShuttingDownError — neither is planned late or dropped.
    for response in responses.values():
        assert response["status"] in ("failed", "error")
        assert response["error"]["error"] == "ShuttingDownError"
        assert response["error"]["exit_code"] == 79
    assert exit_code == 79, "a deadline-violating drain is not clean"
    assert elapsed < 30.0, "the drain must not wait out the 120s stall"
    report = handle.daemon.drain_report
    assert report is not None and report["drained"] is False


def test_unix_socket_path_is_reusable_across_runs(catalog, tmp_path):
    path = str(tmp_path / "repro.sock")
    # A dead daemon (killed, or a pre-fix clean exit) leaves the bound
    # socket file behind; startup must treat it as stale and rebind.
    stale = socket.socket(socket.AF_UNIX)
    stale.bind(path)
    stale.close()
    assert os.path.exists(path)
    config = _config(unix_socket=path)
    for run in range(2):
        with running_daemon(config, catalog=catalog) as handle:
            assert handle.address == ("unix", path)
            with handle.client() as client:
                served = client.plan(QUERY, id=f"run-{run}")
                assert served["status"] == "ok"
        assert handle.join() == 0
        assert not os.path.exists(path), "clean drain removes the socket"


def test_serve_send_counts_control_frames_separately(
    catalog, tmp_path, capsys
):
    """A healthz answer on the degraded rung must not count as a plan.

    The daemon's ladder status strings overlap the plan-outcome vocabulary
    ("degraded"), so the CLI summary must classify by request type.
    """
    from repro.cli import main

    with running_daemon(_config(), catalog=catalog) as handle:
        handle.daemon.degraded_served = 1  # pin the ladder on "degraded"
        requests = tmp_path / "requests.ndjson"
        requests.write_text(
            json.dumps({"id": "h", "type": "healthz"})
            + "\n"
            + json.dumps({"id": "p", "query": QUERY})
            + "\n"
        )
        _, host, port = handle.address
        code = main(
            [
                "serve", "send", str(requests),
                "--host", host, "--port", str(port),
                "--format", "json",
            ]
        )
        captured = capsys.readouterr()
        assert code == 0
        lines = [json.loads(line) for line in captured.out.splitlines()]
        assert [r["status"] for r in lines] == ["degraded", "ok"]
        assert (
            "serve send: 1 ok, 0 degraded, 0 failed, 0 error, 1 control"
            in captured.err
        )
    assert handle.join() == 0


def test_stats_are_json_serializable(catalog):
    with running_daemon(_config(), catalog=catalog) as handle:
        with handle.client() as client:
            client.plan(QUERY, id="r1")
            stats = client.stats()
        json.dumps(stats)
        assert stats["queue_capacity"] == 64
        assert stats["pool"]["completed"] >= 1
    assert handle.join() == 0


def test_stats_aggregate_profile_search_counters():
    """Profiled outcome lines fold into ``stats()`` phase + search totals."""
    from repro.serve.daemon import PlanningDaemon

    daemon = PlanningDaemon(_config())
    for payload in (
        {"profile": {"phase_seconds": {"parse": 0.5, "set_cover": 0.25},
                     "search": {"hom_searches": 3, "hom_nodes": 40,
                                "fast_path_searches": 2}}},
        {"profile": {"phase_seconds": {"parse": 0.25},
                     "search": {"hom_searches": 1, "hom_nodes": 5,
                                "fast_path_searches": 0}}},
        {"profile": None},  # unprofiled outcomes are ignored
    ):
        daemon._absorb_profile(payload)
    profile = daemon.stats()["profile"]
    assert profile["requests"] == 2
    assert profile["phase_seconds"]["parse"] == 0.75
    assert profile["search"] == {
        "hom_searches": 4, "hom_nodes": 45, "fast_path_searches": 2
    }
