"""Durable-registry tests: journal-then-apply, recovery, quarantine.

The contract under test is the commit protocol in
:class:`repro.serve.catalogs.CatalogRegistry`: visible state never runs
ahead of the journal, recovery rebuilds exactly the journaled prefix,
and content that fails root verification is quarantined behind
:class:`~repro.errors.CatalogCorruptionError` (exit 80) instead of
served.
"""

import pytest

from repro.errors import (
    AnalysisError,
    CatalogCorruptionError,
    ParseError,
    UnknownViewError,
)
from repro.serve.catalogs import CatalogRegistry
from repro.serve.journal import JOURNAL_NAME, CatalogJournal, scan_journal
from repro.testing.faults import RaiseFault, inject

V1 = "v1(X, Z) :- car(X, Y), loc(Y, Z)"
V2 = "v2(X, Y) :- car(X, Y)"
V2_PRIME = "v2(X, Y) :- car(Y, X)"
W3 = "w3(Y, Z) :- loc(Y, Z)"


def _registry(tmp_path, **kwargs):
    kwargs.setdefault("state_dir", tmp_path / "state")
    return CatalogRegistry(**kwargs)


def test_all_mutations_survive_restart(tmp_path):
    registry = _registry(tmp_path)
    registry.register("t1", [V1, V2])
    registry.register("t2", [W3])
    registry.update("t1", remove=["v2"], add=[W3])
    registry.update("t1", replace=[V1.replace("car(X, Y)", "car(Y, X)")])
    registry.remove("t2")
    roots = {name: registry.get(name).content_root()
             for name in registry.names()}
    registry.close()

    recovered = _registry(tmp_path)
    assert recovered.names() == ("t1",)
    assert recovered.quarantined_names() == ()
    assert {
        name: recovered.get(name).content_root()
        for name in recovered.names()
    } == roots
    assert recovered.replayed_ops == 5
    assert recovered.recovered_catalogs == 1


def test_recovered_catalog_preserves_view_iteration_order(tmp_path):
    registry = _registry(tmp_path)
    registry.register("t1", [V1, V2, W3])
    order = [view.name for view in registry.get("t1")]
    registry.close()
    recovered = _registry(tmp_path)
    assert [view.name for view in recovered.get("t1")] == order


def test_rejected_registration_is_not_journaled(tmp_path):
    registry = _registry(tmp_path)
    registry.register("t1", [V1])
    with pytest.raises(ParseError):
        registry.register("t1", ["nonsense (("])
    with pytest.raises(ParseError):
        registry.register("", [V1])
    registry.close()
    scan = scan_journal(tmp_path / "state" / JOURNAL_NAME)
    assert len(scan.records) == 1  # only the accepted registration


def test_failed_journal_append_rolls_the_update_back(tmp_path):
    registry = _registry(tmp_path)
    registry.register("t1", [V1, V2])
    before_root = registry.get("t1").content_root()
    with inject(RaiseFault("journal_append")):
        with pytest.raises(CatalogCorruptionError) as excinfo:
            registry.update("t1", add=[W3])
    assert excinfo.value.exit_code == 80
    # Visible state must equal journaled state: the apply was undone.
    assert registry.get("t1").content_root() == before_root
    assert "w3" not in registry.get("t1").names()
    registry.close()
    recovered = _registry(tmp_path)
    assert recovered.get("t1").content_root() == before_root


def test_checkpoint_compacts_and_recovery_uses_snapshot(tmp_path):
    registry = _registry(tmp_path)
    registry.register("t1", [V1, V2])
    registry.update("t1", add=[W3])
    report = registry.checkpoint()
    assert report == {"seq": 2, "catalogs": 1}
    journal = tmp_path / "state" / JOURNAL_NAME
    assert journal.stat().st_size == 0
    registry.update("t1", remove=["w3"])  # journal tail past the snapshot
    root = registry.get("t1").content_root()
    registry.close()

    recovered = _registry(tmp_path)
    assert recovered.get("t1").content_root() == root
    assert recovered.replayed_ops == 1  # just the post-snapshot tail


def test_snapshot_every_triggers_automatic_compaction(tmp_path):
    registry = _registry(tmp_path, snapshot_every=2)
    registry.register("t1", [V1])
    assert registry.compactions == 0
    registry.update("t1", add=[V2])
    assert registry.compactions == 1
    assert (tmp_path / "state" / JOURNAL_NAME).stat().st_size == 0


def test_torn_journal_tail_is_truncated_not_fatal(tmp_path, caplog):
    registry = _registry(tmp_path)
    registry.register("t1", [V1])
    committed_root = registry.get("t1").content_root()
    registry.update("t1", add=[V2])
    registry.close()
    journal = tmp_path / "state" / JOURNAL_NAME
    boundary = scan_journal(journal).records[0].end_offset
    data = journal.read_bytes()
    journal.write_bytes(data[: len(data) - 9])  # tear the update record

    with caplog.at_level("WARNING"):
        recovered = _registry(tmp_path)
    assert recovered.get("t1").content_root() == committed_root
    assert recovered.journal_truncations == 1
    assert recovered.truncated_bytes > 0
    assert any("torn or corrupt" in r.message for r in caplog.records)
    # The truncation is durable: the file now ends at the last valid
    # record and new appends continue the sequence from there.
    assert journal.stat().st_size == boundary
    recovered.update("t1", add=[W3])
    recovered.close()
    assert [r.seq for r in scan_journal(journal).records] == [1, 2]


def test_corrupt_snapshot_falls_back_to_previous_generation(tmp_path):
    registry = _registry(tmp_path)
    registry.register("t1", [V1, V2])
    registry.checkpoint()
    root = registry.get("t1").content_root()
    registry.close()
    state = tmp_path / "state"
    # A newer snapshot generation, torn on disk mid-write.
    (state / "snapshot-0000000000000099.json").write_text('{"checksum"')

    recovered = _registry(tmp_path)
    assert recovered.get("t1").content_root() == root
    assert recovered.snapshots_skipped == 1
    assert recovered.quarantined_names() == ()


def test_root_mismatch_quarantines_catalog(tmp_path):
    state = tmp_path / "state"
    state.mkdir()
    journal = CatalogJournal(state / JOURNAL_NAME)
    journal.append(
        {"op": "register", "name": "t-bad", "views": [V1], "root": "0" * 64}
    )
    journal.close()

    registry = CatalogRegistry(state_dir=state)
    assert registry.names() == ()
    assert registry.quarantined_names() == ("t-bad",)
    with pytest.raises(CatalogCorruptionError) as excinfo:
        registry.get("t-bad")
    error = excinfo.value
    assert error.exit_code == 80
    assert error.catalog == "t-bad"
    assert error.expected_root == "0" * 64
    assert error.actual_root is not None and len(error.actual_root) == 64
    assert "quarantined" in str(error)


def test_quarantine_survives_checkpoint_and_restart(tmp_path):
    state = tmp_path / "state"
    state.mkdir()
    journal = CatalogJournal(state / JOURNAL_NAME)
    journal.append(
        {"op": "register", "name": "t-bad", "views": [V1], "root": "0" * 64}
    )
    journal.close()
    registry = CatalogRegistry(state_dir=state)
    registry.register("t-good", [V2])
    registry.checkpoint()
    registry.close()

    recovered = CatalogRegistry(state_dir=state)
    assert recovered.names() == ("t-good",)
    assert recovered.quarantined_names() == ("t-bad",)
    with pytest.raises(CatalogCorruptionError):
        recovered.get("t-bad")


def test_reregistration_clears_quarantine(tmp_path):
    state = tmp_path / "state"
    state.mkdir()
    journal = CatalogJournal(state / JOURNAL_NAME)
    journal.append(
        {"op": "register", "name": "t1", "views": [V1], "root": "0" * 64}
    )
    journal.close()
    registry = CatalogRegistry(state_dir=state)
    assert registry.quarantined_names() == ("t1",)
    registry.register("t1", [V1, V2])
    assert registry.quarantined_names() == ()
    assert len(registry.get("t1")) == 2
    registry.close()
    recovered = CatalogRegistry(state_dir=state)
    assert recovered.quarantined_names() == ()
    assert len(recovered.get("t1")) == 2


def test_remove_clears_quarantine(tmp_path):
    state = tmp_path / "state"
    state.mkdir()
    journal = CatalogJournal(state / JOURNAL_NAME)
    journal.append(
        {"op": "register", "name": "t1", "views": [V1], "root": "0" * 64}
    )
    journal.close()
    registry = CatalogRegistry(state_dir=state)
    ack = registry.remove("t1")
    assert ack["was_quarantined"] is True
    with pytest.raises(UnknownViewError):
        registry.get("t1")
    registry.close()
    assert CatalogRegistry(state_dir=state).quarantined_names() == ()


def test_update_of_quarantined_catalog_reports_corruption(tmp_path):
    state = tmp_path / "state"
    state.mkdir()
    journal = CatalogJournal(state / JOURNAL_NAME)
    journal.append(
        {"op": "register", "name": "t1", "views": [V1], "root": "0" * 64}
    )
    journal.close()
    registry = CatalogRegistry(state_dir=state)
    with pytest.raises(CatalogCorruptionError):
        registry.update("t1", add=[V2])


def test_audit_preflight_reruns_over_recovered_catalogs(tmp_path):
    # Build the state dir WITHOUT auditing: v1 and its variable-renamed
    # twin pass plain registration.
    registry = _registry(tmp_path)
    registry.register(
        "t1", ["v1(X) :- car(X, X)", "v1_copy(Y) :- car(Y, Y)"]
    )
    registry.register("t2", [V2])
    registry.close()
    # Recover WITH --audit-fail-on warning: the duplicate pair trips a
    # C1xx warning, so t1 must be quarantined, not served.
    recovered = _registry(tmp_path, audit_fail_on="warning")
    assert recovered.names() == ("t2",)
    assert recovered.quarantined_names() == ("t1",)
    with pytest.raises(CatalogCorruptionError) as excinfo:
        recovered.get("t1")
    assert "audit preflight" in str(excinfo.value)
    assert excinfo.value.diagnostics


def test_snapshot_write_failure_is_nonfatal_and_journal_retained(tmp_path):
    registry = _registry(tmp_path)
    registry.register("t1", [V1, V2])
    with inject(RaiseFault("snapshot_write")):
        assert registry.checkpoint() is None
    assert registry.snapshot_failures == 1
    assert registry.compactions == 0
    journal = tmp_path / "state" / JOURNAL_NAME
    assert journal.stat().st_size > 0  # journal kept; still recoverable
    root = registry.get("t1").content_root()
    registry.close()
    assert CatalogRegistry(state_dir=tmp_path / "state").get(
        "t1"
    ).content_root() == root


def test_update_validates_name_before_parsing_views(tmp_path):
    """Satellite pin: bad name + malformed payload -> UnknownViewError.

    The registry must report the catalog-level error (exit 68 family)
    even when the view texts are also garbage — the name check runs
    first, so the error a client sees does not depend on which
    validation happens to fire.
    """
    registry = CatalogRegistry()
    with pytest.raises(UnknownViewError) as excinfo:
        registry.update("no-such-catalog", add=["v1(X ::= broken(("])
    assert excinfo.value.exit_code == 68
    assert "no-such-catalog" in str(excinfo.value)


def test_update_parses_all_texts_before_mutating(tmp_path):
    registry = CatalogRegistry()
    registry.register("t1", [V1])
    with pytest.raises(ParseError):
        registry.update("t1", add=[V2, "broken(("])
    # The parse failure on the second text left the first un-applied.
    assert registry.get("t1").names() == ("v1",)


def test_durability_counters_surface(tmp_path):
    registry = _registry(tmp_path)
    assert registry.durable is True
    registry.register("t1", [V1])
    registry.update("t1", add=[V2])
    stats = registry.durability_stats()
    assert stats["journaled_ops"] == 2
    assert stats["last_seq"] == 2
    assert stats["fsyncs"] == 2
    assert stats["journal_bytes"] > 0
    assert stats["quarantined"] == 0
    registry.close()
    assert CatalogRegistry().durability_stats() is None
    assert CatalogRegistry().durable is False
