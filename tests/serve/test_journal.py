"""Unit tests for the write-ahead journal and snapshot store."""

import json

import pytest

from repro.errors import BudgetExceededError
from repro.serve.journal import CatalogJournal, scan_journal
from repro.serve.snapshot import SnapshotStore
from repro.testing.faults import CancelFault, RaiseFault, inject


def _ops(n):
    return [{"op": "register", "name": f"t{i}", "views": []} for i in range(n)]


class TestJournal:
    def test_append_then_scan_round_trips(self, tmp_path):
        path = tmp_path / "catalog.journal"
        journal = CatalogJournal(path)
        for op in _ops(3):
            journal.append(op)
        journal.close()
        scan = scan_journal(path)
        assert [r.seq for r in scan.records] == [1, 2, 3]
        assert [r.op["name"] for r in scan.records] == ["t0", "t1", "t2"]
        assert scan.torn_reason is None
        assert scan.torn_bytes == 0
        assert scan.truncate_at == path.stat().st_size

    def test_missing_file_scans_empty(self, tmp_path):
        scan = scan_journal(tmp_path / "nope.journal")
        assert scan.records == ()
        assert scan.last_seq == 0
        assert scan.torn_reason is None

    def test_sequence_numbers_are_monotone_across_reopens(self, tmp_path):
        path = tmp_path / "catalog.journal"
        journal = CatalogJournal(path)
        journal.append({"op": "register", "name": "a", "views": []})
        journal.close()
        reopened = CatalogJournal(path, start_seq=scan_journal(path).last_seq)
        assert reopened.append({"op": "remove", "name": "a"}) == 2
        reopened.close()
        assert [r.seq for r in scan_journal(path).records] == [1, 2]

    def test_torn_tail_is_detected_and_prefix_kept(self, tmp_path):
        path = tmp_path / "catalog.journal"
        journal = CatalogJournal(path)
        for op in _ops(3):
            journal.append(op)
        journal.close()
        intact = scan_journal(path)
        boundary = intact.records[1].end_offset
        data = path.read_bytes()
        # Simulate a crash mid-write: the third record loses its tail
        # (including the newline).
        path.write_bytes(data[: len(data) - 7])
        scan = scan_journal(path)
        assert [r.seq for r in scan.records] == [1, 2]
        assert scan.truncate_at == boundary
        assert scan.torn_bytes > 0
        assert "torn" in scan.torn_reason

    def test_corrupt_byte_invalidates_record_and_tail(self, tmp_path):
        path = tmp_path / "catalog.journal"
        journal = CatalogJournal(path)
        for op in _ops(3):
            journal.append(op)
        journal.close()
        intact = scan_journal(path)
        # Flip one payload byte inside the *second* record: it and
        # everything after it must be treated as torn — a later record
        # can never outlive an earlier corruption.
        offset = intact.records[0].end_offset
        data = bytearray(path.read_bytes())
        data[offset + 75] ^= 0xFF
        path.write_bytes(bytes(data))
        scan = scan_journal(path)
        assert [r.seq for r in scan.records] == [1]
        assert scan.truncate_at == offset
        assert scan.torn_bytes == len(data) - offset

    def test_sequence_gap_invalidates_tail(self, tmp_path):
        path = tmp_path / "catalog.journal"
        journal = CatalogJournal(path)
        journal.append({"op": "register", "name": "a", "views": []})
        journal.close()
        # A record whose seq skips ahead (2 expected, 7 found) means
        # lost operations: framing is valid, so this is the sequence
        # check's job.
        skipper = CatalogJournal(path, start_seq=6)
        skipper.append({"op": "remove", "name": "a"})
        skipper.close()
        scan = scan_journal(path)
        assert [r.seq for r in scan.records] == [1]
        assert "sequence gap" in scan.torn_reason

    def test_truncate_drops_tail_and_appends_continue(self, tmp_path):
        path = tmp_path / "catalog.journal"
        journal = CatalogJournal(path)
        for op in _ops(3):
            journal.append(op)
        journal.close()
        boundary = scan_journal(path).records[1].end_offset
        journal.truncate(boundary)
        resumed = CatalogJournal(path, start_seq=2)
        resumed.append({"op": "remove", "name": "t0"})
        resumed.close()
        scan = scan_journal(path)
        assert [r.seq for r in scan.records] == [1, 2, 3]
        assert scan.records[-1].op["op"] == "remove"

    def test_reset_continues_numbering(self, tmp_path):
        path = tmp_path / "catalog.journal"
        journal = CatalogJournal(path)
        for op in _ops(5):
            journal.append(op)
        journal.reset(start_seq=journal.last_seq)
        assert path.stat().st_size == 0
        assert journal.append({"op": "remove", "name": "t0"}) == 6
        journal.close()
        assert scan_journal(path, start_seq=5).last_seq == 6

    def test_append_fires_fault_points_in_order(self, tmp_path):
        path = tmp_path / "catalog.journal"
        journal = CatalogJournal(path)
        with inject(RaiseFault("journal_append")) as plan:
            with pytest.raises(RuntimeError):
                journal.append({"op": "remove", "name": "x"})
        assert plan.observed["journal_append"] == 1
        # The record never reached the file: append fires first.
        assert not path.exists() or path.stat().st_size == 0
        with inject(CancelFault("journal_fsync")) as plan:
            with pytest.raises(BudgetExceededError):
                journal.append({"op": "remove", "name": "x"})
        assert plan.observed["journal_fsync"] == 1
        journal.close()

    def test_fsync_disabled_counts_no_fsyncs(self, tmp_path):
        journal = CatalogJournal(tmp_path / "j", fsync=False)
        journal.append({"op": "remove", "name": "x"})
        assert journal.fsyncs == 0
        assert journal.appended == 1
        journal.close()


class TestSnapshotStore:
    def test_write_then_load_round_trips(self, tmp_path):
        store = SnapshotStore(tmp_path)
        payload = {"seq": 3, "catalogs": {"t1": {"views": [], "root": "r"}}}
        store.write(3, payload)
        loaded, skipped = store.load_latest()
        assert loaded == payload
        assert skipped == []

    def test_corrupt_latest_falls_back_to_previous_generation(self, tmp_path):
        store = SnapshotStore(tmp_path)
        good = {"seq": 5, "catalogs": {}}
        store.write(5, good)
        # A newer generation torn on disk (invalid JSON tail).
        store.path_for(9).write_text('{"checksum": "xx", "payl')
        loaded, skipped = store.load_latest()
        assert loaded == good
        assert skipped == [store.path_for(9).name]
        assert store.skipped == 1

    def test_checksum_mismatch_is_skipped(self, tmp_path):
        store = SnapshotStore(tmp_path)
        store.write(1, {"seq": 1, "catalogs": {}})
        tampered = store.path_for(2)
        document = {
            "checksum": "0" * 64,
            "payload": {"seq": 2, "catalogs": {"evil": {}}},
        }
        tampered.write_text(json.dumps(document))
        loaded, skipped = store.load_latest()
        assert loaded == {"seq": 1, "catalogs": {}}
        assert skipped == [tampered.name]

    def test_generations_are_pruned(self, tmp_path):
        store = SnapshotStore(tmp_path)
        for seq in (1, 2, 3):
            store.write(seq, {"seq": seq, "catalogs": {}})
        names = [path.name for path in store.paths()]
        assert names == ["snapshot-0000000000000002.json",
                         "snapshot-0000000000000003.json"]

    def test_write_fires_fault_point_before_any_io(self, tmp_path):
        store = SnapshotStore(tmp_path)
        with inject(RaiseFault("snapshot_write")) as plan:
            with pytest.raises(RuntimeError):
                store.write(1, {"seq": 1, "catalogs": {}})
        assert plan.observed["snapshot_write"] == 1
        assert store.paths() == []
        assert store.written == 0

    def test_empty_store_loads_nothing(self, tmp_path):
        loaded, skipped = SnapshotStore(tmp_path).load_latest()
        assert loaded is None
        assert skipped == []
