"""Wire-protocol tests: frame codec and error round-tripping.

The load-bearing property is CLI parity — the error object a daemon
puts on the wire is byte-identical to the structured stderr line the
serial CLI would have printed, and the client can reconstruct the
exception (same class, same exit code, same retry hint) to exit with
the same status a local run would have.
"""

import json

import pytest

from repro import errors as errors_module
from repro.errors import (
    BudgetExceededError,
    CircuitOpenError,
    OverloadError,
    ParseError,
    ReproError,
    ShuttingDownError,
    UnsafeQueryError,
    structured_error,
)
from repro.serve.protocol import (
    decode_frame,
    encode_frame,
    error_from_payload,
    error_payload,
    error_response,
)


class TestFrameCodec:
    def test_roundtrip(self):
        payload = {"type": "plan", "id": "r1", "query": "q(X) :- a(X)"}
        raw = encode_frame(payload)
        assert raw.endswith(b"\n")
        assert decode_frame(raw) == payload
        assert decode_frame(raw.decode("utf-8")) == payload

    def test_bad_utf8_is_a_parse_error(self):
        with pytest.raises(ParseError):
            decode_frame(b"\xff\xfe{}")

    def test_bad_json_is_a_parse_error(self):
        with pytest.raises(ParseError):
            decode_frame(b"{not json")

    def test_non_object_frame_is_a_parse_error(self):
        with pytest.raises(ParseError):
            decode_frame(b"[1, 2, 3]")


class TestErrorPayload:
    def test_matches_structured_error_exactly(self):
        error = OverloadError(
            "queue full", retry_after=1.5, reason="queue_full", queue_depth=64
        )
        assert error_payload(error) == json.loads(structured_error(error))

    def test_response_shape(self):
        error = ParseError("bad query")
        response = error_response("r7", error)
        assert response["id"] == "r7"
        assert response["status"] == "error"
        assert response["error"]["error"] == "ParseError"
        assert response["error"]["exit_code"] == 65

    def test_retry_after_is_on_the_wire(self):
        payload = error_payload(ShuttingDownError("bye", retry_after=5.0))
        assert payload["retry_after"] == 5.0
        assert payload["exit_code"] == 79


class TestErrorFromPayload:
    @pytest.mark.parametrize(
        "name",
        [
            name
            for name in errors_module.__all__
            if isinstance(getattr(errors_module, name), type)
            and issubclass(getattr(errors_module, name), ReproError)
        ],
    )
    def test_every_taxonomy_class_roundtrips(self, name):
        cls = getattr(errors_module, name)
        payload = {"error": name, "message": "m", "exit_code": cls.exit_code}
        rebuilt = error_from_payload(payload)
        assert type(rebuilt).__name__ == name
        assert rebuilt.exit_code == cls.exit_code

    def test_full_wire_roundtrip_preserves_retry_after(self):
        original = OverloadError("too hot", retry_after=2.25, reason="x")
        rebuilt = error_from_payload(error_payload(original))
        assert isinstance(rebuilt, OverloadError)
        assert rebuilt.exit_code == 78
        assert rebuilt.retry_after == 2.25

    def test_unknown_class_degrades_to_repro_error_with_code(self):
        rebuilt = error_from_payload(
            {"error": "FutureError", "message": "m", "exit_code": 99}
        )
        assert type(rebuilt) is ReproError
        assert rebuilt.exit_code == 99

    def test_specific_codes_survive(self):
        for cls, code in [
            (BudgetExceededError, 69),
            (CircuitOpenError, 75),
            (UnsafeQueryError, 66),
            (OverloadError, 78),
            (ShuttingDownError, 79),
        ]:
            rebuilt = error_from_payload(error_payload(cls("m")))
            assert isinstance(rebuilt, cls)
            assert rebuilt.exit_code == code
