"""Chaos tests for the supervised worker pool.

The contract: a resident pool survives worker crashes, hangs, and lost
heartbeats by replacing the worker and failing *only* the in-flight
request; recycling is invisible to callers; and drain-deadline aborts
resolve every submitted request with a structured error — a future is
never left pending.
"""

import os
import signal
import time

import pytest

from repro import parse_query
from repro.errors import ShuttingDownError, WorkerCrashError
from repro.parallel import (
    SupervisedWorkerPool,
    SupervisorPolicy,
    WorkerConfig,
    WorkerTask,
)
from repro.service import PlanRequest, ServicePolicy
from repro.testing.faults import ExitFault, StallFault

from .conftest import QUERY


def _config(**overrides):
    overrides.setdefault("policy", ServicePolicy(chain=("corecover",)))
    overrides.setdefault("pool_size", 2)
    return WorkerConfig(**overrides)


def _task(catalog, index, *, rid=None, chaos=(), deadline=None):
    from repro.planner.limits import ResourceBudget

    budget = (
        None if deadline is None else ResourceBudget(deadline_seconds=deadline)
    )
    request = PlanRequest(
        query=parse_query(QUERY),
        views=catalog,
        id=rid if rid is not None else f"r{index}",
        budget=budget,
    )
    return WorkerTask(index=index, request=request, chaos=tuple(chaos))


def _wait_until(predicate, timeout=10.0):
    limit = time.monotonic() + timeout
    while time.monotonic() < limit:
        if predicate():
            return True
        time.sleep(0.05)
    return False


def test_serves_requests_and_merges_breakers(catalog):
    pool = SupervisedWorkerPool(
        _config(), policy=SupervisorPolicy(workers=2)
    ).start()
    try:
        futures = [pool.submit(_task(catalog, i)) for i in range(6)]
        results = [future.result(timeout=60) for future in futures]
        assert [r.index for r in results] == list(range(6))
        assert all(r.outcome.status == "ok" for r in results)
        summary = pool.scoreboard.summary()
        assert summary["corecover"]["successes"] == 6
        assert pool.stats()["completed"] == 6
    finally:
        report = pool.shutdown(drain=True, deadline=10.0)
    assert report["drained"] is True
    assert report["aborted"] == 0


def test_killed_worker_fails_only_its_request(catalog):
    pool = SupervisedWorkerPool(
        _config(), policy=SupervisorPolicy(workers=2, heartbeat_grace=5.0)
    ).start()
    try:
        tasks = [
            _task(
                catalog,
                i,
                chaos=(ExitFault("worker_dispatch"),) if i == 2 else (),
                deadline=30.0,
            )
            for i in range(5)
        ]
        results = [
            pool.submit(task).result(timeout=60) for task in tasks
        ]
        assert results[2].outcome.status == "failed"
        assert isinstance(results[2].outcome.error, WorkerCrashError)
        for i in (0, 1, 3, 4):
            assert results[i].outcome.status == "ok", f"r{i} must survive"
        assert pool.restarts >= 1
        assert pool.crashes == 1
    finally:
        pool.shutdown(drain=True, deadline=10.0)


def test_idle_worker_death_is_healed_by_heartbeat_sweep(catalog):
    pool = SupervisedWorkerPool(
        _config(),
        policy=SupervisorPolicy(workers=1, heartbeat_interval=3600.0),
    ).start()
    try:
        # Warm check, then murder the idle worker out-of-band.
        assert pool.submit(_task(catalog, 0)).result(timeout=60).outcome
        victim = pool._slots[0].process
        os.kill(victim.pid, signal.SIGKILL)
        assert _wait_until(lambda: not victim.is_alive())
        # The monitor thread is effectively disabled (1h interval), so
        # the sweep below is deterministically the one that heals.
        assert pool.heartbeat_sweep() == 1
        assert pool.restarts == 1
        # The replacement serves the next request; nothing failed.
        result = pool.submit(_task(catalog, 1)).result(timeout=60)
        assert result.outcome.status == "ok"
        assert pool.crashes == 0
    finally:
        pool.shutdown(drain=True, deadline=10.0)


def test_dispatch_retries_once_after_idle_death(catalog):
    pool = SupervisedWorkerPool(
        _config(),
        policy=SupervisorPolicy(workers=1, heartbeat_interval=3600.0),
    ).start()
    try:
        assert pool.submit(_task(catalog, 0)).result(timeout=60).outcome
        victim = pool._slots[0].process
        os.kill(victim.pid, signal.SIGKILL)
        assert _wait_until(lambda: not victim.is_alive())
        # Submitting against the corpse must transparently respawn and
        # serve — an idle death never fails a request.
        result = pool.submit(_task(catalog, 1)).result(timeout=60)
        assert result.outcome.status == "ok"
        assert pool.crashes == 0
        assert pool.restarts == 1
    finally:
        pool.shutdown(drain=True, deadline=10.0)


def test_recycling_is_invisible_to_callers(catalog):
    pool = SupervisedWorkerPool(
        _config(),
        policy=SupervisorPolicy(workers=1, recycle_after_requests=2),
    ).start()
    try:
        results = [
            pool.submit(_task(catalog, i)).result(timeout=60)
            for i in range(5)
        ]
        assert all(r.outcome.status == "ok" for r in results)
        assert pool.recycles >= 2
        assert pool.crashes == 0
        # Breakers reflect exactly the five requests served, across all
        # worker incarnations — no double-counting through recycling.
        assert pool.scoreboard.summary()["corecover"]["successes"] == 5
    finally:
        pool.shutdown(drain=True, deadline=10.0)


def test_hung_worker_is_killed_at_task_deadline(catalog):
    pool = SupervisedWorkerPool(
        _config(),
        policy=SupervisorPolicy(
            workers=1, task_grace_seconds=0.5, heartbeat_grace=60.0
        ),
    ).start()
    try:
        stall = StallFault("worker_dispatch", seconds=30.0)
        result = pool.submit(
            _task(catalog, 0, chaos=(stall,), deadline=0.2)
        ).result(timeout=60)
        assert result.outcome.status == "failed"
        assert isinstance(result.outcome.error, WorkerCrashError)
        assert "did not respond" in str(result.outcome.error)
        assert pool.restarts == 1
    finally:
        pool.shutdown(drain=True, deadline=10.0)


def test_drain_deadline_aborts_with_structured_outcomes(catalog):
    pool = SupervisedWorkerPool(
        _config(),
        policy=SupervisorPolicy(workers=1, heartbeat_grace=60.0),
    ).start()
    stall = StallFault("worker_dispatch", seconds=30.0)
    stuck = pool.submit(_task(catalog, 0, chaos=(stall,)))
    queued = [pool.submit(_task(catalog, i)) for i in range(1, 4)]
    # Give the stalled task time to actually occupy the worker.
    assert _wait_until(lambda: pool.busy_workers() == 1)
    report = pool.shutdown(drain=True, deadline=0.3)
    assert report["drained"] is False
    assert report["aborted"] == 4
    # Every future settled — nothing silently dropped — and each
    # aborted request carries the ShuttingDownError taxonomy entry.
    for future in [stuck, *queued]:
        result = future.result(timeout=10)
        assert result.outcome.status == "failed"
        assert isinstance(result.outcome.error, ShuttingDownError)


def test_submit_after_shutdown_sheds_with_taxonomy_error(catalog):
    pool = SupervisedWorkerPool(
        _config(), policy=SupervisorPolicy(workers=1)
    ).start()
    pool.shutdown(drain=True, deadline=10.0)
    with pytest.raises(ShuttingDownError) as excinfo:
        pool.submit(_task(catalog, 0))
    assert excinfo.value.exit_code == 79
