"""Serial/parallel determinism at the CLI surface.

The same NDJSON batch through ``--workers 1`` and ``--workers 4`` must
produce byte-identical text output (and JSON output identical modulo
the wall-clock ``elapsed_ms`` field), the same stderr summary, and the
same exit code — including batches that mix successes with
taxonomy-error lines.
"""

import dataclasses
import json

import pytest

from repro.cli import main

VIEWS_TEXT = """
v1(A, B) :- a(A, B), a(B, B)
v2(C, D) :- a(C, E), b(C, D)
v3(A) :- a(A, A)
"""

QUERY = "q(X, Y) :- a(X, Z), a(Z, Z), b(Z, Y)"
#: A comparison atom: UnsupportedQueryError on corecover, so this line
#: comes back ``failed`` (and the batch exits 74) without aborting.
UNSUPPORTED = "q(X) :- a(X, Y), X < Y"


@pytest.fixture()
def workload_files(tmp_path):
    views = tmp_path / "views.dl"
    views.write_text(VIEWS_TEXT)
    payloads = [
        {"id": "r1", "query": QUERY},
        {"id": "r2", "query": QUERY, "views": ["v1", "v2"]},
        {"id": "bad", "query": UNSUPPORTED},
        {"id": "r3", "query": QUERY},
        {"id": "r4", "query": QUERY, "options": {"group_views": False}},
    ]
    requests = tmp_path / "requests.ndjson"
    requests.write_text(
        "\n".join(json.dumps(p) for p in payloads) + "\n"
    )
    return str(requests), str(views)


def _run_batch(workload_files, capsys, *, workers, fmt):
    requests, views = workload_files
    code = main(
        [
            "batch", requests, "--views", views,
            "--chain", "corecover",
            "--workers", str(workers),
            "--format", fmt,
        ]
    )
    captured = capsys.readouterr()
    return code, captured.out, captured.err


def test_text_output_is_byte_identical_across_worker_counts(
    workload_files, capsys
):
    serial = _run_batch(workload_files, capsys, workers=1, fmt="text")
    parallel = _run_batch(workload_files, capsys, workers=4, fmt="text")
    assert serial == parallel
    # The mixed batch exits with the taxonomy code of its last failure.
    assert serial[0] == 74


def test_json_output_matches_modulo_elapsed(workload_files, capsys):
    _, serial_out, serial_err = _run_batch(
        workload_files, capsys, workers=1, fmt="json"
    )
    _, parallel_out, parallel_err = _run_batch(
        workload_files, capsys, workers=4, fmt="json"
    )

    def normalize(out):
        lines = []
        for line in out.splitlines():
            payload = json.loads(line)
            payload.pop("elapsed_ms")
            lines.append(payload)
        return lines

    serial_lines = normalize(serial_out)
    assert serial_lines == normalize(parallel_out)
    assert serial_err == parallel_err
    assert [p["id"] for p in serial_lines] == [
        "r1", "r2", "bad", "r3", "r4"
    ]
    assert [p["status"] for p in serial_lines] == [
        "ok", "ok", "failed", "ok", "ok"
    ]


def test_engine_outcomes_match_serial_executor(workload_files):
    """Engine-level equivalence: the same requests through the plain
    resilient executor and a 2-worker engine agree on every outcome
    field except wall-clock time."""
    from pathlib import Path

    from repro.parallel import ParallelPlanningEngine, ParallelPolicy
    from repro.service import (
        ResilientExecutor,
        ServicePolicy,
        parse_requests,
    )
    from repro.views import ViewCatalog
    from repro.datalog import parse_program

    requests_path, views_path = workload_files
    catalog = ViewCatalog(parse_program(Path(views_path).read_text()))
    lines = Path(requests_path).read_text().splitlines()
    policy = ServicePolicy(chain=("corecover",))

    executor = ResilientExecutor(policy)
    serial = [
        executor.execute(request)
        for request in parse_requests(lines, catalog)
    ]
    engine = ParallelPlanningEngine(
        policy, parallel=ParallelPolicy(workers=2)
    )
    parallel = list(engine.run(parse_requests(lines, catalog)))

    def normalize(outcome):
        payload = outcome.to_json()
        payload.pop("elapsed_ms")
        return payload

    assert [normalize(o) for o in serial] == [
        normalize(o) for o in parallel
    ]
    summary = engine.scoreboard.summary()
    assert summary["corecover"]["successes"] == 4
    assert summary["corecover"]["failures"] == 0


def test_run_sweep_parallel_matches_serial():
    """Figure-workload equivalence: every non-time SweepPoint field is
    identical between the serial and 2-worker sweeps."""
    from repro.experiments.harness import SweepConfig, run_sweep

    config = SweepConfig(
        shape="chain",
        num_relations=6,
        nondistinguished=0,
        view_counts=(8, 12),
        queries_per_point=3,
        query_subgoals=4,
        seed=7,
    )
    serial = run_sweep(config)
    parallel = run_sweep(config, workers=2)
    time_fields = {"mean_time_ms", "max_time_ms"}
    for left, right in zip(serial, parallel, strict=True):
        for field in dataclasses.fields(left):
            if field.name in time_fields:
                continue
            assert getattr(left, field.name) == getattr(
                right, field.name
            ), field.name


def test_run_sweep_rejects_unknown_algorithm_in_parallel():
    from repro.experiments.harness import SweepConfig, run_sweep

    config = SweepConfig(
        shape="chain",
        num_relations=6,
        nondistinguished=0,
        view_counts=(8,),
        queries_per_point=2,
        query_subgoals=4,
    )

    def mystery(query, views, **kwargs):  # pragma: no cover - never runs
        raise AssertionError

    with pytest.raises(ValueError, match="registry algorithm"):
        run_sweep(config, mystery, workers=2)
