"""Warm context pools: fingerprint keying, LRU behaviour, warm reuse."""

import pytest

from repro import ViewCatalog, parse_query
from repro.views import as_view
from repro.parallel import (
    PlannerContextPool,
    catalog_fingerprint,
    context_fingerprint,
)
from repro.parallel.worker import WorkerConfig, WorkerState, WorkerTask
from repro.service import PlanRequest, ServicePolicy


@pytest.fixture()
def catalog():
    return ViewCatalog(
        [
            "v1(A, B) :- a(A, B), a(B, B)",
            "v2(C, D) :- a(C, E), b(C, D)",
            "v3(A) :- a(A, A)",
        ]
    )


QUERY = "q(X, Y) :- a(X, Z), a(Z, Z), b(Z, Y)"


class TestFingerprint:
    def test_same_catalog_and_config_same_fingerprint(self, catalog):
        fp1 = context_fingerprint(catalog, {"chain": ["corecover"]})
        fp2 = context_fingerprint(
            ViewCatalog(list(catalog)), {"chain": ["corecover"]}
        )
        assert fp1 == fp2

    def test_different_catalog_different_fingerprint(self, catalog):
        other = ViewCatalog(["v1(A, B) :- a(A, B)"])
        assert context_fingerprint(catalog) != context_fingerprint(other)

    def test_different_config_different_fingerprint(self, catalog):
        assert context_fingerprint(
            catalog, {"chain": ["corecover"]}
        ) != context_fingerprint(catalog, {"chain": ["bucket"]})

    def test_config_key_order_is_canonical(self, catalog):
        assert context_fingerprint(
            catalog, {"a": 1, "b": 2}
        ) == context_fingerprint(catalog, {"b": 2, "a": 1})


class TestPoolLru:
    def test_hit_returns_same_context(self):
        pool = PlannerContextPool(2)
        first, hit1 = pool.acquire("fp-1")
        again, hit2 = pool.acquire("fp-1")
        assert not hit1 and hit2
        assert again is first
        assert pool.hits == 1 and pool.misses == 1

    def test_lru_eviction_drops_least_recent(self):
        pool = PlannerContextPool(2)
        a, _ = pool.acquire("a")
        pool.acquire("b")
        pool.acquire("a")  # refresh a; b is now least-recent
        pool.acquire("c")  # evicts b
        assert "a" in pool and "c" in pool and "b" not in pool
        assert pool.evictions == 1
        assert pool.acquire("a")[0] is a

    def test_capacity_must_be_positive(self):
        with pytest.raises(ValueError):
            PlannerContextPool(0)


class TestWarmReuse:
    def test_second_request_on_same_catalog_plans_less(self, catalog):
        """The acceptance check for warm pools: a repeated request
        against the same catalog hits the pooled context and performs
        strictly fewer homomorphism searches and cache misses."""
        state = WorkerState(
            WorkerConfig(policy=ServicePolicy(chain=("corecover",)))
        )
        query = parse_query(QUERY)
        first = state.run(
            WorkerTask(0, PlanRequest(query=query, views=catalog, id="r1"))
        )
        second = state.run(
            WorkerTask(1, PlanRequest(query=query, views=catalog, id="r2"))
        )
        assert first.outcome is not None and first.outcome.ok
        assert second.outcome is not None and second.outcome.ok
        assert not first.pool_hit
        assert second.pool_hit
        assert second.fingerprint == first.fingerprint
        assert first.stats is not None and second.stats is not None
        assert second.stats.hom_searches < first.stats.hom_searches
        assert second.stats.cache_misses < first.stats.cache_misses

    def test_different_catalog_gets_its_own_context(self, catalog):
        state = WorkerState(
            WorkerConfig(policy=ServicePolicy(chain=("corecover",)))
        )
        query = parse_query(QUERY)
        other = ViewCatalog(
            [
                "w1(A, B) :- a(A, B), a(B, B)",
                "w2(C, D) :- a(C, E), b(C, D)",
            ]
        )
        first = state.run(
            WorkerTask(0, PlanRequest(query=query, views=catalog, id="r1"))
        )
        second = state.run(
            WorkerTask(1, PlanRequest(query=query, views=other, id="r2"))
        )
        assert second.fingerprint != first.fingerprint
        assert not second.pool_hit


class TestCatalogFingerprint:
    def test_exact_key_matches_rebuilt_catalog(self, catalog):
        fp1 = catalog_fingerprint(catalog, {"chain": ["corecover"]})
        fp2 = catalog_fingerprint(
            ViewCatalog(list(catalog)), {"chain": ["corecover"]}
        )
        assert fp1 == fp2 and fp1.key == fp2.key

    def test_delta_counts_per_view_changes(self, catalog):
        fp1 = catalog_fingerprint(catalog)
        grown = ViewCatalog(list(catalog))
        grown.add("v4(A) :- b(A, A)")
        fp2 = catalog_fingerprint(grown)
        assert fp1.delta(fp2) == 1
        assert fp1.names_only_in(fp2) == frozenset({"v4"})
        assert fp2.names_only_in(fp1) == frozenset()

    def test_replace_counts_two(self, catalog):
        mutated = ViewCatalog(list(catalog))
        mutated.replace_view(as_view("v3(A) :- b(A, A)"))
        fp1 = catalog_fingerprint(catalog)
        fp2 = catalog_fingerprint(mutated)
        assert fp1.delta(fp2) == 2

    def test_config_changes_only_config_hash(self, catalog):
        fp1 = catalog_fingerprint(catalog, {"chain": ["corecover"]})
        fp2 = catalog_fingerprint(catalog, {"chain": ["bucket"]})
        assert fp1.root == fp2.root
        assert fp1.config_hash != fp2.config_hash
        assert fp1.key != fp2.key


class TestDeltaUpgrade:
    def test_single_view_add_upgrades_warm_context(self, catalog):
        pool = PlannerContextPool(2)
        first, event1 = pool.acquire_catalog(catalog)
        catalog.add("v4(A) :- b(A, A)")
        second, event2 = pool.acquire_catalog(catalog)
        assert event1 == "miss" and event2 == "delta"
        assert second is first  # the same warm context, upgraded
        assert pool.counters() == {
            "hits": 0, "delta_hits": 1, "misses": 1, "evictions": 0,
        }
        # The upgraded entry answers exactly at its new key now.
        third, event3 = pool.acquire_catalog(catalog)
        assert third is first and event3 == "exact"

    def test_large_delta_is_a_miss(self, catalog):
        pool = PlannerContextPool(4, max_delta_views=2)
        first, _ = pool.acquire_catalog(catalog)
        for i in range(3):
            catalog.add(f"w{i}(A) :- b(A, A)")
        second, event = pool.acquire_catalog(catalog)
        assert event == "miss" and second is not first

    def test_different_config_never_delta_matches(self, catalog):
        pool = PlannerContextPool(4)
        pool.acquire_catalog(catalog, {"chain": ["corecover"]})
        catalog.add("v4(A) :- b(A, A)")
        _, event = pool.acquire_catalog(catalog, {"chain": ["bucket"]})
        assert event == "miss"

    def test_removal_retires_memoized_view_work(self, catalog):
        pool = PlannerContextPool(2)
        context, _ = pool.acquire_catalog(catalog)
        query = parse_query(QUERY)
        # Warm the context on the full catalog, then drop a view.
        from repro.core import core_cover

        core_cover(query, catalog, context=context)
        assert context._view_rows  # warmed
        removed = catalog.get("v1")
        catalog.remove_view("v1")
        upgraded, event = pool.acquire_catalog(catalog)
        assert event == "delta" and upgraded is context
        removed_key = context.view_definition_key(removed)
        assert all(key[1] != removed_key for key in context._view_rows)
        assert all(key[1] != removed_key for key in context._tuple_cores)

    def test_delta_replan_keeps_warm_memos(self, catalog):
        """The acceptance check for incremental replanning: after a
        one-view delta the upgraded context replans with strictly fewer
        homomorphism searches than the cold first plan."""
        state = WorkerState(
            WorkerConfig(policy=ServicePolicy(chain=("corecover",)))
        )
        query = parse_query(QUERY)
        first = state.run(
            WorkerTask(0, PlanRequest(query=query, views=catalog, id="r1"))
        )
        catalog.add("v4(A) :- b(A, A)")
        second = state.run(
            WorkerTask(1, PlanRequest(query=query, views=catalog, id="r2"))
        )
        assert first.pool_event == "miss"
        assert second.pool_event == "delta" and second.pool_hit
        assert state.pool.delta_hits >= 1
        assert second.fingerprint != first.fingerprint
        assert first.stats is not None and second.stats is not None
        assert second.stats.hom_searches < first.stats.hom_searches
