"""Warm context pools: fingerprint keying, LRU behaviour, warm reuse."""

import pytest

from repro import ViewCatalog, parse_query
from repro.parallel import PlannerContextPool, context_fingerprint
from repro.parallel.worker import WorkerConfig, WorkerState, WorkerTask
from repro.service import PlanRequest, ServicePolicy


@pytest.fixture()
def catalog():
    return ViewCatalog(
        [
            "v1(A, B) :- a(A, B), a(B, B)",
            "v2(C, D) :- a(C, E), b(C, D)",
            "v3(A) :- a(A, A)",
        ]
    )


QUERY = "q(X, Y) :- a(X, Z), a(Z, Z), b(Z, Y)"


class TestFingerprint:
    def test_same_catalog_and_config_same_fingerprint(self, catalog):
        fp1 = context_fingerprint(catalog, {"chain": ["corecover"]})
        fp2 = context_fingerprint(
            ViewCatalog(list(catalog)), {"chain": ["corecover"]}
        )
        assert fp1 == fp2

    def test_different_catalog_different_fingerprint(self, catalog):
        other = ViewCatalog(["v1(A, B) :- a(A, B)"])
        assert context_fingerprint(catalog) != context_fingerprint(other)

    def test_different_config_different_fingerprint(self, catalog):
        assert context_fingerprint(
            catalog, {"chain": ["corecover"]}
        ) != context_fingerprint(catalog, {"chain": ["bucket"]})

    def test_config_key_order_is_canonical(self, catalog):
        assert context_fingerprint(
            catalog, {"a": 1, "b": 2}
        ) == context_fingerprint(catalog, {"b": 2, "a": 1})


class TestPoolLru:
    def test_hit_returns_same_context(self):
        pool = PlannerContextPool(2)
        first, hit1 = pool.acquire("fp-1")
        again, hit2 = pool.acquire("fp-1")
        assert not hit1 and hit2
        assert again is first
        assert pool.hits == 1 and pool.misses == 1

    def test_lru_eviction_drops_least_recent(self):
        pool = PlannerContextPool(2)
        a, _ = pool.acquire("a")
        pool.acquire("b")
        pool.acquire("a")  # refresh a; b is now least-recent
        pool.acquire("c")  # evicts b
        assert "a" in pool and "c" in pool and "b" not in pool
        assert pool.evictions == 1
        assert pool.acquire("a")[0] is a

    def test_capacity_must_be_positive(self):
        with pytest.raises(ValueError):
            PlannerContextPool(0)


class TestWarmReuse:
    def test_second_request_on_same_catalog_plans_less(self, catalog):
        """The acceptance check for warm pools: a repeated request
        against the same catalog hits the pooled context and performs
        strictly fewer homomorphism searches and cache misses."""
        state = WorkerState(
            WorkerConfig(policy=ServicePolicy(chain=("corecover",)))
        )
        query = parse_query(QUERY)
        first = state.run(
            WorkerTask(0, PlanRequest(query=query, views=catalog, id="r1"))
        )
        second = state.run(
            WorkerTask(1, PlanRequest(query=query, views=catalog, id="r2"))
        )
        assert first.outcome is not None and first.outcome.ok
        assert second.outcome is not None and second.outcome.ok
        assert not first.pool_hit
        assert second.pool_hit
        assert second.fingerprint == first.fingerprint
        assert first.stats is not None and second.stats is not None
        assert second.stats.hom_searches < first.stats.hom_searches
        assert second.stats.cache_misses < first.stats.cache_misses

    def test_different_catalog_gets_its_own_context(self, catalog):
        state = WorkerState(
            WorkerConfig(policy=ServicePolicy(chain=("corecover",)))
        )
        query = parse_query(QUERY)
        other = ViewCatalog(
            [
                "w1(A, B) :- a(A, B), a(B, B)",
                "w2(C, D) :- a(C, E), b(C, D)",
            ]
        )
        first = state.run(
            WorkerTask(0, PlanRequest(query=query, views=catalog, id="r1"))
        )
        second = state.run(
            WorkerTask(1, PlanRequest(query=query, views=other, id="r2"))
        )
        assert second.fingerprint != first.fingerprint
        assert not second.pool_hit
