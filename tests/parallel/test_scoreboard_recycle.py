"""Regression: breaker-scoreboard merges must survive worker recycling.

Workers report per-task breaker *deltas* (the diff of
``executor.breaker_totals()`` around each task), and the parent merges
them as they arrive.  The failure mode this guards: if workers reported
cumulative *totals* instead, a worker recycled mid-batch would hand its
replacement a zeroed executor while the parent had already absorbed the
predecessor's totals — the next merge would re-add history and
double-count.  With deltas, the sum over any interleaving of worker
incarnations is exactly the work performed.
"""

from repro import ViewCatalog, parse_query
from repro.parallel import (
    BreakerScoreboard,
    SupervisedWorkerPool,
    SupervisorPolicy,
    WorkerConfig,
    WorkerTask,
)
from repro.service import PlanRequest, ServicePolicy

QUERY = "q(X, Z) :- car(X, Y), loc(Y, Z)"


def _catalog():
    return ViewCatalog(
        [
            "v1(X, Z) :- car(X, Y), loc(Y, Z)",
            "v2(X, Y) :- car(X, Y)",
        ]
    )


def test_merge_accumulates_deltas_not_totals():
    scoreboard = BreakerScoreboard()
    # Two tasks served by incarnation A, then A is recycled and B
    # serves two more.  Each merge is a per-task delta.
    for _ in range(2):
        scoreboard.merge({"corecover": (1, 0)})
    # Recycling resets the worker-side totals to zero; the next delta
    # is still (1, 0) per task, never the replacement's running total.
    for _ in range(2):
        scoreboard.merge({"corecover": (1, 0)})
    assert scoreboard.summary() == {
        "corecover": {"successes": 4, "failures": 0}
    }


def test_recycled_worker_does_not_double_count_mid_batch():
    """Force a recycle after every request (workers=1) and check the
    parent scoreboard equals exactly one success per request served —
    across three worker incarnations."""
    catalog = _catalog()
    pool = SupervisedWorkerPool(
        WorkerConfig(policy=ServicePolicy(chain=("corecover",)), pool_size=2),
        policy=SupervisorPolicy(workers=1, recycle_after_requests=1),
    ).start()
    try:
        total = 4
        futures = [
            pool.submit(
                WorkerTask(
                    index=i,
                    request=PlanRequest(
                        query=parse_query(QUERY), views=catalog, id=f"r{i}"
                    ),
                )
            )
            for i in range(total)
        ]
        results = [future.result(timeout=60) for future in futures]
        assert all(r.outcome.status == "ok" for r in results)
        assert pool.recycles >= 2, "the batch must span several incarnations"
        summary = pool.scoreboard.summary()
        assert summary["corecover"]["successes"] == total
        assert summary["corecover"]["failures"] == 0
        # Each task's delta is independent of which incarnation served
        # it: every result carries its own single-success delta.
        for result in results:
            assert result.breaker_deltas["corecover"] == (1, 0)
    finally:
        pool.shutdown(drain=True, deadline=10.0)
