"""Tests for conjunctive-query evaluation."""

from repro.datalog import parse_query
from repro.engine import Database, evaluate, evaluate_bindings


def db(**relations):
    return Database.from_dict(relations)


class TestSelection:
    def test_single_atom_scan(self):
        q = parse_query("q(X, Y) :- e(X, Y)")
        assert evaluate(q, db(e=[(1, 2), (3, 4)])) == {(1, 2), (3, 4)}

    def test_constant_selection(self):
        q = parse_query("q(X) :- e(X, 2)")
        assert evaluate(q, db(e=[(1, 2), (3, 4)])) == {(1,)}

    def test_repeated_variable_selection(self):
        q = parse_query("q(X) :- e(X, X)")
        assert evaluate(q, db(e=[(1, 1), (1, 2), (3, 3)])) == {(1,), (3,)}

    def test_projection_deduplicates(self):
        q = parse_query("q(X) :- e(X, Y)")
        assert evaluate(q, db(e=[(1, 2), (1, 3)])) == {(1,)}

    def test_constant_in_head(self):
        q = parse_query("q(X, tag) :- e(X, Y)")
        assert evaluate(q, db(e=[(1, 2)])) == {(1, "tag")}


class TestJoins:
    def test_two_way_join(self):
        q = parse_query("q(X, Z) :- e(X, Y), f(Y, Z)")
        result = evaluate(q, db(e=[(1, 2), (3, 4)], f=[(2, 5), (9, 9)]))
        assert result == {(1, 5)}

    def test_chain_join(self):
        q = parse_query("q(A, D) :- e(A, B), e(B, C), e(C, D)")
        result = evaluate(q, db(e=[(1, 2), (2, 3), (3, 4)]))
        assert result == {(1, 4)}

    def test_star_join(self):
        q = parse_query("q(C, X, Y) :- e(C, X), f(C, Y)")
        result = evaluate(q, db(e=[(0, 1), (9, 9)], f=[(0, 2), (0, 3)]))
        assert result == {(0, 1, 2), (0, 1, 3)}

    def test_cartesian_product(self):
        q = parse_query("q(X, Y) :- e(X), f(Y)")
        result = evaluate(q, db(e=[(1,), (2,)], f=[(8,)]))
        assert result == {(1, 8), (2, 8)}

    def test_empty_relation_kills_join(self):
        q = parse_query("q(X) :- e(X, Y), f(Y, Y)")
        database = db(e=[(1, 2)])
        database.ensure_relation("f", 2)
        assert evaluate(q, database) == frozenset()

    def test_missing_relation_yields_empty(self):
        q = parse_query("q(X) :- missing(X)")
        assert evaluate(q, db(e=[(1, 2)])) == frozenset()

    def test_arity_mismatch_yields_empty(self):
        q = parse_query("q(X) :- e(X)")
        assert evaluate(q, db(e=[(1, 2)])) == frozenset()

    def test_self_join_different_roles(self):
        q = parse_query("q(X, Z) :- e(X, Y), e(Y, Z)")
        result = evaluate(q, db(e=[(1, 2), (2, 3)]))
        assert result == {(1, 3)}


class TestComparisons:
    def test_filter_le(self):
        q = parse_query("q(X, Y) :- e(X, Y), X <= Y")
        assert evaluate(q, db(e=[(1, 2), (3, 1)])) == {(1, 2)}

    def test_filter_between_atoms(self):
        q = parse_query("q(X, Z) :- e(X, Y), f(Y, Z), X != Z")
        result = evaluate(q, db(e=[(1, 2), (5, 6)], f=[(2, 1), (2, 3), (6, 6)]))
        assert result == {(1, 3), (5, 6)}

    def test_comparison_with_constant(self):
        q = parse_query("q(X) :- e(X, Y), Y >= 3")
        assert evaluate(q, db(e=[(1, 2), (2, 3), (3, 9)])) == {(2,), (3,)}


class TestBindings:
    def test_evaluate_bindings_returns_full_assignments(self):
        q = parse_query("q(X) :- e(X, Y)")
        bindings = evaluate_bindings(q.body, db(e=[(1, 2)]))
        assert len(bindings) == 1
        values = {var.name: value for var, value in bindings[0].items()}
        assert values == {"X": 1, "Y": 2}

    def test_no_relational_atoms(self):
        bindings = evaluate_bindings([], db(e=[(1, 2)]))
        assert bindings == [{}]
