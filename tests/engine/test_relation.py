"""Tests for in-memory relations."""

import pytest

from repro.engine import ArityError, Relation


class TestRelation:
    def test_set_semantics(self):
        rel = Relation("e", 2, [(1, 2), (1, 2), (3, 4)])
        assert len(rel) == 2

    def test_arity_enforced(self):
        rel = Relation("e", 2)
        with pytest.raises(ArityError):
            rel.add((1, 2, 3))

    def test_negative_arity_rejected(self):
        with pytest.raises(ArityError):
            Relation("e", -1)

    def test_membership(self):
        rel = Relation("e", 2, [(1, 2)])
        assert (1, 2) in rel
        assert (2, 1) not in rel

    def test_add_all(self):
        rel = Relation("e", 1)
        rel.add_all([(1,), (2,)])
        assert len(rel) == 2

    def test_rows_coerced_to_tuples(self):
        rel = Relation("e", 2, [[1, 2]])
        assert (1, 2) in rel

    def test_copy_is_independent(self):
        rel = Relation("e", 1, [(1,)])
        clone = rel.copy("e2")
        clone.add((2,))
        assert len(rel) == 1
        assert clone.name == "e2"

    def test_equality(self):
        assert Relation("e", 2, [(1, 2)]) == Relation("e", 2, [(1, 2)])
        assert Relation("e", 2, [(1, 2)]) != Relation("f", 2, [(1, 2)])

    def test_index_on(self):
        rel = Relation("e", 2, [(1, 2), (1, 3), (2, 2)])
        index = rel.index_on([0])
        assert sorted(index[(1,)]) == [(1, 2), (1, 3)]
        assert index[(2,)] == [(2, 2)]

    def test_index_on_empty_positions_groups_all(self):
        rel = Relation("e", 2, [(1, 2), (2, 3)])
        index = rel.index_on([])
        assert len(index[()]) == 2

    def test_zero_arity_relation(self):
        rel = Relation("t", 0, [()])
        assert len(rel) == 1
        assert () in rel
