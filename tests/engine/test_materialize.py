"""Tests for view materialization (closed-world assumption)."""

from repro.datalog import parse_query
from repro.engine import Database, evaluate, materialize_query, materialize_views
from repro.views import ViewCatalog


def base_db():
    return Database.from_dict(
        {
            "car": [("m1", "a"), ("m2", "d1"), ("m1", "d1")],
            "loc": [("a", "c1"), ("d1", "c2")],
            "part": [("s1", "m1", "c1"), ("s2", "m2", "c2"), ("s3", "m1", "c2")],
        }
    )


class TestMaterialize:
    def test_materialize_query(self):
        definition = parse_query("v1(M, D, C) :- car(M, D), loc(D, C)")
        relation = materialize_query(definition, base_db())
        assert relation.name == "v1"
        assert relation.arity == 3
        assert ("m1", "a", "c1") in relation
        assert ("m2", "d1", "c2") in relation

    def test_materialize_views_builds_view_database(self):
        views = ViewCatalog(
            [
                "v1(M, D, C) :- car(M, D), loc(D, C)",
                "v2(S, M, C) :- part(S, M, C)",
            ]
        )
        vdb = materialize_views(views, base_db())
        assert vdb.has_relation("v1") and vdb.has_relation("v2")
        assert len(vdb.relation("v2")) == 3

    def test_closed_world_identity(self):
        """Views with identical definitions materialize identically (V1/V5)."""
        views = ViewCatalog(
            [
                "v1(M, D, C) :- car(M, D), loc(D, C)",
                "v5(M, D, C) :- car(M, D), loc(D, C)",
            ]
        )
        vdb = materialize_views(views, base_db())
        assert vdb.relation("v1").tuples == vdb.relation("v5").tuples

    def test_rewriting_answer_matches_query_answer(self):
        base = base_db()
        views = ViewCatalog(
            [
                "v1(M, D, C) :- car(M, D), loc(D, C)",
                "v2(S, M, C) :- part(S, M, C)",
            ]
        )
        vdb = materialize_views(views, base)
        query = parse_query("q1(S, C) :- car(M, a), loc(a, C), part(S, M, C)")
        rewriting = parse_query("q1(S, C) :- v1(M, a, C), v2(S, M, C)")
        assert evaluate(rewriting, vdb) == evaluate(query, base)

    def test_empty_view(self):
        views = ViewCatalog(["v(X) :- car(X, nosuchdealer)"])
        vdb = materialize_views(views, base_db())
        assert len(vdb.relation("v")) == 0
        assert vdb.relation("v").arity == 1
