"""Tests for databases."""

import pytest

from repro.containment import canonical_database
from repro.datalog import parse_query
from repro.engine import Database, Relation, UnknownRelationError


class TestDatabase:
    def test_add_and_get(self):
        db = Database([Relation("e", 2, [(1, 2)])])
        assert len(db.relation("e")) == 1

    def test_unknown_relation(self):
        with pytest.raises(UnknownRelationError):
            Database().relation("missing")

    def test_has_relation(self):
        db = Database([Relation("e", 1)])
        assert db.has_relation("e")
        assert not db.has_relation("f")

    def test_add_fact_creates_relation(self):
        db = Database()
        db.add_fact("e", (1, 2))
        assert db.relation("e").arity == 2

    def test_ensure_relation_idempotent(self):
        db = Database()
        first = db.ensure_relation("e", 2)
        second = db.ensure_relation("e", 2)
        assert first is second

    def test_from_dict(self):
        db = Database.from_dict({"e": [(1, 2)], "f": [(1,)]})
        assert db.names() == ("e", "f")
        assert db.total_tuples() == 2

    def test_from_dict_empty_relation_rejected(self):
        with pytest.raises(ValueError):
            Database.from_dict({"e": []})

    def test_from_facts_canonical_database(self):
        q = parse_query("q(X) :- e(X, Y), f(Y, a)")
        cdb = canonical_database(q)
        db = Database.from_facts(cdb.facts)
        assert db.has_relation("e") and db.has_relation("f")
        assert db.total_tuples() == 2

    def test_from_facts_rejects_nonground(self):
        q = parse_query("q(X) :- e(X, Y)")
        with pytest.raises(ValueError):
            Database.from_facts(q.body)

    def test_iteration(self):
        db = Database([Relation("e", 1, [(1,)]), Relation("f", 1, [(2,)])])
        assert {rel.name for rel in db} == {"e", "f"}
        assert len(db) == 2
