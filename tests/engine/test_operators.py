"""Tests for the Volcano-style physical operators."""

import pytest

from repro.datalog import Variable, parse_atom, parse_query
from repro.engine import Database, evaluate
from repro.engine.operators import (
    HashJoin,
    NestedLoopJoin,
    Project,
    Scan,
    Select,
    build_left_deep_tree,
)

A, B, C = Variable("A"), Variable("B"), Variable("C")

DB = Database.from_dict(
    {
        "e": [(1, 2), (2, 3), (3, 3)],
        "f": [(2, 10), (3, 20)],
    }
)


class TestScan:
    def test_plain_scan(self):
        scan = Scan(DB.relation("e"), parse_atom("e(A, B)"))
        assert scan.schema == (A, B)
        assert set(scan.rows()) == {(1, 2), (2, 3), (3, 3)}

    def test_constant_selection(self):
        scan = Scan(DB.relation("e"), parse_atom("e(A, 3)"))
        assert scan.schema == (A,)
        assert set(scan.rows()) == {(2,), (3,)}

    def test_repeated_variable_selection(self):
        scan = Scan(DB.relation("e"), parse_atom("e(A, A)"))
        assert set(scan.rows()) == {(3,)}

    def test_arity_mismatch(self):
        with pytest.raises(ValueError):
            Scan(DB.relation("e"), parse_atom("e(A)"))

    def test_reiterable(self):
        scan = Scan(DB.relation("e"), parse_atom("e(A, B)"))
        assert list(scan.rows()) == list(scan.rows())


class TestSelectProject:
    def test_select(self):
        from repro.datalog import Atom

        scan = Scan(DB.relation("e"), parse_atom("e(A, B)"))
        select = Select(scan, Atom("<", (A, B)))
        assert set(select.rows()) == {(1, 2), (2, 3)}

    def test_select_requires_comparison(self):
        scan = Scan(DB.relation("e"), parse_atom("e(A, B)"))
        with pytest.raises(ValueError):
            Select(scan, parse_atom("e(A, B)"))

    def test_select_unknown_variable(self):
        from repro.datalog import Atom

        scan = Scan(DB.relation("e"), parse_atom("e(A, B)"))
        with pytest.raises(ValueError):
            Select(scan, Atom("<", (A, C)))

    def test_project_deduplicates(self):
        scan = Scan(DB.relation("e"), parse_atom("e(A, B)"))
        project = Project(scan, (B,))
        assert set(project.rows()) == {(2,), (3,)}

    def test_project_unknown_column(self):
        scan = Scan(DB.relation("e"), parse_atom("e(A, B)"))
        with pytest.raises(ValueError):
            Project(scan, (C,))


class TestJoins:
    @pytest.mark.parametrize("join_class", [HashJoin, NestedLoopJoin])
    def test_join_on_shared_variable(self, join_class):
        left = Scan(DB.relation("e"), parse_atom("e(A, B)"))
        right = Scan(DB.relation("f"), parse_atom("f(B, C)"))
        join = join_class(left, right)
        assert join.schema == (A, B, C)
        assert set(join.rows()) == {(1, 2, 10), (2, 3, 20), (3, 3, 20)}

    @pytest.mark.parametrize("join_class", [HashJoin, NestedLoopJoin])
    def test_cartesian_product_when_disjoint(self, join_class):
        left = Scan(DB.relation("f"), parse_atom("f(A, B)"))
        right = Scan(DB.relation("f"), parse_atom("f(C, D)"))
        join = join_class(left, right)
        assert len(set(join.rows())) == 4

    def test_hash_and_nested_loop_agree(self):
        left = Scan(DB.relation("e"), parse_atom("e(A, B)"))
        right = Scan(DB.relation("e"), parse_atom("e(B, C)"))
        assert set(HashJoin(left, right).rows()) == set(
            NestedLoopJoin(left, right).rows()
        )


class TestLeftDeepTree:
    def test_matches_reference_evaluator(self):
        query = parse_query("q(A, C) :- e(A, B), f(B, C)")
        tree = build_left_deep_tree(query.body, DB)
        projected = Project(tree, tuple(query.head.args))
        assert set(projected.rows()) == evaluate(query, DB)

    def test_comparisons_applied_when_ready(self):
        query = parse_query("q(A, C) :- e(A, B), f(B, C), A < C")
        tree = build_left_deep_tree(query.body, DB)
        projected = Project(tree, (A, C))
        assert set(projected.rows()) == evaluate(query, DB)

    def test_unbound_comparison_rejected(self):
        from repro.datalog import Atom

        with pytest.raises(ValueError):
            build_left_deep_tree(
                [parse_atom("e(A, B)"), Atom("<", (A, C))], DB
            )

    def test_no_relational_atoms_rejected(self):
        from repro.datalog import Atom

        with pytest.raises(ValueError):
            build_left_deep_tree([Atom("<", (A, B))], DB)

    def test_nested_loop_variant(self):
        query = parse_query("q(A, C) :- e(A, B), f(B, C)")
        tree = build_left_deep_tree(query.body, DB, NestedLoopJoin)
        projected = Project(tree, (A, C))
        assert set(projected.rows()) == evaluate(query, DB)
