#!/usr/bin/env python3
"""The Mediator: the paper's pipeline behind one object.

A data-integration service holds view definitions and materialized view
relations; clients submit conjunctive queries.  The mediator answers each
query through CoreCover* + the cost-based optimizer, caches plans, and —
when a query has no equivalent rewriting — falls back to the sound
*certain answers* of the inverse-rules algorithm instead of failing.

Run with::

    python examples/mediator_service.py
"""

from repro import Mediator, parse_query
from repro.experiments.paper_examples import car_loc_part, car_loc_part_database


def main() -> None:
    clp = car_loc_part()
    base = car_loc_part_database()
    mediator = Mediator(clp.views, base_database=base, cost_model="m2")

    print("Mediator over the car-loc-part sources.\n")

    # 1. A rewritable query: answered exactly through a rewriting.
    answer = mediator.answer(clp.query)
    print(f"Q1: {clp.query}")
    print(f"    method: {answer.method} (exact={answer.exact})")
    print(f"    rows  : {sorted(answer.rows)[:4]} ... ({len(answer.rows)} total)")
    print(mediator.explain(clp.query))

    # 2. The same query again: served from the plan cache.
    mediator.answer(clp.query)
    print("\ncache:", mediator.cache_info())

    # 3. A query the views cannot rewrite exactly: parts available in any
    #    city of any dealer of that make — 'loc' alone is not exposed in a
    #    way that rewrites this equivalently, so we get certain answers.
    partial = parse_query("q2(D) :- loc(D, C)")
    answer = mediator.answer(partial)
    print(f"\nQ2: {partial}")
    print(f"    method: {answer.method} (exact={answer.exact})")
    print(f"    rows  : {sorted(answer.rows)}")
    print("   ", mediator.explain(partial))


if __name__ == "__main__":
    main()
