#!/usr/bin/env python3
"""Cost model M3: dropping attributes beyond the supplementary approach.

Reproduces Example 6.1 / Figure 5: on the paper's exact instance, the
classic supplementary-relation plans give P1 cost 10 and P2 cost 13; the
Section 6.2 renaming heuristic notices that the B-equality in P2 is
redundant, drops B early, and recovers cost 10.

Run with::

    python examples/attribute_dropping.py
"""

from repro import (
    cost_m3,
    evaluate,
    execute_plan,
    heuristic_plan,
    materialize_views,
    supplementary_plan,
)
from repro.experiments.paper_examples import example_61


def describe(label, plan, view_db):
    execution = execute_plan(plan, view_db)
    sizes = execution.intermediate_sizes()
    print(f"{label}")
    print(f"    plan : {plan}")
    print(f"    GSR sizes: {sizes}   M3 cost: {cost_m3(execution)}")
    return execution


def main() -> None:
    ex = example_61()
    print("Query:", ex.query)
    print("Views:")
    for view in ex.views:
        print("   ", view)
    view_db = materialize_views(ex.views, ex.base)
    print("\nFigure 5 view relations:")
    print("    v1 =", sorted(view_db.relation("v1")))
    print("    v2 =", sorted(view_db.relation("v2")))

    print("\n--- classic supplementary-relation plans ---")
    f1 = describe("F1 = SR plan of P1", supplementary_plan(ex.p1, [0, 1]), view_db)
    f2 = describe("F2 = SR plan of P2", supplementary_plan(ex.p2, [0, 1]), view_db)

    print("\n--- Section 6.2 renaming heuristic on P2 ---")
    smart = describe(
        "F2' = heuristic plan of P2",
        heuristic_plan(ex.p2, ex.query, ex.views, [0, 1]),
        view_db,
    )

    expected = evaluate(ex.query, ex.base)
    for execution in (f1, f2, smart):
        assert execution.answer == expected
    print("\nAll three plans compute the query answer", sorted(expected))
    print(
        "Heuristic saves"
        f" {cost_m3(f2) - cost_m3(smart)} units over the supplementary plan"
    )


if __name__ == "__main__":
    main()
