#!/usr/bin/env python3
"""A guided tour through the paper's worked examples.

Reproduces, in order: the rewriting taxonomy on the car-loc-part example
(Sections 2-3), the GMR-that-is-not-a-CMR example, the Example 3.1 LMR
chain (Figure 2(b)), Table 2's tuple-cores (Example 4.1), and the
CoreCover vs. MiniCon comparison (Example 4.2).

Run with::

    python examples/paper_walkthrough.py
"""

from repro import core_cover, minimize
from repro.baselines import minicon
from repro.core import (
    build_lmr_lattice,
    tuple_cores,
    view_tuples,
)
from repro.experiments.paper_examples import (
    car_loc_part,
    example_31,
    example_41,
    example_42,
    gmr_not_cmr,
)
from repro.views import is_locally_minimal, is_minimal_as_query


def banner(title):
    print(f"\n{'=' * 64}\n{title}\n{'=' * 64}")


def walk_car_loc_part():
    banner("Example 1.1 - the car-loc-part example")
    clp = car_loc_part()
    print("Q :", clp.query)
    for name, p in [("P1", clp.p1), ("P2", clp.p2), ("P3", clp.p3),
                    ("P4", clp.p4), ("P5", clp.p5)]:
        tags = []
        if is_minimal_as_query(p):
            tags.append("minimal")
        if is_locally_minimal(p, clp.query, clp.views):
            tags.append("LMR")
        print(f"{name}: {p}   [{', '.join(tags)}]")
    result = core_cover(clp.query, clp.views)
    print("CoreCover GMRs:", ", ".join(str(r) for r in result.rewritings))
    print("Empty-core filters:", ", ".join(str(f) for f in result.filter_candidates))


def walk_gmr_not_cmr():
    banner("Section 3.2 - a GMR need not be a CMR")
    ex = gmr_not_cmr()
    lattice = build_lmr_lattice([ex.p1, ex.p2])
    print("Q :", ex.query)
    print("P1:", ex.p1, " P2:", ex.p2)
    print("GMRs:", [str(q) for q in lattice.gmrs()])
    print("CMRs:", [str(q) for q in lattice.cmrs()])
    print("P1 is a GMR but properly contains P2, so it is not a CMR.")


def walk_example_31():
    banner("Example 3.1 / Figure 2(b) - a chain of LMRs")
    ex = example_31(3)
    lattice = build_lmr_lattice(ex.rewritings)
    for index, rewriting in enumerate(ex.rewritings, start=1):
        print(f"P{index} ({len(rewriting.body)} subgoals): {rewriting}")
    print("Hasse edges (upper properly contains lower):", lattice.edges)
    print("Bottom (CMR):", [str(q) for q in lattice.cmrs()])


def walk_table_2():
    banner("Example 4.1 / Table 2 - tuple-cores")
    ex = example_41()
    minimized = minimize(ex.query)
    tuples = view_tuples(minimized, ex.views)
    print("Q:", minimized)
    print(f"{'view tuple':<12} {'tuple-core (covered subgoals)'}")
    for vt, core in zip(tuples, tuple_cores(minimized, tuples)):
        atoms = ", ".join(str(minimized.body[i]) for i in sorted(core.covered))
        print(f"{str(vt):<12} {{{atoms}}}")
    result = core_cover(ex.query, ex.views)
    print("GMR:", result.rewritings[0])


def walk_example_42():
    banner("Example 4.2 - CoreCover vs. MiniCon")
    ex = example_42(3)
    clever = core_cover(ex.query, ex.views)
    baseline = minicon(ex.query, ex.views)
    print("Q:", ex.query)
    print("CoreCover rewritings:")
    for rewriting in clever.rewritings:
        print("   ", rewriting)
    print("MiniCon combinations (note the redundant subgoals):")
    for rewriting in baseline.contained_rewritings:
        print("   ", rewriting)


def main() -> None:
    walk_car_loc_part()
    walk_gmr_not_cmr()
    walk_example_31()
    walk_table_2()
    walk_example_42()


if __name__ == "__main__":
    main()
