#!/usr/bin/env python3
"""Query optimization over a data-warehouse-style workload.

Generates a random star workload (the Section 7 setup), materializes the
views over synthetic base data, and walks the paper's two-step
architecture: CoreCover* produces the logical plans, the optimizer
prices each one under cost model M2 — both from *exact* execution and
from a statistics catalog (System-R estimates) — and picks the winner.

Run with::

    python examples/query_optimization.py [seed]
"""

import random
import sys

from repro import (
    StatisticsCatalog,
    core_cover_star,
    evaluate,
    materialize_views,
    optimal_plan_m2,
)
from repro.cost import optimal_plan_m2_estimated
from repro.workload import (
    WorkloadConfig,
    generate_workload,
    schema_of,
    skewed_database,
)


def main() -> None:
    seed = int(sys.argv[1]) if len(sys.argv) > 1 else 4
    config = WorkloadConfig(
        shape="star",
        num_relations=10,
        query_subgoals=5,
        num_views=40,
        seed=seed,
    )
    workload = generate_workload(config)
    print("Warehouse query:", workload.query)
    print(f"{len(workload.views)} materialized views available")

    result = core_cover_star(workload.query, workload.views, max_rewritings=30)
    print(f"\nCoreCover* produced {len(result.rewritings)} minimal rewritings;"
          f" GMR size = {result.minimum_subgoals()} subgoals")

    schema = schema_of(workload.query, *workload.views.definitions())
    base = skewed_database(schema, 150, 40, random.Random(seed), skew=0.8)
    view_db = materialize_views(workload.views, base)
    catalog = StatisticsCatalog.from_database(view_db)

    # Star joins on one shared variable explode combinatorially with many
    # subgoals; price the leanest rewritings exactly (the rest would only
    # lose on both subgoal count and intermediate sizes).
    candidates = sorted(result.rewritings, key=lambda r: len(r.body))[:8]
    print("\nPer-rewriting M2 costs (exact vs. estimated):")
    ranked = []
    for rewriting in candidates:
        exact = optimal_plan_m2(rewriting, view_db)
        estimated = optimal_plan_m2_estimated(rewriting, catalog)
        ranked.append((exact.cost, rewriting, exact, estimated.cost))
        print(f"    cost={exact.cost:>8.0f}  est={estimated.cost:>10.1f}  "
              f"{rewriting}")

    ranked.sort(key=lambda item: item[0])
    best_cost, best_rewriting, best, _est = ranked[0]
    print("\nChosen rewriting:", best_rewriting)
    print("Join order:", " -> ".join(str(a) for a in best.plan.atoms))

    expected = evaluate(workload.query, base)
    assert best.execution.answer == expected
    print(f"Answer verified against the base data "
          f"({len(expected)} tuples): OK")


if __name__ == "__main__":
    main()
