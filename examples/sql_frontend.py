#!/usr/bin/env python3
"""Authoring queries and views in SQL.

The paper's conjunctive queries are the SELECT-FROM-WHERE fragment of
SQL.  This example defines the car-loc-part scenario entirely in SQL,
translates it through the front-end, runs CoreCover, and renders the
winning rewriting back to SQL over the *view* schema — i.e. the query a
client would actually send to the materialized views.

Run with::

    python examples/sql_frontend.py
"""

from repro import ViewCatalog, core_cover
from repro.datalog import ConjunctiveQuery, Atom
from repro.datalog.sql import SqlSchema, parse_sql, to_sql
from repro.views import View


BASE_SCHEMA = SqlSchema(
    {
        "car": ["make", "dealer"],
        "loc": ["dealer", "city"],
        "part": ["store", "make", "city"],
    }
)

VIEW_SQL = {
    "v1": "SELECT c.make, c.dealer, l.city FROM car c, loc l "
          "WHERE c.dealer = l.dealer",
    "v2": "SELECT p.store, p.make, p.city FROM part p",
    "v4": "SELECT c.make, c.dealer, l.city, p.store "
          "FROM car c, loc l, part p "
          "WHERE c.dealer = l.dealer AND p.make = c.make "
          "AND p.city = l.city",
}

QUERY_SQL = (
    "SELECT p.store, l.city FROM car c, loc l, part p "
    "WHERE c.dealer = 'a' AND l.dealer = 'a' "
    "AND p.make = c.make AND p.city = l.city"
)


def main() -> None:
    print("View definitions (SQL -> datalog):")
    views = ViewCatalog()
    view_schema_tables = {}
    for name, sql in VIEW_SQL.items():
        definition = parse_sql(sql, BASE_SCHEMA, name=name)
        views.add(View(definition))
        view_schema_tables[name] = [
            f"c{i}" for i in range(definition.arity)
        ]
        print(f"    {sql}")
        print(f"      => {definition}")

    query = parse_sql(QUERY_SQL, BASE_SCHEMA, name="q1")
    print(f"\nQuery:\n    {QUERY_SQL}\n      => {query}")

    result = core_cover(query, views)
    print("\nGlobally-minimal rewritings:")
    view_schema = SqlSchema(view_schema_tables)
    for rewriting in result.rewritings:
        print("    datalog:", rewriting)
        print("    SQL    :", to_sql(rewriting, view_schema))


if __name__ == "__main__":
    main()
