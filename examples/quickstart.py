#!/usr/bin/env python3
"""Quickstart: rewrite a query using materialized views with CoreCover.

Run with::

    python examples/quickstart.py
"""

from repro import (
    Database,
    ViewCatalog,
    core_cover,
    evaluate,
    materialize_views,
    parse_query,
)


def main() -> None:
    # A query over base relations: paths a -> a-loop -> b (Example 4.1).
    query = parse_query("q(X, Y) :- a(X, Z), a(Z, Z), b(Z, Y)")

    # Materialized views defined over the same base relations.
    views = ViewCatalog(
        [
            "v1(A, B) :- a(A, B), a(B, B)",
            "v2(C, D) :- a(C, E), b(C, D)",
        ]
    )

    # 1. Generate all globally-minimal rewritings (cost model M1).
    result = core_cover(query, views)
    print("Query:        ", query)
    print("View tuples:  ", ", ".join(str(t) for t in result.view_tuples))
    for core in result.cores:
        print("Tuple-core:   ", core)
    print("GMRs:")
    for rewriting in result.rewritings:
        print("   ", rewriting)

    # 2. Closed-world check: the rewriting computes the query's answer.
    base = Database.from_dict(
        {
            "a": [(1, 2), (2, 2), (3, 3), (4, 2)],
            "b": [(2, 10), (3, 11), (5, 12)],
        }
    )
    view_db = materialize_views(views, base)
    expected = evaluate(query, base)
    for rewriting in result.rewritings:
        answer = evaluate(rewriting, view_db)
        status = "OK" if answer == expected else "MISMATCH"
        print(f"\n{status}: {rewriting}")
        print("   query answer on base data :", sorted(expected))
        print("   rewriting answer on views :", sorted(answer))


if __name__ == "__main__":
    main()
