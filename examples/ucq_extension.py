#!/usr/bin/env python3
"""Section 8 extension: built-in predicates and union rewritings.

The paper closes with a query whose rewritings, in the presence of a view
with a ``<=`` comparison, can be a *union* of conjunctive queries (P1,
two disjuncts of two subgoals) or a single conjunctive query with an
extra subgoal (P2).  Neither dominates the other; this example evaluates
both on data and compares their M2-style footprints.

Run with::

    python examples/ucq_extension.py
"""

import random

from repro import Database, evaluate, materialize_views
from repro.datalog import as_union
from repro.experiments.paper_examples import section8_ucq


def evaluate_union(disjuncts, database):
    answer = frozenset()
    for disjunct in disjuncts:
        answer |= evaluate(disjunct, database)
    return answer


def main() -> None:
    ex = section8_ucq()
    print("Query:", ex.query)
    print("Views:")
    for view in ex.views:
        print("   ", view)
    print("\nP1 (union of two CQs):")
    for disjunct in ex.union_rewriting:
        print("   ", disjunct)
    print("P2 (single CQ):")
    print("   ", ex.single_rewriting)
    union = as_union(ex.union_rewriting)
    print(
        f"\nP1 uses {len(union)} disjuncts x 2 subgoals = "
        f"{union.total_subgoals()} subgoals; "
        f"P2 uses 1 disjunct x {len(ex.single_rewriting.body)} subgoals."
    )

    rng = random.Random(7)
    base = Database()
    for _ in range(40):
        base.add_fact("p", (rng.randrange(8), rng.randrange(8)))
        base.add_fact("r", (rng.randrange(8), rng.randrange(8)))
    view_db = materialize_views(ex.views, base)
    expected = evaluate(ex.query, base)
    union_answer = evaluate_union(ex.union_rewriting, view_db)
    single_answer = evaluate(ex.single_rewriting, view_db)

    print(f"\nOn a random instance ({len(expected)} answer tuples):")
    print("    union rewriting matches query answer:", union_answer == expected)
    print("    single-CQ rewriting matches too:     ", single_answer == expected)
    assert union_answer == expected and single_answer == expected


if __name__ == "__main__":
    main()
