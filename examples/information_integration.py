#!/usr/bin/env python3
"""Information integration: the paper's car-loc-part scenario end to end.

The introduction motivates rewriting with data-integration systems where
only the views (sources) are accessible.  This example runs the full
pipeline on Example 1.1:

1. CoreCover finds the GMR (P4) and CoreCover* the whole M2 search space;
2. the view relations are materialized from a base instance
   (closed-world assumption);
3. the optimizer prices every rewriting under M2, considers the selective
   view V3 as a *filtering subgoal* (the P3-beats-P2 phenomenon), and
   picks the cheapest physical plan;
4. the chosen plan is executed and checked against the query's answer.

Run with::

    python examples/information_integration.py
"""

from repro import (
    best_rewriting_m2,
    core_cover_star,
    evaluate,
    improve_with_filters,
    materialize_views,
    optimal_plan_m2,
)
from repro.experiments.paper_examples import (
    car_loc_part,
    car_loc_part_database,
    car_loc_part_selective_database,
)


def main() -> None:
    clp = car_loc_part()
    print("Integration query:", clp.query)
    print("Sources (views):")
    for view in clp.views:
        print("   ", view)

    # --- rewriting generation ------------------------------------------
    result = core_cover_star(clp.query, clp.views)
    print("\nMinimal rewritings using view tuples (the M2 search space):")
    for rewriting in result.rewritings:
        print("   ", rewriting)
    print("Filter candidates (empty tuple-core):",
          ", ".join(str(f) for f in result.filter_candidates))

    # --- materialize the sources ------------------------------------------
    base = car_loc_part_database()
    view_db = materialize_views(clp.views, base)
    print("\nMaterialized source sizes:")
    for name in view_db.names():
        print(f"    {name}: {len(view_db.relation(name))} tuples")

    # --- cost-based selection -------------------------------------------
    best = best_rewriting_m2(result.rewritings, view_db)
    print("\nM2-optimal rewriting:", best.rewriting)
    print("    plan:", best.plan)
    print("    cost:", best.cost)

    # Try the P3 trick: add selective filters to the two-subgoal rewriting.
    # On an instance where V3 is very selective, the filter strictly pays
    # (Section 5.1) and the extended rewriting is exactly the paper's P3.
    selective_base = car_loc_part_selective_database()
    selective_db = materialize_views(clp.views, selective_base)
    p2 = next(r for r in result.rewritings if len(r.body) == 2)
    baseline = optimal_plan_m2(p2, selective_db)
    improved = improve_with_filters(p2, result.filter_candidates, selective_db)
    print(f"\nOn the selective instance "
          f"(v3 has {len(selective_db.relation('v3'))} tuples):")
    print(f"    P2 without filters: cost {baseline.cost}")
    print(f"    P2 with filters:    cost {improved.cost}  "
          f"({improved.rewriting})")

    # --- execute and verify -----------------------------------------------
    expected = evaluate(clp.query, base)
    print("\nAnswer of the chosen plan:", sorted(best.execution.answer))
    assert best.execution.answer == expected
    print("Matches the query's answer over the base data: OK")


if __name__ == "__main__":
    main()
