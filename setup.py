"""Legacy setup shim.

The execution environment has no network access and no ``wheel`` package,
so PEP 660 editable installs fail; ``python setup.py develop`` (or
``pip install -e . --no-build-isolation`` on modern stacks) works with
this shim.
"""

from setuptools import find_packages, setup

setup(
    name="repro",
    version="1.0.0",
    package_dir={"": "src"},
    packages=find_packages("src"),
    python_requires=">=3.10",
)
