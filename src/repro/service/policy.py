"""Tunable policies of the resilient executor.

Three immutable dataclasses configure the supervision layer:

* :class:`RetryPolicy` — how many attempts a single backend gets and how
  the exponential-backoff-with-full-jitter delays between them are
  computed (AWS architecture blog's "full jitter" variant: each delay is
  uniform in ``[0, min(max_delay, base * 2**attempt))``, which avoids
  retry synchronization across concurrent clients);
* :class:`BreakerPolicy` — the circuit breaker's failure-rate window and
  cooldown (see :mod:`repro.service.breaker`);
* :class:`ServicePolicy` — the bundle the executor consumes: retry +
  breaker policies plus the backend failover chain.

All time/randomness inputs are injectable at the executor level
(``clock``, ``sleep``, ``rng``), so chaos tests replay deterministically.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

__all__ = ["BreakerPolicy", "DEFAULT_CHAIN", "RetryPolicy", "ServicePolicy"]

#: The default failover chain: the paper's algorithm first, then the
#: baselines in decreasing sophistication.  Every fallback's output is
#: re-certified before being served (see :mod:`repro.service.failover`).
DEFAULT_CHAIN = ("corecover", "bucket", "naive")


@dataclass(frozen=True)
class RetryPolicy:
    """Per-backend retry behaviour for transient failures."""

    #: Planning attempts per backend before failing over (>= 1).
    max_attempts: int = 3
    #: First backoff ceiling in seconds; doubles every attempt.
    base_delay: float = 0.05
    #: Hard ceiling on any single backoff delay.
    max_delay: float = 2.0

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")
        if self.base_delay < 0 or self.max_delay < 0:
            raise ValueError("backoff delays must be nonnegative")

    def delay(self, attempt: int, rng: Callable[[], float]) -> float:
        """The full-jitter backoff before retry *attempt* (1-based).

        ``rng`` returns a float in ``[0, 1)``; the delay is uniform in
        ``[0, min(max_delay, base_delay * 2**(attempt - 1)))``.
        """
        ceiling = min(self.max_delay, self.base_delay * (2 ** (attempt - 1)))
        return rng() * ceiling


@dataclass(frozen=True)
class BreakerPolicy:
    """Circuit-breaker thresholds (see :class:`~repro.service.breaker.CircuitBreaker`)."""

    #: Sliding window of recent call outcomes the failure rate is
    #: computed over.
    window: int = 10
    #: Open the circuit when ``failures / len(window) >= threshold``.
    failure_threshold: float = 0.5
    #: Minimum outcomes in the window before the rate is considered
    #: (a volume floor so one early failure cannot open a cold breaker).
    min_calls: int = 2
    #: Seconds an OPEN breaker waits before allowing a HALF_OPEN trial.
    cooldown_seconds: float = 30.0

    def __post_init__(self) -> None:
        if self.window < 1:
            raise ValueError("window must be >= 1")
        if not 0.0 < self.failure_threshold <= 1.0:
            raise ValueError("failure_threshold must be in (0, 1]")
        if self.min_calls < 1:
            raise ValueError("min_calls must be >= 1")
        if self.cooldown_seconds < 0:
            raise ValueError("cooldown_seconds must be nonnegative")


@dataclass(frozen=True)
class ServicePolicy:
    """Everything the executor needs to supervise one request stream."""

    chain: tuple[str, ...] = DEFAULT_CHAIN
    retry: RetryPolicy = field(default_factory=RetryPolicy)
    breaker: BreakerPolicy = field(default_factory=BreakerPolicy)

    def __post_init__(self) -> None:
        if not self.chain:
            raise ValueError("the failover chain must name at least one backend")
