"""The resilient plan-execution service layer.

This package turns the planner registry's ``plan()`` into something a
serving tier can sit on: supervised execution with retry/backoff,
per-backend circuit breakers, a certified failover chain, and a
crash-safe on-disk plan cache with an explicit stale-serving degraded
mode.  See :mod:`repro.service.executor` for the full contract and
``docs/robustness.md`` for the operational story.

Quickstart::

    from repro.service import PlanRequest, ResilientExecutor

    executor = ResilientExecutor()          # corecover -> bucket -> naive
    outcome = executor.execute(PlanRequest(query, views))
    outcome.status        # "ok" | "degraded" | "failed"
    outcome.backend_used  # which backend's (certified) answer was served
    outcome.attempts      # planning attempts across the failover chain
"""

from .batch import (
    parse_request_line,
    parse_requests,
    request_from_payload,
    run_batch,
)
from .breaker import BreakerState, CircuitBreaker
from .cache import CachedPlan, PlanCache, request_key
from .executor import (
    BackendFailure,
    ExecutionOutcome,
    PlanRequest,
    ResilientExecutor,
)
from .failover import (
    ChainConfigError,
    certify_rewritings,
    is_quarantined,
    quarantine,
    quarantined_backends,
    reset_quarantine,
    resolve_chain,
)
from .policy import DEFAULT_CHAIN, BreakerPolicy, RetryPolicy, ServicePolicy

__all__ = [
    "BackendFailure",
    "BreakerPolicy",
    "BreakerState",
    "CachedPlan",
    "ChainConfigError",
    "CircuitBreaker",
    "DEFAULT_CHAIN",
    "ExecutionOutcome",
    "PlanCache",
    "PlanRequest",
    "ResilientExecutor",
    "RetryPolicy",
    "ServicePolicy",
    "certify_rewritings",
    "is_quarantined",
    "parse_request_line",
    "parse_requests",
    "quarantine",
    "quarantined_backends",
    "request_from_payload",
    "request_key",
    "reset_quarantine",
    "resolve_chain",
    "run_batch",
]
