"""Failover-chain support: certification gates and backend quarantine.

The executor walks a configurable backend chain (default
``corecover -> bucket -> naive``).  Results from the *primary* backend
are trusted the way direct ``plan()`` callers trust them; results from a
**fallback** are held to a higher bar, because a chain only exists when
something is already going wrong:

* every rewriting a fallback returns must pass the package's own
  closed-world equivalence check
  (:func:`repro.views.rewriting.is_equivalent_rewriting` — the same
  Definition 2.3 test :mod:`repro.core.certify` runs) before it is
  served;
* a backend that emits an **uncertifiable** rewriting is *quarantined
  for the process lifetime*: it produced a wrong answer, which is
  categorically worse than producing none, so no later request may
  fail over into it.

The quarantine registry is module-global (one process, one serving
tier); tests reset it via :func:`reset_quarantine`.
"""

from __future__ import annotations

from ..datalog.query import ConjunctiveQuery
from ..errors import ReproError
from ..planner.registry import get_backend
from ..views.rewriting import is_equivalent_rewriting
from ..views.view import ViewCatalog

__all__ = [
    "ChainConfigError",
    "certify_rewritings",
    "is_quarantined",
    "quarantine",
    "quarantined_backends",
    "reset_quarantine",
    "resolve_chain",
]


class ChainConfigError(ReproError, ValueError):
    """The failover chain configuration is invalid (exit code 70)."""

#: Backends barred for the process lifetime after emitting an
#: uncertifiable rewriting.  Maps backend name -> reason string.
_QUARANTINED: dict[str, str] = {}


def resolve_chain(names: tuple[str, ...] | list[str]) -> tuple[str, ...]:
    """Validate and normalize a failover chain against the registry.

    Raises :class:`~repro.planner.registry.UnknownBackendError` for
    unregistered names, and :class:`~repro.errors.ReproError` (also a
    ``ValueError``) for duplicates or backends (like ``inverse-rules``)
    that cannot produce equivalent rewritings and therefore cannot
    serve a rewriting request.
    """
    resolved: list[str] = []
    for name in names:
        backend = get_backend(name)
        if not backend.produces_rewritings:
            raise ChainConfigError(
                f"backend {backend.name!r} emits a maximally-contained "
                "program, not equivalent rewritings; it cannot serve in "
                "a failover chain"
            )
        if backend.name in resolved:
            raise ChainConfigError(
                f"duplicate backend {backend.name!r} in chain"
            )
        resolved.append(backend.name)
    if not resolved:
        raise ChainConfigError(
            "the failover chain must name at least one backend"
        )
    return tuple(resolved)


def certify_rewritings(
    rewritings: tuple[ConjunctiveQuery, ...],
    query: ConjunctiveQuery,
    views: ViewCatalog,
) -> tuple[bool, str | None]:
    """Whether every rewriting is a genuine equivalent rewriting.

    Returns ``(ok, offender)`` where ``offender`` renders the first
    rewriting that failed the Definition 2.3 expansion-equivalence test.
    """
    for rewriting in rewritings:
        if not is_equivalent_rewriting(rewriting, query, views):
            return False, str(rewriting)
    return True, None


def quarantine(backend: str, reason: str) -> None:
    """Bar *backend* from all failover chains for the process lifetime."""
    _QUARANTINED.setdefault(backend, reason)


def is_quarantined(backend: str) -> bool:
    """Whether *backend* has been quarantined."""
    return backend in _QUARANTINED


def quarantined_backends() -> dict[str, str]:
    """A copy of the quarantine registry (name -> reason)."""
    return dict(_QUARANTINED)


def reset_quarantine() -> None:
    """Clear the registry (test isolation only)."""
    _QUARANTINED.clear()
