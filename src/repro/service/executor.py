"""The resilient executor: supervised ``plan()`` with failover.

:class:`ResilientExecutor` wraps the planner registry behind one call,
:meth:`~ResilientExecutor.execute`, that a serving tier can trust:

1. **Cache first** — a content-addressed, checksummed on-disk
   :class:`~repro.service.cache.PlanCache` (optional) answers repeated
   requests without planning at all; corrupted entries read as misses.
2. **Retry with backoff** — each backend gets ``RetryPolicy.max_attempts``
   tries; transient failures (anything that is not an input error) are
   retried after an exponential-backoff-with-full-jitter delay.  The
   clock, sleeper, and jitter source are injectable, so the chaos tests
   replay deterministically with zero real sleeping.
3. **Circuit breakers** — one
   :class:`~repro.service.breaker.CircuitBreaker` per backend records
   every outcome; an open breaker skips its backend outright instead of
   burning the request deadline on a known-bad path.
4. **Certified failover** — on exhaustion or open circuit, the request
   falls down the chain (default ``corecover -> bucket -> naive``).
   Fallback results must re-verify as genuine equivalent rewritings
   (Definition 2.3) before being served; a backend caught emitting an
   uncertifiable rewriting is quarantined for the process lifetime.
5. **Degraded mode** — when every backend is down, a stale cache entry
   (past TTL) is served with ``degraded=True`` rather than failing; only
   when there is nothing at all does the outcome turn ``failed``,
   carrying a :class:`~repro.errors.RetryExhaustedError` or
   :class:`~repro.errors.CircuitOpenError`.

The request deadline comes from the request's
:class:`~repro.planner.limits.ResourceBudget`: every attempt receives
the *remaining* share via :meth:`ResourceBudget.with_deadline`, so
retries and failover never exceed the caller's overall deadline.

``execute()`` raises only for **input errors** (the request itself is
bad — parse/arity/unknown-view problems are the caller's bug, identical
on every backend).  Operational trouble always lands in the returned
:class:`ExecutionOutcome`; call :meth:`ExecutionOutcome.raise_for_status`
for exception-style handling.
"""

from __future__ import annotations

import json
import random
import time
from dataclasses import dataclass, field
from typing import Callable, Mapping

from ..datalog.parser import parse_query
from ..datalog.query import ConjunctiveQuery
from ..errors import (
    BudgetExceededError,
    CircuitOpenError,
    ReproError,
    RetryExhaustedError,
    UnsupportedQueryError,
    structured_error,
)
from ..planner.context import PlannerContext, PlannerStats
from ..planner.limits import PlanStatus, ResourceBudget
from ..planner.registry import plan
from ..profiling.phases import profile_from_stages
from ..testing.faults import fire
from ..views.view import ViewCatalog
from .breaker import BreakerState, CircuitBreaker
from .cache import CachedPlan, PlanCache, request_key
from .failover import (
    certify_rewritings,
    is_quarantined,
    quarantine,
    resolve_chain,
)
from .policy import ServicePolicy

__all__ = [
    "BackendFailure",
    "ExecutionOutcome",
    "PlanRequest",
    "ResilientExecutor",
]


@dataclass(frozen=True)
class PlanRequest:
    """One rewriting request entering the service layer."""

    query: ConjunctiveQuery
    views: ViewCatalog
    #: Echoed into the outcome (NDJSON correlation id).
    id: str | None = None
    #: Forwarded to the backend (e.g. ``max_rewritings``).
    options: Mapping = field(default_factory=dict)
    #: Overall request budget; its deadline bounds retries + failover.
    budget: ResourceBudget | None = None
    #: Intake parse time (the pre-context ``parse`` phase of a profile);
    #: excluded from the cache key.
    parse_seconds: float = 0.0

    def cache_key(self, chain: tuple[str, ...]) -> str:
        """Content-addressed key over query + relevant views + config.

        Only the views sharing a body predicate with the query (the
        catalog's predicate-signature index, a conservative superset of
        anything a rewriting can use) are hashed, so a delta to an
        irrelevant view leaves this request's cached plan addressable
        while a delta to any potentially-used view misses cleanly.
        """
        return request_key(
            str(self.query),
            [
                str(view.definition)
                for view in self.views.relevant_views(self.query)
            ],
            {"chain": list(chain), "options": dict(self.options)},
        )


@dataclass(frozen=True)
class BackendFailure:
    """Why one backend did not serve the request."""

    backend: str
    error: str
    message: str
    attempts: int = 0
    #: ``True`` when the backend never ran (open circuit / quarantine).
    skipped: bool = False

    def to_json(self) -> dict:
        return {
            "backend": self.backend,
            "error": self.error,
            "message": self.message,
            "attempts": self.attempts,
            "skipped": self.skipped,
        }


@dataclass(frozen=True)
class ExecutionOutcome:
    """Everything one supervised execution produced."""

    #: ``"ok"`` (served live or from fresh cache), ``"degraded"`` (stale
    #: cache, all backends down), or ``"failed"`` (nothing to serve).
    status: str
    request_id: str | None
    #: Total planning attempts across the whole chain (0 = cache hit).
    attempts: int
    #: The backend whose answer was served (cache entries remember
    #: theirs); ``None`` on failure.
    backend_used: str | None
    degraded: bool
    #: ``"hit"``, ``"stale"``, ``"miss"``, or ``"off"`` (no cache).
    cache: str
    rewritings: tuple[ConjunctiveQuery, ...]
    #: The served plan's status: ``"complete"``, or
    #: ``"budget_exhausted"`` for an anytime best-so-far answer.  Cache
    #: hits carry the cached entry's own status (always ``"complete"``
    #: — partial results are never cached); ``None`` on failure.
    plan_status: str | None
    #: Breaker state per backend at outcome time.
    breakers: Mapping[str, str]
    failures: tuple[BackendFailure, ...] = ()
    elapsed_seconds: float = 0.0
    #: The terminal error (``failed`` status only).
    error: BaseException | None = None
    #: Planner-stats delta of the serving attempt (observability only;
    #: never rendered into the default JSON shape).
    planner_stats: "PlannerStats | None" = None
    #: Phase-level profile payload; present only under ``--profile`` and
    #: then included in :meth:`to_json`.
    profile: Mapping | None = None

    @property
    def ok(self) -> bool:
        """Whether a non-degraded answer was served."""
        return self.status == "ok"

    def raise_for_status(self) -> None:
        """Raise the terminal error when the request failed."""
        if self.status == "failed" and self.error is not None:
            raise self.error

    def to_json(self) -> dict:
        """The one-line NDJSON outcome object ``repro batch`` emits."""
        payload: dict = {
            "id": self.request_id,
            "status": self.status,
            "attempts": self.attempts,
            "backend_used": self.backend_used,
            "degraded": self.degraded,
            "cache": self.cache,
            "plan_status": self.plan_status,
            "rewritings": [str(r) for r in self.rewritings],
            "breakers": dict(self.breakers),
            "elapsed_ms": round(self.elapsed_seconds * 1000, 3),
        }
        if self.failures:
            payload["failures"] = [f.to_json() for f in self.failures]
        if self.error is not None:
            payload["error"] = json.loads(structured_error(self.error))
        if self.profile is not None:
            payload["profile"] = dict(self.profile)
        return payload


@dataclass
class _Attempted:
    """Internal result of driving one backend through its retry loop."""

    rewritings: tuple[ConjunctiveQuery, ...] | None = None
    plan_status: str | None = None
    failure: BackendFailure | None = None
    attempts: int = 0
    #: The request-level budget is gone; stop walking the chain.
    abort: bool = False
    #: Planner-stats delta over this backend's whole retry loop.
    stats: "PlannerStats | None" = None


class ResilientExecutor:
    """Supervised planning over a certified failover chain."""

    def __init__(
        self,
        policy: ServicePolicy | None = None,
        *,
        cache: PlanCache | None = None,
        clock: Callable[[], float] = time.monotonic,
        sleep: Callable[[float], None] = time.sleep,
        rng: Callable[[], float] = random.random,
        context_factory: Callable[[], PlannerContext] = PlannerContext,
        profile: bool = False,
    ) -> None:
        self.policy = policy if policy is not None else ServicePolicy()
        self.chain = resolve_chain(self.policy.chain)
        self.cache = cache
        #: Attach a phase-level profile payload to every outcome.
        self.profile = profile
        self._clock = clock
        self._sleep = sleep
        self._rng = rng
        self._context_factory = context_factory
        self._breakers: dict[str, CircuitBreaker] = {
            name: CircuitBreaker(self.policy.breaker, clock=clock)
            for name in self.chain
        }

    def breaker(self, backend: str) -> CircuitBreaker:
        """The circuit breaker tracking *backend*."""
        return self._breakers[backend]

    def breaker_states(self) -> dict[str, str]:
        """Breaker state name per backend (outcome observability)."""
        return {
            name: breaker.state.value
            for name, breaker in self._breakers.items()
        }

    def breaker_totals(self) -> dict[str, tuple[int, int]]:
        """Monotonic ``(successes, failures)`` per backend.

        Parallel workers diff these totals around each task to report a
        per-request delta the parent merges into its scoreboard.
        """
        return {
            name: (breaker.successes, breaker.failures)
            for name, breaker in self._breakers.items()
        }

    # -- the supervised call ------------------------------------------------
    def execute(self, request: PlanRequest) -> ExecutionOutcome:
        """Serve *request* through cache, retries, breakers, failover."""
        started = self._clock()
        key = request.cache_key(self.chain) if self.cache is not None else None
        cache_disposition = "off" if self.cache is None else "miss"

        if self.cache is not None and key is not None:
            cached = self.cache.read(key)
            if cached is not None:
                return self._served_from_cache(
                    request, cached, started, stale=False
                )

        budget = request.budget
        deadline_at = None
        if budget is not None and budget.deadline_seconds is not None:
            deadline_at = started + budget.deadline_seconds

        failures: list[BackendFailure] = []
        total_attempts = 0
        any_backend_ran = False
        last_stats: PlannerStats | None = None
        for index, backend in enumerate(self.chain):
            if is_quarantined(backend):
                failures.append(
                    BackendFailure(
                        backend=backend,
                        error="Quarantined",
                        message="backend emitted an uncertifiable rewriting "
                        "earlier in this process",
                        skipped=True,
                    )
                )
                continue
            breaker = self._breakers[backend]
            if not breaker.allow():
                failures.append(
                    BackendFailure(
                        backend=backend,
                        error="CircuitOpenError",
                        message=f"circuit open for {breaker.retry_after():.3f}s",
                        skipped=True,
                    )
                )
                continue
            any_backend_ran = True
            attempted = self._drive_backend(request, backend, deadline_at)
            total_attempts += attempted.attempts
            last_stats = attempted.stats or last_stats
            if attempted.rewritings is not None:
                # A fallback's answer must re-certify before being served.
                if index > 0:
                    ok, offender = certify_rewritings(
                        attempted.rewritings, request.query, request.views
                    )
                    if not ok:
                        reason = (
                            f"uncertifiable rewriting {offender!r} for "
                            f"query {request.query}"
                        )
                        quarantine(backend, reason)
                        breaker.record_failure()
                        failures.append(
                            BackendFailure(
                                backend=backend,
                                error="UncertifiableRewriting",
                                message=reason,
                                attempts=attempted.attempts,
                            )
                        )
                        continue
                breaker.record_success()
                plan_status = attempted.plan_status or "complete"
                # Only complete answers are cached: a budget-exhausted
                # partial reflects *this* request's budget, and serving
                # it to a later, generously-budgeted request would
                # silently hide rewritings that request could have had.
                if (
                    self.cache is not None
                    and key is not None
                    and plan_status == "complete"
                ):
                    self.cache.write(
                        key,
                        CachedPlan(
                            backend=backend,
                            rewritings=tuple(
                                str(r) for r in attempted.rewritings
                            ),
                            plan_status=plan_status,
                            created_at=self.cache.now(),
                        ),
                    )
                return ExecutionOutcome(
                    status="ok",
                    request_id=request.id,
                    attempts=total_attempts,
                    backend_used=backend,
                    degraded=False,
                    cache=cache_disposition,
                    rewritings=attempted.rewritings,
                    plan_status=plan_status,
                    breakers=self.breaker_states(),
                    failures=tuple(failures),
                    elapsed_seconds=self._clock() - started,
                    planner_stats=attempted.stats,
                    profile=self._profile_payload(request, attempted.stats),
                )
            if attempted.failure is not None:
                failures.append(attempted.failure)
            if attempted.abort:
                break

        # Every backend failed or was skipped: degraded stale serving.
        if self.cache is not None and key is not None:
            stale = self.cache.read(key, allow_stale=True)
            if stale is not None:
                return self._served_from_cache(
                    request,
                    stale,
                    started,
                    stale=True,
                    attempts=total_attempts,
                    failures=tuple(failures),
                )

        error: ReproError
        if failures and not any_backend_ran and all(
            f.error == "CircuitOpenError" for f in failures
        ):
            retry_after = min(
                (self._breakers[f.backend].retry_after() for f in failures),
                default=0.0,
            )
            error = CircuitOpenError(
                f"every backend in chain {'/'.join(self.chain)} is "
                f"circuit-open; earliest trial in {retry_after:.3f}s",
                retry_after=retry_after,
            )
        else:
            error = RetryExhaustedError(
                f"no backend in chain {'/'.join(self.chain)} produced a "
                f"certified rewriting after {total_attempts} attempt(s): "
                + "; ".join(
                    f"{f.backend}: {f.error}" for f in failures
                ),
                attempts=total_attempts,
            )
        return ExecutionOutcome(
            status="failed",
            request_id=request.id,
            attempts=total_attempts,
            backend_used=None,
            degraded=False,
            cache=cache_disposition,
            rewritings=(),
            plan_status=None,
            breakers=self.breaker_states(),
            failures=tuple(failures),
            elapsed_seconds=self._clock() - started,
            error=error,
            planner_stats=last_stats,
            profile=self._profile_payload(request, last_stats),
        )

    # -- internals ----------------------------------------------------------
    def _served_from_cache(
        self,
        request: PlanRequest,
        cached: CachedPlan,
        started: float,
        *,
        stale: bool,
        attempts: int = 0,
        failures: tuple[BackendFailure, ...] = (),
    ) -> ExecutionOutcome:
        rewritings = tuple(parse_query(text) for text in cached.rewritings)
        return ExecutionOutcome(
            status="degraded" if stale else "ok",
            request_id=request.id,
            attempts=attempts,
            backend_used=cached.backend,
            degraded=stale,
            cache="stale" if stale else "hit",
            rewritings=rewritings,
            plan_status=cached.plan_status,
            breakers=self.breaker_states(),
            failures=failures,
            elapsed_seconds=self._clock() - started,
            # A cache hit never planned, so only the parse phase exists.
            profile=self._profile_payload(request, None),
        )

    def _profile_payload(
        self, request: PlanRequest, stats: PlannerStats | None
    ) -> dict | None:
        """The ``--profile`` JSON payload, or ``None`` when disabled."""
        if not self.profile:
            return None
        stages = stats.stages if stats is not None else ()
        payload = profile_from_stages(
            stages, parse_seconds=request.parse_seconds
        ).to_json()
        # Search-effort counters ride along with the phase timings so
        # batch/serve consumers can see how much homomorphism work each
        # request cost and whether the acyclic fast path carried it.
        payload["search"] = {
            "hom_searches": stats.hom_searches if stats is not None else 0,
            "hom_nodes": stats.hom_nodes if stats is not None else 0,
            "fast_path_searches": (
                stats.fast_path_searches if stats is not None else 0
            ),
        }
        return payload

    def _drive_backend(
        self,
        request: PlanRequest,
        backend: str,
        deadline_at: float | None,
    ) -> _Attempted:
        """One backend's retry loop; never raises except for input errors."""
        context = self._context_factory()
        before = context.snapshot()
        result = _Attempted()
        try:
            return self._retry_loop(
                request, backend, deadline_at, context, result
            )
        finally:
            # The delta even on raise: an input error's outcome still
            # reports whatever planning work preceded it.
            result.stats = context.snapshot().since(before)

    def _retry_loop(
        self,
        request: PlanRequest,
        backend: str,
        deadline_at: float | None,
        context: PlannerContext,
        result: _Attempted,
    ) -> _Attempted:
        breaker = self._breakers[backend]
        retry = self.policy.retry
        last_error: BaseException | None = None
        for attempt in range(1, retry.max_attempts + 1):
            if deadline_at is not None and self._clock() >= deadline_at:
                breaker.cancel_trial()  # proved nothing about health
                result.failure = BackendFailure(
                    backend=backend,
                    error="DeadlineExhausted",
                    message="request deadline expired before the attempt",
                    attempts=result.attempts,
                )
                result.abort = True
                return result
            attempt_budget = request.budget
            if attempt_budget is not None and deadline_at is not None:
                attempt_budget = attempt_budget.with_deadline(
                    deadline_at - self._clock()
                )
            result.attempts += 1
            try:
                fire("service_retry")
                planned = plan(
                    request.query,
                    request.views,
                    backend=backend,
                    context=context,
                    budget=attempt_budget,
                    **dict(request.options),
                )
            except UnsupportedQueryError as exc:
                # Permanent for this backend, but another backend (or
                # an extension-aware one) may still handle the query.
                # A property of the *request*, not of backend health —
                # recording a failure here would let a stream of
                # out-of-scope queries open the breaker of a perfectly
                # healthy backend, so the breaker stays untouched (an
                # unresolved trial is cancelled, not failed).
                result.failure = BackendFailure(
                    backend=backend,
                    error=type(exc).__name__,
                    message=str(exc),
                    attempts=result.attempts,
                )
                breaker.cancel_trial()
                return result
            except BudgetExceededError as exc:
                # The request-level budget is gone; stop everything.
                breaker.cancel_trial()  # proved nothing about health
                result.failure = BackendFailure(
                    backend=backend,
                    error=type(exc).__name__,
                    message=str(exc),
                    attempts=result.attempts,
                )
                result.abort = True
                return result
            except ReproError:
                # Input errors are the caller's bug on any backend; the
                # admitted trial (if any) must still not leak.
                breaker.cancel_trial()
                raise
            except Exception as exc:  # transient: retry with backoff
                last_error = exc
                breaker.record_failure()
                if attempt < retry.max_attempts:
                    self._backoff(attempt, deadline_at)
                continue

            outcome = planned.outcome
            if outcome is None or outcome.status is PlanStatus.COMPLETE:
                result.rewritings = planned.rewritings
                result.plan_status = "complete"
                return result
            if outcome.status is PlanStatus.BUDGET_EXHAUSTED:
                certified = outcome.certified_rewritings
                if certified:
                    # Anytime serving: the certified best-so-far is a
                    # genuine equivalent rewriting set, just maybe not
                    # all of them.
                    result.rewritings = certified
                    result.plan_status = "budget_exhausted"
                    return result
                breaker.cancel_trial()  # proved nothing about health
                result.failure = BackendFailure(
                    backend=backend,
                    error="BudgetExhausted",
                    message=f"budget exhausted ({outcome.exhausted_resource}) "
                    "with no certified rewriting",
                    attempts=result.attempts,
                )
                # A spent deadline dooms every later backend too.
                result.abort = outcome.exhausted_resource == "deadline"
                return result
            # PlanStatus.FAILED: an unexpected error degraded under the
            # budget — same transient treatment as a raw raise.
            last_error = outcome.error
            breaker.record_failure()
            if attempt < retry.max_attempts:
                self._backoff(attempt, deadline_at)

        result.failure = BackendFailure(
            backend=backend,
            error="RetryExhaustedError",
            message=f"{retry.max_attempts} attempt(s) failed; last error: "
            f"{type(last_error).__name__ if last_error else 'unknown'}: "
            f"{last_error}",
            attempts=result.attempts,
        )
        return result

    def _backoff(self, attempt: int, deadline_at: float | None) -> None:
        """Sleep the full-jitter delay, never past the request deadline."""
        delay = self.policy.retry.delay(attempt, self._rng)
        if deadline_at is not None:
            delay = min(delay, max(0.0, deadline_at - self._clock()))
        if delay > 0:
            self._sleep(delay)
