"""Per-backend circuit breakers.

A :class:`CircuitBreaker` tracks the recent success/failure history of
one backend in a sliding window and walks the classic three-state
machine:

* **CLOSED** — calls flow through; every outcome is recorded.  When the
  window holds at least ``min_calls`` outcomes and the failure rate
  reaches ``failure_threshold``, the breaker trips to OPEN.
* **OPEN** — calls are refused (:meth:`CircuitBreaker.allow` returns
  ``False``) until ``cooldown_seconds`` have elapsed since the trip,
  after which the next ``allow()`` admits exactly one **trial** call and
  moves to HALF_OPEN.
* **HALF_OPEN** — the trial call's outcome decides: success closes the
  breaker (window reset), failure re-opens it and re-anchors the
  cooldown.  A trial that ends without an outcome (the request budget
  or deadline died first) must be **cancelled**
  (:meth:`CircuitBreaker.cancel_trial`) — back to OPEN with a fresh
  cooldown — so the single trial slot can never leak.

The clock is injectable so tests drive the cooldown deterministically;
production uses ``time.monotonic``.  Breakers are deliberately
single-threaded — the executor owns one per backend and the batch CLI
is a sequential request loop.
"""

from __future__ import annotations

import time
from collections import deque
from enum import Enum
from typing import Callable, Deque

from .policy import BreakerPolicy

__all__ = ["BreakerState", "CircuitBreaker"]


class BreakerState(Enum):
    """The three classic circuit-breaker states."""

    CLOSED = "closed"
    OPEN = "open"
    HALF_OPEN = "half_open"


class CircuitBreaker:
    """Sliding-window failure-rate breaker for one backend."""

    def __init__(
        self,
        policy: BreakerPolicy | None = None,
        *,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        self.policy = policy if policy is not None else BreakerPolicy()
        self._clock = clock
        self._state = BreakerState.CLOSED
        #: Recent outcomes, ``True`` = failure, newest last.
        self._window: Deque[bool] = deque(maxlen=self.policy.window)
        self._opened_at: float | None = None
        #: Whether the HALF_OPEN trial call is currently outstanding.
        self._trial_inflight = False
        #: Monotonic lifetime totals — unlike the sliding window these
        #: never reset, so parallel workers can diff them around a task
        #: to report per-request deltas (cancelled trials count neither).
        self.successes = 0
        self.failures = 0

    # -- introspection ------------------------------------------------------
    @property
    def state(self) -> BreakerState:
        """The current state (OPEN reports itself even mid-cooldown)."""
        return self._state

    @property
    def failure_rate(self) -> float:
        """Failures over the current window (0.0 when empty)."""
        if not self._window:
            return 0.0
        return sum(self._window) / len(self._window)

    def retry_after(self) -> float:
        """Seconds until an OPEN breaker admits a trial (0 otherwise)."""
        if self._state is not BreakerState.OPEN or self._opened_at is None:
            return 0.0
        remaining = (
            self._opened_at + self.policy.cooldown_seconds - self._clock()
        )
        return max(0.0, remaining)

    # -- the state machine --------------------------------------------------
    def allow(self) -> bool:
        """Whether a call may proceed now.

        An OPEN breaker past its cooldown transitions to HALF_OPEN and
        admits exactly one trial call; further calls are refused until
        the trial's outcome is recorded.
        """
        if self._state is BreakerState.CLOSED:
            return True
        if self._state is BreakerState.OPEN:
            if self.retry_after() > 0:
                return False
            self._state = BreakerState.HALF_OPEN
            self._trial_inflight = True
            return True
        # HALF_OPEN: only the single outstanding trial is admitted.
        if not self._trial_inflight:
            self._trial_inflight = True
            return True
        return False

    def record_success(self) -> None:
        """A call succeeded; a HALF_OPEN trial success closes the breaker."""
        self.successes += 1
        if self._state is BreakerState.HALF_OPEN:
            self._reset()
            return
        self._window.append(False)

    def cancel_trial(self) -> None:
        """Abandon an unresolved HALF_OPEN trial (no-op otherwise).

        The executor calls this when an admitted call exits without a
        recordable outcome — the request deadline expired or its budget
        ran out before the backend proved anything.  The trial slot must
        not stay reserved forever (that would refuse every future call
        with a zero-second cooldown), so the breaker re-opens with a
        fresh cooldown and the next window gets a clean trial.
        """
        if self._state is BreakerState.HALF_OPEN and self._trial_inflight:
            self._trip()

    def record_failure(self) -> None:
        """A call failed; may trip CLOSED->OPEN or HALF_OPEN->OPEN."""
        self.failures += 1
        if self._state is BreakerState.HALF_OPEN:
            self._trip()
            return
        self._window.append(True)
        # The volume floor can never exceed the window size, or a small
        # window could make the breaker impossible to trip.
        floor = min(self.policy.min_calls, self.policy.window)
        if (
            len(self._window) >= floor
            and self.failure_rate >= self.policy.failure_threshold
        ):
            self._trip()

    def _trip(self) -> None:
        self._state = BreakerState.OPEN
        self._opened_at = self._clock()
        self._trial_inflight = False

    def _reset(self) -> None:
        self._state = BreakerState.CLOSED
        self._window.clear()
        self._opened_at = None
        self._trial_inflight = False

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"CircuitBreaker({self._state.value}, "
            f"rate={self.failure_rate:.2f}, n={len(self._window)})"
        )
