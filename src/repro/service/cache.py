"""Crash-safe on-disk plan cache with integrity checking.

Entries are **content-addressed**: the key is a SHA-256 over a canonical
rendering of the request — the query text, the sorted definition texts
of the views *relevant* to the query (those sharing a body predicate
with it, per the catalog's predicate-signature index), and the planner
configuration (chain, cost model, backend options) — so two textually
different but identical requests share one entry and any input change
misses cleanly.  Keying on the relevant subset gives per-view
invalidation for free: a catalog delta that only touches views the
query cannot use leaves its cached plan addressable, while a delta to
any view the plan could have used changes the key (a miss, never a
stale hit).  Keys from the previous whole-catalog scheme carry an older
key version, so they too read as clean misses.

Each entry is one JSON file ``<key>.json`` shaped as::

    {"checksum": "<sha256 of canonical payload JSON>", "payload": {...}}

Integrity model:

* **Torn-write detection** — writes go to a temp file in the same
  directory, are flushed and fsynced, then atomically ``os.replace``d
  into place.  A crash mid-write leaves either the old entry or a temp
  file the reader never looks at — never a half-written entry under the
  real name.
* **Corruption detection** — readers re-hash the payload and compare
  with the stored checksum; a bit flip, truncation, or hand-edited
  entry fails the comparison.  Corruption (and any other read failure)
  is converted into a **miss** and counted in ``corruptions`` — never a
  wrong plan, never a crash.  With ``strict=True`` corruption raises
  :class:`~repro.errors.CacheCorruptionError` instead.
* **Staleness** — entries older than ``ttl_seconds`` are not served on
  the normal path but remain on disk; the executor re-reads them with
  ``allow_stale=True`` as a last resort when every backend is
  unavailable (the explicit degraded mode).

The chaos harness hooks in at the ``cache_read`` / ``cache_write``
injection points, fired before each disk access.
"""

from __future__ import annotations

import hashlib
import json
import os
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Callable, Mapping, Sequence

from ..errors import BudgetExceededError, CacheCorruptionError
from ..testing.faults import fire

__all__ = ["CachedPlan", "PlanCache", "request_key"]

#: Bumping the version turns every existing entry into a clean miss —
#: never corruption — because the version is hashed into the key.
#: v2: keys hash only the views *relevant* to the query (per-view
#: invalidation via the catalog's predicate-signature index); v1 keys
#: hashed the whole catalog.
_KEY_VERSION = 2


def _canonical(payload: Mapping) -> bytes:
    return json.dumps(payload, sort_keys=True, separators=(",", ":")).encode()


def request_key(
    query_text: str,
    view_texts: Sequence[str],
    config: Mapping | None = None,
) -> str:
    """The content-addressed cache key for one planning request."""
    material = _canonical(
        {
            "version": _KEY_VERSION,
            "query": query_text.strip(),
            "views": sorted(text.strip() for text in view_texts),
            "config": dict(config or {}),
        }
    )
    return hashlib.sha256(material).hexdigest()


@dataclass(frozen=True)
class CachedPlan:
    """One cached planning result (texts only — parse to reuse)."""

    backend: str
    rewritings: tuple[str, ...]
    plan_status: str
    created_at: float

    def to_payload(self) -> dict:
        return {
            "backend": self.backend,
            "rewritings": list(self.rewritings),
            "plan_status": self.plan_status,
            "created_at": self.created_at,
        }

    @classmethod
    def from_payload(cls, payload: Mapping) -> "CachedPlan":
        return cls(
            backend=payload["backend"],
            rewritings=tuple(payload["rewritings"]),
            plan_status=payload["plan_status"],
            created_at=float(payload["created_at"]),
        )


class PlanCache:
    """A directory of checksummed, atomically-written plan entries."""

    def __init__(
        self,
        root: str | Path,
        *,
        ttl_seconds: float | None = None,
        strict: bool = False,
        clock: Callable[[], float] = time.time,
    ) -> None:
        self.root = Path(root)
        if self.root.exists() and not self.root.is_dir():
            raise CacheCorruptionError(
                f"plan cache root {self.root} exists and is not a directory",
                path=str(self.root),
            )
        self.root.mkdir(parents=True, exist_ok=True)
        self.ttl_seconds = ttl_seconds
        self.strict = strict
        self._clock = clock
        self.hits = 0
        self.misses = 0
        #: Misses caused by detected corruption (checksum/shape/IO).
        self.corruptions = 0
        #: Hits served past their TTL (degraded mode only).
        self.stale_hits = 0
        self.writes = 0

    def _path(self, key: str) -> Path:
        return self.root / f"{key}.json"

    def now(self) -> float:
        """The cache's clock reading.

        Writers must stamp ``created_at`` from this clock — ``is_stale``
        computes ``clock() - created_at``, so a timestamp taken from a
        different timebase (e.g. raw ``time.time()`` against an injected
        test clock) would make TTL expiry fire never or always.
        """
        return self._clock()

    def is_stale(self, plan: CachedPlan) -> bool:
        """Whether *plan* is past the cache TTL (fresh when no TTL)."""
        if self.ttl_seconds is None:
            return False
        return self._clock() - plan.created_at > self.ttl_seconds

    def read(self, key: str, *, allow_stale: bool = False) -> CachedPlan | None:
        """The entry under *key*, or ``None`` on miss/corruption/staleness.

        ``allow_stale=True`` serves entries past their TTL (counted in
        ``stale_hits``) — the executor's all-backends-down path.
        """
        path = self._path(key)
        try:
            fire("cache_read")
            raw = path.read_bytes()
        except FileNotFoundError:
            self.misses += 1
            return None
        except BudgetExceededError:
            raise  # cooperative cancellation is not a cache failure
        except Exception as exc:
            return self._corrupt(path, f"unreadable entry: {exc}")
        try:
            document = json.loads(raw)
            checksum = document["checksum"]
            payload = document["payload"]
            if hashlib.sha256(_canonical(payload)).hexdigest() != checksum:
                return self._corrupt(path, "checksum mismatch")
            plan = CachedPlan.from_payload(payload)
        except CacheCorruptionError:
            raise
        except Exception as exc:
            return self._corrupt(path, f"malformed entry: {exc}")
        if self.is_stale(plan) and not allow_stale:
            self.misses += 1
            return None
        if self.is_stale(plan):
            self.stale_hits += 1
        else:
            self.hits += 1
        return plan

    def write(self, key: str, plan: CachedPlan) -> None:
        """Atomically persist *plan* under *key* (temp file + replace).

        Write failures follow the same lenient/strict split as reads: a
        cache that cannot persist must not take down serving.
        """
        path = self._path(key)
        payload = plan.to_payload()
        document = {
            "checksum": hashlib.sha256(_canonical(payload)).hexdigest(),
            "payload": payload,
        }
        tmp = path.with_suffix(f".tmp-{os.getpid()}")
        try:
            fire("cache_write")
            with open(tmp, "w", encoding="utf-8") as handle:
                json.dump(document, handle, sort_keys=True)
                handle.flush()
                os.fsync(handle.fileno())
            os.replace(tmp, path)
            self.writes += 1
        except BudgetExceededError:
            tmp.unlink(missing_ok=True)
            raise
        except Exception as exc:
            tmp.unlink(missing_ok=True)
            if self.strict:
                raise CacheCorruptionError(
                    f"plan cache write failed: {exc}", path=str(path)
                ) from exc

    def flush(self) -> int:
        """Durably settle the cache directory; returns the entry count.

        Entry writes are already individually atomic (temp file + fsync
        + ``os.replace``), but the *directory* entries created by those
        renames are only guaranteed durable after the directory itself
        is fsynced.  The serve daemon calls this as the cache-flush step
        of its drain protocol, so a machine that loses power right after
        a clean drain still reboots with every cached plan addressable.
        Platforms that cannot fsync a directory fd degrade to a no-op —
        the entries themselves are still safe.
        """
        try:
            fd = os.open(self.root, os.O_RDONLY)
        except OSError:
            return self.entry_count()
        try:
            os.fsync(fd)
        except OSError:  # pragma: no cover - platform-dependent
            pass
        finally:
            os.close(fd)
        return self.entry_count()

    def entry_count(self) -> int:
        """Number of committed (non-temp) entries currently on disk."""
        try:
            return sum(1 for _ in self.root.glob("*.json"))
        except OSError:  # pragma: no cover - racing removal
            return 0

    def _corrupt(self, path: Path, reason: str) -> None:
        self.corruptions += 1
        self.misses += 1
        if self.strict:
            raise CacheCorruptionError(
                f"corrupt plan-cache entry {path.name}: {reason}",
                path=str(path),
            )
        return None
