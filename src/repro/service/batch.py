"""NDJSON request intake and outcome rendering for ``repro batch``.

A batch is newline-delimited JSON: one request object per line, one
outcome object per line out (same order).  A request looks like::

    {"id": "r1", "query": "q(X) :- car(X, Y), loc(Y, Z)"}
    {"id": "r2", "query": "...", "views": ["v1", "v4"], "timeout": 0.5}

Fields:

* ``query`` (required) — the datalog rule text.  Parsed strictly: an
  unsafe head raises :class:`~repro.errors.UnsafeQueryError` and
  inconsistent predicate arities raise
  :class:`~repro.errors.ArityMismatchError` — a serving tier rejects
  malformed requests at intake rather than deep inside a backend.
* ``id`` (optional) — echoed into the outcome for correlation; defaults
  to the 1-based line number.
* ``views`` (optional) — restrict the catalog to these view names for
  this request; an unknown name raises
  :class:`~repro.errors.UnknownViewError`.
* ``timeout`` (optional) — per-request deadline in seconds, overriding
  the CLI-level budget's deadline.
* ``options`` (optional) — forwarded to the backend (e.g.
  ``max_rewritings``).

Intake errors are **fail-fast**: NDJSON comes from a machine producer,
so a malformed line is a producer bug the whole batch should surface
(with the taxonomy exit code), not something to paper over per-line.
Operational failures, by contrast, never abort the batch — they are
emitted as ``"status": "failed"`` outcome lines and summarized in the
process exit code afterwards.
"""

from __future__ import annotations

import json
import time
from typing import Iterable, Iterator

from ..datalog.parser import parse_query
from ..errors import ParseError
from ..planner.limits import ResourceBudget
from ..views.view import ViewCatalog
from .executor import ExecutionOutcome, PlanRequest, ResilientExecutor

__all__ = [
    "parse_request_line",
    "parse_requests",
    "request_from_payload",
    "run_batch",
]


def parse_request_line(
    line: str,
    catalog: ViewCatalog,
    *,
    number: int,
    default_budget: ResourceBudget | None = None,
) -> PlanRequest:
    """One NDJSON line -> a validated :class:`PlanRequest`."""
    intake_started = time.perf_counter()
    try:
        payload = json.loads(line)
    except json.JSONDecodeError as exc:
        raise ParseError(
            f"request line {number}: invalid JSON: {exc}"
        ) from None
    return request_from_payload(
        payload,
        catalog,
        number=number,
        default_budget=default_budget,
        intake_started=intake_started,
    )


def request_from_payload(
    payload: object,
    catalog: ViewCatalog,
    *,
    number: int | str,
    default_budget: ResourceBudget | None = None,
    intake_started: float | None = None,
) -> PlanRequest:
    """A decoded request object -> a validated :class:`PlanRequest`.

    Shared by the ``repro batch`` NDJSON intake and the
    :mod:`repro.serve` daemon (whose protocol layer has already decoded
    the JSON frame), so both paths validate and reject identically.
    *number* labels intake errors (a line number for batch, a request id
    for serve).
    """
    if intake_started is None:
        intake_started = time.perf_counter()
    if not isinstance(payload, dict) or "query" not in payload:
        raise ParseError(
            f"request line {number}: expected an object with a "
            '"query" field'
        )
    try:
        query = parse_query(
            str(payload["query"]),
            require_safe=True,
            consistent_arities=True,
        )
    except ParseError as error:
        raise type(error)(
            f"request line {number}: {error}", span=error.span
        ) from None

    views = catalog
    if "views" in payload:
        names = payload["views"]
        if not isinstance(names, list):
            raise ParseError(
                f'request line {number}: "views" must be a list of names'
            )
        views = ViewCatalog(catalog.get(str(name)) for name in names)

    budget = default_budget
    if "timeout" in payload:
        try:
            timeout = float(payload["timeout"])
        except (TypeError, ValueError):
            raise ParseError(
                f'request line {number}: "timeout" must be a number, '
                f"got {payload['timeout']!r}"
            ) from None
        budget = (
            budget.with_deadline(timeout)
            if budget is not None
            else ResourceBudget(deadline_seconds=timeout)
        )

    options = payload.get("options", {})
    if not isinstance(options, dict):
        raise ParseError(
            f'request line {number}: "options" must be an object'
        )
    return PlanRequest(
        query=query,
        views=views,
        id=str(payload.get("id", number)),
        options=options,
        budget=budget,
        # Intake time is the request's "parse" phase under --profile.
        parse_seconds=time.perf_counter() - intake_started,
    )


def parse_requests(
    lines: Iterable[str],
    catalog: ViewCatalog,
    *,
    default_budget: ResourceBudget | None = None,
) -> Iterator[PlanRequest]:
    """Parse every non-empty NDJSON line into a request (fail-fast)."""
    for number, line in enumerate(lines, start=1):
        stripped = line.strip()
        if not stripped:
            continue
        yield parse_request_line(
            stripped, catalog, number=number, default_budget=default_budget
        )


def run_batch(
    executor: ResilientExecutor,
    requests: Iterable[PlanRequest],
) -> Iterator[ExecutionOutcome]:
    """Execute requests in order, yielding outcomes as they complete."""
    for request in requests:
        yield executor.execute(request)
