"""Human-readable plan reports (EXPLAIN-style output).

Renders an :class:`~repro.cost.optimizer.OptimizedPlan` as a step table
with the Table 1 quantities — per-subgoal relation sizes, intermediate /
generalized-supplementary sizes, drop annotations — and, optionally, the
simulated disk IOs from :mod:`repro.cost.iomodel`.
"""

from __future__ import annotations

from .intermediates import PlanExecution
from .iomodel import IoParameters, simulate_plan_io
from .optimizer import OptimizedPlan


def explain_plan(
    optimized: OptimizedPlan,
    io_params: IoParameters | None = None,
) -> str:
    """A multi-line report for an optimized plan.

    Requires the plan to carry its execution trace (exact costing);
    estimated-only plans render without the size table.
    """
    lines = [
        f"rewriting : {optimized.rewriting}",
        f"plan      : {optimized.plan}",
        f"cost      : {optimized.cost:g}",
    ]
    execution = optimized.execution
    if execution is None:
        lines.append("(no execution trace: estimated costing)")
        return "\n".join(lines)

    lines.append(_step_table(execution))
    lines.append(f"answer    : {len(execution.answer)} tuple(s)")
    if io_params is not None:
        report = simulate_plan_io(execution, io_params)
        per_step = ", ".join(str(step.total) for step in report.steps)
        lines.append(
            f"simulated IO: {report.total} page reads/writes "
            f"(per step: {per_step}; page={io_params.tuples_per_page} "
            f"tuples, buffer={io_params.memory_pages} pages)"
        )
    return "\n".join(lines)


def _step_table(execution: PlanExecution) -> str:
    header = f"{'#':>3} {'subgoal':<28} {'|g_i|':>7} {'|inter|':>8} {'drops':<16}"
    rows = [header, "-" * len(header)]
    for index, (step, trace) in enumerate(
        zip(execution.plan.steps, execution.steps), start=1
    ):
        drops = (
            ", ".join(sorted(v.name for v in step.dropped))
            if step.dropped
            else "-"
        )
        rows.append(
            f"{index:>3} {str(step.atom):<28.28} {trace.subgoal_size:>7} "
            f"{trace.intermediate_size:>8} {drops:<16.16}"
        )
    return "\n".join(rows)
