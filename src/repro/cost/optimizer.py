"""A cost-based optimizer over the rewriting search spaces.

The paper's two-step architecture (Section 1) separates the *rewriting
generator* (CoreCover / CoreCover*) from the *optimizer*, which turns a
logical rewriting into a physical plan.  This module provides that
optimizer for all three cost models:

* **M1** — the plan is the subgoal set; nothing to order.
* **M2** — the key observation is that ``size(IR_i)`` depends only on the
  *set* of the first ``i`` subgoals, so a Selinger-style dynamic program
  over subsets finds the optimal order in ``O(2^n · n)`` join-size
  evaluations instead of ``n!`` plans.
* **M3** — drop annotations depend on the order's *suffix*, so the
  optimizer enumerates permutations (the paper's queries have ≤ 8
  subgoals) with both the supplementary-relation and the Section 6.2
  heuristic annotators.

It also implements the Section 5.1 *filtering subgoal* pass: empty-core
view tuples are added to a rewriting when they lower the optimal M2 cost
(rewriting P3 of the car-loc-part example).
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import permutations
from typing import Iterable, Sequence

from ..datalog.query import ConjunctiveQuery
from ..engine.database import Database
from ..views.view import ViewCatalog
from ..core.view_tuples import ViewTuple
from .estimator import StatisticsCatalog
from .intermediates import PlanExecution, VarTable, execute_plan, join_step
from .models import cost_m3
from .plans import PhysicalPlan
from .supplementary import heuristic_plan, supplementary_plan


@dataclass(frozen=True)
class OptimizedPlan:
    """An optimal physical plan for one rewriting, with its cost."""

    rewriting: ConjunctiveQuery
    plan: PhysicalPlan
    cost: float
    execution: PlanExecution | None = None


class TooManySubgoalsError(ValueError):
    """Raised when exhaustive optimization would blow up."""


_MAX_DP_SUBGOALS = 16
_MAX_PERMUTATION_SUBGOALS = 8


def optimal_plan_m2(
    rewriting: ConjunctiveQuery, database: Database
) -> OptimizedPlan:
    """The cheapest M2 ordering of *rewriting* over a view database.

    Uses dynamic programming over subgoal subsets with exact,
    incrementally materialized intermediate relations.
    """
    n = len(rewriting.body)
    if n > _MAX_DP_SUBGOALS:
        raise TooManySubgoalsError(
            f"{n} subgoals exceed the 2^n dynamic program's limit "
            f"({_MAX_DP_SUBGOALS})"
        )
    subgoal_sizes = [
        len(database.relation(atom.predicate))
        if database.has_relation(atom.predicate)
        else 0
        for atom in rewriting.body
    ]

    # tables[mask] is the natural join (all attributes) of the subgoals in
    # ``mask``; built lazily level by level from any predecessor.
    empty = VarTable((), frozenset({()}))
    tables: dict[int, VarTable] = {0: empty}
    best_cost: dict[int, float] = {0: 0.0}
    best_last: dict[int, int] = {}

    full = (1 << n) - 1
    masks_by_level: list[list[int]] = [[] for _ in range(n + 1)]
    for mask in range(1, full + 1):
        masks_by_level[mask.bit_count()].append(mask)

    for level in range(1, n + 1):
        for mask in masks_by_level[level]:
            # Materialize the join for this subset from one predecessor.
            low_bit = mask & -mask
            predecessor = mask ^ low_bit
            tables[mask] = join_step(
                tables[predecessor],
                rewriting.body[low_bit.bit_length() - 1],
                database,
            )
            intermediate_size = len(tables[mask])
            cost = None
            last = None
            remaining = mask
            while remaining:
                bit = remaining & -remaining
                remaining ^= bit
                index = bit.bit_length() - 1
                candidate = best_cost[mask ^ bit] + intermediate_size
                if cost is None or candidate < cost:
                    cost = candidate
                    last = index
            best_cost[mask] = cost  # type: ignore[assignment]
            best_last[mask] = last  # type: ignore[assignment]
        # Free the previous level's tables; only level-1 predecessors are
        # needed and each mask pulls from exactly one.
        if level >= 2:
            for mask in masks_by_level[level - 1]:
                tables.pop(mask, None)

    order: list[int] = []
    mask = full
    while mask:
        last = best_last[mask]
        order.append(last)
        mask ^= 1 << last
    order.reverse()

    plan = PhysicalPlan.from_rewriting(rewriting, order)
    execution = execute_plan(plan, database)
    total = sum(subgoal_sizes) + best_cost[full]
    return OptimizedPlan(rewriting, plan, total, execution)


def optimal_plan_m2_estimated(
    rewriting: ConjunctiveQuery, catalog: StatisticsCatalog
) -> OptimizedPlan:
    """Like :func:`optimal_plan_m2` but with System-R size estimates."""
    n = len(rewriting.body)
    if n > _MAX_DP_SUBGOALS:
        raise TooManySubgoalsError(
            f"{n} subgoals exceed the 2^n dynamic program's limit "
            f"({_MAX_DP_SUBGOALS})"
        )
    subgoal_sizes = [
        catalog.estimate_relation_size(atom) for atom in rewriting.body
    ]

    full = (1 << n) - 1
    best_cost: dict[int, float] = {0: 0.0}
    best_last: dict[int, int] = {}
    size_cache: dict[int, float] = {}

    def subset_size(mask: int) -> float:
        cached = size_cache.get(mask)
        if cached is None:
            atoms = [
                rewriting.body[i] for i in range(n) if mask & (1 << i)
            ]
            cached = catalog.estimate_join_size(atoms)
            size_cache[mask] = cached
        return cached

    for mask in range(1, full + 1):
        intermediate = subset_size(mask)
        cost = None
        last = None
        remaining = mask
        while remaining:
            bit = remaining & -remaining
            remaining ^= bit
            index = bit.bit_length() - 1
            previous = best_cost.get(mask ^ bit)
            if previous is None:
                continue
            candidate = previous + intermediate
            if cost is None or candidate < cost:
                cost = candidate
                last = index
        best_cost[mask] = cost  # type: ignore[assignment]
        best_last[mask] = last  # type: ignore[assignment]

    order: list[int] = []
    mask = full
    while mask:
        last = best_last[mask]
        order.append(last)
        mask ^= 1 << last
    order.reverse()

    plan = PhysicalPlan.from_rewriting(rewriting, order)
    return OptimizedPlan(rewriting, plan, sum(subgoal_sizes) + best_cost[full])


def optimal_plan_m3(
    rewriting: ConjunctiveQuery,
    query: ConjunctiveQuery,
    views: ViewCatalog,
    database: Database,
    annotator: str = "heuristic",
) -> OptimizedPlan:
    """The cheapest M3 plan across all orders of *rewriting*'s subgoals.

    ``annotator`` selects the drop strategy: ``"supplementary"`` for the
    classic rule [4] or ``"heuristic"`` for the Section 6.2 renaming rule.
    """
    n = len(rewriting.body)
    if n > _MAX_PERMUTATION_SUBGOALS:
        raise TooManySubgoalsError(
            f"{n} subgoals exceed the permutation search's limit "
            f"({_MAX_PERMUTATION_SUBGOALS})"
        )
    if annotator == "supplementary":
        def build(order: Sequence[int]) -> PhysicalPlan:
            return supplementary_plan(rewriting, order)
    elif annotator == "heuristic":
        def build(order: Sequence[int]) -> PhysicalPlan:
            return heuristic_plan(rewriting, query, views, order)
    else:
        raise ValueError(
            f"unknown annotator {annotator!r}; expected 'supplementary' "
            "or 'heuristic'"
        )

    best: OptimizedPlan | None = None
    for order in permutations(range(n)):
        plan = build(order)
        execution = execute_plan(plan, database)
        cost = cost_m3(execution)
        if best is None or cost < best.cost:
            best = OptimizedPlan(rewriting, plan, cost, execution)
    assert best is not None
    return best


def optimal_plan_m3_estimated(
    rewriting: ConjunctiveQuery,
    query: ConjunctiveQuery,
    views: ViewCatalog,
    catalog: StatisticsCatalog,
    annotator: str = "heuristic",
) -> OptimizedPlan:
    """Statistics-only M3 optimization (no materialized data).

    Section 6.2 ends with exactly this requirement: "the optimizer needs
    to make the tradeoff between dropping Y and removing this comparison
    by using the information about the sizes of view relations and
    generalized supplementary relations".  Intermediate sizes come from
    the System-R join estimate; GSR sizes apply Cardenas' projection
    formula to the estimated ``IR_i`` over the retained columns' domain.
    The drop annotations themselves are data-independent (they depend
    only on the query/views), so the symbolic annotators are reused.
    """
    from .supplementary import heuristic_plan, supplementary_plan

    n = len(rewriting.body)
    if n > _MAX_PERMUTATION_SUBGOALS:
        raise TooManySubgoalsError(
            f"{n} subgoals exceed the permutation search's limit "
            f"({_MAX_PERMUTATION_SUBGOALS})"
        )
    if annotator == "supplementary":
        def build(order: Sequence[int]) -> PhysicalPlan:
            return supplementary_plan(rewriting, order)
    elif annotator == "heuristic":
        def build(order: Sequence[int]) -> PhysicalPlan:
            return heuristic_plan(rewriting, query, views, order)
    else:
        raise ValueError(
            f"unknown annotator {annotator!r}; expected 'supplementary' "
            "or 'heuristic'"
        )

    best: OptimizedPlan | None = None
    for order in permutations(range(n)):
        plan = build(order)
        cost = _estimate_m3_cost(plan, catalog)
        if best is None or cost < best.cost:
            best = OptimizedPlan(rewriting, plan, cost)
    assert best is not None
    return best


def _estimate_m3_cost(plan: PhysicalPlan, catalog: StatisticsCatalog) -> float:
    """Estimated ``Σ size(g_i) + size(GSR_i)`` for an annotated plan."""
    total = 0.0
    prefix_atoms = []
    for position, step in enumerate(plan.steps):
        prefix_atoms.append(step.atom)
        total += catalog.estimate_relation_size(step.atom)
        intermediate = catalog.estimate_join_size(prefix_atoms)
        retained = plan.schema_after(position)
        if len(retained) < len(_all_prefix_variables(plan, position)):
            domain = 1.0
            for variable in retained:
                domain *= catalog.variable_domain(prefix_atoms, variable)
            total += catalog.estimate_projection_size(intermediate, domain)
        else:
            total += intermediate
    return total


def _all_prefix_variables(plan: PhysicalPlan, position: int) -> set:
    variables: set = set()
    for step in plan.steps[: position + 1]:
        variables |= step.atom.variable_set()
    return variables


def optimal_plan_io(
    rewriting: ConjunctiveQuery,
    database: Database,
    params: "IoParameters | None" = None,
) -> OptimizedPlan:
    """The ordering with the fewest *simulated disk IOs* (see iomodel).

    This is the ground truth cost model M2 approximates; the tests check
    that the M2-optimal and IO-optimal orders price within a whisker of
    each other.  Permutation search (IO is order- and spill-dependent).
    """
    from .iomodel import IoParameters, simulate_plan_io

    if params is None:
        params = IoParameters()
    n = len(rewriting.body)
    if n > _MAX_PERMUTATION_SUBGOALS:
        raise TooManySubgoalsError(
            f"{n} subgoals exceed the permutation search's limit "
            f"({_MAX_PERMUTATION_SUBGOALS})"
        )
    best: OptimizedPlan | None = None
    for order in permutations(range(n)):
        plan = PhysicalPlan.from_rewriting(rewriting, order)
        execution = execute_plan(plan, database)
        cost = simulate_plan_io(execution, params).total
        if best is None or cost < best.cost:
            best = OptimizedPlan(rewriting, plan, cost, execution)
    assert best is not None
    return best


def best_rewriting_m2(
    rewritings: Iterable[ConjunctiveQuery], database: Database
) -> OptimizedPlan | None:
    """The M2-cheapest rewriting among candidates (None if no candidates)."""
    best: OptimizedPlan | None = None
    for rewriting in rewritings:
        optimized = optimal_plan_m2(rewriting, database)
        if best is None or optimized.cost < best.cost:
            best = optimized
    return best


def improve_with_filters(
    rewriting: ConjunctiveQuery,
    filter_candidates: Sequence[ViewTuple],
    database: Database,
) -> OptimizedPlan:
    """Greedily add filtering subgoals while they lower the M2 cost.

    This is the cost-based decision of Section 5.1: a view tuple with an
    empty tuple-core cannot *cover* anything, but joining a very selective
    view relation early can shrink every later intermediate relation
    (rewriting P3 beating P2 when view V3 is selective).
    """
    current = optimal_plan_m2(rewriting, database)
    remaining = list(filter_candidates)
    improved = True
    while improved and remaining:
        improved = False
        best_addition: tuple[OptimizedPlan, ViewTuple] | None = None
        for candidate in remaining:
            extended = current.rewriting.with_body(
                current.rewriting.body + (candidate.atom,)
            )
            optimized = optimal_plan_m2(extended, database)
            if optimized.cost < current.cost and (
                best_addition is None or optimized.cost < best_addition[0].cost
            ):
                best_addition = (optimized, candidate)
        if best_addition is not None:
            current, used = best_addition
            remaining.remove(used)
            improved = True
    return current
