"""Supplementary relations and the Section 6.2 attribute-dropping heuristic.

Classic supplementary relations [4]: after the ``i``-th subgoal of an
ordering, drop every attribute that is used neither by a later subgoal nor
by the head.

Section 6.2's improvement: an attribute ``Y`` that *is* used by a later
subgoal may still be dropped, provided that renaming ``Y``'s occurrences
in the prefix ``g_1 … g_i`` to a fresh variable ``Y'`` leaves the
rewriting equivalent to the original query (the equality comparison the
drop removes was redundant — variable ``B`` in Example 6.1).

The paper sketches per-variable tests; this implementation *commits* each
successful rename before testing the next candidate, so the combined set
of drops is always jointly valid (individually-droppable variables are
not guaranteed to be jointly droppable).
"""

from __future__ import annotations

from typing import Sequence

from ..datalog.atoms import Atom
from ..datalog.query import ConjunctiveQuery, fresh_factory_for
from ..datalog.substitution import Substitution
from ..datalog.terms import FreshVariableFactory, Variable
from ..views.rewriting import is_equivalent_rewriting
from ..views.view import ViewCatalog
from .plans import PhysicalPlan, PlanStep


def _ordered_body(
    rewriting: ConjunctiveQuery, order: Sequence[int] | None
) -> tuple[Atom, ...]:
    if order is None:
        return rewriting.body
    if sorted(order) != list(range(len(rewriting.body))):
        raise ValueError(f"order {order!r} is not a permutation of the body")
    return tuple(rewriting.body[i] for i in order)


def supplementary_drops(
    rewriting: ConjunctiveQuery, order: Sequence[int] | None = None
) -> list[frozenset[Variable]]:
    """The classic supplementary-relation annotations ``X_1 … X_n``.

    ``X_i`` holds the variables that become dead right after step ``i``:
    they occur in the first ``i`` subgoals but in neither the head nor any
    later subgoal.
    """
    atoms = _ordered_body(rewriting, order)
    head_vars = rewriting.distinguished_variables()
    drops: list[frozenset[Variable]] = []
    live: set[Variable] = set()
    for position, atom in enumerate(atoms):
        live |= atom.variable_set()
        used_later: set[Variable] = set()
        for later in atoms[position + 1 :]:
            used_later |= later.variable_set()
        dead = frozenset(
            v for v in live if v not in head_vars and v not in used_later
        )
        drops.append(dead)
        live -= dead
    return drops


def supplementary_plan(
    rewriting: ConjunctiveQuery, order: Sequence[int] | None = None
) -> PhysicalPlan:
    """A plan for *rewriting* with classic supplementary-relation drops."""
    atoms = _ordered_body(rewriting, order)
    drops = supplementary_drops(rewriting, order)
    return PhysicalPlan(
        rewriting.head,
        tuple(PlanStep(atom, drop) for atom, drop in zip(atoms, drops)),
    )


def heuristic_drops(
    rewriting: ConjunctiveQuery,
    query: ConjunctiveQuery,
    views: ViewCatalog,
    order: Sequence[int] | None = None,
) -> tuple[list[frozenset[Variable]], ConjunctiveQuery]:
    """Section 6.2 drops: dead variables plus rename-safe live variables.

    Returns the per-step annotations (in terms of the original rewriting's
    variables) together with the final renamed rewriting, whose equivalence
    to *query* certifies that executing the annotated plan computes the
    original answer.
    """
    atoms = list(_ordered_body(rewriting, order))
    head_vars = rewriting.distinguished_variables()
    factory = fresh_factory_for(rewriting, query, *(v.definition for v in views))

    drops: list[frozenset[Variable]] = []
    # ``working`` is the progressively renamed body; ``schema`` tracks the
    # live columns of the generalized supplementary relation.
    working = list(atoms)
    schema: set[Variable] = set()
    for position in range(len(atoms)):
        schema |= working[position].variable_set()
        used_later: set[Variable] = set()
        for later in working[position + 1 :]:
            used_later |= later.variable_set()

        dropped_here: set[Variable] = set()
        for variable in sorted(schema, key=lambda v: v.name):
            if variable not in head_vars and variable not in used_later:
                dropped_here.add(variable)  # classic dead-variable rule
                continue
            if variable not in used_later:
                continue  # head variable with no later rebinding: must stay
            renamed = _rename_prefix(
                working, position, variable, factory, rewriting.head
            )
            if renamed is None:
                continue
            candidate_body, candidate = renamed
            if candidate.is_safe() and is_equivalent_rewriting(
                candidate, query, views
            ):
                working = candidate_body
                dropped_here.add(variable)
        drops.append(frozenset(dropped_here))
        schema -= dropped_here
    return drops, ConjunctiveQuery(rewriting.head, tuple(working))


def _rename_prefix(
    body: list[Atom],
    position: int,
    variable: Variable,
    factory: FreshVariableFactory,
    head: Atom,
) -> tuple[list[Atom], ConjunctiveQuery] | None:
    """Rename *variable* to a fresh one in ``body[: position + 1]``.

    Returns ``None`` when the variable does not occur in the prefix (there
    is nothing to sever).
    """
    if not any(
        variable in atom.variable_set() for atom in body[: position + 1]
    ):
        return None
    renaming = Substitution({variable: factory.fresh_like(variable)})
    new_body = [
        renaming.apply_atom(atom) if index <= position else atom
        for index, atom in enumerate(body)
    ]
    return new_body, ConjunctiveQuery(head, tuple(new_body))


def heuristic_plan(
    rewriting: ConjunctiveQuery,
    query: ConjunctiveQuery,
    views: ViewCatalog,
    order: Sequence[int] | None = None,
) -> PhysicalPlan:
    """A plan annotated with the Section 6.2 generalized drops."""
    atoms = _ordered_body(rewriting, order)
    drops, _renamed = heuristic_drops(rewriting, query, views, order)
    return PhysicalPlan(
        rewriting.head,
        tuple(PlanStep(atom, drop) for atom, drop in zip(atoms, drops)),
    )
