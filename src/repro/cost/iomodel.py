"""A page-based disk-IO simulator behind cost model M2.

Section 2.2 motivates M2 with [11] (Garcia-Molina, Ullman, Widom,
*Database System Implementation*): "the time of executing a physical plan
is usually determined by the number of disk IO's, which is a function of
the sizes of those relations used in the plan".  This module makes that
function concrete: it prices a left-deep pipeline with the textbook
one-pass / two-pass (Grace) hash-join IO formulas and materialized
intermediate relations, so that the abstract M2 cost (a sum of tuple
counts) can be validated against simulated IOs.

The simulator consumes a :class:`~repro.cost.intermediates.PlanExecution`
— it needs only the sizes the execution already recorded.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

from .intermediates import PlanExecution


@dataclass(frozen=True)
class IoParameters:
    """Physical parameters of the simulated storage layer."""

    #: Tuples per disk page.
    tuples_per_page: int = 50
    #: Buffer-pool size in pages (decides one-pass vs. two-pass joins).
    memory_pages: int = 64

    def pages(self, tuples: int) -> int:
        """Pages needed to store *tuples* (at least 1 for nonempty data)."""
        if tuples <= 0:
            return 0
        return math.ceil(tuples / self.tuples_per_page)


@dataclass(frozen=True)
class StepIo:
    """IO charged while processing one subgoal of the pipeline."""

    subgoal_pages: int
    build_passes: int  # 1 = one-pass hash join, 3 = two-pass (Grace)
    intermediate_pages: int
    total: int


@dataclass(frozen=True)
class IoReport:
    """Total simulated IOs for a plan, with a per-step breakdown."""

    steps: tuple[StepIo, ...]
    total: int


def simulate_plan_io(
    execution: PlanExecution, params: IoParameters = IoParameters()
) -> IoReport:
    """Price an executed plan in disk IOs.

    The pipeline joins left to right.  At each step the current
    intermediate (already in memory right after being produced, but
    materialized once it exceeds the buffer pool) is joined with the next
    view relation:

    * both inputs are read (the intermediate only if it was spilled);
    * a one-pass hash join suffices when the smaller input fits in
      memory, otherwise both inputs are partitioned and re-read
      (two-pass: 3x the input pages beyond the initial read);
    * the join result is written out when it exceeds the buffer pool and
      is not the final answer.
    """
    steps: list[StepIo] = []
    total = 0
    previous_pages = 0  # pages of the current intermediate, 0 before start
    previous_spilled = False

    for index, trace in enumerate(execution.steps):
        subgoal_pages = params.pages(trace.subgoal_size)
        result_pages = params.pages(trace.intermediate_size)

        read_previous = previous_pages if previous_spilled else 0
        smaller = min(previous_pages, subgoal_pages)
        if index == 0:
            build_passes = 1
            join_io = subgoal_pages
        elif smaller <= params.memory_pages:
            build_passes = 1
            join_io = read_previous + subgoal_pages
        else:
            build_passes = 3
            join_io = 3 * (previous_pages + subgoal_pages) - (
                previous_pages - read_previous
            )

        last = index == len(execution.steps) - 1
        spill = result_pages > params.memory_pages and not last
        write_io = result_pages if spill else 0

        step_total = join_io + write_io
        steps.append(
            StepIo(
                subgoal_pages=subgoal_pages,
                build_passes=build_passes,
                intermediate_pages=result_pages,
                total=step_total,
            )
        )
        total += step_total
        previous_pages = result_pages
        previous_spilled = spill

    return IoReport(tuple(steps), total)


def io_tracks_m2(
    executions: Sequence[PlanExecution],
    params: IoParameters = IoParameters(),
    tolerance_pages: int = 2,
) -> bool:
    """Whether ranking plans by M2 agrees with ranking by simulated IO.

    Used by the validation tests: for each pair of executions of the
    *same* rewriting, a strictly lower M2 cost must not come with a
    higher simulated IO beyond a small page-rounding *tolerance*.
    """
    from .models import cost_m3  # m3 == m2 formula without the drop guard

    priced = [
        (cost_m3(execution), simulate_plan_io(execution, params).total)
        for execution in executions
    ]
    for m2_a, io_a in priced:
        for m2_b, io_b in priced:
            if m2_a < m2_b and io_a > io_b + tolerance_pages:
                return False
    return True
