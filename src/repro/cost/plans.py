"""Physical plans for rewritings (Section 2.2, Table 1).

Under M1 a physical plan is just the *set* of view subgoals; under M2 it
is an *ordered list* of subgoals joined left to right with all attributes
retained; under M3 each subgoal is additionally annotated with the set of
attributes that may be dropped once it has been processed.

A :class:`PhysicalPlan` covers all three: the order carries the M2
semantics and the per-step ``dropped`` annotations carry M3 (all-empty
annotations make M3 degenerate to M2).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

from ..datalog.atoms import Atom
from ..datalog.query import ConjunctiveQuery
from ..datalog.terms import Variable


@dataclass(frozen=True)
class PlanStep:
    """One annotated subgoal ``g_i^{X_i}`` of a physical plan.

    ``dropped`` is the annotation ``X_i``: the attributes (variables) that
    are *not relevant* after this subgoal is processed and are removed from
    the generalized supplementary relation ``GSR_i``.
    """

    atom: Atom
    dropped: frozenset[Variable] = frozenset()

    def __str__(self) -> str:
        if not self.dropped:
            return f"{self.atom}{{}}"
        names = ", ".join(sorted(v.name for v in self.dropped))
        return f"{self.atom}{{{names}}}"


@dataclass(frozen=True)
class PhysicalPlan:
    """An ordered, annotated join plan for a rewriting."""

    head: Atom
    steps: tuple[PlanStep, ...]

    def __post_init__(self) -> None:
        if not self.steps:
            raise ValueError("a physical plan needs at least one subgoal")

    @classmethod
    def from_rewriting(
        cls,
        rewriting: ConjunctiveQuery,
        order: Sequence[int] | None = None,
        drops: Sequence[Iterable[Variable]] | None = None,
    ) -> "PhysicalPlan":
        """Build a plan from a rewriting, an order over its body, and drops.

        ``order`` is a permutation of body indices (default: body order);
        ``drops[i]`` annotates the i-th *plan step* (default: no drops).
        """
        if order is None:
            order = range(len(rewriting.body))
        atoms = [rewriting.body[i] for i in order]
        if sorted(order) != list(range(len(rewriting.body))):
            raise ValueError(f"order {order!r} is not a permutation of the body")
        if drops is None:
            drops = [frozenset() for _ in atoms]
        if len(drops) != len(atoms):
            raise ValueError("one drop annotation per plan step is required")
        steps = tuple(
            PlanStep(atom, frozenset(drop)) for atom, drop in zip(atoms, drops)
        )
        return cls(rewriting.head, steps)

    @property
    def atoms(self) -> tuple[Atom, ...]:
        """The subgoals in execution order."""
        return tuple(step.atom for step in self.steps)

    def rewriting(self) -> ConjunctiveQuery:
        """The logical rewriting this plan evaluates (order forgotten)."""
        return ConjunctiveQuery(self.head, self.atoms)

    def __len__(self) -> int:
        return len(self.steps)

    def __str__(self) -> str:
        rendered = ", ".join(str(step) for step in self.steps)
        return f"{self.head} <= [{rendered}]"

    def schema_after(self, position: int) -> tuple[Variable, ...]:
        """Variables retained after the step at *position* (0-based).

        This is the schema of ``GSR_{position+1}``: all variables of the
        first ``position + 1`` subgoals minus the annotations applied so
        far, in first-appearance order.  A variable dropped at an earlier
        step and occurring again in a later subgoal *re-enters* the schema:
        under the Section 6.2 renaming semantics the dropped prefix copy
        was a distinct (renamed) variable, so the later occurrence is a
        fresh binding with no equality to the severed one.
        """
        kept: dict[Variable, None] = {}
        for step in self.steps[: position + 1]:
            for variable in step.atom.variables():
                kept.setdefault(variable, None)
            for variable in step.dropped:
                kept.pop(variable, None)
        return tuple(kept)
