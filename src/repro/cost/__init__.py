"""Cost models M1/M2/M3, physical plans, and the plan optimizer."""

from .estimator import RelationStats, StatisticsCatalog
from .intermediates import (
    PlanExecution,
    PlanExecutionError,
    StepTrace,
    VarTable,
    execute_plan,
    join_atoms,
    join_step,
)
from .iomodel import IoParameters, IoReport, io_tracks_m2, simulate_plan_io
from .models import cost_m1, cost_m2, cost_m3
from .monotonic import (
    check_m1_monotonic,
    check_m2_monotonic,
    covering_containment_mapping,
    verify_monotonicity,
)
from .optimizer import (
    OptimizedPlan,
    optimal_plan_io,
    TooManySubgoalsError,
    best_rewriting_m2,
    improve_with_filters,
    optimal_plan_m2,
    optimal_plan_m2_estimated,
    optimal_plan_m3,
    optimal_plan_m3_estimated,
)
from .plans import PhysicalPlan, PlanStep
from .registry import (
    CostModel,
    UnknownCostModelError,
    available_cost_models,
    get_cost_model,
    register_cost_model,
)
from .report import explain_plan
from .supplementary import (
    heuristic_drops,
    heuristic_plan,
    supplementary_drops,
    supplementary_plan,
)

__all__ = [
    "CostModel",
    "IoParameters",
    "IoReport",
    "OptimizedPlan",
    "UnknownCostModelError",
    "PhysicalPlan",
    "PlanExecution",
    "PlanExecutionError",
    "PlanStep",
    "RelationStats",
    "StatisticsCatalog",
    "StepTrace",
    "TooManySubgoalsError",
    "VarTable",
    "available_cost_models",
    "best_rewriting_m2",
    "check_m1_monotonic",
    "check_m2_monotonic",
    "cost_m1",
    "cost_m2",
    "cost_m3",
    "covering_containment_mapping",
    "verify_monotonicity",
    "execute_plan",
    "explain_plan",
    "get_cost_model",
    "io_tracks_m2",
    "heuristic_drops",
    "heuristic_plan",
    "improve_with_filters",
    "join_atoms",
    "join_step",
    "optimal_plan_io",
    "optimal_plan_m2",
    "optimal_plan_m2_estimated",
    "optimal_plan_m3",
    "optimal_plan_m3_estimated",
    "register_cost_model",
    "simulate_plan_io",
    "supplementary_drops",
    "supplementary_plan",
]
