"""Containment-monotonic cost models (Section 5.3).

A cost model ``M`` is *containment monotonic* when, for rewritings
``P1``, ``P2``: if there is a containment mapping from ``P1`` to ``P2``
whose image uses all of ``P2``'s subgoals, then the optimal plan of
``P2`` costs no more than the optimal plan of ``P1`` under ``M``.
Theorem 5.1 generalizes to every containment-monotonic model: the minimal
rewritings using view tuples contain an optimal rewriting.

This module provides the witness check (does the premise hold for a pair
of rewritings?) and an empirical verifier used by the test suite to
confirm M1 and M2 are containment monotonic on concrete databases.
"""

from __future__ import annotations

from typing import Callable, Iterable

from ..containment.containment import containment_mappings
from ..datalog.query import ConjunctiveQuery
from ..datalog.substitution import Substitution
from ..engine.database import Database
from .optimizer import optimal_plan_m2


def covering_containment_mapping(
    source: ConjunctiveQuery, target: ConjunctiveQuery
) -> Substitution | None:
    """A containment mapping ``source -> target`` whose image is onto.

    Returns a mapping under which *every* subgoal of *target* is the
    image of some subgoal of *source* (the premise of Section 5.3), or
    ``None`` when no such mapping exists.
    """
    target_atoms = set(target.body)
    for mapping in containment_mappings(source, target):
        image = set(mapping.apply_atoms(source.body))
        if target_atoms <= image:
            return mapping
    return None


def check_m1_monotonic(
    source: ConjunctiveQuery, target: ConjunctiveQuery
) -> bool:
    """M1 monotonicity for one pair: image-onto mapping ⇒ |P2| ≤ |P1|."""
    if covering_containment_mapping(source, target) is None:
        return True  # premise fails; nothing to check
    return len(target.body) <= len(source.body)


def check_m2_monotonic(
    source: ConjunctiveQuery,
    target: ConjunctiveQuery,
    database: Database,
) -> bool:
    """M2 monotonicity for one pair over a concrete view database."""
    if covering_containment_mapping(source, target) is None:
        return True
    source_cost = optimal_plan_m2(source, database).cost
    target_cost = optimal_plan_m2(target, database).cost
    return target_cost <= source_cost


def verify_monotonicity(
    pairs: Iterable[tuple[ConjunctiveQuery, ConjunctiveQuery]],
    check: Callable[[ConjunctiveQuery, ConjunctiveQuery], bool],
) -> list[tuple[ConjunctiveQuery, ConjunctiveQuery]]:
    """Run a monotonicity check over many pairs; return the violations."""
    return [(p1, p2) for p1, p2 in pairs if not check(p1, p2)]
