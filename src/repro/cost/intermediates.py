"""Exact execution of physical plans with intermediate-size tracking.

Cost models M2 and M3 price a plan by the sizes of the relations it
touches: the view relations, the intermediate relations ``IR_i`` (all
attributes retained, [11]), and the generalized supplementary relations
``GSR_i`` (annotated attributes dropped).  This module executes plans over
a materialized view database and records every one of those sizes.

Intermediate relations are represented as variable-schema tables: the
columns are the plan's live variables in first-appearance order.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from ..datalog.atoms import Atom
from ..datalog.terms import Constant, Variable, is_variable
from ..engine.database import Database
from .plans import PhysicalPlan


class PlanExecutionError(RuntimeError):
    """Raised when a plan is not executable (missing relation, bad head)."""


@dataclass(frozen=True)
class VarTable:
    """An intermediate relation keyed by plan variables."""

    schema: tuple[Variable, ...]
    rows: frozenset[tuple[object, ...]]

    def __len__(self) -> int:
        return len(self.rows)

    def project(self, keep: Sequence[Variable]) -> "VarTable":
        """Project (with duplicate elimination) onto *keep*."""
        positions = [self.schema.index(v) for v in keep]
        projected = frozenset(
            tuple(row[p] for p in positions) for row in self.rows
        )
        return VarTable(tuple(keep), projected)


@dataclass(frozen=True)
class StepTrace:
    """Sizes observed while processing one plan step."""

    atom: Atom
    subgoal_size: int
    intermediate_size: int
    schema: tuple[Variable, ...]


@dataclass(frozen=True)
class PlanExecution:
    """The full trace of a plan run: per-step sizes and the final answer."""

    plan: PhysicalPlan
    steps: tuple[StepTrace, ...]
    answer: frozenset[tuple[object, ...]]

    def subgoal_sizes(self) -> tuple[int, ...]:
        """``size(g_i)`` for each step."""
        return tuple(step.subgoal_size for step in self.steps)

    def intermediate_sizes(self) -> tuple[int, ...]:
        """``size(IR_i)`` (or ``size(GSR_i)`` when the plan drops) per step."""
        return tuple(step.intermediate_size for step in self.steps)


def join_step(
    table: VarTable, atom: Atom, database: Database
) -> VarTable:
    """Join *table* with the relation of *atom* on shared variables.

    Constants and repeated variables within the atom become selections;
    variables absent from the table's schema are appended as new columns.
    """
    if not database.has_relation(atom.predicate):
        raise PlanExecutionError(f"no materialized relation for {atom.predicate!r}")
    relation = database.relation(atom.predicate)
    if relation.arity != atom.arity:
        raise PlanExecutionError(
            f"subgoal {atom} does not match relation "
            f"{relation.name}/{relation.arity}"
        )

    key_positions: list[int] = []
    key_columns: list[int] = []
    constant_checks: list[tuple[int, object]] = []
    new_vars: dict[Variable, int] = {}
    equality_checks: list[tuple[int, int]] = []
    for position, arg in enumerate(atom.args):
        if isinstance(arg, Constant):
            constant_checks.append((position, arg.value))
        elif arg in table.schema:
            key_positions.append(position)
            key_columns.append(table.schema.index(arg))
        elif arg in new_vars:
            equality_checks.append((new_vars[arg], position))
        else:
            new_vars[arg] = position

    def row_ok(row: tuple[object, ...]) -> bool:
        return all(row[p] == value for p, value in constant_checks) and all(
            row[p1] == row[p2] for p1, p2 in equality_checks
        )

    index: dict[tuple[object, ...], list[tuple[object, ...]]] = {}
    for row in relation:
        if row_ok(row):
            key = tuple(row[p] for p in key_positions)
            index.setdefault(key, []).append(row)

    new_schema = table.schema + tuple(new_vars)
    joined: set[tuple[object, ...]] = set()
    for left in table.rows:
        key = tuple(left[c] for c in key_columns)
        for right in index.get(key, ()):
            joined.add(left + tuple(right[p] for p in new_vars.values()))
    return VarTable(new_schema, frozenset(joined))


def execute_plan(plan: PhysicalPlan, database: Database) -> PlanExecution:
    """Run *plan* over the view database, tracking every size Table 1 needs.

    The per-step ``intermediate_size`` is ``size(IR_i)`` when the plan has
    no annotations and ``size(GSR_i)`` otherwise (drops are applied right
    after each join, as in the supplementary-relation evaluation [4]).
    """
    table = VarTable((), frozenset({()}))
    traces: list[StepTrace] = []
    for step in plan.steps:
        subgoal_size = (
            len(database.relation(step.atom.predicate))
            if database.has_relation(step.atom.predicate)
            else 0
        )
        table = join_step(table, step.atom, database)
        if step.dropped:
            keep = tuple(v for v in table.schema if v not in step.dropped)
            table = table.project(keep)
        traces.append(
            StepTrace(step.atom, subgoal_size, len(table), table.schema)
        )

    answer = _project_head(plan, table)
    return PlanExecution(plan, tuple(traces), answer)


def join_atoms(atoms: Sequence[Atom], database: Database) -> VarTable:
    """The natural join of *atoms* with all attributes retained.

    Used by the M2 dynamic program: the size of ``IR_i`` depends only on
    the *set* of the first ``i`` subgoals, not on their order.
    """
    table = VarTable((), frozenset({()}))
    for atom in atoms:
        table = join_step(table, atom, database)
    return table


def _project_head(plan: PhysicalPlan, table: VarTable) -> frozenset[tuple[object, ...]]:
    positions: list[int | None] = []
    constants: dict[int, object] = {}
    for i, arg in enumerate(plan.head.args):
        if is_variable(arg):
            if arg not in table.schema:
                raise PlanExecutionError(
                    f"head variable {arg} was dropped and never rebound; "
                    "the plan cannot produce the answer"
                )
            positions.append(table.schema.index(arg))
        else:
            positions.append(None)
            constants[i] = arg.value
    answer = frozenset(
        tuple(
            constants[i] if position is None else row[position]
            for i, position in enumerate(positions)
        )
        for row in table.rows
    )
    return answer
