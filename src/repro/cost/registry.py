"""The cost-model registry (Table 1 as pluggable strategies).

The planner's :func:`repro.planner.registry.plan` entry point resolves
cost models by name from this registry, mirroring the
:class:`~repro.planner.registry.RewriterBackend` registry on the
rewriting side.  Each :class:`CostModel` selects the cheapest rewriting
from a candidate set and returns an :class:`~repro.cost.optimizer.OptimizedPlan`:

* ``m1`` — plan = subgoal set, cost = number of subgoals.  Needs no data.
* ``m2`` — plan = ordered subgoals, cost = Σ size(gᵢ) + size(IRᵢ).  Needs
  a materialized view database (exact) or a
  :class:`~repro.cost.estimator.StatisticsCatalog` (estimated).
* ``m3`` — plan = ordered subgoals with attribute drops, cost =
  Σ size(gᵢ) + size(GSRᵢ).  Same data requirements as ``m2`` plus the
  original query and views for the drop annotators.

Custom models can be registered with :func:`register_cost_model` (e.g.
the IO simulator in :mod:`repro.cost.iomodel` wrapped as a model).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional, Sequence

from ..datalog.query import ConjunctiveQuery
from ..errors import ReproError
from .estimator import StatisticsCatalog
from .optimizer import (
    OptimizedPlan,
    _MAX_PERMUTATION_SUBGOALS,
    best_rewriting_m2,
    optimal_plan_m2_estimated,
    optimal_plan_m3,
    optimal_plan_m3_estimated,
)
from .plans import PhysicalPlan

__all__ = [
    "CostModel",
    "UnknownCostModelError",
    "available_cost_models",
    "get_cost_model",
    "register_cost_model",
]


class UnknownCostModelError(ReproError, LookupError):
    """Raised when a cost-model name does not resolve."""


@dataclass(frozen=True)
class CostModel:
    """A named strategy for pricing rewritings and picking the cheapest.

    ``select`` receives the candidate rewritings plus keyword context
    (``query``, ``views``, ``database``, ``statistics`` and any
    model-specific options) and returns the winning
    :class:`OptimizedPlan`, or ``None`` when there are no candidates.
    """

    name: str
    description: str
    #: Whether the model needs a view database or statistics catalog.
    needs_data: bool
    selector: Callable[..., Optional[OptimizedPlan]]

    def select(
        self,
        rewritings: Sequence[ConjunctiveQuery],
        *,
        query: ConjunctiveQuery | None = None,
        views=None,
        database=None,
        statistics: StatisticsCatalog | None = None,
        **options,
    ) -> Optional[OptimizedPlan]:
        """Pick the cheapest rewriting under this model."""
        return self.selector(
            tuple(rewritings),
            query=query,
            views=views,
            database=database,
            statistics=statistics,
            **options,
        )


_MODELS: dict[str, CostModel] = {}


def _normalize(name: str) -> str:
    return name.strip().lower().replace("_", "-")


def register_cost_model(model: CostModel, *, replace: bool = False) -> CostModel:
    """Register *model* under its (normalized) name."""
    key = _normalize(model.name)
    if not replace and key in _MODELS:
        raise ValueError(f"cost model {key!r} is already registered")
    _MODELS[key] = model
    return model


def available_cost_models() -> tuple[str, ...]:
    """Registered cost-model names, sorted."""
    return tuple(sorted(_MODELS))


def get_cost_model(name: str) -> CostModel:
    """Resolve a cost model by name.

    Raises :class:`UnknownCostModelError` with the registered names when
    the lookup fails.
    """
    key = _normalize(name)
    model = _MODELS.get(key)
    if model is None:
        registered = ", ".join(available_cost_models()) or "(none)"
        raise UnknownCostModelError(
            f"unknown cost model {name!r}; registered cost models: {registered}"
        )
    return model


# -- built-in models ---------------------------------------------------------

def _select_m1(rewritings, *, query=None, views=None, database=None,
               statistics=None, **options) -> Optional[OptimizedPlan]:
    if not rewritings:
        return None
    best = min(rewritings, key=lambda r: (len(r.body), str(r)))
    plan = PhysicalPlan.from_rewriting(best)
    return OptimizedPlan(best, plan, float(len(best.body)))


def _select_m2(rewritings, *, query=None, views=None, database=None,
               statistics=None, **options) -> Optional[OptimizedPlan]:
    if not rewritings:
        return None
    if database is not None:
        return best_rewriting_m2(rewritings, database)
    if statistics is not None:
        best: Optional[OptimizedPlan] = None
        for rewriting in rewritings:
            optimized = optimal_plan_m2_estimated(rewriting, statistics)
            if best is None or optimized.cost < best.cost:
                best = optimized
        return best
    raise ValueError(
        "cost model 'm2' prices intermediate relations; pass a view "
        "database (exact) or a StatisticsCatalog (estimated)"
    )


def _select_m3(rewritings, *, query=None, views=None, database=None,
               statistics=None, annotator: str = "heuristic",
               **options) -> Optional[OptimizedPlan]:
    if not rewritings:
        return None
    if query is None or views is None:
        raise ValueError(
            "cost model 'm3' needs the original query and the view catalog "
            "for its attribute-drop annotators"
        )
    candidates = [
        r for r in rewritings if len(r.body) <= _MAX_PERMUTATION_SUBGOALS
    ]
    if not candidates:
        return None
    best: Optional[OptimizedPlan] = None
    for rewriting in candidates:
        if database is not None:
            optimized = optimal_plan_m3(
                rewriting, query, views, database, annotator
            )
        elif statistics is not None:
            optimized = optimal_plan_m3_estimated(
                rewriting, query, views, statistics, annotator
            )
        else:
            raise ValueError(
                "cost model 'm3' prices generalized supplementary "
                "relations; pass a view database (exact) or a "
                "StatisticsCatalog (estimated)"
            )
        if best is None or optimized.cost < best.cost:
            best = optimized
    return best


register_cost_model(CostModel(
    name="m1",
    description="number of subgoals (Table 1, M1)",
    needs_data=False,
    selector=_select_m1,
))
register_cost_model(CostModel(
    name="m2",
    description="sum of view and intermediate-relation sizes (Table 1, M2)",
    needs_data=True,
    selector=_select_m2,
))
register_cost_model(CostModel(
    name="m3",
    description="M2 with attribute drops / supplementary relations (Table 1, M3)",
    needs_data=True,
    selector=_select_m3,
))
