"""Cardinality estimation for cost models M2/M3 without materialized data.

The exact costs in :mod:`repro.cost.intermediates` require a view
database.  When only statistics are available, this module estimates
intermediate sizes with the classic System-R assumptions [22]:

* attribute values are uniformly distributed;
* join attributes are independent;
* the selectivity of an equality ``R.a = S.b`` is
  ``1 / max(V(R, a), V(S, b))`` where ``V`` counts distinct values;
* the selectivity of ``R.a = constant`` is ``1 / V(R, a)``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

from ..datalog.atoms import Atom
from ..datalog.terms import Constant, Variable
from ..engine.database import Database


@dataclass(frozen=True)
class RelationStats:
    """Cardinality and per-column distinct counts for one relation."""

    name: str
    cardinality: int
    distinct: tuple[int, ...]

    def distinct_at(self, position: int) -> int:
        """Distinct values in the given column (at least 1)."""
        return max(1, self.distinct[position])


class StatisticsCatalog:
    """Statistics for a set of relations, used by the size estimator."""

    def __init__(self, stats: Iterable[RelationStats] = ()) -> None:
        self._stats: dict[str, RelationStats] = {s.name: s for s in stats}

    @classmethod
    def from_database(cls, database: Database) -> "StatisticsCatalog":
        """Collect exact statistics from a materialized database."""
        collected = []
        for relation in database:
            distinct = tuple(
                len({row[position] for row in relation})
                for position in range(relation.arity)
            )
            collected.append(
                RelationStats(relation.name, len(relation), distinct)
            )
        return cls(collected)

    def add(self, stats: RelationStats) -> None:
        """Register (or replace) statistics for one relation."""
        self._stats[stats.name] = stats

    def stats(self, name: str) -> RelationStats:
        """Statistics for the named relation."""
        return self._stats[name]

    def __contains__(self, name: object) -> bool:
        return name in self._stats

    # -- estimation ----------------------------------------------------------
    def estimate_join_size(self, atoms: Sequence[Atom]) -> float:
        """Estimated cardinality of the natural join of *atoms*.

        Every occurrence of a variable beyond its first, and every
        constant, contributes one equality selectivity.
        """
        size = 1.0
        # First occurrence of each variable: (relation stats, position).
        first_seen: dict[Variable, tuple[RelationStats, int]] = {}
        for atom in atoms:
            stats = self._stats.get(atom.predicate)
            if stats is None:
                return 0.0
            size *= stats.cardinality
            for position, arg in enumerate(atom.args):
                if isinstance(arg, Constant):
                    size /= stats.distinct_at(position)
                    continue
                seen = first_seen.get(arg)
                if seen is None:
                    first_seen[arg] = (stats, position)
                else:
                    other_stats, other_position = seen
                    size /= max(
                        stats.distinct_at(position),
                        other_stats.distinct_at(other_position),
                    )
        return size

    def estimate_relation_size(self, atom: Atom) -> int:
        """The cardinality of the relation a subgoal scans (0 if unknown)."""
        stats = self._stats.get(atom.predicate)
        return stats.cardinality if stats is not None else 0

    def variable_domain(self, atoms: Sequence[Atom], variable) -> float:
        """Estimated number of distinct values *variable* can take.

        The minimum of the distinct counts of the columns the variable
        occupies (each occurrence restricts the domain).
        """
        best: float | None = None
        for atom in atoms:
            stats = self._stats.get(atom.predicate)
            if stats is None:
                continue
            for position, arg in enumerate(atom.args):
                if arg == variable:
                    candidate = float(stats.distinct_at(position))
                    if best is None or candidate < best:
                        best = candidate
        return best if best is not None else 1.0

    def estimate_projection_size(
        self, row_count: float, domain_product: float
    ) -> float:
        """Distinct rows after projecting *row_count* rows onto columns
        whose value combinations span *domain_product* possibilities.

        Cardenas' formula under uniformity:
        ``D * (1 - (1 - 1/D)^n)`` — at most ``min(n, D)``.
        """
        if row_count <= 0 or domain_product <= 0:
            return 0.0
        if domain_product >= 1e12:
            return row_count  # effectively no collisions
        collisionless = domain_product * (
            1.0 - (1.0 - 1.0 / domain_product) ** row_count
        )
        return min(row_count, collisionless)
