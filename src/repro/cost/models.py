"""The three cost models of Table 1.

===========  ==============================================  =========================================
Cost model   Physical plan                                   Cost measure
===========  ==============================================  =========================================
``M1``       a set of subgoals                               number ``n`` of subgoals
``M2``       a list of subgoals                              ``Σ_i (size(g_i) + size(IR_i))``
``M3``       a list of subgoals annotated with dropped       ``Σ_i (size(g_i) + size(GSR_i))``
             attributes
===========  ==============================================  =========================================

``M2`` and ``M3`` need concrete sizes; :func:`cost_m2` / :func:`cost_m3`
take a :class:`~repro.cost.intermediates.PlanExecution` trace (exact, from
a materialized view database) and the ``estimate_*`` twins take a
:class:`~repro.cost.estimator.StatisticsCatalog`.
"""

from __future__ import annotations

from ..datalog.query import ConjunctiveQuery
from .intermediates import PlanExecution
from .plans import PhysicalPlan


def cost_m1(plan: PhysicalPlan | ConjunctiveQuery) -> int:
    """M1: the number of view subgoals in the plan (join-count proxy)."""
    if isinstance(plan, ConjunctiveQuery):
        return len(plan.body)
    return len(plan.steps)


def cost_m2(execution: PlanExecution) -> int:
    """M2: total size of views read plus all intermediate relations.

    The execution must come from an *unannotated* plan, so that each
    step's intermediate relation is the full ``IR_i``.
    """
    _require_no_drops(execution, "M2")
    return sum(
        step.subgoal_size + step.intermediate_size for step in execution.steps
    )


def cost_m3(execution: PlanExecution) -> int:
    """M3: total size of views read plus all generalized supplementary
    relations (drops applied)."""
    return sum(
        step.subgoal_size + step.intermediate_size for step in execution.steps
    )


def _require_no_drops(execution: PlanExecution, model: str) -> None:
    if any(step.dropped for step in execution.plan.steps):
        raise ValueError(
            f"{model} prices full intermediate relations; the plan has drop "
            "annotations — use cost_m3 instead"
        )


# Containment monotonicity (Section 5.3) lives in repro.cost.monotonic.
