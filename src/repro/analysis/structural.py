"""Structural (syntax-level) analysis rules: R001-R006.

These rules need only the parsed query and view catalog — no containment
machinery — so they are cheap enough to run on every input.  Each rule is
registered in :mod:`repro.analysis.registry` at import time; the catalog
with one worked example per code lives in ``docs/analysis.md``.
"""

from __future__ import annotations

import operator
from collections import Counter
from typing import Iterator

from ..datalog.atoms import Atom
from ..datalog.query import ConjunctiveQuery
from ..datalog.terms import Constant, Variable, is_variable
from .diagnostics import Diagnostic, Severity
from .inputs import AnalysisInput
from .registry import AnalysisRule, register_rule

__all__ = [
    "RULE_ARITY_MISMATCH",
    "RULE_CARTESIAN_PRODUCT",
    "RULE_CONTRADICTORY_CONSTANTS",
    "RULE_DUPLICATE_SUBGOALS",
    "RULE_IRRELEVANT_VIEW",
    "RULE_UNSAFE_HEAD",
]


# -- R001: unsafe head ------------------------------------------------------


def _check_unsafe_head(inputs: AnalysisInput) -> Iterator[Diagnostic]:
    query = inputs.query
    missing = query.distinguished_variables() - query.body_variables()
    if missing:
        names = ", ".join(sorted(v.name for v in missing))
        yield RULE_UNSAFE_HEAD.diagnostic(
            f"head variable(s) {{{names}}} do not occur in the body; the "
            "query is unsafe (Section 2.1) and no rewriting can bind them",
            span=inputs.span_of(query.head) or inputs.span_of(query),
        )


RULE_UNSAFE_HEAD = register_rule(
    AnalysisRule(
        code="R001",
        name="unsafe-head",
        description="A distinguished (head) variable is missing from the body.",
        severity=Severity.ERROR,
        family="structural",
        check=_check_unsafe_head,
    )
)


# -- R002: arity mismatches -------------------------------------------------


def _relational_atoms(rule: ConjunctiveQuery) -> Iterator[Atom]:
    for atom in rule.body:
        if not atom.is_comparison:
            yield atom


def _check_arity_mismatch(inputs: AnalysisInput) -> Iterator[Diagnostic]:
    # Pass 1: every base-relation use against the declared schema.
    schema = inputs.schema or {}
    rules: list[tuple[str, ConjunctiveQuery]] = [("query", inputs.query)]
    rules.extend(
        (f"view:{view.name}", view.definition) for view in inputs.views
    )
    seen: dict[str, tuple[int, str]] = {}
    for subject, rule in rules:
        for atom in _relational_atoms(rule):
            declared = schema.get(atom.predicate)
            if declared is not None and declared != atom.arity:
                yield RULE_ARITY_MISMATCH.diagnostic(
                    f"predicate {atom.predicate!r} used with arity "
                    f"{atom.arity}, but the declared schema gives it "
                    f"arity {declared}",
                    span=inputs.span_of(atom),
                    subject=subject,
                )
                continue
            # Pass 2 (interleaved): cross-consistency between the query
            # and every view body, schema or not.
            first = seen.setdefault(atom.predicate, (atom.arity, subject))
            if first[0] != atom.arity and declared is None:
                yield RULE_ARITY_MISMATCH.diagnostic(
                    f"predicate {atom.predicate!r} used with arity "
                    f"{atom.arity}, but arity {first[0]} in {first[1]}",
                    span=inputs.span_of(atom),
                    subject=subject,
                )


RULE_ARITY_MISMATCH = register_rule(
    AnalysisRule(
        code="R002",
        name="arity-mismatch",
        description=(
            "A base predicate is used with an arity different from the "
            "declared schema or from its other uses."
        ),
        severity=Severity.ERROR,
        family="structural",
        check=_check_arity_mismatch,
    )
)


# -- R003: cartesian-product (disconnected) body ----------------------------


def _join_components(atoms: tuple[Atom, ...]) -> list[list[int]]:
    """Connected components of the variable-sharing graph over *atoms*."""
    parent = list(range(len(atoms)))

    def find(i: int) -> int:
        while parent[i] != i:
            parent[i] = parent[parent[i]]
            i = parent[i]
        return i

    def union(i: int, j: int) -> None:
        parent[find(i)] = find(j)

    last_seen: dict[Variable, int] = {}
    for index, atom in enumerate(atoms):
        for variable in atom.variable_set():
            if variable in last_seen:
                union(index, last_seen[variable])
            last_seen[variable] = index
    components: dict[int, list[int]] = {}
    for index in range(len(atoms)):
        components.setdefault(find(index), []).append(index)
    return list(components.values())


def _check_cartesian_product(inputs: AnalysisInput) -> Iterator[Diagnostic]:
    query = inputs.query
    atoms = tuple(_relational_atoms(query))
    if len(atoms) < 2:
        return
    components = _join_components(atoms)
    if len(components) < 2:
        return
    rendered = " x ".join(
        "{" + ", ".join(str(atoms[i]) for i in group) + "}"
        for group in components
    )
    yield RULE_CARTESIAN_PRODUCT.diagnostic(
        f"query body is disconnected ({len(components)} components: "
        f"{rendered}); evaluation is a cartesian product, which the "
        "Section 6 cost models price quadratically",
        span=inputs.span_of(query) or inputs.span_of(atoms[0]),
    )


RULE_CARTESIAN_PRODUCT = register_rule(
    AnalysisRule(
        code="R003",
        name="cartesian-product",
        description=(
            "The query body's variable-sharing graph is disconnected, so "
            "evaluating it takes a cross product."
        ),
        severity=Severity.WARNING,
        family="structural",
        check=_check_cartesian_product,
    )
)


# -- R004: contradictory constants ------------------------------------------

_COMPARISON_OPS = {
    "<": operator.lt,
    "<=": operator.le,
    ">": operator.gt,
    ">=": operator.ge,
    "=": operator.eq,
    "!=": operator.ne,
}


def contradiction_witnesses(
    rule: ConjunctiveQuery,
) -> Iterator[tuple[Atom, Atom | None, str]]:
    """Provable constant contradictions in *rule*'s body.

    Yields ``(atom, other, reason)`` triples: the anchoring atom, an
    optional second atom involved, and a human explanation.  Shared by
    R004 (per-query lint) and C103 (whole-catalog unsatisfiable-view
    audit) — both flag the same two patterns:

    (a) comparison atoms over two constants that are identically false;
    (b) equality atoms forcing one variable (transitively) to equal two
        distinct constants.  Pass 1 unions variable classes over
        ``X = Y`` atoms; pass 2 binds classes to constants, flagging
        conflicts — the two-pass order catches chains like
        ``X = a, Y = b, X = Y``.
    """
    for atom in rule.body:
        if not (atom.is_comparison and atom.arity == 2):
            continue
        left, right = atom.args
        if isinstance(left, Constant) and isinstance(right, Constant):
            try:
                holds = _COMPARISON_OPS[atom.predicate](left.value, right.value)
            except TypeError:
                continue  # incomparable constant types; not provably false
            if not holds:
                yield (
                    atom,
                    None,
                    f"comparison {atom} is between constants and always false",
                )
    equalities = [
        atom
        for atom in rule.body
        if atom.is_comparison and atom.predicate == "=" and atom.arity == 2
    ]
    parent: dict[Variable, Variable] = {}

    def find(v: Variable) -> Variable:
        parent.setdefault(v, v)
        while parent[v] != v:
            parent[v] = parent[parent[v]]
            v = parent[v]
        return v

    for atom in equalities:
        left, right = atom.args
        if is_variable(left) and is_variable(right):
            parent[find(left)] = find(right)
    bound: dict[Variable, tuple[Constant, Atom]] = {}
    for atom in equalities:
        left, right = atom.args
        if isinstance(left, Constant) and is_variable(right):
            left, right = right, left
        if not (is_variable(left) and isinstance(right, Constant)):
            continue
        root = find(left)
        existing = bound.get(root)
        if existing is None:
            bound[root] = (right, atom)
        elif existing[0] != right:
            yield (
                atom,
                existing[1],
                f"variable {left} is equated with both {existing[0]} and "
                f"{right}; the join position is contradictory",
            )


def _check_contradictory_constants(
    inputs: AnalysisInput,
) -> Iterator[Diagnostic]:
    for atom, other, reason in contradiction_witnesses(inputs.query):
        yield RULE_CONTRADICTORY_CONSTANTS.diagnostic(
            f"{reason}: the query returns no answers on any database",
            span=inputs.span_of(atom)
            or (inputs.span_of(other) if other is not None else None),
        )


RULE_CONTRADICTORY_CONSTANTS = register_rule(
    AnalysisRule(
        code="R004",
        name="contradictory-constants",
        description=(
            "A joined position is forced to equal two distinct constants "
            "(or a constant comparison is identically false)."
        ),
        severity=Severity.ERROR,
        family="structural",
        check=_check_contradictory_constants,
    )
)


# -- R005: duplicate subgoals (self-join copies) -----------------------------


def _check_duplicate_subgoals(inputs: AnalysisInput) -> Iterator[Diagnostic]:
    query = inputs.query
    counts = Counter(query.body)
    duplicates = [atom for atom, count in counts.items() if count > 1]
    if not duplicates:
        return
    deduped = query.dedup_body()
    rendered = ", ".join(str(atom) for atom in duplicates)
    yield RULE_DUPLICATE_SUBGOALS.diagnostic(
        f"duplicate subgoal(s) {rendered} repeat verbatim; they add no "
        "constraint but inflate T(Q, V) and the set-cover search",
        span=inputs.span_of(query),
        fix=str(deduped),
    )


RULE_DUPLICATE_SUBGOALS = register_rule(
    AnalysisRule(
        code="R005",
        name="duplicate-subgoals",
        description="A body atom is repeated verbatim (trivial self-join).",
        severity=Severity.WARNING,
        family="structural",
        check=_check_duplicate_subgoals,
    )
)


# -- R006: view exports nothing relevant to the query ------------------------


def _check_irrelevant_view(inputs: AnalysisInput) -> Iterator[Diagnostic]:
    query_predicates = inputs.query.predicates()
    # The catalog's predicate index answers "shares a base predicate"
    # for the whole catalog at once; only views passing that gate need
    # their relevant atoms materialized for the head-export check.
    sharing = inputs.views.names_sharing_predicates(query_predicates)
    for view in inputs.views:
        definition = view.definition
        span = inputs.span_of(definition)
        if view.name not in sharing:
            yield RULE_IRRELEVANT_VIEW.diagnostic(
                f"view {view.name!r} shares no base predicate with the "
                "query; it can cover no subgoal and only widens the search",
                span=span,
                subject=f"view:{view.name}",
            )
            continue
        relevant = [
            atom
            for atom in _relational_atoms(definition)
            if atom.predicate in query_predicates
        ]
        exported: set[Variable] = set()
        for atom in relevant:
            exported.update(atom.variable_set())
        if not exported.intersection(view.head_variables):
            yield RULE_IRRELEVANT_VIEW.diagnostic(
                f"view {view.name!r} exports none of the variables of its "
                "query-relevant subgoals; every use joins through fresh "
                "existentials only",
                span=span,
                subject=f"view:{view.name}",
            )


RULE_IRRELEVANT_VIEW = register_rule(
    AnalysisRule(
        code="R006",
        name="irrelevant-view",
        description=(
            "A view's head exports no variable relevant to the query (or "
            "the view shares no predicate with it)."
        ),
        severity=Severity.WARNING,
        family="structural",
        check=_check_irrelevant_view,
    )
)
