"""SARIF-shaped JSON rendering of an analysis report.

The output follows the SARIF 2.1.0 skeleton (``runs[].tool`` +
``runs[].results``) closely enough for log viewers that understand the
shape, while keeping the repro-specific span/fix fields in each result's
``properties`` bag.  The exact schema is documented with an example in
``docs/analysis.md``.

Two SARIF validity details matter for CI consumers:

* Every ``physicalLocation`` carries an ``artifactLocation`` with a
  ``uri`` (required by the 2.1.0 schema) — the source names are threaded
  through :func:`to_sarif` so diagnostics about the query point at the
  query source and diagnostics about views point at the views file.
* Every result carries ``partialFingerprints`` under the ``repro/v1``
  key: the diagnostic's content fingerprint when the emitting rule
  computed one (the catalog-audit rules do — stable under view
  reordering), else a hash of ``code|subject|message``.  Baseline files
  (``repro audit --baseline``) match on exactly these values.
"""

from __future__ import annotations

import hashlib
import json

from .diagnostics import AnalysisReport, Diagnostic, Severity
from .registry import available_rules

__all__ = ["result_fingerprint", "to_sarif", "render_json"]

#: SARIF ``level`` values for our severities.
_SARIF_LEVELS = {
    Severity.ERROR: "error",
    Severity.WARNING: "warning",
    Severity.INFO: "note",
}

#: The ``partialFingerprints`` key our results are stamped under.
FINGERPRINT_KEY = "repro/v1"


def result_fingerprint(diagnostic: Diagnostic) -> str:
    """The stable fingerprint a baseline matches *diagnostic* on.

    The diagnostic's own content fingerprint when the rule computed one;
    otherwise a sha256 over ``code|subject|message`` (stable across runs
    but, unlike audit fingerprints, not across source edits).
    """
    if diagnostic.fingerprint is not None:
        return diagnostic.fingerprint
    return hashlib.sha256(
        f"{diagnostic.code}|{diagnostic.subject}|{diagnostic.message}".encode(
            "utf-8"
        )
    ).hexdigest()


def to_sarif(
    report: AnalysisReport,
    *,
    query_source: str = "query.dl",
    views_source: str = "views.dl",
    driver_name: str = "repro-lint",
) -> dict:
    """*report* as a SARIF 2.1.0-shaped dictionary.

    ``query_source``/``views_source`` name the artifacts diagnostics
    point into (the CLI passes the actual paths); a diagnostic whose
    subject is a view (``"view:<name>"``) locates in ``views_source``,
    everything else in ``query_source``.
    """
    known = {rule.code: rule for rule in available_rules()}
    rule_descriptors = [
        {
            "id": code,
            "name": known[code].name,
            "shortDescription": {"text": known[code].description},
        }
        for code in report.checked
        if code in known
    ]
    results = []
    for diagnostic in report.diagnostics:
        result: dict = {
            "ruleId": diagnostic.code,
            "level": _SARIF_LEVELS[diagnostic.severity],
            "message": {"text": diagnostic.message},
            "partialFingerprints": {
                FINGERPRINT_KEY: result_fingerprint(diagnostic)
            },
            "properties": {"subject": diagnostic.subject},
        }
        if diagnostic.span is not None:
            span = diagnostic.span
            uri = (
                views_source
                if diagnostic.subject.startswith("view:")
                else query_source
            )
            result["locations"] = [
                {
                    "physicalLocation": {
                        "artifactLocation": {"uri": uri},
                        "region": {
                            "startLine": span.line,
                            "startColumn": span.column,
                            "charOffset": span.start,
                            "charLength": span.length,
                        },
                    }
                }
            ]
        if diagnostic.fix is not None:
            result["properties"]["fix"] = diagnostic.fix
        results.append(result)
    return {
        "version": "2.1.0",
        "$schema": (
            "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/"
            "Schemata/sarif-schema-2.1.0.json"
        ),
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": driver_name,
                        "informationUri": "docs/analysis.md",
                        "rules": rule_descriptors,
                    }
                },
                "results": results,
                "properties": {"counts": dict(report.counts())},
            }
        ],
    }


def render_json(
    report: AnalysisReport,
    *,
    indent: int | None = 2,
    query_source: str = "query.dl",
    views_source: str = "views.dl",
    driver_name: str = "repro-lint",
) -> str:
    """The SARIF-shaped report serialized to a JSON string."""
    return json.dumps(
        to_sarif(
            report,
            query_source=query_source,
            views_source=views_source,
            driver_name=driver_name,
        ),
        indent=indent,
        sort_keys=False,
    )
