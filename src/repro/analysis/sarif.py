"""SARIF-shaped JSON rendering of an analysis report.

The output follows the SARIF 2.1.0 skeleton (``runs[].tool`` +
``runs[].results``) closely enough for log viewers that understand the
shape, while keeping the repro-specific span/fix fields in each result's
``properties`` bag.  The exact schema is documented with an example in
``docs/analysis.md``.
"""

from __future__ import annotations

import json

from .diagnostics import AnalysisReport, Severity
from .registry import available_rules

__all__ = ["to_sarif", "render_json"]

#: SARIF ``level`` values for our severities.
_SARIF_LEVELS = {
    Severity.ERROR: "error",
    Severity.WARNING: "warning",
    Severity.INFO: "note",
}


def to_sarif(report: AnalysisReport) -> dict:
    """*report* as a SARIF 2.1.0-shaped dictionary."""
    known = {rule.code: rule for rule in available_rules()}
    rule_descriptors = [
        {
            "id": code,
            "name": known[code].name,
            "shortDescription": {"text": known[code].description},
        }
        for code in report.checked
        if code in known
    ]
    results = []
    for diagnostic in report.diagnostics:
        result: dict = {
            "ruleId": diagnostic.code,
            "level": _SARIF_LEVELS[diagnostic.severity],
            "message": {"text": diagnostic.message},
            "properties": {"subject": diagnostic.subject},
        }
        if diagnostic.span is not None:
            span = diagnostic.span
            result["locations"] = [
                {
                    "physicalLocation": {
                        "region": {
                            "startLine": span.line,
                            "startColumn": span.column,
                            "charOffset": span.start,
                            "charLength": span.length,
                        }
                    }
                }
            ]
        if diagnostic.fix is not None:
            result["properties"]["fix"] = diagnostic.fix
        results.append(result)
    return {
        "version": "2.1.0",
        "$schema": (
            "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/"
            "Schemata/sarif-schema-2.1.0.json"
        ),
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": "repro-lint",
                        "informationUri": "docs/analysis.md",
                        "rules": rule_descriptors,
                    }
                },
                "results": results,
                "properties": {"counts": dict(report.counts())},
            }
        ],
    }


def render_json(report: AnalysisReport, *, indent: int | None = 2) -> str:
    """The SARIF-shaped report serialized to a JSON string."""
    return json.dumps(to_sarif(report), indent=indent, sort_keys=False)
