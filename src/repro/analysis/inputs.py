"""The value object every analysis rule receives.

Rules never parse or plan on their own: the engine hands them one
:class:`AnalysisInput` bundling the parsed query, the view catalog, the
(optional) planner configuration under scrutiny, the shared
:class:`~repro.planner.context.PlannerContext` whose memoized containment
machinery the semantic rules reuse, an optional declared schema, and the
parser's :class:`~repro.datalog.parser.SourceMap` records for spans.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Mapping

from ..datalog.parser import SourceMap
from ..datalog.query import ConjunctiveQuery
from ..errors import SourceSpan
from ..views.view import ViewCatalog

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..planner.context import PlannerContext

__all__ = ["AnalysisInput", "PlannerConfig"]


@dataclass(frozen=True)
class PlannerConfig:
    """The planner settings a ``plan()`` call (or CLI invocation) will use.

    The config rules (R104) cross-check these against the backend and
    cost-model registries before any planning budget is spent.
    ``has_database``/``has_statistics`` record whether the caller will
    supply a materialized view database or a statistics catalog — the
    data-dependent cost models (M2/M3) need one of the two.
    """

    backend: str | None = None
    cost_model: str | None = None
    has_database: bool = False
    has_statistics: bool = False


@dataclass(frozen=True)
class AnalysisInput:
    """Everything a rule may inspect for one ``analyze()`` call."""

    query: ConjunctiveQuery
    views: ViewCatalog
    context: "PlannerContext"
    config: PlannerConfig | None = None
    #: Declared base-relation schema: predicate name -> arity.
    schema: Mapping[str, int] | None = None
    #: Span records for the query's source text, when it was parsed.
    query_spans: SourceMap | None = None
    #: Span records for the view catalog's source text, when parsed.
    view_spans: SourceMap | None = None

    def span_of(self, obj: object) -> SourceSpan | None:
        """The recorded source span of a parsed atom or rule, if any."""
        for source_map in (self.query_spans, self.view_spans):
            if source_map is not None:
                span = source_map.span_for(obj)
                if span is not None:
                    return span
        return None
