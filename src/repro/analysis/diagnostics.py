"""Diagnostic records and analysis reports.

A :class:`Diagnostic` is one finding of the lint engine: a stable rule
code (``R001``...), a :class:`Severity`, a human message, an optional
:class:`~repro.errors.SourceSpan` locating the finding in the parsed
source, the *subject* it is about (``"query"``, ``"view:v1"`` or
``"config"``), and — when the fix is machine-applicable — a replacement
rule text in ``fix``.

An :class:`AnalysisReport` is the ordered collection of diagnostics one
:func:`repro.analysis.analyze` call produced, with severity filters and
both renderings (human text and the SARIF-shaped JSON described in
``docs/analysis.md``).
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import IntEnum
from typing import Iterator, Mapping

from ..errors import SourceSpan

__all__ = ["AnalysisReport", "Diagnostic", "Severity"]


class Severity(IntEnum):
    """Diagnostic severity, ordered so comparisons mean what they say."""

    INFO = 10
    WARNING = 20
    ERROR = 30

    @classmethod
    def from_name(cls, name: str) -> "Severity":
        """Resolve ``"info" | "warning" | "error"`` (case-insensitive)."""
        try:
            return cls[name.strip().upper()]
        except KeyError:
            choices = ", ".join(level.name.lower() for level in cls)
            raise ValueError(
                f"unknown severity {name!r}; expected one of: {choices}"
            ) from None

    def __str__(self) -> str:
        return self.name.lower()


@dataclass(frozen=True)
class Diagnostic:
    """One finding of the static-analysis engine."""

    #: Stable rule code, e.g. ``"R003"``.  Codes never change meaning.
    code: str
    severity: Severity
    message: str
    #: Where in the parsed source the finding points, when known.
    span: SourceSpan | None = None
    #: What the finding is about: ``"query"``, ``"view:<name>"``, ``"config"``.
    subject: str = "query"
    #: The emitting rule's short name (``"unsafe-head"``).
    rule: str = ""
    #: Machine-applicable replacement rule text, when the fix is mechanical.
    fix: str | None = None
    #: Stable content fingerprint (sha256 hex) for baseline suppression
    #: and SARIF ``partialFingerprints``.  Audit rules compute it from the
    #: *content hashes* of the views involved, so it survives view
    #: reordering and whole-catalog re-registration; ``None`` for lint
    #: diagnostics (the SARIF renderer falls back to a message hash).
    fingerprint: str | None = None

    def to_json(self) -> dict:
        """A JSON-ready rendering (one SARIF-shaped ``result`` object)."""
        payload: dict = {
            "code": self.code,
            "rule": self.rule,
            "severity": str(self.severity),
            "message": self.message,
            "subject": self.subject,
        }
        if self.span is not None:
            payload["span"] = self.span.to_json()
        if self.fix is not None:
            payload["fix"] = self.fix
        if self.fingerprint is not None:
            payload["fingerprint"] = self.fingerprint
        return payload

    def __str__(self) -> str:
        location = f" at {self.span}" if self.span is not None else ""
        return (
            f"{self.code} [{self.severity}] {self.subject}{location}: "
            f"{self.message}"
        )


@dataclass(frozen=True)
class AnalysisReport:
    """Everything one :func:`repro.analysis.analyze` call found."""

    diagnostics: tuple[Diagnostic, ...]
    #: Rule codes that actually ran (after ``select``/``ignore`` filtering).
    checked: tuple[str, ...] = ()

    def __iter__(self) -> Iterator[Diagnostic]:
        return iter(self.diagnostics)

    def __len__(self) -> int:
        return len(self.diagnostics)

    def at_least(self, severity: Severity) -> tuple[Diagnostic, ...]:
        """Diagnostics at or above *severity*."""
        return tuple(d for d in self.diagnostics if d.severity >= severity)

    @property
    def errors(self) -> tuple[Diagnostic, ...]:
        """The error-severity diagnostics."""
        return tuple(d for d in self.diagnostics if d.severity is Severity.ERROR)

    @property
    def warnings(self) -> tuple[Diagnostic, ...]:
        """The warning-severity diagnostics."""
        return tuple(
            d for d in self.diagnostics if d.severity is Severity.WARNING
        )

    @property
    def infos(self) -> tuple[Diagnostic, ...]:
        """The info-severity diagnostics."""
        return tuple(d for d in self.diagnostics if d.severity is Severity.INFO)

    @property
    def ok(self) -> bool:
        """Whether no error-severity diagnostic was emitted."""
        return not self.errors

    @property
    def max_severity(self) -> Severity | None:
        """The highest severity present, or ``None`` for a clean report."""
        if not self.diagnostics:
            return None
        return max(d.severity for d in self.diagnostics)

    def counts(self) -> Mapping[str, int]:
        """``{"error": n, "warning": n, "info": n}`` tallies."""
        tally = {str(level): 0 for level in Severity}
        for diagnostic in self.diagnostics:
            tally[str(diagnostic.severity)] += 1
        return tally

    def render_text(self) -> str:
        """The human-readable multi-line rendering (``repro lint`` default)."""
        if not self.diagnostics:
            return f"clean: no diagnostics ({len(self.checked)} rules checked)"
        lines = []
        for diagnostic in self.diagnostics:
            lines.append(str(diagnostic))
            if diagnostic.fix is not None:
                lines.append(f"    fix available: {diagnostic.fix}")
        tally = self.counts()
        lines.append(
            f"{tally['error']} error(s), {tally['warning']} warning(s), "
            f"{tally['info']} info(s) from {len(self.checked)} rule(s) checked"
        )
        return "\n".join(lines)
