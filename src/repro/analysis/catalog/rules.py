"""Whole-catalog audit rules: C101-C106.

Query-independent catalog hygiene, per Chirkova & Genesereth's framing
("which views earn their keep"): subsumed, equivalent, shadowed, and
unsatisfiable views silently inflate ``T(Q, V)`` enumeration and the
cover search for *every* query, and none of them is visible to the
per-query lint rules (``R0xx``/``R1xx``).

The pairwise rules only ever compare a view against its predicate-index
neighbors (:meth:`~repro.views.view.ViewCatalog.index_neighbors`):
containment between views sharing no base predicate is impossible, so
the pruning is exact — the same argument that makes the planner's
predicate-index slice exact.  Containment itself goes through the shared
:class:`~repro.planner.context.PlannerContext` memos, so consecutive
incremental audits (and a subsequent ``plan()`` on the same context) pay
for each homomorphism search once.

Views whose bodies contain comparison atoms fall outside the
Chandra-Merlin fragment; the semantic pair rules skip them, exactly as
R101/R102 do.
"""

from __future__ import annotations

from typing import Iterator

from ...datalog.terms import Variable
from ...views.view import View
from ..diagnostics import Diagnostic, Severity
from ..registry import AnalysisRule, register_rule
from ..semantic import _has_comparisons, _marker_definition
from ..structural import contradiction_witnesses
from ...datalog.hypergraph import gyo_reduce
from .inputs import CatalogAuditInput

__all__ = [
    "RULE_CYCLIC_VIEW",
    "RULE_EQUIVALENT_VIEWS",
    "RULE_SHADOWED_VIEW",
    "RULE_SUBSUMED_VIEW",
    "RULE_UNREACHABLE_PREDICATE",
    "RULE_UNSATISFIABLE_VIEW",
]


# -- C101: subsumed view ------------------------------------------------------


def _check_subsumed_view(inputs: CatalogAuditInput) -> Iterator[Diagnostic]:
    view = inputs.view
    assert view is not None
    if _has_comparisons(view.definition):
        return
    context = inputs.context
    marker = _marker_definition(view)
    signature = view.predicate_signature()
    for neighbor in inputs.neighbors:
        if neighbor.arity != view.arity:
            continue
        if _has_comparisons(neighbor.definition):
            continue
        # Necessary condition for view ⊑ neighbor: the containment
        # homomorphism maps every neighbor body atom onto some view
        # body atom, so the neighbor's predicates must be a subset.
        if not neighbor.predicate_signature() <= signature:
            continue
        other = _marker_definition(neighbor)
        if not context.is_contained_in(marker, other):
            continue
        if context.is_contained_in(other, marker):
            continue  # equivalent: C102/C104 territory, not subsumption
        yield RULE_SUBSUMED_VIEW.diagnostic(
            f"view {view.name!r} is strictly contained in view "
            f"{neighbor.name!r}: every answer it contributes is already "
            f"available from {neighbor.name!r}, which also covers strictly "
            "more queries",
            span=inputs.span_of(view.definition),
            subject=f"view:{view.name}",
            fingerprint=inputs.fingerprint(
                "C101",
                inputs.view_hash(view.name),
                inputs.view_hash(neighbor.name),
            ),
        )


RULE_SUBSUMED_VIEW = register_rule(
    AnalysisRule(
        code="C101",
        name="subsumed-view",
        description=(
            "A catalog view is strictly contained in another view of the "
            "same arity."
        ),
        severity=Severity.INFO,
        family="semantic",
        check=_check_subsumed_view,
        scope="view",
    )
)


# -- C102: equivalent view pair ----------------------------------------------


def _renaming_key(view: View) -> tuple:
    """A canonical key equal exactly for definitions that differ only by
    variable names: variables are numbered by first occurrence (head
    first, then body, left to right) before rendering."""
    mapping: dict[Variable, int] = {}

    def term_key(term: object) -> tuple:
        if isinstance(term, Variable):
            return ("var", mapping.setdefault(term, len(mapping)))
        return ("const", str(term))

    definition = view.definition
    head = tuple(term_key(term) for term in definition.head.args)
    body = tuple(
        (atom.predicate, *(term_key(term) for term in atom.args))
        for atom in definition.body
    )
    return (head, body)


def _equivalent_neighbors(
    inputs: CatalogAuditInput, *, duplicates: bool
) -> Iterator:
    """Neighbors containment-equivalent to the audited view.

    ``duplicates`` splits the C102/C104 territories: a neighbor whose
    definition is identical up to variable renaming (:func:`_renaming_key`)
    is a plain duplicate and shadows the view (C104, no containment test
    needed); a neighbor that reaches equivalence only through the
    Chandra-Merlin tests — textually different bodies, e.g. one carrying
    a redundant atom — is the subtler C102 finding.

    Equal predicate signatures are a *necessary* condition for CQ
    equivalence (both containment homomorphisms preserve predicates), so
    the signature prefilter is exact, never just heuristic.
    """
    view = inputs.view
    assert view is not None
    if _has_comparisons(view.definition):
        return
    context = inputs.context
    marker = _marker_definition(view)
    key = _renaming_key(view)
    signature = view.predicate_signature()
    for neighbor in inputs.neighbors:
        if neighbor.arity != view.arity:
            continue
        if _has_comparisons(neighbor.definition):
            continue
        if neighbor.predicate_signature() != signature:
            continue
        is_duplicate = _renaming_key(neighbor) == key
        if is_duplicate != duplicates:
            continue
        if is_duplicate or context.is_equivalent_to(
            marker, _marker_definition(neighbor)
        ):
            yield neighbor


def _pair_fingerprint(
    inputs: CatalogAuditInput, code: str, a: str, b: str
) -> str:
    """An order-free pair fingerprint: stable when the pair swaps roles."""
    return inputs.fingerprint(
        code, *sorted((inputs.view_hash(a), inputs.view_hash(b)))
    )


def _check_equivalent_views(
    inputs: CatalogAuditInput,
) -> Iterator[Diagnostic]:
    view = inputs.view
    assert view is not None
    for neighbor in _equivalent_neighbors(inputs, duplicates=False):
        if not inputs.is_older(neighbor):
            continue  # the pair is reported once, on the later view
        yield RULE_EQUIVALENT_VIEWS.diagnostic(
            f"view {view.name!r} is containment-equivalent to the earlier "
            f"view {neighbor.name!r} despite a different definition; "
            "one of the two adds no rewriting power",
            span=inputs.span_of(view.definition),
            subject=f"view:{view.name}",
            fingerprint=_pair_fingerprint(
                inputs, "C102", view.name, neighbor.name
            ),
        )


RULE_EQUIVALENT_VIEWS = register_rule(
    AnalysisRule(
        code="C102",
        name="equivalent-view-pair",
        description=(
            "Two textually different catalog views are containment-"
            "equivalent; one is redundant."
        ),
        severity=Severity.WARNING,
        family="semantic",
        check=_check_equivalent_views,
        scope="view",
    )
)


# -- C103: unsatisfiable view -------------------------------------------------


def _check_unsatisfiable_view(
    inputs: CatalogAuditInput,
) -> Iterator[Diagnostic]:
    view = inputs.view
    assert view is not None
    for atom, other, reason in contradiction_witnesses(view.definition):
        yield RULE_UNSATISFIABLE_VIEW.diagnostic(
            f"view {view.name!r} is unsatisfiable ({reason}): it is empty "
            "on every database and can never cover a subgoal",
            span=inputs.span_of(atom)
            or (inputs.span_of(other) if other is not None else None)
            or inputs.span_of(view.definition),
            subject=f"view:{view.name}",
            fingerprint=inputs.fingerprint(
                "C103", inputs.view_hash(view.name)
            ),
        )


RULE_UNSATISFIABLE_VIEW = register_rule(
    AnalysisRule(
        code="C103",
        name="unsatisfiable-view",
        description=(
            "A view's body forces a provable constant contradiction; the "
            "view is empty on every database."
        ),
        severity=Severity.ERROR,
        family="structural",
        check=_check_unsatisfiable_view,
        scope="view",
    )
)


# -- C104: shadowed view ------------------------------------------------------


def _check_shadowed_view(inputs: CatalogAuditInput) -> Iterator[Diagnostic]:
    view = inputs.view
    assert view is not None
    newest = None
    for neighbor in _equivalent_neighbors(inputs, duplicates=True):
        if inputs.is_older(neighbor):
            continue  # only *newer* duplicates shadow this view
        newest = neighbor  # neighbors come in registration order
    if newest is None:
        return
    yield RULE_SHADOWED_VIEW.diagnostic(
        f"view {view.name!r} is shadowed: the newer view {newest.name!r} "
        "has an identical definition (up to variable renaming); keep "
        "the newest definition only",
        span=inputs.span_of(view.definition),
        subject=f"view:{view.name}",
        fix=f"drop {view.name}; keep {newest.name} ({newest})",
        # Fingerprint the duplicate *class*, not the (shadowed, newest)
        # pair: with three or more duplicates the pair assignment depends
        # on registration order, while the class itself does not — one
        # baseline entry pins "this duplicate class is accepted".
        fingerprint=inputs.fingerprint("C104", repr(_renaming_key(view))),
    )


RULE_SHADOWED_VIEW = register_rule(
    AnalysisRule(
        code="C104",
        name="shadowed-view",
        description=(
            "A newer view has an identical definition up to variable "
            "renaming; the older view is shadowed."
        ),
        severity=Severity.WARNING,
        family="semantic",
        check=_check_shadowed_view,
        scope="view",
    )
)


# -- C105: unreachable predicate (coverage report) ---------------------------


def _check_unreachable_predicate(
    inputs: CatalogAuditInput,
) -> Iterator[Diagnostic]:
    catalog = inputs.catalog
    indexed = catalog.indexed_predicates()
    for predicate, arity in sorted(indexed):
        exported = False
        for view in catalog.views_for_predicates([(predicate, arity)]):
            if (predicate, arity) not in view.predicate_signature():
                continue  # comparison-only views ride along in the index
            head = set(view.head_variables)
            for atom in view.definition.body:
                if atom.is_comparison or atom.predicate != predicate:
                    continue
                if head.intersection(atom.variable_set()):
                    exported = True
                    break
            if exported:
                break
        if not exported:
            yield RULE_UNREACHABLE_PREDICATE.diagnostic(
                f"base predicate {predicate}/{arity} appears in view bodies "
                "but no view exports any of its join variables; query "
                "subgoals over it can only ever be covered through "
                "existentials",
                subject="catalog",
                fingerprint=inputs.fingerprint(
                    "C105", f"{predicate}/{arity}"
                ),
            )
    for predicate, arity in sorted((inputs.schema or {}).items()):
        if (predicate, int(arity)) not in indexed:
            yield RULE_UNREACHABLE_PREDICATE.diagnostic(
                f"declared base relation {predicate}/{arity} is mentioned "
                "by no view; queries over it cannot be rewritten from this "
                "catalog",
                subject="catalog",
                fingerprint=inputs.fingerprint(
                    "C105", "schema", f"{predicate}/{arity}"
                ),
            )


RULE_UNREACHABLE_PREDICATE = register_rule(
    AnalysisRule(
        code="C105",
        name="unreachable-predicate",
        description=(
            "A base predicate no view usefully exports: the catalog "
            "cannot (or can only opaquely) answer queries over it."
        ),
        severity=Severity.INFO,
        family="structural",
        check=_check_unreachable_predicate,
        scope="catalog",
    )
)


# -- C106: acyclicity classification ------------------------------------------


def _check_cyclic_view(inputs: CatalogAuditInput) -> Iterator[Diagnostic]:
    view = inputs.view
    assert view is not None
    residue = gyo_reduce(view.definition)
    if not residue:
        return  # acyclic views are the quiet common case
    yield RULE_CYCLIC_VIEW.diagnostic(
        f"view {view.name!r} is cyclic: GYO reduction leaves "
        f"{len(residue)} hyperedge(s); join-tree (acyclic fast path) "
        "machinery will not apply to it",
        span=inputs.span_of(view.definition),
        subject=f"view:{view.name}",
        fingerprint=inputs.fingerprint("C106", inputs.view_hash(view.name)),
    )


RULE_CYCLIC_VIEW = register_rule(
    AnalysisRule(
        code="C106",
        name="cyclic-view",
        description=(
            "A view's body hypergraph is not alpha-acyclic (GYO "
            "reduction leaves a cyclic core)."
        ),
        severity=Severity.INFO,
        family="structural",
        check=_check_cyclic_view,
        scope="view",
    )
)
