"""The incremental, content-addressed catalog auditor.

A full audit of an N-view catalog runs every view-scope rule once per
view and every catalog-scope rule once.  The expensive part — pairwise
containment through the planner memos — is confined to each view's
predicate-index neighborhood, but at catalog scale even that is work
worth never repeating.  So the auditor is **incremental by content**:

* each per-view unit of work is cached under a key derived from the
  view's sha256 content hash plus the ``(name, hash, relative-order)``
  signature of its index neighbors — the *entire* input closure of the
  unit.  Any :class:`~repro.views.view.CatalogDelta` therefore
  invalidates exactly the changed views and the views whose neighbor
  signature they appear in, and nothing else;
* catalog-scope (aggregate) units are keyed by the catalog's Merkle
  content root, the strongest whole-catalog content key available;
* the same content keys make results independent of *how* the catalog
  reached its state: auditing after a mutation script equals auditing a
  from-scratch rebuild (the property test in
  ``tests/property/test_audit_equivalence.py`` is the law).

Relative registration order (not absolute sequence numbers) rides in
the unit key because the pair rules attribute findings by age
("reported on the later view", "shadowed by the newest") — and relative
order is exactly what a from-scratch rebuild preserves.

Warm-context economics: pass a
:class:`~repro.parallel.pool.PlannerContextPool` and consecutive audits
acquire their :class:`~repro.planner.context.PlannerContext` through
``acquire_catalog`` — an exact root match or a small-delta upgrade keeps
the memoized containment work; otherwise the auditor keeps one private
persistent context.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import TYPE_CHECKING, Iterable, Mapping, Sequence

from ...datalog.parser import SourceMap
from ...errors import BudgetExceededError, UnsupportedQueryError
from ...views.view import ViewCatalog
from ..diagnostics import AnalysisReport, Diagnostic, Severity
from ..engine import INTERNAL_RULE_FAILURE, _selected
from ..registry import AnalysisRule, available_rules
from ..sarif import result_fingerprint
from .inputs import CatalogAuditInput

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ...parallel.pool import PlannerContextPool
    from ...planner.context import PlannerContext

__all__ = ["AuditReport", "CatalogAuditor", "audit_catalog"]

#: Unit cache key: fully describes one unit's input closure.
_UnitKey = tuple


@dataclass(frozen=True)
class AuditReport(AnalysisReport):
    """An :class:`AnalysisReport` plus the audit's catalog provenance.

    ``views_analyzed``/``views_reused`` split the per-view units into
    freshly computed versus served from the content-keyed cache — after
    a one-view delta, ``views_analyzed`` is exactly the changed view
    plus its index neighbors.  ``suppressed`` counts baseline-matched
    findings dropped from ``diagnostics``.
    """

    catalog_root: str = ""
    catalog_version: int = 0
    views_total: int = 0
    views_analyzed: int = 0
    views_reused: int = 0
    suppressed: int = 0
    #: How the planner context was obtained: ``"exact"``/``"delta"``/
    #: ``"miss"`` (pool events) or ``"private"`` (auditor-owned).
    context_event: str = "private"

    def render_text(self) -> str:
        base = super().render_text()
        summary = (
            f"audited {self.views_total} view(s): "
            f"{self.views_analyzed} analyzed, {self.views_reused} reused "
            f"(catalog v{self.catalog_version}, "
            f"root {self.catalog_root[:12]}...)"
        )
        if self.suppressed:
            summary += f"; {self.suppressed} baseline-suppressed finding(s)"
        return f"{base}\n{summary}"


def _schema_key(schema: Mapping[str, int] | None) -> str:
    if not schema:
        return ""
    rendered = ",".join(
        f"{name}/{arity}" for name, arity in sorted(schema.items())
    )
    return hashlib.sha256(rendered.encode("utf-8")).hexdigest()


def _audit_rules(
    select: Sequence[str] | None, ignore: Sequence[str] | None
) -> tuple[list[AnalysisRule], list[AnalysisRule]]:
    """The selected (view-scope, catalog-scope) audit rules, code order."""
    chosen = [
        rule
        for rule in _selected(available_rules(), select, ignore)
        if rule.scope in ("view", "catalog")
    ]
    view_rules = [rule for rule in chosen if rule.scope == "view"]
    catalog_rules = [rule for rule in chosen if rule.scope == "catalog"]
    return view_rules, catalog_rules


def _run_rules(
    rules: Iterable[AnalysisRule], inputs: CatalogAuditInput, subject: str
) -> tuple[Diagnostic, ...]:
    """Run *rules* over one unit with engine-identical isolation."""
    diagnostics: list[Diagnostic] = []
    for rule in rules:
        try:
            diagnostics.extend(rule.check(inputs))
        except BudgetExceededError:
            raise
        except UnsupportedQueryError:
            continue  # unit outside the rule's fragment: not a finding
        except Exception as error:
            diagnostics.append(
                Diagnostic(
                    code=INTERNAL_RULE_FAILURE,
                    severity=Severity.WARNING,
                    message=(
                        f"rule {rule.code} ({rule.name}) crashed on "
                        f"{subject}: {type(error).__name__}: {error}"
                    ),
                    subject=subject,
                    rule="internal-rule-failure",
                )
            )
    return tuple(diagnostics)


class CatalogAuditor:
    """Audits one (logical) catalog, incrementally across its versions.

    Keep the auditor alive across :class:`~repro.views.view.CatalogDelta`
    mutations — the serve daemon keeps one per registered catalog name —
    and each :meth:`audit` call re-analyzes only the units whose content
    keys changed.  A fresh auditor (the CLI one-shot path) simply
    computes every unit once.
    """

    def __init__(
        self,
        *,
        context: "PlannerContext | None" = None,
        pool: "PlannerContextPool | None" = None,
        select: Sequence[str] | None = None,
        ignore: Sequence[str] | None = None,
    ) -> None:
        self._pool = pool
        self._context = context
        self._select = list(select) if select else None
        self._ignore = list(ignore) if ignore else None
        self._units: dict[_UnitKey, tuple[Diagnostic, ...]] = {}
        self._aggregates: dict[_UnitKey, tuple[Diagnostic, ...]] = {}
        #: Lifetime counters (per-call numbers live on the report).
        self.units_computed = 0
        self.units_reused = 0

    def _acquire_context(
        self, catalog: ViewCatalog
    ) -> tuple["PlannerContext", str]:
        from ...planner.context import PlannerContext

        if self._pool is not None:
            return self._pool.acquire_catalog(catalog, {"role": "audit"})
        if self._context is None:
            self._context = PlannerContext()
        return self._context, "private"

    def audit(
        self,
        catalog: ViewCatalog,
        *,
        schema: Mapping[str, int] | None = None,
        view_spans: SourceMap | None = None,
        baseline: frozenset[str] | None = None,
    ) -> AuditReport:
        """Audit *catalog* as it stands; cached units are not recomputed.

        ``baseline`` is a set of diagnostic fingerprints
        (:func:`~repro.analysis.sarif.result_fingerprint` values) to
        suppress; matches are dropped from the report and tallied in
        ``suppressed``, so ``--fail-on`` gates new findings only.
        """
        context, event = self._acquire_context(catalog)
        view_rules, catalog_rules = _audit_rules(self._select, self._ignore)
        rules_key = tuple(rule.code for rule in view_rules)
        schema_key = _schema_key(schema)
        hashes = dict(catalog.view_hashes())
        order = {name: i for i, name in enumerate(catalog.names())}

        diagnostics: list[Diagnostic] = []
        live_units: dict[_UnitKey, tuple[Diagnostic, ...]] = {}
        analyzed = reused = 0
        with context.stage("audit"):
            for view in catalog:
                neighbors = catalog.index_neighbors(view.name)
                neighbor_sig = tuple(
                    (n.name, hashes[n.name], order[n.name] < order[view.name])
                    for n in neighbors
                )
                key: _UnitKey = (
                    view.name,
                    hashes[view.name],
                    neighbor_sig,
                    rules_key,
                    schema_key,
                )
                cached = self._units.get(key)
                if cached is None:
                    inputs = CatalogAuditInput(
                        view=view,
                        neighbors=neighbors,
                        catalog=catalog,
                        context=context,
                        hashes=hashes,
                        older=frozenset(
                            n.name
                            for n in neighbors
                            if order[n.name] < order[view.name]
                        ),
                        schema=schema,
                        view_spans=view_spans,
                    )
                    cached = _run_rules(
                        view_rules, inputs, f"view:{view.name}"
                    )
                    analyzed += 1
                else:
                    reused += 1
                live_units[key] = cached
                diagnostics.extend(cached)

            live_aggregates: dict[_UnitKey, tuple[Diagnostic, ...]] = {}
            aggregate_inputs = CatalogAuditInput(
                view=None,
                neighbors=(),
                catalog=catalog,
                context=context,
                hashes=hashes,
                schema=schema,
                view_spans=view_spans,
            )
            for rule in catalog_rules:
                key = (rule.code, catalog.content_root(), schema_key)
                cached = self._aggregates.get(key)
                if cached is None:
                    cached = _run_rules(
                        (rule,), aggregate_inputs, "catalog"
                    )
                live_aggregates[key] = cached
                diagnostics.extend(cached)

        # Sweep: only units live in this catalog version stay cached, so
        # the auditor's memory is bounded by the catalog size.
        self._units = live_units
        self._aggregates = live_aggregates
        self.units_computed += analyzed
        self.units_reused += reused

        suppressed = 0
        if baseline:
            kept: list[Diagnostic] = []
            for diagnostic in diagnostics:
                if result_fingerprint(diagnostic) in baseline:
                    suppressed += 1
                else:
                    kept.append(diagnostic)
            diagnostics = kept

        return AuditReport(
            diagnostics=tuple(diagnostics),
            checked=tuple(
                rule.code for rule in (*view_rules, *catalog_rules)
            ),
            catalog_root=catalog.content_root(),
            catalog_version=catalog.version,
            views_total=len(catalog),
            views_analyzed=analyzed,
            views_reused=reused,
            suppressed=suppressed,
            context_event=event,
        )


def audit_catalog(
    views: ViewCatalog | Iterable,
    *,
    context: "PlannerContext | None" = None,
    schema: Mapping[str, int] | None = None,
    select: Sequence[str] | None = None,
    ignore: Sequence[str] | None = None,
    view_spans: SourceMap | None = None,
    baseline: frozenset[str] | None = None,
) -> AuditReport:
    """One-shot audit of *views* (the library-API convenience).

    Accepts a :class:`~repro.views.view.ViewCatalog` or anything its
    constructor accepts.  For incremental re-audits across catalog
    deltas, hold a :class:`CatalogAuditor` instead.
    """
    catalog = (
        views if isinstance(views, ViewCatalog) else ViewCatalog(views)
    )
    auditor = CatalogAuditor(context=context, select=select, ignore=ignore)
    return auditor.audit(
        catalog, schema=schema, view_spans=view_spans, baseline=baseline
    )
