"""``repro.analysis.catalog`` — whole-catalog static analysis (audit).

Where ``repro lint`` analyzes one query against its catalog, ``repro
audit`` analyzes the catalog itself: the ``C1xx`` rules flag subsumed,
equivalent, shadowed, and unsatisfiable views, report base-predicate
coverage, and classify each view's hypergraph acyclicity — all
query-independent hygiene that silently taxes every later planning run.

The audit is incremental: :class:`CatalogAuditor` content-addresses each
per-view unit of work (view hash + index-neighbor signature), so
re-auditing after a :class:`~repro.views.view.CatalogDelta` recomputes
only the changed views and their predicate-index neighbors.  See
``docs/analysis.md`` for the rule catalog and the baseline workflow.
"""

from ...datalog.hypergraph import gyo_reduce, is_acyclic
from .auditor import AuditReport, CatalogAuditor, audit_catalog
from .baseline import load_baseline, write_baseline
from .inputs import CatalogAuditInput

# Importing the rule module registers C101-C106.
from . import rules as _rules  # noqa: F401  (registration side effect)

__all__ = [
    "AuditReport",
    "CatalogAuditInput",
    "CatalogAuditor",
    "audit_catalog",
    "gyo_reduce",
    "is_acyclic",
    "load_baseline",
    "write_baseline",
]
