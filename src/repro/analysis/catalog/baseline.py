"""Audit baselines: gate CI on *new* findings only.

A baseline file is a small JSON document pinning the fingerprints of
known, accepted findings:

.. code-block:: json

    {"version": 1, "fingerprints": {"<sha256>": "C101 view:v2", ...}}

The values are human-readable context only; matching is by key, via
:func:`~repro.analysis.sarif.result_fingerprint`.  Because audit
fingerprints hash view *content* (never registration positions), a
baseline survives catalog reordering, re-registration, and unrelated
edits — it stops pinning a finding exactly when the views involved
change.
"""

from __future__ import annotations

import json
from pathlib import Path

from ...errors import ParseError
from ..diagnostics import AnalysisReport, Diagnostic
from ..sarif import result_fingerprint

__all__ = ["load_baseline", "write_baseline"]

BASELINE_VERSION = 1


def load_baseline(path: str | Path) -> frozenset[str]:
    """The fingerprints pinned by the baseline file at *path*.

    Raises :class:`~repro.errors.ParseError` (EX_DATAERR) when the file
    is missing, unreadable, or not a version-1 baseline document.
    """
    try:
        payload = json.loads(Path(path).read_text(encoding="utf-8"))
    except OSError as error:
        raise ParseError(
            f"cannot read baseline file {path}: {error}"
        ) from error
    except json.JSONDecodeError as error:
        raise ParseError(
            f"baseline file {path} is not valid JSON: {error}"
        ) from error
    if (
        not isinstance(payload, dict)
        or payload.get("version") != BASELINE_VERSION
        or not isinstance(payload.get("fingerprints"), dict)
    ):
        raise ParseError(
            f"baseline file {path} is not a version-{BASELINE_VERSION} "
            'audit baseline (expected {"version": 1, "fingerprints": ...})'
        )
    return frozenset(str(key) for key in payload["fingerprints"])


def _describe(diagnostic: Diagnostic) -> str:
    return f"{diagnostic.code} {diagnostic.subject or 'catalog'}"


def write_baseline(report: AnalysisReport, path: str | Path) -> int:
    """Pin every finding in *report* as the new baseline at *path*.

    Returns the number of fingerprints written.  The document is sorted
    and newline-terminated so regenerating an unchanged baseline is a
    no-op diff.
    """
    fingerprints = {
        result_fingerprint(diagnostic): _describe(diagnostic)
        for diagnostic in report.diagnostics
    }
    document = {
        "version": BASELINE_VERSION,
        "fingerprints": dict(sorted(fingerprints.items())),
    }
    Path(path).write_text(
        json.dumps(document, indent=2, sort_keys=True) + "\n",
        encoding="utf-8",
    )
    return len(fingerprints)
