"""Deprecated re-export: GYO reduction moved to :mod:`repro.datalog.hypergraph`.

The GYO reduction started life here as the C106 audit classifier.  The
planner's acyclic fast path needs the same structure analysis (plus join
trees), so the implementation now lives in
:mod:`repro.datalog.hypergraph` — one implementation shared by the
classifier and the router, so the two can never drift.  This module
re-exports the two original names for existing imports; new code should
import from ``repro.datalog.hypergraph`` directly.
"""

from __future__ import annotations

from ...datalog.hypergraph import gyo_reduce, is_acyclic

__all__ = ["gyo_reduce", "is_acyclic"]
