"""GYO reduction: hypergraph acyclicity of conjunctive queries.

A conjunctive query is **alpha-acyclic** exactly when the GYO (Graham /
Yu-Ozsoyoglu) reduction empties its body hypergraph — the hypergraph
whose vertices are the body variables and whose hyperedges are the
relational atoms' variable sets.  The reduction repeats two moves until
neither applies:

1. delete an *ear vertex* — a variable occurring in exactly one
   hyperedge; and
2. delete a hyperedge contained in another hyperedge (empty edges and
   duplicates included).

Acyclic queries admit much cheaper rewriting machinery (join-tree-driven
cover search instead of the exponential general path — Geck et al.,
"Rewriting with Acyclic Queries: Mind Your Head", PAPERS.md), which is
why the C106 audit rule classifies every catalog view up front.

Comparison atoms are not hyperedges: they constrain but do not join, so
only relational atoms shape the hypergraph — the same convention as the
catalog's predicate-signature index.
"""

from __future__ import annotations

from collections import Counter

from ...datalog.query import ConjunctiveQuery
from ...datalog.terms import Variable

__all__ = ["gyo_reduce", "is_acyclic"]


def gyo_reduce(query: ConjunctiveQuery) -> tuple[frozenset[Variable], ...]:
    """The hyperedges the GYO reduction could **not** eliminate.

    An empty result means *query* is alpha-acyclic; a non-empty result
    is the irreducible cyclic core (every remaining edge participates in
    a cycle witness).  The reduction runs to a fixpoint of the two GYO
    moves, so the result is independent of elimination order (the GYO
    reduction is Church-Rosser).
    """
    edges: list[frozenset[Variable]] = [
        frozenset(atom.variable_set())
        for atom in query.body
        if not atom.is_comparison
    ]
    changed = True
    while changed and edges:
        changed = False
        # Move 1: drop vertices living in exactly one hyperedge.
        occurrences = Counter(v for edge in edges for v in set(edge))
        lonely = {v for v, count in occurrences.items() if count == 1}
        if lonely:
            trimmed = [edge - lonely for edge in edges]
            if trimmed != edges:
                edges = trimmed
                changed = True
        # Move 2: drop any edge contained in another (duplicates count).
        survivors: list[frozenset[Variable]] = []
        for i, edge in enumerate(edges):
            absorbed = any(
                (edge < other) or (edge == other and i > j)
                for j, other in enumerate(edges)
                if i != j
            )
            if not edge or absorbed:
                changed = True
                continue
            survivors.append(edge)
        edges = survivors
    return tuple(edges)


def is_acyclic(query: ConjunctiveQuery) -> bool:
    """Whether *query*'s body hypergraph is alpha-acyclic (GYO-reducible).

    Queries with fewer than two relational atoms are trivially acyclic.
    """
    return not gyo_reduce(query)
