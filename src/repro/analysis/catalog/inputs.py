"""The value object every catalog-audit rule receives.

Audit rules never walk the whole catalog on their own: the incremental
:class:`~repro.analysis.catalog.auditor.CatalogAuditor` hands a
view-scope rule one :class:`CatalogAuditInput` per view — the view, its
predicate-index neighbors (the only views it could possibly interact
with), and the shared :class:`~repro.planner.context.PlannerContext` —
and a catalog-scope rule a single aggregate input (``view`` is
``None``).  Everything a rule reads off this object is part of the
auditor's content-addressed unit key, which is what makes re-audits
after a :class:`~repro.views.view.CatalogDelta` sound.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Mapping

from ...datalog.parser import SourceMap
from ...errors import SourceSpan
from ...views.view import View, ViewCatalog

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ...planner.context import PlannerContext

__all__ = ["CatalogAuditInput"]


@dataclass(frozen=True)
class CatalogAuditInput:
    """Everything one audit rule may inspect for one unit of work."""

    #: The view under audit, or ``None`` for catalog-scope rules.
    view: View | None
    #: The view's predicate-index neighbors, registration order.
    neighbors: tuple[View, ...]
    catalog: ViewCatalog
    context: "PlannerContext"
    #: Per-view content hashes of the audited catalog (name -> sha256).
    hashes: Mapping[str, str] = field(default_factory=dict)
    #: Names of neighbors registered *before* :attr:`view`.
    older: frozenset[str] = frozenset()
    #: Declared base-relation schema: predicate name -> arity.
    schema: Mapping[str, int] | None = None
    #: Span records for the catalog's source text, when it was parsed.
    view_spans: SourceMap | None = None

    def span_of(self, obj: object) -> SourceSpan | None:
        """The recorded source span of a parsed atom or rule, if any."""
        if self.view_spans is not None:
            return self.view_spans.span_for(obj)
        return None

    def is_older(self, neighbor: View) -> bool:
        """Whether *neighbor* was registered before the audited view."""
        return neighbor.name in self.older

    def view_hash(self, name: str) -> str:
        """The content hash of the catalog view *name* (empty if unknown)."""
        return self.hashes.get(name, "")

    def fingerprint(self, code: str, *parts: str) -> str:
        """A stable diagnostic fingerprint over *code* and *parts*.

        Rules pass view **content hashes** (or predicate names), never
        registration positions, so fingerprints survive reordering and
        whole-catalog re-registration — the property SARIF
        ``partialFingerprints`` and ``--baseline`` files rely on.
        """
        return hashlib.sha256(
            "|".join((code, *parts)).encode("utf-8")
        ).hexdigest()
