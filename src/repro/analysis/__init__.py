"""``repro.analysis`` — the rule-based static-analysis (lint) engine.

Statically analyzes a parsed query + view catalog + planner configuration
and emits structured :class:`Diagnostic` records (stable ``R0xx``/``R1xx``
codes, severities, source spans, optional machine-applicable fixes)
*before* any planning budget is spent::

    from repro.analysis import analyze, PlannerConfig

    report = analyze(query, views, config=PlannerConfig(backend="corecover"))
    report.ok            # no error-severity findings
    report.errors        # the hard rejections
    report.render_text() # the `repro lint` text rendering

Three entry points expose it:

* :func:`analyze` — the library API above;
* ``repro lint`` — the CLI subcommand (text or SARIF-shaped JSON output,
  ``--select/--ignore/--fail-on``, exit code 73 on failure);
* ``plan(..., preflight=True)`` — the planner registry's opt-in preflight
  that attaches diagnostics to the :class:`~repro.planner.limits.PlanOutcome`
  and short-circuits on errors.

The sibling catalog-audit layer (``repro audit``, :func:`audit_catalog`,
``C1xx`` rules) analyzes a *view catalog* as a whole, incrementally
across :class:`~repro.views.view.CatalogDelta` mutations; see
``repro.analysis.catalog``.

New rules plug in through :func:`register_rule`, following the same
registry pattern as rewriter backends and cost models; see
``docs/analysis.md`` for the rule catalog and the plugin how-to.
"""

from .diagnostics import AnalysisReport, Diagnostic, Severity
from .engine import analyze
from .inputs import AnalysisInput, PlannerConfig
from .registry import (
    AnalysisRule,
    UnknownRuleError,
    available_rules,
    get_rule,
    register_rule,
    unregister_rule,
)
from .sarif import render_json, result_fingerprint, to_sarif

# Importing the built-in rule modules registers them.
from . import structural as _structural  # noqa: F401  (registration side effect)
from . import semantic as _semantic  # noqa: F401  (registration side effect)

# The catalog-audit layer (C1xx rules, incremental auditor, baselines).
from .catalog import (
    AuditReport,
    CatalogAuditInput,
    CatalogAuditor,
    audit_catalog,
    load_baseline,
    write_baseline,
)

__all__ = [
    "AnalysisInput",
    "AnalysisReport",
    "AnalysisRule",
    "AuditReport",
    "CatalogAuditInput",
    "CatalogAuditor",
    "Diagnostic",
    "PlannerConfig",
    "Severity",
    "UnknownRuleError",
    "analyze",
    "audit_catalog",
    "available_rules",
    "get_rule",
    "load_baseline",
    "register_rule",
    "render_json",
    "result_fingerprint",
    "to_sarif",
    "unregister_rule",
    "write_baseline",
]
