"""``repro.analysis`` — the rule-based static-analysis (lint) engine.

Statically analyzes a parsed query + view catalog + planner configuration
and emits structured :class:`Diagnostic` records (stable ``R0xx``/``R1xx``
codes, severities, source spans, optional machine-applicable fixes)
*before* any planning budget is spent::

    from repro.analysis import analyze, PlannerConfig

    report = analyze(query, views, config=PlannerConfig(backend="corecover"))
    report.ok            # no error-severity findings
    report.errors        # the hard rejections
    report.render_text() # the `repro lint` text rendering

Three entry points expose it:

* :func:`analyze` — the library API above;
* ``repro lint`` — the CLI subcommand (text or SARIF-shaped JSON output,
  ``--select/--ignore/--fail-on``, exit code 73 on failure);
* ``plan(..., preflight=True)`` — the planner registry's opt-in preflight
  that attaches diagnostics to the :class:`~repro.planner.limits.PlanOutcome`
  and short-circuits on errors.

New rules plug in through :func:`register_rule`, following the same
registry pattern as rewriter backends and cost models; see
``docs/analysis.md`` for the rule catalog and the plugin how-to.
"""

from .diagnostics import AnalysisReport, Diagnostic, Severity
from .engine import analyze
from .inputs import AnalysisInput, PlannerConfig
from .registry import (
    AnalysisRule,
    UnknownRuleError,
    available_rules,
    get_rule,
    register_rule,
    unregister_rule,
)
from .sarif import render_json, to_sarif

# Importing the built-in rule modules registers them.
from . import structural as _structural  # noqa: F401  (registration side effect)
from . import semantic as _semantic  # noqa: F401  (registration side effect)

__all__ = [
    "AnalysisInput",
    "AnalysisReport",
    "AnalysisRule",
    "Diagnostic",
    "PlannerConfig",
    "Severity",
    "UnknownRuleError",
    "analyze",
    "available_rules",
    "get_rule",
    "register_rule",
    "render_json",
    "to_sarif",
    "unregister_rule",
]
