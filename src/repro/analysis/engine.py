"""The ``analyze()`` driver: run every selected rule, collect diagnostics.

The engine resolves the rule set from the registry, applies ruff-style
``select``/``ignore`` code prefixes, hands each rule one
:class:`~repro.analysis.inputs.AnalysisInput`, and folds the findings
into an :class:`~repro.analysis.diagnostics.AnalysisReport`.  Rules are
isolated: a rule that raises :class:`~repro.errors.UnsupportedQueryError`
is skipped (the input falls outside its fragment), and any other
unexpected rule crash is downgraded to an ``R900`` warning so one broken
plugin cannot take down preflight.  Budget exhaustion
(:class:`~repro.errors.BudgetExceededError`) always propagates — analysis
under a budgeted context must honor the caller's deadline.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterable, Mapping, Sequence

from ..datalog.parser import SourceMap
from ..datalog.query import ConjunctiveQuery
from ..errors import BudgetExceededError, UnsupportedQueryError
from ..views.view import View, ViewCatalog
from .diagnostics import AnalysisReport, Diagnostic, Severity
from .inputs import AnalysisInput, PlannerConfig
from .registry import AnalysisRule, available_rules

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..planner.context import PlannerContext

__all__ = ["analyze"]

#: Code of the synthetic diagnostic emitted when a rule itself crashes.
INTERNAL_RULE_FAILURE = "R900"


def _selected(
    rules: Iterable[AnalysisRule],
    select: Sequence[str] | None,
    ignore: Sequence[str] | None,
) -> list[AnalysisRule]:
    """Apply ruff-style code-prefix filters to the rule set."""
    chosen = list(rules)
    if select:
        prefixes = tuple(code.strip().upper() for code in select)
        chosen = [r for r in chosen if r.code.upper().startswith(prefixes)]
    if ignore:
        prefixes = tuple(code.strip().upper() for code in ignore)
        chosen = [r for r in chosen if not r.code.upper().startswith(prefixes)]
    return chosen


def analyze(
    query: ConjunctiveQuery,
    views: ViewCatalog | Sequence[View] = (),
    *,
    config: PlannerConfig | None = None,
    context: "PlannerContext | None" = None,
    schema: Mapping[str, int] | None = None,
    select: Sequence[str] | None = None,
    ignore: Sequence[str] | None = None,
    query_spans: SourceMap | None = None,
    view_spans: SourceMap | None = None,
) -> AnalysisReport:
    """Statically analyze *query* + *views* (+ planner *config*).

    Runs every registered :class:`~repro.analysis.registry.AnalysisRule`
    whose code survives the ``select``/``ignore`` prefix filters, in code
    order, and returns the collected
    :class:`~repro.analysis.diagnostics.AnalysisReport`.

    Passing the ``context`` a subsequent :func:`repro.planner.plan` call
    will use shares the memoized containment work between analysis and
    planning (the semantic rules and CoreCover ask many of the same
    homomorphism questions); omitting it gives the analysis a private
    context.  ``schema`` declares base-relation arities for R002;
    ``query_spans``/``view_spans`` (from the parser's ``*_spans`` entry
    points) let diagnostics carry exact source spans.
    """
    from ..planner.context import PlannerContext

    catalog = views if isinstance(views, ViewCatalog) else ViewCatalog(views)
    ctx = context if context is not None else PlannerContext()
    inputs = AnalysisInput(
        query=query,
        views=catalog,
        context=ctx,
        config=config,
        schema=schema,
        query_spans=query_spans,
        view_spans=view_spans,
    )
    # Catalog-audit rules (scope "view"/"catalog") receive a different
    # input object and run under ``repro audit`` (repro.analysis.catalog);
    # lint only ever dispatches the per-query rules.
    rules = [
        rule
        for rule in _selected(available_rules(), select, ignore)
        if rule.scope == "query"
    ]
    diagnostics: list[Diagnostic] = []
    checked: list[str] = []
    with ctx.stage("analyze"):
        for rule in rules:
            checked.append(rule.code)
            try:
                diagnostics.extend(rule.check(inputs))
            except BudgetExceededError:
                raise
            except UnsupportedQueryError:
                continue  # input outside the rule's fragment: not a finding
            except Exception as error:
                diagnostics.append(
                    Diagnostic(
                        code=INTERNAL_RULE_FAILURE,
                        severity=Severity.WARNING,
                        message=(
                            f"rule {rule.code} ({rule.name}) crashed: "
                            f"{type(error).__name__}: {error}"
                        ),
                        subject="engine",
                        rule="internal-rule-failure",
                    )
                )
    return AnalysisReport(
        diagnostics=tuple(diagnostics), checked=tuple(checked)
    )
