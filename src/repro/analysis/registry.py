"""The analysis-rule plugin registry.

Rules follow the same pattern as rewriter backends
(:mod:`repro.planner.registry`) and cost models
(:mod:`repro.cost.registry`): a frozen descriptor registered under a
stable key, resolvable by name, listable, and extendable by third-party
code::

    from repro.analysis import AnalysisRule, register_rule

    def check_shouty_predicates(inputs):
        for atom in inputs.query.body:
            if atom.predicate.isupper():
                yield rule.diagnostic(
                    f"predicate {atom.predicate!r} is all upper-case",
                    span=inputs.span_of(atom),
                )

    rule = register_rule(AnalysisRule(
        code="X100",
        name="shouty-predicates",
        description="Flag all-upper-case predicate names.",
        severity=Severity.INFO,
        family="structural",
        check=check_shouty_predicates,
    ))

Codes must be unique; ``R0xx`` (structural), ``R1xx`` (semantic),
``R9xx`` (engine-internal) and ``C1xx`` (whole-catalog audit) are
reserved for the built-in families, so plugins should pick another
prefix.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Iterable

from ..errors import ReproError, SourceSpan
from .diagnostics import Diagnostic, Severity

__all__ = [
    "AnalysisRule",
    "UnknownRuleError",
    "available_rules",
    "get_rule",
    "register_rule",
    "unregister_rule",
]


class UnknownRuleError(ReproError, LookupError):
    """Raised when a rule code does not resolve."""


@dataclass(frozen=True)
class AnalysisRule:
    """A named, coded diagnostic rule.

    ``check`` receives the input object matching the rule's ``scope``
    and yields (or returns an iterable of) :class:`Diagnostic` records.
    ``severity`` is the rule's default; :meth:`diagnostic` stamps it onto
    findings unless overridden per finding.
    """

    code: str
    name: str
    description: str
    severity: Severity
    #: ``"structural"`` (syntax-level), ``"semantic"`` (uses the planner's
    #: containment machinery), or ``"config"`` (planner configuration).
    family: str
    #: What the rule's ``check`` receives:
    #:
    #: * ``"query"`` (default) — one
    #:   :class:`~repro.analysis.inputs.AnalysisInput`; runs under
    #:   :func:`repro.analysis.analyze` (``repro lint``).
    #: * ``"view"`` — one
    #:   :class:`~repro.analysis.catalog.CatalogAuditInput` per catalog
    #:   view; runs under ``repro audit`` only, as a content-keyed,
    #:   incrementally cached per-view unit.
    #: * ``"catalog"`` — one aggregate
    #:   :class:`~repro.analysis.catalog.CatalogAuditInput` (``view``
    #:   is ``None``); runs under ``repro audit`` only.
    check: Callable[[Any], Iterable[Diagnostic]]
    scope: str = "query"

    def diagnostic(
        self,
        message: str,
        *,
        span: SourceSpan | None = None,
        subject: str = "query",
        severity: Severity | None = None,
        fix: str | None = None,
        fingerprint: str | None = None,
    ) -> Diagnostic:
        """A :class:`Diagnostic` pre-filled with this rule's code and name."""
        return Diagnostic(
            code=self.code,
            severity=self.severity if severity is None else severity,
            message=message,
            span=span,
            subject=subject,
            rule=self.name,
            fix=fix,
            fingerprint=fingerprint,
        )


_RULES: dict[str, AnalysisRule] = {}


def _normalize(code: str) -> str:
    return code.strip().upper()


def register_rule(rule: AnalysisRule, *, replace: bool = False) -> AnalysisRule:
    """Register *rule* under its (normalized) code."""
    key = _normalize(rule.code)
    if not replace and key in _RULES:
        raise ValueError(f"analysis rule {key!r} is already registered")
    _RULES[key] = rule
    return rule


def unregister_rule(code: str) -> None:
    """Remove a rule (primarily for tests unwinding plugin registrations)."""
    _RULES.pop(_normalize(code), None)


def available_rules() -> tuple[AnalysisRule, ...]:
    """Every registered rule, sorted by code."""
    return tuple(rule for _, rule in sorted(_RULES.items()))


def get_rule(code: str) -> AnalysisRule:
    """Resolve a rule by code.

    Raises :class:`UnknownRuleError` listing the registered codes when
    the lookup fails.
    """
    key = _normalize(code)
    rule = _RULES.get(key)
    if rule is None:
        registered = ", ".join(sorted(_RULES)) or "(none)"
        raise UnknownRuleError(
            f"unknown analysis rule {code!r}; registered rules: {registered}"
        )
    return rule
