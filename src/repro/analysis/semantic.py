"""Semantic analysis rules: R101-R104.

These rules reuse the paper's machinery through the shared
:class:`~repro.planner.context.PlannerContext` — memoized containment for
redundant-view detection (Section 5.2's motivation), the canonical
database and view tuples for provably-unusable views (Section 3.3), and
core computation for non-minimal queries (Lemma 4.2) — so an
``analyze()`` followed by a ``plan()`` on the same context pays for the
shared homomorphism searches once.

Queries or views containing built-in comparison atoms fall outside the
Chandra-Merlin fragment those helpers accept; the rules simply skip the
affected inputs (the engine also downgrades a rule-level
:class:`~repro.errors.UnsupportedQueryError` to "rule skipped").
"""

from __future__ import annotations

from typing import Iterator

from ..datalog.atoms import Atom
from ..datalog.query import ConjunctiveQuery
from .diagnostics import Diagnostic, Severity
from .inputs import AnalysisInput
from .registry import AnalysisRule, register_rule

__all__ = [
    "RULE_ACYCLIC_ROUTING",
    "RULE_CONFIG_CONFLICT",
    "RULE_EMPTY_VIEW_TUPLES",
    "RULE_NON_MINIMAL_QUERY",
    "RULE_REDUNDANT_VIEW",
]

#: Head predicate used to compare view *definitions* name-independently,
#: mirroring ``PlannerContext.view_definition_key``.
_VIEWDEF_MARKER = "__viewdef__"


def _has_comparisons(rule: ConjunctiveQuery) -> bool:
    return any(atom.is_comparison for atom in rule.body)


def _marker_definition(view) -> ConjunctiveQuery:
    """The view's definition with its head renamed to a common marker."""
    definition = view.definition
    return ConjunctiveQuery(
        Atom(_VIEWDEF_MARKER, definition.head.args), definition.body
    )


# -- R101: containment-equivalent (redundant) views --------------------------


def _check_redundant_views(inputs: AnalysisInput) -> Iterator[Diagnostic]:
    context = inputs.context
    comparable = [
        view for view in inputs.views if not _has_comparisons(view.definition)
    ]
    # Signature pre-partition (Section 5.2): only structurally compatible
    # definitions can be equivalent, so the quadratic pass stays small.
    groups: dict[tuple, list] = {}
    for view in comparable:
        marker = _marker_definition(view)
        groups.setdefault(marker.signature(), []).append((view, marker))
    for candidates in groups.values():
        representatives: list[tuple] = []
        for view, marker in candidates:
            twin = next(
                (
                    kept_view
                    for kept_view, kept_marker in representatives
                    if context.is_equivalent_to(marker, kept_marker)
                ),
                None,
            )
            if twin is None:
                representatives.append((view, marker))
                continue
            yield RULE_REDUNDANT_VIEW.diagnostic(
                f"view {view.name!r} is containment-equivalent to view "
                f"{twin.name!r}; it adds no rewriting power but bloats "
                "T(Q, V) and the set-cover search (Section 5.2)",
                span=inputs.span_of(view.definition),
                subject=f"view:{view.name}",
            )


RULE_REDUNDANT_VIEW = register_rule(
    AnalysisRule(
        code="R101",
        name="redundant-view",
        description=(
            "Two catalog views have containment-equivalent definitions; "
            "the later one is redundant."
        ),
        severity=Severity.WARNING,
        family="semantic",
        check=_check_redundant_views,
    )
)


# -- R102: views with empty view-tuple sets ----------------------------------


def _check_empty_view_tuples(inputs: AnalysisInput) -> Iterator[Diagnostic]:
    from ..core.view_tuples import view_tuples

    query = inputs.query
    if _has_comparisons(query) or not query.is_safe() or not inputs.views:
        return
    context = inputs.context
    minimized = context.minimize(query)
    canonical = context.canonical_database(minimized)
    # Views outside the minimized query's predicate-relevant set are
    # *provably* empty (no body atom can match a frozen fact), so the
    # index answers for them without evaluating anything; only the
    # relevant ones need their view tuples actually computed.
    relevant = set(inputs.views.relevant_names(minimized))
    for view in inputs.views:
        if _has_comparisons(view.definition):
            continue
        tuples = (
            view_tuples(minimized, [view], canonical, context=context)
            if view.name in relevant
            else []
        )
        if not tuples:
            yield RULE_EMPTY_VIEW_TUPLES.diagnostic(
                f"view {view.name!r} yields no view tuple over the query's "
                "canonical database: by Section 3.3 it cannot occur in any "
                "contained rewriting of this query",
                span=inputs.span_of(view.definition),
                subject=f"view:{view.name}",
            )


RULE_EMPTY_VIEW_TUPLES = register_rule(
    AnalysisRule(
        code="R102",
        name="empty-view-tuples",
        description=(
            "A view's view-tuple set T(Q, {V}) is empty, so the view is "
            "provably unusable for this query."
        ),
        severity=Severity.WARNING,
        family="semantic",
        check=_check_empty_view_tuples,
    )
)


# -- R103: non-minimal query --------------------------------------------------


def _check_non_minimal_query(inputs: AnalysisInput) -> Iterator[Diagnostic]:
    query = inputs.query
    if _has_comparisons(query) or not query.is_safe():
        return
    minimized = inputs.context.minimize(query)
    if len(minimized.body) < len(query.body):
        yield RULE_NON_MINIMAL_QUERY.diagnostic(
            f"query is not minimal: its core has {len(minimized.body)} "
            f"subgoal(s), the query {len(query.body)} (Lemma 4.2); "
            "planning minimizes first, but callers comparing subgoal "
            "counts should use the core",
            span=inputs.span_of(query),
            fix=str(minimized),
        )


RULE_NON_MINIMAL_QUERY = register_rule(
    AnalysisRule(
        code="R103",
        name="non-minimal-query",
        description="The query differs from its core (redundant subgoals).",
        severity=Severity.INFO,
        family="semantic",
        check=_check_non_minimal_query,
    )
)


# -- R105: acyclic fast-path routing ------------------------------------------


def _check_acyclic_routing(inputs: AnalysisInput) -> Iterator[Diagnostic]:
    from ..datalog.hypergraph import gyo_reduce, join_tree

    query = inputs.query
    relational = [atom for atom in query.body if not atom.is_comparison]
    if len(relational) < 2:
        return  # trivially acyclic; routing makes no difference
    if _has_comparisons(query):
        yield RULE_ACYCLIC_ROUTING.diagnostic(
            "query contains comparison atoms, which fall outside the body "
            "hypergraph: plan() keeps every homomorphism search on the "
            "general backtracking path",
            span=inputs.span_of(query),
        )
        return
    residue = gyo_reduce(query)
    if not residue:
        tree = join_tree(query)
        depth = tree.depth if tree is not None else 0
        yield RULE_ACYCLIC_ROUTING.diagnostic(
            "query body hypergraph is alpha-acyclic: plan() routes "
            "homomorphism searches through the join-tree-guided fast "
            f"path (join-tree depth {depth}); pass "
            "--no-acyclic-fast-path to force the general path",
            span=inputs.span_of(query),
        )
    else:
        core = "; ".join(
            "{" + ", ".join(sorted(str(v) for v in edge)) + "}"
            for edge in residue
        )
        yield RULE_ACYCLIC_ROUTING.diagnostic(
            "query body hypergraph is cyclic, so plan() uses the general "
            "backtracking path; irreducible cyclic core (GYO residue): "
            f"{core}",
            span=inputs.span_of(query),
        )


RULE_ACYCLIC_ROUTING = register_rule(
    AnalysisRule(
        code="R105",
        name="acyclic-routing",
        description=(
            "Report whether the planner's acyclic fast path will engage "
            "for this query (and the irreducible cyclic core when not)."
        ),
        severity=Severity.INFO,
        family="semantic",
        check=_check_acyclic_routing,
    )
)


# -- R104: planner-configuration conflicts -----------------------------------

#: Backends whose result pipeline tracks the intermediate/GSR information
#: the M3 attribute-drop annotators consume.
_GSR_TRACKING_BACKENDS = frozenset({"corecover", "corecover-star"})


def _check_config_conflicts(inputs: AnalysisInput) -> Iterator[Diagnostic]:
    config = inputs.config
    if config is None:
        return
    from ..cost.registry import UnknownCostModelError, get_cost_model
    from ..planner.registry import UnknownBackendError, get_backend

    backend = None
    if config.backend is not None:
        try:
            backend = get_backend(config.backend)
        except UnknownBackendError as error:
            yield RULE_CONFIG_CONFLICT.diagnostic(
                str(error), subject="config"
            )
    model = None
    if config.cost_model is not None:
        try:
            model = get_cost_model(config.cost_model)
        except UnknownCostModelError as error:
            yield RULE_CONFIG_CONFLICT.diagnostic(
                str(error), subject="config"
            )
    if model is None:
        return
    if backend is not None and not backend.produces_rewritings:
        yield RULE_CONFIG_CONFLICT.diagnostic(
            f"backend {backend.name!r} emits a maximally-contained program, "
            f"not equivalent rewritings; cost model {model.name!r} has "
            "nothing to rank",
            subject="config",
        )
    elif (
        model.name == "m3"
        and backend is not None
        and backend.name not in _GSR_TRACKING_BACKENDS
    ):
        yield RULE_CONFIG_CONFLICT.diagnostic(
            f"cost model 'm3' prices attribute drops against generalized "
            f"supplementary relations, which backend {backend.name!r} does "
            "not track; use corecover/corecover-star or fall back to 'm2'",
            subject="config",
            severity=Severity.WARNING,
        )
    if model.needs_data and not (config.has_database or config.has_statistics):
        yield RULE_CONFIG_CONFLICT.diagnostic(
            f"cost model {model.name!r} needs a materialized view database "
            "or a statistics catalog, but the configuration supplies "
            "neither",
            subject="config",
            severity=Severity.ERROR,
        )


RULE_CONFIG_CONFLICT = register_rule(
    AnalysisRule(
        code="R104",
        name="config-conflict",
        description=(
            "The planner configuration is inconsistent (unknown names, "
            "backend/cost-model mismatch, or missing cost-model data)."
        ),
        severity=Severity.ERROR,
        family="config",
        check=_check_config_conflicts,
    )
)
