"""Command-line interface.

Subcommands::

    python -m repro rewrite  "q(X) :- e(X, X)" --views views.dl [--certify]
    python -m repro optimize "q(X) :- e(X, X)" --views views.dl --data db.json
    python -m repro certain  "q(X) :- e(X, X)" --views views.dl --view-data v.json
    python -m repro figures fig6a [--full] [--csv DIR]

* ``rewrite`` runs a rewriting algorithm (CoreCover by default) and
  prints the rewritings it generates; ``--certify`` re-verifies the
  result from first principles.
* ``optimize`` additionally loads a base database (JSON: relation name to
  list of rows), materializes the views, and prints the cost-optimal
  physical plan under the chosen cost model (``--explain`` for a step
  table).
* ``certain`` computes certain answers from a *view* instance with the
  inverse-rules algorithm (no equivalent rewriting required).
* ``figures`` regenerates the Section 7 experiment series (delegates to
  :mod:`repro.experiments.figures`).

Queries can be given inline or as ``@path/to/file``; view files contain
one datalog rule per line (``#``/``%`` comments allowed).
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import Sequence

from .baselines import bucket_algorithm, certain_answers, minicon
from .core import certify, core_cover, core_cover_star, naive_gmr_search
from .cost import (
    best_rewriting_m2,
    explain_plan,
    improve_with_filters,
    optimal_plan_m3,
)
from .datalog import ConjunctiveQuery, parse_program, parse_query
from .datalog.sql import SqlSchema, parse_sql
from .engine import Database, evaluate, materialize_views
from .views import ViewCatalog


def _load_text(value: str) -> str:
    if value.startswith("@"):
        return Path(value[1:]).read_text()
    return value


def _load_query(value: str, sql_schema: str | None = None) -> ConjunctiveQuery:
    """Parse a query given as datalog, or as SQL when a schema is supplied.

    ``sql_schema`` is a path to a JSON file mapping table names to ordered
    column-name lists.
    """
    text = _load_text(value).strip()
    if sql_schema is None:
        return parse_query(text)
    schema = SqlSchema(json.loads(Path(sql_schema).read_text()))
    return parse_sql(text, schema)


def _load_views(path: str) -> ViewCatalog:
    return ViewCatalog(parse_program(Path(path).read_text()))


def _load_database(path: str) -> Database:
    payload = json.loads(Path(path).read_text())
    database = Database()
    for name, rows in payload.items():
        if not rows:
            raise SystemExit(
                f"relation {name!r} is empty; arity cannot be inferred"
            )
        for row in rows:
            database.add_fact(name, tuple(row))
    return database


def _cmd_rewrite(args: argparse.Namespace) -> int:
    query = _load_query(args.query, args.sql_schema)
    views = _load_views(args.views)

    if args.algorithm == "corecover":
        result = core_cover(query, views)
        rewritings = result.rewritings
    elif args.algorithm == "corecover-star":
        result = core_cover_star(query, views, max_rewritings=args.limit)
        rewritings = result.rewritings
    elif args.algorithm == "naive":
        result = None
        rewritings = naive_gmr_search(query, views)
    elif args.algorithm == "minicon":
        result = None
        rewritings = minicon(
            query, views, require_equivalent=True, max_rewritings=args.limit
        ).contained_rewritings
    elif args.algorithm == "bucket":
        result = None
        rewritings = bucket_algorithm(query, views).equivalent_rewritings
    else:  # pragma: no cover - argparse restricts choices
        raise SystemExit(f"unknown algorithm {args.algorithm!r}")

    print(f"query: {query}")
    if not rewritings:
        print("no equivalent rewriting exists for this query and view set")
        return 1
    print(f"{len(rewritings)} rewriting(s):")
    for rewriting in rewritings:
        print("   ", rewriting)
    if result is not None and args.certify:
        certificate = certify(result, views, verify_minimality=True)
        print(certificate)
        if not certificate.ok:
            return 3
    if result is not None and args.verbose:
        print("\nview tuples:")
        for core in result.cores:
            print("   ", core)
        if result.filter_candidates:
            print("filter candidates:",
                  ", ".join(str(f) for f in result.filter_candidates))
        stats = result.stats
        print(
            f"stats: {stats.total_views} views in {stats.view_classes} "
            f"classes; {stats.total_view_tuples} view tuples in "
            f"{stats.view_tuple_classes} classes; "
            f"{stats.elapsed_seconds * 1000:.1f} ms"
        )
    return 0


def _cmd_optimize(args: argparse.Namespace) -> int:
    query = _load_query(args.query, args.sql_schema)
    views = _load_views(args.views)
    base = _load_database(args.data)
    view_db = materialize_views(views, base)

    result = core_cover_star(query, views, max_rewritings=args.limit)
    if not result.rewritings:
        print("no equivalent rewriting exists for this query and view set")
        return 1

    if args.model == "m1":
        best = min(result.rewritings, key=lambda r: len(r.body))
        print(f"M1-optimal rewriting ({len(best.body)} subgoals):")
        print("   ", best)
        return 0

    if args.model == "m2":
        best = best_rewriting_m2(result.rewritings, view_db)
        if args.filters:
            best = improve_with_filters(
                best.rewriting, result.filter_candidates, view_db
            )
        print(f"M2-optimal rewriting (cost {best.cost:g}):")
        print("    rewriting:", best.rewriting)
        print("    plan     :", best.plan)
    else:  # m3
        candidates = [
            optimal_plan_m3(r, query, views, view_db, args.annotator)
            for r in result.rewritings
            if len(r.body) <= 8
        ]
        best = min(candidates, key=lambda plan: plan.cost)
        print(f"M3-optimal rewriting (cost {best.cost:g}, "
              f"{args.annotator} drops):")
        print("    rewriting:", best.rewriting)
        print("    plan     :", best.plan)

    if args.explain:
        print()
        print(explain_plan(best))
    expected = evaluate(query, base)
    answer = best.execution.answer
    print(f"    answer   : {len(answer)} tuples "
          f"({'matches' if answer == expected else 'MISMATCH with'} "
          "the query on base data)")
    return 0 if answer == expected else 2


def _cmd_certain(args: argparse.Namespace) -> int:
    """Certain answers from a view instance via the inverse-rules algorithm."""
    query = _load_query(args.query, args.sql_schema)
    views = _load_views(args.views)
    view_db = _load_database(args.view_data)
    answers = sorted(certain_answers(query, views, view_db), key=repr)
    print(f"query: {query}")
    print(f"{len(answers)} certain answer(s):")
    for row in answers:
        print("   ", row)
    return 0


def _cmd_figures(args: argparse.Namespace) -> int:
    from .experiments import figures

    forwarded = [args.figure]
    if args.full:
        forwarded.append("--full")
    if args.queries:
        forwarded.extend(["--queries", str(args.queries)])
    if args.csv:
        forwarded.extend(["--csv", args.csv])
    return figures.main(forwarded)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Generating Efficient Plans for Queries Using Views "
            "(Li/Afrati/Ullman, SIGMOD 2001) - reproduction CLI"
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)

    rewrite = sub.add_parser("rewrite", help="generate equivalent rewritings")
    rewrite.add_argument("query", help="datalog rule or @file")
    rewrite.add_argument("--views", required=True, help="datalog program file")
    rewrite.add_argument(
        "--algorithm",
        choices=["corecover", "corecover-star", "naive", "minicon", "bucket"],
        default="corecover",
    )
    rewrite.add_argument("--limit", type=int, default=64,
                         help="cap on enumerated rewritings")
    rewrite.add_argument("--verbose", action="store_true",
                         help="print tuple-cores and statistics")
    rewrite.add_argument(
        "--sql-schema", metavar="JSON", default=None,
        help="treat the query as SQL, with this table->columns schema file",
    )
    rewrite.add_argument(
        "--certify", action="store_true",
        help="re-verify the result from first principles (exit 3 on failure)",
    )
    rewrite.set_defaults(func=_cmd_rewrite)

    optimize = sub.add_parser(
        "optimize", help="pick a cost-optimal rewriting and plan"
    )
    optimize.add_argument("query", help="datalog rule or @file")
    optimize.add_argument("--views", required=True)
    optimize.add_argument("--data", required=True,
                          help="JSON file: relation -> list of rows")
    optimize.add_argument("--model", choices=["m1", "m2", "m3"], default="m2")
    optimize.add_argument(
        "--annotator", choices=["supplementary", "heuristic"],
        default="heuristic", help="M3 attribute-drop strategy",
    )
    optimize.add_argument("--filters", action="store_true",
                          help="try adding filtering subgoals (M2)")
    optimize.add_argument("--limit", type=int, default=32)
    optimize.add_argument("--sql-schema", metavar="JSON", default=None,
                          help="treat the query as SQL with this schema file")
    optimize.add_argument("--explain", action="store_true",
                          help="print an EXPLAIN-style step table")
    optimize.set_defaults(func=_cmd_optimize)

    certain = sub.add_parser(
        "certain",
        help="certain answers from a view instance (inverse rules)",
    )
    certain.add_argument("query", help="datalog rule or @file")
    certain.add_argument("--views", required=True)
    certain.add_argument("--view-data", required=True,
                         help="JSON file: view relation -> list of rows")
    certain.add_argument("--sql-schema", metavar="JSON", default=None)
    certain.set_defaults(func=_cmd_certain)

    figures = sub.add_parser("figures", help="regenerate Section 7 figures")
    figures.add_argument("figure", help="fig6a..fig9b or 'all'")
    figures.add_argument("--full", action="store_true")
    figures.add_argument("--queries", type=int, default=None)
    figures.add_argument("--csv", metavar="DIR", default=None)
    figures.set_defaults(func=_cmd_figures)

    return parser


def main(argv: Sequence[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
