"""Command-line interface.

Subcommands::

    python -m repro rewrite  "q(X) :- e(X, X)" --views views.dl [--certify]
    python -m repro optimize "q(X) :- e(X, X)" --views views.dl --data db.json
    python -m repro certain  "q(X) :- e(X, X)" --views views.dl --view-data v.json
    python -m repro lint     "q(X) :- e(X, X)" --views views.dl [--format json]
    python -m repro audit    views.dl [--format json] [--baseline audit.json]
    python -m repro batch    requests.ndjson --views views.dl [--cache DIR]
                             [--workers N] [--profile]
    python -m repro serve run  --views views.dl [--port N] [--cache DIR]
    python -m repro serve send requests.ndjson --port N
    python -m repro faults   list [--format json]
    python -m repro figures fig6a [--full] [--csv DIR]

* ``rewrite`` runs a rewriting backend (CoreCover by default) and prints
  the rewritings it generates; ``--certify`` re-verifies the result from
  first principles.  Backends are resolved by name from the
  :mod:`repro.planner.registry`, so ``--backend`` accepts anything
  registered there (including ``inverse-rules``, which prints the
  maximally-contained program's inverse rules instead of rewritings).
* ``optimize`` additionally loads a base database (JSON: relation name to
  list of rows), materializes the views, and prints the cost-optimal
  physical plan under the chosen cost model (``--explain`` for a step
  table).  Cost models come from the :mod:`repro.cost.registry`.
* ``certain`` computes certain answers from a *view* instance with the
  inverse-rules algorithm (no equivalent rewriting required).
* ``lint`` runs the :mod:`repro.analysis` static-analysis rules over the
  query, view catalog, and planner configuration without planning
  anything.  ``--format json`` emits the SARIF-shaped report; diagnostics
  at or above ``--fail-on`` exit with code 73
  (:class:`repro.errors.AnalysisError`).  ``rewrite`` and ``optimize``
  accept ``--preflight`` to run the same rules before planning and stop
  on error-severity findings.
* ``audit`` runs the whole-catalog ``C1xx`` rules
  (:mod:`repro.analysis.catalog`) over a view file alone — no query:
  subsumed/equivalent/shadowed/unsatisfiable views, base-predicate
  coverage, acyclicity classification.  Same ``--format``,
  ``--select/--ignore``, and ``--fail-on`` contract as ``lint``;
  ``--baseline FILE`` suppresses previously accepted findings (matched
  by content fingerprint) so CI gates on *new* findings only, and
  ``--update-baseline`` regenerates the file from the current findings.
* ``batch`` runs the :mod:`repro.service` resilient executor over
  NDJSON requests (one JSON object per line; ``-`` reads stdin) and
  emits one JSON outcome per line: status, attempts, backend used,
  breaker states, degraded flag.  Failures never abort the batch; the
  process exit code summarizes them afterwards.  ``--workers N`` fans
  the batch across the :mod:`repro.parallel` process pool (outcomes
  stay in input order); ``--profile`` attaches a phase-level profile to
  every outcome line.  ``plan`` is an alias of ``rewrite``.
* ``serve`` is the resident planning daemon (:mod:`repro.serve`):
  ``serve run`` listens on TCP/Unix for newline-delimited JSON plan
  requests (batch schema plus ``catalog``/``tenant``), with bounded
  admission, per-tenant rate limits, heartbeat-supervised workers, and
  a graceful SIGTERM drain (clean drain exits 0; shed requests carry
  exit code 78, drain-time rejections 79).  ``serve send`` is the
  matching client; like ``batch``, its exit status reflects the final
  failure's taxonomy code.
* ``faults`` introspects the deterministic fault-injection harness;
  ``faults list`` enumerates every registered injection point, so chaos
  tests and docs cannot silently drift from the registry.
* ``figures`` regenerates the Section 7 experiment series (delegates to
  :mod:`repro.experiments.figures`).

``--algorithm`` and ``--model`` still work as deprecated aliases for
``--backend`` and ``--cost-model``.  As a convenience, ``python -m repro
"q(X) :- ..." --views v.dl --backend minicon`` (no subcommand) is treated
as ``rewrite``.

Queries can be given inline or as ``@path/to/file``; view files contain
one datalog rule per line (``#``/``%`` comments allowed).
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time
from pathlib import Path
from typing import Sequence

from .baselines import certain_answers
from .core import CoreCoverResult, certify
from .cost import explain_plan, improve_with_filters
from .datalog import ConjunctiveQuery, parse_program, parse_query
from .datalog.sql import SqlSchema, parse_sql
from .engine import Database, evaluate, materialize_views
from .errors import AnalysisError, ParseError, ReproError, structured_error
from .planner import (
    PlanStatus,
    ResourceBudget,
    get_backend,
    plan,
)
from .views import ViewCatalog

#: Subcommand names, used by the ``--backend``-without-subcommand shortcut.
_SUBCOMMANDS = (
    "rewrite", "plan", "optimize", "certain", "lint", "audit", "batch",
    "faults", "figures", "serve",
)


def _load_text(value: str) -> str:
    if value.startswith("@"):
        return Path(value[1:]).read_text()
    return value


def _load_query(value: str, sql_schema: str | None = None) -> ConjunctiveQuery:
    """Parse a query given as datalog, or as SQL when a schema is supplied.

    ``sql_schema`` is a path to a JSON file mapping table names to ordered
    column-name lists.
    """
    text = _load_text(value).strip()
    if sql_schema is None:
        return parse_query(text)
    schema = SqlSchema(json.loads(Path(sql_schema).read_text()))
    return parse_sql(text, schema)


def _load_views(path: str) -> ViewCatalog:
    return ViewCatalog(parse_program(Path(path).read_text()))


def _load_database(path: str) -> Database:
    payload = json.loads(Path(path).read_text())
    database = Database()
    for name, rows in payload.items():
        if not rows:
            raise SystemExit(
                f"relation {name!r} is empty; arity cannot be inferred"
            )
        for row in rows:
            database.add_fact(name, tuple(row))
    return database


def _build_budget(args: argparse.Namespace) -> ResourceBudget | None:
    """A ResourceBudget from the CLI flags, or ``None`` when none are set."""
    if (
        args.timeout is None
        and args.max_hom_searches is None
        and args.max_rewritings is None
    ):
        return None
    return ResourceBudget(
        deadline_seconds=args.timeout,
        max_hom_searches=args.max_hom_searches,
        max_rewritings=args.max_rewritings,
        strict=args.strict_budget,
    )


def _add_budget_flags(command: argparse.ArgumentParser) -> None:
    command.add_argument(
        "--timeout", type=float, default=None, metavar="SECONDS",
        help="wall-clock deadline; on expiry the best-so-far rewritings "
             "found are printed (anytime mode)",
    )
    command.add_argument(
        "--max-hom-searches", type=int, default=None, metavar="N",
        help="cap on homomorphism searches before giving up",
    )
    command.add_argument(
        "--max-rewritings", type=int, default=None, metavar="N",
        help="stop after N rewritings have been recorded",
    )
    command.add_argument(
        "--strict-budget", action="store_true",
        help="raise on budget exhaustion instead of degrading to "
             "best-so-far results (exit 69)",
    )


def _split_codes(values) -> list[str] | None:
    """Flatten repeatable, comma-separated ``--select``/``--ignore`` values."""
    if not values:
        return None
    codes = [code.strip() for chunk in values for code in chunk.split(",")]
    return [code for code in codes if code]


def _handle_preflight(planned, *, verbose: bool) -> int | None:
    """Print preflight diagnostics; the exit code when planning was rejected."""
    from .planner import PlanStatus

    outcome = planned.outcome
    if outcome is None or not outcome.diagnostics:
        return None
    if outcome.status is PlanStatus.REJECTED:
        print("preflight rejected the input:")
        for diagnostic in outcome.diagnostics:
            print("   ", diagnostic)
        if verbose:
            _print_planner_stats(planned.stats)
        errors = [d for d in outcome.diagnostics if d.severity.name == "ERROR"]
        rejection = AnalysisError(
            f"preflight rejected the input with {len(errors)} "
            "error-severity diagnostic(s)",
            diagnostics=tuple(outcome.diagnostics),
        )
        print(structured_error(rejection), file=sys.stderr)
        return AnalysisError.exit_code
    # Clean-enough preflight: surface the advisories without polluting the
    # machine-readable result stream.
    for diagnostic in outcome.diagnostics:
        print(f"preflight: {diagnostic}", file=sys.stderr)
    return None


def _print_planner_stats(stats) -> None:
    """Render a PlannerStats snapshot (``--verbose`` output)."""
    print(
        f"planner: {stats.hom_searches} homomorphism searches "
        f"({stats.hom_nodes} nodes, {stats.fast_path_searches} on the "
        f"acyclic fast path), "
        f"{stats.core_searches} tuple-core searches; "
        f"cache {stats.cache_hits} hits / {stats.cache_misses} misses "
        f"({stats.cache_hit_rate:.0%} hit rate, "
        f"caching {'on' if stats.caching_enabled else 'off'})"
    )
    for name, seconds in stats.stages:
        print(f"    stage {name}: {seconds * 1000:.1f} ms")


def _print_routing_line(planned) -> None:
    """One ``--profile`` line summarizing the acyclic-routing decision."""
    stats = planned.stats
    details = getattr(planned, "details", None)
    cc_stats = details.stats if isinstance(details, CoreCoverResult) else None
    if cc_stats is not None and cc_stats.acyclic_fast_path:
        depth = (
            f"join-tree depth {cc_stats.join_tree_depth}"
            if cc_stats.join_tree_depth >= 0
            else "minimized core is cyclic"
        )
        state = f"on ({depth})"
    elif stats.fast_path_searches:
        state = "on"
    else:
        state = "off"
    print(
        f"acyclic fast path: {state}; "
        f"{stats.fast_path_searches}/{stats.hom_searches} searches guided, "
        f"{stats.hom_nodes} search nodes"
    )


def _cmd_rewrite(args: argparse.Namespace) -> int:
    parse_started = time.perf_counter()
    query = _load_query(args.query, args.sql_schema)
    parse_seconds = time.perf_counter() - parse_started
    views = _load_views(args.views)
    backend = get_backend(args.backend)

    options: dict = {}
    if backend.name == "corecover-star":
        options["max_rewritings"] = args.limit
    elif backend.name == "minicon":
        options["require_equivalent"] = True
        options["max_rewritings"] = args.limit

    planned = plan(
        query, views, backend=backend.name, budget=_build_budget(args),
        preflight=args.preflight,
        acyclic_fast_path=args.acyclic_fast_path, **options,
    )

    rejected = _handle_preflight(planned, verbose=args.verbose)
    if rejected is not None:
        return rejected
    if args.profile:
        from .profiling import profile_from_stages

        print(
            profile_from_stages(
                planned.stats.stages, parse_seconds=parse_seconds
            ).render_text()
        )
        _print_routing_line(planned)
    print(f"query: {query}")
    outcome = planned.outcome
    if outcome is not None and outcome.status is not PlanStatus.COMPLETE:
        if outcome.status is PlanStatus.BUDGET_EXHAUSTED:
            print(
                f"budget exhausted ({outcome.exhausted_resource}) after "
                f"{outcome.elapsed_seconds:.3f}s; best-so-far results:"
            )
        else:
            print(
                f"planning failed "
                f"({type(outcome.error).__name__}: {outcome.error}) after "
                f"{outcome.elapsed_seconds:.3f}s; best-so-far results:",
            )
            print(structured_error(outcome.error), file=sys.stderr)
        for anytime in outcome.rewritings:
            tag = "certified" if anytime.certified else "uncertified"
            print(f"    [{tag}] {anytime.query}")
        if args.verbose:
            _print_planner_stats(planned.stats)
        return 0 if outcome.certified_rewritings else 1
    if not backend.produces_rewritings:
        rules = planned.details
        print(f"{len(rules)} inverse rule(s) (maximally-contained program):")
        for rule in rules:
            print("   ", rule)
        if args.verbose:
            _print_planner_stats(planned.stats)
        return 0

    rewritings = planned.rewritings
    if not rewritings:
        print("no equivalent rewriting exists for this query and view set")
        return 1
    print(f"{len(rewritings)} rewriting(s):")
    for rewriting in rewritings:
        print("   ", rewriting)

    result = planned.details if isinstance(planned.details, CoreCoverResult) else None
    if result is not None and args.certify:
        certificate = certify(result, views, verify_minimality=True)
        print(certificate)
        if not certificate.ok:
            return 3
    if args.verbose:
        if result is not None:
            print("\nview tuples:")
            for core in result.cores:
                print("   ", core)
            if result.filter_candidates:
                print("filter candidates:",
                      ", ".join(str(f) for f in result.filter_candidates))
            stats = result.stats
            print(
                f"stats: {stats.total_views} views in {stats.view_classes} "
                f"classes; {stats.total_view_tuples} view tuples in "
                f"{stats.view_tuple_classes} classes; "
                f"{stats.elapsed_seconds * 1000:.1f} ms"
            )
        _print_planner_stats(planned.stats)
    return 0


def _cmd_optimize(args: argparse.Namespace) -> int:
    query = _load_query(args.query, args.sql_schema)
    views = _load_views(args.views)
    base = _load_database(args.data)
    view_db = materialize_views(views, base)

    cost_options = {}
    if args.cost_model == "m3":
        cost_options["annotator"] = args.annotator
    planned = plan(
        query,
        views,
        backend="corecover-star",
        cost_model=args.cost_model,
        database=view_db,
        cost_options=cost_options,
        max_rewritings=args.limit,
        budget=_build_budget(args),
        preflight=args.preflight,
    )
    rejected = _handle_preflight(planned, verbose=args.verbose)
    if rejected is not None:
        return rejected
    outcome = planned.outcome
    if outcome is not None and outcome.status is not PlanStatus.COMPLETE:
        reason = (
            f"budget exhausted ({outcome.exhausted_resource})"
            if outcome.status is PlanStatus.BUDGET_EXHAUSTED
            else f"planning failed ({type(outcome.error).__name__})"
        )
        print(
            f"{reason} after {outcome.elapsed_seconds:.3f}s; "
            f"{len(outcome.certified_rewritings)} certified rewriting(s) "
            "found but no cost-based choice was made"
        )
        for rewriting in outcome.certified_rewritings:
            print("    [certified]", rewriting)
        return 1
    if not planned.rewritings:
        print("no equivalent rewriting exists for this query and view set")
        return 1
    best = planned.chosen
    if best is None:
        print("no rewriting is plannable under the chosen cost model")
        return 1
    result = planned.details

    model = planned.cost_model
    if model == "m1":
        print(f"M1-optimal rewriting ({len(best.rewriting.body)} subgoals):")
        print("   ", best.rewriting)
        if args.verbose:
            _print_planner_stats(planned.stats)
        return 0

    if model == "m2" and args.filters:
        best = improve_with_filters(
            best.rewriting, result.filter_candidates, view_db
        )
    label = model.upper()
    suffix = f", {args.annotator} drops" if model == "m3" else ""
    print(f"{label}-optimal rewriting (cost {best.cost:g}{suffix}):")
    print("    rewriting:", best.rewriting)
    print("    plan     :", best.plan)

    if args.explain:
        print()
        print(explain_plan(best))
    if args.verbose:
        _print_planner_stats(planned.stats)
    expected = evaluate(query, base)
    answer = best.execution.answer
    print(f"    answer   : {len(answer)} tuples "
          f"({'matches' if answer == expected else 'MISMATCH with'} "
          "the query on base data)")
    return 0 if answer == expected else 2


def _cmd_certain(args: argparse.Namespace) -> int:
    """Certain answers from a view instance via the inverse-rules algorithm."""
    query = _load_query(args.query, args.sql_schema)
    views = _load_views(args.views)
    view_db = _load_database(args.view_data)
    answers = sorted(certain_answers(query, views, view_db), key=repr)
    print(f"query: {query}")
    print(f"{len(answers)} certain answer(s):")
    for row in answers:
        print("   ", row)
    return 0


def _cmd_lint(args: argparse.Namespace) -> int:
    """Static analysis of a query + view catalog + planner configuration."""
    from .analysis import PlannerConfig, Severity, analyze, render_json
    from .datalog.parser import parse_program_spans, parse_query_spans

    if args.sql_schema is not None:
        # SQL input has no datalog source spans; lint the translated query.
        query = _load_query(args.query, args.sql_schema)
        query_spans = None
    else:
        query, query_spans = parse_query_spans(_load_text(args.query).strip())
    views: ViewCatalog = ViewCatalog()
    view_spans = None
    if args.views is not None:
        rules, view_spans = parse_program_spans(Path(args.views).read_text())
        views = ViewCatalog(rules)
    schema = (
        json.loads(Path(args.schema).read_text())
        if args.schema is not None
        else None
    )
    config = None
    if args.backend is not None or args.cost_model is not None:
        config = PlannerConfig(
            backend=args.backend,
            cost_model=args.cost_model,
            has_database=args.with_data,
            has_statistics=args.with_data,
        )
    report = analyze(
        query,
        views,
        config=config,
        schema=schema,
        select=_split_codes(args.select),
        ignore=_split_codes(args.ignore),
        query_spans=query_spans,
        view_spans=view_spans,
    )
    if args.format == "json":
        print(render_json(report))
    else:
        print(report.render_text())
    if args.fail_on == "never":
        return 0
    threshold = Severity.from_name(args.fail_on)
    offending = report.at_least(threshold)
    if offending:
        # Raising (rather than returning the code) routes through
        # main()'s taxonomy handler, so ``repro lint`` failures carry
        # the same structured one-line JSON on stderr as every other
        # taxonomy error.
        raise AnalysisError(
            f"{len(offending)} diagnostic(s) at or above "
            f"{args.fail_on} severity",
            diagnostics=tuple(offending),
        )
    return 0


def _cmd_audit(args: argparse.Namespace) -> int:
    """Whole-catalog static analysis (the C1xx audit rules)."""
    from .analysis import Severity, render_json
    from .analysis.catalog import (
        CatalogAuditor,
        load_baseline,
        write_baseline,
    )
    from .datalog.parser import parse_program_spans

    rules, view_spans = parse_program_spans(Path(args.views).read_text())
    views = ViewCatalog(rules)
    schema = (
        json.loads(Path(args.schema).read_text())
        if args.schema is not None
        else None
    )
    auditor = CatalogAuditor(
        select=_split_codes(args.select),
        ignore=_split_codes(args.ignore),
    )
    if args.update_baseline:
        if args.baseline is None:
            raise ParseError("--update-baseline requires --baseline FILE")
        # Regenerate from the *unsuppressed* findings: pinning through an
        # existing baseline would silently drop still-present findings.
        report = auditor.audit(views, schema=schema, view_spans=view_spans)
        count = write_baseline(report, args.baseline)
        print(
            f"baseline {args.baseline}: pinned {count} finding(s) "
            f"from {report.views_total} view(s)"
        )
        return 0
    baseline = (
        load_baseline(args.baseline) if args.baseline is not None else None
    )
    report = auditor.audit(
        views, schema=schema, view_spans=view_spans, baseline=baseline
    )
    if args.format == "json":
        print(
            render_json(
                report,
                views_source=args.views,
                driver_name="repro-audit",
            )
        )
    else:
        print(report.render_text())
    if args.fail_on == "never":
        return 0
    threshold = Severity.from_name(args.fail_on)
    offending = report.at_least(threshold)
    if offending:
        # Same contract as lint: raising routes through main()'s taxonomy
        # handler -> exit 73 + structured one-line JSON on stderr.
        raise AnalysisError(
            f"catalog audit: {len(offending)} diagnostic(s) at or above "
            f"{args.fail_on} severity"
            + (
                f" ({report.suppressed} baseline-suppressed)"
                if report.suppressed
                else ""
            ),
            diagnostics=tuple(offending),
        )
    return 0


def _cmd_batch(args: argparse.Namespace) -> int:
    """Supervised NDJSON batch execution over the failover chain."""
    from .service import (
        BreakerPolicy,
        PlanCache,
        ResilientExecutor,
        RetryPolicy,
        ServicePolicy,
        parse_requests,
        run_batch,
    )

    views = _load_views(args.views)
    chain = tuple(
        name.strip() for name in args.chain.split(",") if name.strip()
    )
    policy = ServicePolicy(
        chain=chain,
        retry=RetryPolicy(
            max_attempts=args.max_attempts,
            base_delay=args.retry_base_delay,
        ),
        breaker=BreakerPolicy(
            window=args.breaker_window,
            failure_threshold=args.breaker_threshold,
            cooldown_seconds=args.breaker_cooldown,
        ),
    )
    if args.requests == "-":
        lines = sys.stdin.read().splitlines()
    else:
        lines = Path(args.requests).read_text().splitlines()
    requests = parse_requests(lines, views, default_budget=_build_budget(args))

    engine = None
    if args.workers != 1:
        # 0 = auto (one worker per CPU).  The engine materializes and
        # validates every request before the first outcome; the serial
        # path below streams outcomes until an intake error aborts it.
        from .parallel import ParallelPlanningEngine, ParallelPolicy

        engine = ParallelPlanningEngine(
            policy,
            parallel=ParallelPolicy(
                workers=None if args.workers == 0 else args.workers,
                task_grace_seconds=args.task_grace,
            ),
            cache_dir=args.cache,
            cache_ttl=args.cache_ttl,
            strict_cache=args.strict_cache,
            profile=args.profile,
        )
        outcomes = engine.run(requests)
    else:
        cache = None
        if args.cache is not None:
            cache = PlanCache(
                args.cache,
                ttl_seconds=args.cache_ttl,
                strict=args.strict_cache,
            )
        executor = ResilientExecutor(
            policy, cache=cache, profile=args.profile
        )
        outcomes = run_batch(executor, requests)

    counts = {"ok": 0, "degraded": 0, "failed": 0}
    last_error: BaseException | None = None
    for outcome in outcomes:
        counts[outcome.status] += 1
        if outcome.error is not None:
            last_error = outcome.error
        if args.format == "json":
            print(json.dumps(outcome.to_json()))
        else:
            print(
                f"{outcome.request_id}: {outcome.status} "
                f"backend={outcome.backend_used or '-'} "
                f"attempts={outcome.attempts} cache={outcome.cache} "
                f"degraded={str(outcome.degraded).lower()} "
                f"rewritings={len(outcome.rewritings)}"
            )
            for rewriting in outcome.rewritings:
                print("   ", rewriting)
    if engine is not None and engine.fell_back_to_serial:
        print(
            f"batch: ran in-process ({engine.fallback_reason})",
            file=sys.stderr,
        )
    if engine is not None and args.profile:
        # One JSON line so scripts can read the warm-context economics:
        # exact root matches, small-delta upgrades, and cold starts.
        print(
            json.dumps(
                {
                    "context_pool": {
                        "hits": engine.pool_hits,
                        "delta_hits": engine.pool_delta_hits,
                        "misses": engine.pool_misses,
                    }
                }
            ),
            file=sys.stderr,
        )
    print(
        f"batch: {counts['ok']} ok, {counts['degraded']} degraded, "
        f"{counts['failed']} failed",
        file=sys.stderr,
    )
    if last_error is not None:
        # Outcome lines were all emitted; the exit status reflects the
        # batch's *final* failure mode through the taxonomy handler —
        # e.g. 75 (circuit open) when the chain ended up breaker-open,
        # which tells the operator "back off and retry later".
        raise last_error
    return 0


def _cmd_serve_run(args: argparse.Namespace) -> int:
    """Run the resident planning daemon until drained (SIGTERM/drain)."""
    import asyncio

    from .errors import ParseError
    from .parallel import SupervisorPolicy
    from .parallel.worker import WorkerConfig
    from .serve import AdmissionPolicy, PlanningDaemon, ServeConfig
    from .service import BreakerPolicy, RetryPolicy, ServicePolicy
    from .testing.faults import fault_from_spec, inject

    views = _load_views(args.views) if args.views is not None else None
    chain = tuple(
        name.strip() for name in args.chain.split(",") if name.strip()
    )
    policy = ServicePolicy(
        chain=chain,
        retry=RetryPolicy(max_attempts=args.max_attempts),
        breaker=BreakerPolicy(cooldown_seconds=args.breaker_cooldown),
    )
    tenant_rates: dict[str, float] = {}
    for spec in args.tenant_rate_override or ():
        name, sep, rate = spec.partition("=")
        if not sep or not name:
            raise ParseError(
                f"--tenant-rate-override {spec!r} must be NAME=RATE"
            )
        try:
            tenant_rates[name] = float(rate)
        except ValueError:
            raise ParseError(
                f"--tenant-rate-override {spec!r}: rate must be a number"
            ) from None
    config = ServeConfig(
        host=args.host,
        port=args.port,
        unix_socket=args.unix_socket,
        admission=AdmissionPolicy(
            max_queue_depth=args.max_queue_depth,
            tenant_rate=args.tenant_rate,
            tenant_burst=args.tenant_burst,
            tenant_rates=tenant_rates,
        ),
        supervisor=SupervisorPolicy(
            workers=args.workers,
            pool_size=args.pool_size,
            heartbeat_interval=args.heartbeat_interval,
            heartbeat_grace=args.heartbeat_grace,
            recycle_after_requests=args.recycle_after,
            max_rss_bytes=(
                int(args.max_rss_mb * 1024 * 1024)
                if args.max_rss_mb is not None
                else None
            ),
            task_grace_seconds=args.task_grace,
            default_task_timeout=args.task_timeout,
        ),
        worker=WorkerConfig(
            policy=policy,
            cache_dir=args.cache,
            cache_ttl=args.cache_ttl,
            strict_cache=args.strict_cache,
            profile=args.profile,
            pool_size=args.pool_size,
        ),
        default_budget=_build_budget(args),
        drain_deadline=args.drain_deadline,
        audit_fail_on=(
            None if args.audit_fail_on == "never" else args.audit_fail_on
        ),
        state_dir=args.state_dir,
        snapshot_every=args.snapshot_every,
    )

    def _on_ready(daemon: "PlanningDaemon") -> None:
        address = daemon.address
        payload: dict = {"event": "ready", "pid": os.getpid()}
        if address is not None and address[0] == "unix":
            payload["path"] = address[1]
        elif address is not None:
            payload["host"], payload["port"] = address[1], address[2]
        print(json.dumps(payload), flush=True)

    daemon = PlanningDaemon(
        config, default_catalog=views, on_ready=_on_ready
    )
    try:
        faults = tuple(fault_from_spec(spec) for spec in args.chaos or ())
    except ValueError as exc:
        raise ParseError(str(exc)) from None
    if faults:
        with inject(*faults):
            code = asyncio.run(daemon.run())
    else:
        code = asyncio.run(daemon.run())
    print(
        json.dumps(
            {
                "event": "drained",
                "exit_code": code,
                "report": daemon.drain_report,
                "cache_entries": daemon.cache_entries_flushed,
                "checkpoint": daemon.final_checkpoint,
                "durability": daemon.catalogs.durability_stats(),
            }
        ),
        flush=True,
    )
    return code


def _cmd_serve_send(args: argparse.Namespace) -> int:
    """Send NDJSON frames to a running daemon; batch-style exit codes."""
    from .errors import ParseError
    from .serve.client import RetryBackoff, ServeClient
    from .serve.protocol import error_from_payload

    retry_codes: frozenset[int] = frozenset()
    if args.retry_on:
        try:
            retry_codes = frozenset(
                int(part) for part in args.retry_on.split(",") if part.strip()
            )
        except ValueError:
            raise ParseError(
                f"--retry-on {args.retry_on!r} must be comma-separated "
                "exit codes (e.g. 78,79)"
            ) from None
    backoff = RetryBackoff(base=args.retry_base)
    if args.requests == "-":
        lines = sys.stdin.read().splitlines()
    else:
        lines = Path(args.requests).read_text().splitlines()
    counts = {"ok": 0, "degraded": 0, "failed": 0, "error": 0, "control": 0}
    retries_total = 0
    last_error: ReproError | None = None
    with ServeClient(
        args.host,
        args.port,
        unix_socket=args.unix_socket,
        timeout=args.client_timeout,
    ) as client:
        for number, line in enumerate(lines, start=1):
            stripped = line.strip()
            if not stripped:
                continue
            try:
                payload = json.loads(stripped)
            except json.JSONDecodeError as exc:
                raise ParseError(
                    f"request line {number}: invalid JSON: {exc}"
                ) from None
            if retry_codes:
                response, retries = client.request_with_retry(
                    payload,
                    retry_on=retry_codes,
                    max_retries=args.retry_max,
                    backoff=backoff,
                )
                retries_total += retries
            else:
                response = client.request(payload)
            status = str(response.get("status", ""))
            if args.format == "json":
                print(json.dumps(response))
            else:
                print(f"{response.get('id')}: {status or 'response'}")
            # Classify by what we *sent*, not just the status string: a
            # healthz/stats answer echoes the daemon's ladder rung
            # ("degraded", "draining", ...), which must not pollute the
            # plan-outcome counters.
            is_plan = str(payload.get("type", "plan")) == "plan"
            if status == "error":
                counts["error"] += 1
                error = response.get("error")
                if isinstance(error, dict):
                    last_error = error_from_payload(error)
            elif is_plan and status in ("ok", "degraded", "failed"):
                counts[status] += 1
            else:
                counts["control"] += 1
    summary = (
        f"serve send: {counts['ok']} ok, {counts['degraded']} degraded, "
        f"{counts['failed']} failed, {counts['error']} error, "
        f"{counts['control']} control"
    )
    if retries_total:
        summary += f", {retries_total} retried"
    print(summary, file=sys.stderr)
    if last_error is not None:
        # Mirror batch semantics: all responses were printed; the exit
        # status reflects the *final* failure through the taxonomy
        # handler (e.g. 78 when the daemon shed the last request, 79
        # when it was draining).
        raise last_error
    return 0


def _cmd_faults(args: argparse.Namespace) -> int:
    """Introspection of the fault-injection registry."""
    from .testing.faults import describe_injection_points

    pairs = describe_injection_points()
    if args.format == "json":
        print(
            json.dumps(
                {
                    "injection_points": [
                        {"point": point, "description": description}
                        for point, description in pairs
                    ]
                },
                indent=2,
            )
        )
    else:
        width = max(len(point) for point, _ in pairs)
        for point, description in pairs:
            print(f"{point:<{width}}  {description}")
    return 0


def _cmd_figures(args: argparse.Namespace) -> int:
    from .experiments import figures

    forwarded = [args.figure]
    if args.full:
        forwarded.append("--full")
    if args.queries:
        forwarded.extend(["--queries", str(args.queries)])
    if args.csv:
        forwarded.extend(["--csv", args.csv])
    if args.workers != 1:
        forwarded.extend(["--workers", str(args.workers)])
    return figures.main(forwarded)


class _DeprecatedAlias(argparse.Action):
    """Stores the value like ``store`` but notes the preferred spelling."""

    def __init__(self, option_strings, dest, preferred: str = "", **kwargs):
        self.preferred = preferred
        super().__init__(option_strings, dest, **kwargs)

    def __call__(self, parser, namespace, values, option_string=None):
        print(
            f"note: {option_string} is deprecated; use {self.preferred}",
            file=sys.stderr,
        )
        setattr(namespace, self.dest, values)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Generating Efficient Plans for Queries Using Views "
            "(Li/Afrati/Ullman, SIGMOD 2001) - reproduction CLI"
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def _add_rewrite_arguments(command: argparse.ArgumentParser) -> None:
        command.add_argument("query", help="datalog rule or @file")
        command.add_argument(
            "--views", required=True, help="datalog program file"
        )
        command.add_argument(
            "--backend", default="corecover", metavar="NAME",
            help="rewriter backend (see repro.planner.available_backends())",
        )
        command.add_argument(
            "--algorithm", dest="backend", metavar="NAME",
            action=_DeprecatedAlias, preferred="--backend",
            help="(deprecated) alias for --backend",
        )
        command.add_argument("--limit", type=int, default=64,
                             help="cap on enumerated rewritings")
        command.add_argument(
            "--verbose", action="store_true",
            help="print tuple-cores, cache and timing statistics",
        )
        command.add_argument(
            "--sql-schema", metavar="JSON", default=None,
            help="treat the query as SQL, with this table->columns "
                 "schema file",
        )
        command.add_argument(
            "--certify", action="store_true",
            help="re-verify the result from first principles "
                 "(exit 3 on failure)",
        )
        command.add_argument(
            "--preflight", action="store_true",
            help="run the repro.analysis lint rules before planning; "
                 "error-severity findings abort with exit 73",
        )
        command.add_argument(
            "--profile", action="store_true",
            help="print the phase-level profile (parse through "
                 "cost ranking) before the results",
        )
        command.add_argument(
            "--no-acyclic-fast-path", dest="acyclic_fast_path",
            action="store_false",
            help="disable the join-tree-guided homomorphism engine; "
                 "every search runs on the general backtracking path "
                 "(results are identical either way)",
        )
        _add_budget_flags(command)
        command.set_defaults(func=_cmd_rewrite)

    rewrite = sub.add_parser("rewrite", help="generate equivalent rewritings")
    _add_rewrite_arguments(rewrite)

    plan_cmd = sub.add_parser(
        "plan", help="alias of 'rewrite' (generate equivalent rewritings)"
    )
    _add_rewrite_arguments(plan_cmd)

    optimize = sub.add_parser(
        "optimize", help="pick a cost-optimal rewriting and plan"
    )
    optimize.add_argument("query", help="datalog rule or @file")
    optimize.add_argument("--views", required=True)
    optimize.add_argument("--data", required=True,
                          help="JSON file: relation -> list of rows")
    optimize.add_argument(
        "--cost-model", default="m2", metavar="NAME",
        help="cost model (see repro.cost.available_cost_models())",
    )
    optimize.add_argument(
        "--model", dest="cost_model", metavar="NAME",
        action=_DeprecatedAlias, preferred="--cost-model",
        help="(deprecated) alias for --cost-model",
    )
    optimize.add_argument(
        "--annotator", choices=["supplementary", "heuristic"],
        default="heuristic", help="M3 attribute-drop strategy",
    )
    optimize.add_argument("--filters", action="store_true",
                          help="try adding filtering subgoals (M2)")
    optimize.add_argument("--limit", type=int, default=32)
    optimize.add_argument("--verbose", action="store_true",
                          help="print cache and timing statistics")
    optimize.add_argument("--sql-schema", metavar="JSON", default=None,
                          help="treat the query as SQL with this schema file")
    optimize.add_argument("--explain", action="store_true",
                          help="print an EXPLAIN-style step table")
    optimize.add_argument(
        "--preflight", action="store_true",
        help="run the repro.analysis lint rules before planning; "
             "error-severity findings abort with exit 73",
    )
    _add_budget_flags(optimize)
    optimize.set_defaults(func=_cmd_optimize)

    certain = sub.add_parser(
        "certain",
        help="certain answers from a view instance (inverse rules)",
    )
    certain.add_argument("query", help="datalog rule or @file")
    certain.add_argument("--views", required=True)
    certain.add_argument("--view-data", required=True,
                         help="JSON file: view relation -> list of rows")
    certain.add_argument("--sql-schema", metavar="JSON", default=None)
    certain.set_defaults(func=_cmd_certain)

    lint = sub.add_parser(
        "lint",
        help="static analysis of a query, view catalog, and planner config",
    )
    lint.add_argument("query", help="datalog rule or @file")
    lint.add_argument("--views", default=None, help="datalog program file")
    lint.add_argument(
        "--schema", metavar="JSON", default=None,
        help="declared arities: JSON file mapping predicate -> arity "
             "(enables the R002 arity checks)",
    )
    lint.add_argument(
        "--format", choices=["text", "json"], default="text",
        help="output format: human-readable text or SARIF-shaped JSON",
    )
    lint.add_argument(
        "--select", action="append", metavar="CODES", default=None,
        help="run only these rule codes/prefixes (comma-separated, "
             "repeatable), e.g. --select R0 --select R103",
    )
    lint.add_argument(
        "--ignore", action="append", metavar="CODES", default=None,
        help="skip these rule codes/prefixes (comma-separated, repeatable)",
    )
    lint.add_argument(
        "--fail-on", choices=["error", "warning", "info", "never"],
        default="error",
        help="exit 73 when a diagnostic at or above this severity is "
             "emitted (default: error)",
    )
    lint.add_argument(
        "--backend", default=None, metavar="NAME",
        help="planner backend to validate the configuration against",
    )
    lint.add_argument(
        "--cost-model", default=None, metavar="NAME",
        help="cost model to validate the configuration against",
    )
    lint.add_argument(
        "--with-data", action="store_true",
        help="declare that a database/statistics catalog will be supplied "
             "(silences the R104 missing-data check)",
    )
    lint.add_argument("--sql-schema", metavar="JSON", default=None,
                      help="treat the query as SQL with this schema file")
    lint.set_defaults(func=_cmd_lint)

    audit = sub.add_parser(
        "audit",
        help="whole-catalog static analysis of a view file (C1xx rules)",
    )
    audit.add_argument(
        "views", help="datalog program file (the view catalog to audit)"
    )
    audit.add_argument(
        "--schema", metavar="JSON", default=None,
        help="declared base relations: JSON file mapping predicate -> "
             "arity (enables the C105 unmentioned-relation checks)",
    )
    audit.add_argument(
        "--format", choices=["text", "json"], default="text",
        help="output format: human-readable text or SARIF-shaped JSON",
    )
    audit.add_argument(
        "--select", action="append", metavar="CODES", default=None,
        help="run only these rule codes/prefixes (comma-separated, "
             "repeatable), e.g. --select C1 --select C103",
    )
    audit.add_argument(
        "--ignore", action="append", metavar="CODES", default=None,
        help="skip these rule codes/prefixes (comma-separated, repeatable)",
    )
    audit.add_argument(
        "--fail-on", choices=["error", "warning", "info", "never"],
        default="error",
        help="exit 73 when a diagnostic at or above this severity "
             "survives baseline suppression (default: error)",
    )
    audit.add_argument(
        "--baseline", metavar="FILE", default=None,
        help="suppress findings whose content fingerprints this JSON "
             "baseline pins (gate on new findings only)",
    )
    audit.add_argument(
        "--update-baseline", action="store_true",
        help="regenerate --baseline FILE from the current findings "
             "and exit 0",
    )
    audit.set_defaults(func=_cmd_audit)

    batch = sub.add_parser(
        "batch",
        help="resilient NDJSON batch execution (retry, breakers, failover)",
    )
    batch.add_argument(
        "requests",
        help="NDJSON request file (one JSON object per line), or - for stdin",
    )
    batch.add_argument("--views", required=True, help="datalog program file")
    batch.add_argument(
        "--chain", default="corecover,bucket,naive", metavar="NAMES",
        help="comma-separated backend failover chain "
             "(default: corecover,bucket,naive)",
    )
    batch.add_argument(
        "--max-attempts", type=int, default=3, metavar="N",
        help="planning attempts per backend before failing over",
    )
    batch.add_argument(
        "--retry-base-delay", type=float, default=0.05, metavar="SECONDS",
        help="first backoff ceiling; doubles per attempt with full jitter",
    )
    batch.add_argument(
        "--breaker-window", type=int, default=10, metavar="N",
        help="sliding outcome window per backend circuit breaker",
    )
    batch.add_argument(
        "--breaker-threshold", type=float, default=0.5, metavar="RATE",
        help="failure rate at which a breaker opens",
    )
    batch.add_argument(
        "--breaker-cooldown", type=float, default=30.0, metavar="SECONDS",
        help="seconds an open breaker waits before a half-open trial",
    )
    batch.add_argument(
        "--cache", metavar="DIR", default=None,
        help="crash-safe on-disk plan cache directory (checksummed, "
             "content-addressed entries)",
    )
    batch.add_argument(
        "--cache-ttl", type=float, default=None, metavar="SECONDS",
        help="entries older than this are stale: skipped on the normal "
             "path, served with degraded=true when all backends are down",
    )
    batch.add_argument(
        "--strict-cache", action="store_true",
        help="raise on cache corruption (exit 76) instead of treating "
             "corrupt entries as misses",
    )
    batch.add_argument(
        "--format", choices=["json", "text"], default="json",
        help="outcome rendering: NDJSON (default) or human-readable text",
    )
    batch.add_argument(
        "--workers", type=int, default=1, metavar="N",
        help="worker processes for the parallel planning engine "
             "(default 1 = in-process; 0 = one per CPU)",
    )
    batch.add_argument(
        "--task-grace", type=float, default=5.0, metavar="SECONDS",
        help="extra seconds past a request's deadline before its worker "
             "is declared dead (exit 77 outcome for that request)",
    )
    batch.add_argument(
        "--profile", action="store_true",
        help="attach a phase-level profile object to every outcome line",
    )
    _add_budget_flags(batch)
    batch.set_defaults(func=_cmd_batch)

    serve = sub.add_parser(
        "serve",
        help="the resident planning daemon (run) and its client (send)",
    )
    serve_sub = serve.add_subparsers(dest="serve_command", required=True)

    serve_run = serve_sub.add_parser(
        "run",
        help="run the supervised planning daemon until drained "
             "(SIGTERM or a drain message; clean drain exits 0)",
    )
    serve_run.add_argument(
        "--views", default=None,
        help="datalog program file used as the default catalog "
             "(tenants may also register named catalogs over the wire)",
    )
    serve_run.add_argument("--host", default="127.0.0.1")
    serve_run.add_argument(
        "--port", type=int, default=0, metavar="N",
        help="TCP port (0 = ephemeral; the bound port is announced in "
             "the ready line on stdout)",
    )
    serve_run.add_argument(
        "--unix-socket", metavar="PATH", default=None,
        help="listen on a Unix socket instead of TCP",
    )
    serve_run.add_argument(
        "--workers", type=int, default=2, metavar="N",
        help="supervised worker processes (heartbeat-monitored, "
             "restarted on crash/hang)",
    )
    serve_run.add_argument(
        "--pool-size", type=int, default=4, metavar="N",
        help="warm planner-context pool entries per worker",
    )
    serve_run.add_argument(
        "--max-queue-depth", type=int, default=64, metavar="N",
        help="bounded intake queue; beyond this requests shed with "
             "OverloadError (exit 78) and a retry_after hint",
    )
    serve_run.add_argument(
        "--tenant-rate", type=float, default=None, metavar="RPS",
        help="default per-tenant token-bucket rate (requests/second)",
    )
    serve_run.add_argument(
        "--tenant-burst", type=float, default=8.0, metavar="N",
        help="token-bucket burst size per tenant",
    )
    serve_run.add_argument(
        "--tenant-rate-override", action="append", metavar="NAME=RATE",
        default=None,
        help="per-tenant rate override (repeatable; 0 blocks the tenant)",
    )
    serve_run.add_argument(
        "--heartbeat-interval", type=float, default=0.25, metavar="SECONDS",
        help="worker heartbeat stamp/sweep cadence",
    )
    serve_run.add_argument(
        "--heartbeat-grace", type=float, default=2.0, metavar="SECONDS",
        help="a heartbeat older than this marks the worker hung",
    )
    serve_run.add_argument(
        "--recycle-after", type=int, default=None, metavar="N",
        help="retire each worker after serving N requests",
    )
    serve_run.add_argument(
        "--max-rss-mb", type=float, default=None, metavar="MB",
        help="retire a worker whose resident set crosses this size",
    )
    serve_run.add_argument(
        "--task-grace", type=float, default=5.0, metavar="SECONDS",
        help="extra seconds past a request's deadline before its worker "
             "is declared hung",
    )
    serve_run.add_argument(
        "--task-timeout", type=float, default=None, metavar="SECONDS",
        help="timeout for requests without their own deadline",
    )
    serve_run.add_argument(
        "--drain-deadline", type=float, default=10.0, metavar="SECONDS",
        help="seconds a graceful drain may spend settling in-flight work "
             "before aborting the remainder with ShuttingDownError",
    )
    serve_run.add_argument(
        "--chain", default="corecover,bucket,naive", metavar="NAMES",
        help="comma-separated backend failover chain",
    )
    serve_run.add_argument(
        "--max-attempts", type=int, default=3, metavar="N",
        help="planning attempts per backend before failing over",
    )
    serve_run.add_argument(
        "--breaker-cooldown", type=float, default=30.0, metavar="SECONDS",
        help="seconds an open breaker waits before a half-open trial",
    )
    serve_run.add_argument(
        "--cache", metavar="DIR", default=None,
        help="shared crash-safe plan cache directory (flushed on drain)",
    )
    serve_run.add_argument(
        "--cache-ttl", type=float, default=None, metavar="SECONDS",
    )
    serve_run.add_argument("--strict-cache", action="store_true")
    serve_run.add_argument(
        "--profile", action="store_true",
        help="attach phase profiles to outcomes and aggregate them "
             "in the stats message",
    )
    serve_run.add_argument(
        "--audit-fail-on", choices=["error", "warning", "info", "never"],
        default="never", metavar="SEVERITY",
        help="audit every catalog register/update (C1xx rules) and "
             "reject it with a structured AnalysisError (client exit 73) "
             "when findings reach this severity (default: never)",
    )
    serve_run.add_argument(
        "--state-dir", metavar="DIR", default=None,
        help="durable catalog state: a checksummed write-ahead journal "
             "plus compacted snapshots; named catalogs registered over "
             "the wire are recovered on the next start (root-verified; "
             "corrupt content is quarantined with exit 80)",
    )
    serve_run.add_argument(
        "--snapshot-every", type=int, default=64, metavar="N",
        help="journaled catalog operations between compacted snapshots "
             "(durable mode only)",
    )
    serve_run.add_argument(
        "--chaos", action="append", metavar="SPEC", default=None,
        help="deterministic fault injection, e.g. "
             "kill:worker_dispatch:after=10 or "
             "stall:serve_admission:seconds=0.2 (repeatable; "
             "chaos testing only)",
    )
    _add_budget_flags(serve_run)
    serve_run.set_defaults(func=_cmd_serve_run)

    serve_send = serve_sub.add_parser(
        "send",
        help="send NDJSON frames to a running daemon "
             "(plan requests, catalog registration, healthz/stats/drain)",
    )
    serve_send.add_argument(
        "requests",
        help="NDJSON frame file (one JSON object per line), or - for stdin",
    )
    serve_send.add_argument("--host", default="127.0.0.1")
    serve_send.add_argument("--port", type=int, default=None, metavar="N")
    serve_send.add_argument(
        "--unix-socket", metavar="PATH", default=None,
    )
    serve_send.add_argument(
        "--client-timeout", type=float, default=60.0, metavar="SECONDS",
        help="socket timeout per response",
    )
    serve_send.add_argument(
        "--format", choices=["json", "text"], default="json",
        help="response rendering: NDJSON (default) or one-line text",
    )
    serve_send.add_argument(
        "--retry-on", metavar="CODES", default=None,
        help="comma-separated error exit codes to retry with backoff, "
             "honoring the server's retry_after hint "
             "(e.g. 78,79 rides out load sheds and drains)",
    )
    serve_send.add_argument(
        "--retry-max", type=int, default=5, metavar="N",
        help="retries per request before giving up (default 5)",
    )
    serve_send.add_argument(
        "--retry-base", type=float, default=0.05, metavar="SECONDS",
        help="exponential backoff base used when no retry_after hint "
             "rides on the error (delay = base * 2^attempt, capped)",
    )
    serve_send.set_defaults(func=_cmd_serve_send)

    faults = sub.add_parser(
        "faults", help="fault-injection harness introspection"
    )
    faults.add_argument("action", choices=["list"],
                        help="'list' enumerates registered injection points")
    faults.add_argument(
        "--format", choices=["text", "json"], default="text",
        help="output format",
    )
    faults.set_defaults(func=_cmd_faults)

    figures = sub.add_parser("figures", help="regenerate Section 7 figures")
    figures.add_argument("figure", help="fig6a..fig9b or 'all'")
    figures.add_argument("--full", action="store_true")
    figures.add_argument("--queries", type=int, default=None)
    figures.add_argument("--csv", metavar="DIR", default=None)
    figures.add_argument(
        "--workers", type=int, default=1, metavar="N",
        help="worker processes for the sweep (0 = one per CPU)",
    )
    figures.set_defaults(func=_cmd_figures)

    return parser


def main(argv: Sequence[str] | None = None) -> int:
    argv = list(sys.argv[1:] if argv is None else argv)
    # Convenience: a query with --backend/--algorithm but no subcommand is
    # a rewrite, so `python -m repro "q(X) :- ..." --views v --backend b`
    # works directly.
    if (
        argv
        and argv[0] not in _SUBCOMMANDS
        and not argv[0].startswith("-")
        and ("--backend" in argv or "--algorithm" in argv)
    ):
        argv = ["rewrite", *argv]
    args = build_parser().parse_args(argv)
    try:
        return args.func(args)
    except ReproError as error:
        # The taxonomy maps to distinct nonzero exit codes; stderr gets a
        # one-line machine-readable rendering.
        print(structured_error(error), file=sys.stderr)
        return error.exit_code


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
