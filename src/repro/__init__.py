"""repro — Generating Efficient Plans for Queries Using Views.

A faithful, from-scratch reproduction of Li, Afrati & Ullman (SIGMOD
2001): equivalent rewritings of conjunctive queries using materialized
views under the closed-world assumption, the CoreCover / CoreCover*
algorithms, the M1/M2/M3 cost models, and the Section 6 attribute-drop
heuristic — plus the substrates they need (datalog data model,
Chandra-Merlin containment, an in-memory relational engine, workload
generators) and the MiniCon/Bucket baselines.

Quickstart::

    from repro import parse_query, ViewCatalog, core_cover

    query = parse_query("q(X, Y) :- a(X, Z), a(Z, Z), b(Z, Y)")
    views = ViewCatalog([
        "v1(A, B) :- a(A, B), a(B, B)",
        "v2(C, D) :- a(C, E), b(C, D)",
    ])
    result = core_cover(query, views)
    for rewriting in result.rewritings:
        print(rewriting)       # q(X, Y) :- v1(X, Z), v2(Z, Y)
"""

from .datalog import (
    Atom,
    ConjunctiveQuery,
    Constant,
    Substitution,
    UnionQuery,
    Variable,
    make_query,
    parse_atom,
    parse_program,
    parse_query,
)
from .containment import (
    canonical_database,
    is_contained_in,
    is_equivalent_to,
    is_minimal,
    minimize,
)
from .engine import Database, Relation, evaluate, materialize_views
from .views import (
    CatalogDelta,
    View,
    ViewCatalog,
    expand,
    is_equivalent_rewriting,
    is_locally_minimal,
    locally_minimize,
)
from .core import (
    CoreCoverResult,
    TupleCore,
    ViewTuple,
    core_cover,
    core_cover_star,
    naive_gmr_search,
    tuple_core,
    view_tuples,
)
from .cost import (
    PhysicalPlan,
    StatisticsCatalog,
    best_rewriting_m2,
    cost_m1,
    cost_m2,
    cost_m3,
    execute_plan,
    heuristic_plan,
    improve_with_filters,
    optimal_plan_m2,
    optimal_plan_m3,
    supplementary_plan,
)
from .baselines import bucket_algorithm, certain_answers, minicon
from .errors import (
    ArityMismatchError,
    BudgetExceededError,
    CacheCorruptionError,
    CircuitOpenError,
    DuplicateViewError,
    MalformedQueryError,
    ParseError,
    ReproError,
    RetryExhaustedError,
    ServiceError,
    UnknownViewError,
    UnsafeQueryError,
    UnsupportedQueryError,
    structured_error,
)
from .planner import (
    AnytimeRewriting,
    BudgetMeter,
    PlanOutcome,
    PlanResult,
    PlanStatus,
    PlannerContext,
    PlannerStats,
    ResourceBudget,
    RewriterBackend,
    UnknownBackendError,
    available_backends,
    get_backend,
    plan,
    register_backend,
)
from .mediator import MediatedAnswer, Mediator
from .service import (
    ExecutionOutcome,
    PlanCache,
    PlanRequest,
    ResilientExecutor,
    ServicePolicy,
)
from .workload import WorkloadConfig, generate_workload

__version__ = "1.0.0"

__all__ = [
    "AnytimeRewriting",
    "ArityMismatchError",
    "Atom",
    "BudgetExceededError",
    "BudgetMeter",
    "CacheCorruptionError",
    "CircuitOpenError",
    "ConjunctiveQuery",
    "Constant",
    "DuplicateViewError",
    "ExecutionOutcome",
    "MalformedQueryError",
    "MediatedAnswer",
    "Mediator",
    "CoreCoverResult",
    "Database",
    "ParseError",
    "PhysicalPlan",
    "PlanCache",
    "PlanOutcome",
    "PlanRequest",
    "PlanResult",
    "PlanStatus",
    "PlannerContext",
    "PlannerStats",
    "Relation",
    "ReproError",
    "ResilientExecutor",
    "ResourceBudget",
    "RetryExhaustedError",
    "RewriterBackend",
    "ServiceError",
    "ServicePolicy",
    "StatisticsCatalog",
    "UnknownBackendError",
    "UnknownViewError",
    "UnsafeQueryError",
    "UnsupportedQueryError",
    "CatalogDelta",
    "Substitution",
    "TupleCore",
    "UnionQuery",
    "Variable",
    "View",
    "ViewCatalog",
    "ViewTuple",
    "WorkloadConfig",
    "available_backends",
    "best_rewriting_m2",
    "bucket_algorithm",
    "canonical_database",
    "certain_answers",
    "core_cover",
    "core_cover_star",
    "cost_m1",
    "cost_m2",
    "cost_m3",
    "evaluate",
    "execute_plan",
    "expand",
    "generate_workload",
    "get_backend",
    "heuristic_plan",
    "improve_with_filters",
    "is_contained_in",
    "is_equivalent_rewriting",
    "is_equivalent_to",
    "is_locally_minimal",
    "is_minimal",
    "locally_minimize",
    "make_query",
    "materialize_views",
    "minicon",
    "minimize",
    "naive_gmr_search",
    "optimal_plan_m2",
    "optimal_plan_m3",
    "parse_atom",
    "parse_program",
    "parse_query",
    "plan",
    "register_backend",
    "structured_error",
    "supplementary_plan",
    "tuple_core",
    "view_tuples",
]
