"""Independent certification of CoreCover results.

A downstream system acting on CoreCover's output (e.g. an optimizer
shipping plans to production) may want a certificate that the result is
trustworthy without re-deriving the theory.  This module re-checks a
:class:`~repro.core.corecover.CoreCoverResult` from first principles:

* the minimized query is equivalent to the input query;
* every emitted rewriting is safe, uses only catalog views, and is an
  *equivalent* rewriting (expansion test, Definition 2.3);
* every filter candidate can be appended to a rewriting without breaking
  equivalence;
* optionally, global minimality is verified by brute force: no
  combination of view tuples with fewer subgoals is a rewriting
  (exponential — gated by ``verify_minimality``).

All checks use only the containment substrate, none of the CoreCover
internals, so a bug in tuple-cores or the set cover cannot hide from the
certificate.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import combinations

from ..containment.containment import containment_mapping, is_equivalent_to
from ..datalog.query import ConjunctiveQuery
from ..views.expansion import expand
from ..views.rewriting import is_equivalent_rewriting
from ..views.view import ViewCatalog
from .corecover import CoreCoverResult, add_filter_subgoal


@dataclass(frozen=True)
class Certificate:
    """The outcome of certification: valid, or a list of found issues."""

    issues: tuple[str, ...] = ()

    @property
    def ok(self) -> bool:
        """Whether every check passed."""
        return not self.issues

    def __str__(self) -> str:
        if self.ok:
            return "certificate: OK"
        rendered = "\n  - ".join(self.issues)
        return f"certificate: {len(self.issues)} issue(s)\n  - {rendered}"


def certify(
    result: CoreCoverResult,
    views: ViewCatalog,
    verify_minimality: bool = False,
) -> Certificate:
    """Re-check a CoreCover result from first principles."""
    issues: list[str] = []

    if not is_equivalent_to(result.minimized_query, result.query):
        issues.append(
            "minimized query is not equivalent to the input query"
        )

    view_names = set(views.names())
    for rewriting in result.rewritings:
        label = str(rewriting)
        if not rewriting.is_safe():
            issues.append(f"unsafe rewriting: {label}")
            continue
        unknown = {
            atom.predicate
            for atom in rewriting.body
            if atom.predicate not in view_names
        }
        if unknown:
            issues.append(
                f"rewriting {label} uses non-view predicates {sorted(unknown)}"
            )
            continue
        if not is_equivalent_rewriting(rewriting, result.query, views):
            issues.append(f"not an equivalent rewriting: {label}")

    if result.rewritings:
        sample = result.rewritings[0]
        for filter_tuple in result.filter_candidates:
            extended = add_filter_subgoal(sample, filter_tuple)
            if not is_equivalent_rewriting(extended, result.query, views):
                issues.append(
                    f"filter candidate {filter_tuple} breaks equivalence"
                )

    if verify_minimality and result.rewritings:
        claimed = result.minimum_subgoals() or 0
        smaller = _smaller_rewriting_exists(result, views, claimed)
        if smaller is not None:
            issues.append(
                f"claimed minimum {claimed} subgoals, but found smaller "
                f"rewriting: {smaller}"
            )

    return Certificate(tuple(issues))


def _smaller_rewriting_exists(
    result: CoreCoverResult, views: ViewCatalog, claimed: int
) -> ConjunctiveQuery | None:
    """Brute-force search for a rewriting below the claimed minimum.

    Only combinations of the (already computed) view tuples need checking
    — Theorem 3.1 guarantees the view-tuple space contains a GMR.
    """
    minimized = result.minimized_query
    for size in range(1, claimed):
        for combo in combinations(result.view_tuples, size):
            candidate = ConjunctiveQuery(
                minimized.head, tuple(vt.atom for vt in combo)
            )
            if not candidate.is_safe():
                continue
            expansion = expand(candidate, views)
            if containment_mapping(minimized, expansion) is not None:
                return candidate
    return None
